"""Persistent content-addressed result cache.

Expensive derived artifacts — profiler grids, fitted cost-model
coefficients, fleet plan evaluations — are pure functions of their
inputs.  This module gives them a zero-dependency on-disk memo: values
are stored as JSON files named by the SHA-256 of a canonical
serialization of *everything* the computation depends on (model spec,
GPU specs, workload, seed, and a code-version salt derived from the
relevant source files, so stale entries self-invalidate when the
modelled math changes).

Layout::

    <root>/<namespace>/<sha256-hex>.json

Properties:

* **Atomic writes** — values land via ``tmp + os.replace`` so a crashed
  writer never leaves a half-written entry for a later reader.
* **Corruption-safe reads** — an unreadable/truncated entry is evicted
  (deleted) and reported as a miss; the caller recomputes and overwrites.
* **Opt-out** — ``SPLITQUANT_CACHE=0`` disables the default cache
  entirely; ``SPLITQUANT_CACHE_DIR`` relocates it (default
  ``~/.cache/splitquant``).
* **Observability** — per-instance hit/miss/eviction counters, mirrored
  into ``repro.obs`` metrics (``cache.hits`` / ``cache.misses`` /
  ``cache.evictions``) when tracing is enabled.

The stored JSON wraps the value as ``{"key": ..., "value": ...}`` so an
entry is self-describing for debugging (``jq .key <file>``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from .obs import metrics, trace

__all__ = [
    "MISS",
    "ResultCache",
    "cache_key",
    "canonical_json",
    "code_version_salt",
    "default_cache",
]

#: Bump to invalidate every cache entry regardless of source hashing.
CACHE_SCHEMA_VERSION = 1

#: Sentinel distinguishing "no entry" from a cached ``None`` value.
MISS = object()

_DEFAULT_DIR = "~/.cache/splitquant"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, stable floats.

    Python's ``repr``-based float serialization is shortest-round-trip,
    so equal floats always serialize identically.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def cache_key(payload: Any) -> str:
    """SHA-256 hex digest of the canonical serialization of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def code_version_salt(extra_modules: Iterable[Any] = ()) -> str:
    """A digest of the source files whose math cached values depend on.

    Hashes the bytes of the simulation/cost-model source tree (plus any
    ``extra_modules``) together with :data:`CACHE_SCHEMA_VERSION`.  Any
    edit to those files changes the salt, so every cache key embedding it
    silently misses and the value is recomputed — no manual cache busting
    after changing the modelled physics.  ``SPLITQUANT_CACHE_SALT``
    overrides the computed value (used by tests to force collisions or
    invalidations deterministically).
    """
    env = os.environ.get("SPLITQUANT_CACHE_SALT")
    if env is not None:
        return env
    global _SALT
    if _SALT is None:
        h = hashlib.sha256()
        h.update(f"schema={CACHE_SCHEMA_VERSION}".encode())
        for path in _salt_sources():
            try:
                h.update(path.name.encode())
                h.update(path.read_bytes())
            except OSError:  # pragma: no cover - unreadable source file
                h.update(b"<unreadable>")
        _SALT = h.hexdigest()[:16]
    return _SALT


_SALT: Optional[str] = None


def _salt_sources() -> list:
    """Source files covered by the version salt, in stable order."""
    pkg = Path(__file__).parent
    roots = [
        pkg / "simgpu",
        pkg / "costmodel",
        pkg / "pipeline",
        pkg / "models",
        pkg / "hardware",
        pkg / "core",
    ]
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.glob("*.py")))
    return files


@dataclass
class ResultCache:
    """A content-addressed JSON store under one root directory."""

    root: Path
    #: Run counters — also mirrored into ``repro.obs`` metrics.
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    evictions: int = field(default=0, init=False)

    def __post_init__(self):
        self.root = Path(self.root).expanduser()

    # -- key/value plumbing --------------------------------------------

    def _path(self, namespace: str, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"key must be a hex digest, got {key!r}")
        return self.root / namespace / f"{key}.json"

    def get(self, namespace: str, key: str) -> Any:
        """The stored value, or :data:`MISS`.

        A present-but-unparseable entry (torn write, disk corruption) is
        evicted and counts as both an eviction and a miss.
        """
        path = self._path(namespace, key)
        try:
            raw = path.read_text()
        except OSError:
            self._miss()
            return MISS
        try:
            entry = json.loads(raw)
            value = entry["value"]
        except (ValueError, KeyError, TypeError):
            self.evict(namespace, key)
            self._miss()
            return MISS
        self.hits += 1
        if trace.enabled:
            metrics.counter("cache.hits").inc()
        return value

    def put(self, namespace: str, key: str, value: Any) -> None:
        """Store ``value`` atomically (tmp file + rename)."""
        path = self._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"key": key, "value": value}, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(body)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def evict(self, namespace: str, key: str) -> bool:
        """Delete one entry; returns whether a file was removed."""
        try:
            self._path(namespace, key).unlink()
        except OSError:
            return False
        self.evictions += 1
        if trace.enabled:
            metrics.counter("cache.evictions").inc()
        return True

    def _miss(self) -> None:
        self.misses += 1
        if trace.enabled:
            metrics.counter("cache.misses").inc()

    # -- maintenance ----------------------------------------------------

    def entries(self, namespace: str) -> int:
        """Number of entries stored under ``namespace``."""
        d = self.root / namespace
        return sum(1 for _ in d.glob("*.json")) if d.is_dir() else 0

    def clear(self, namespace: Optional[str] = None) -> int:
        """Remove all entries (of one namespace, or everywhere)."""
        removed = 0
        dirs = (
            [self.root / namespace]
            if namespace is not None
            else [p for p in self.root.iterdir() if p.is_dir()]
            if self.root.is_dir()
            else []
        )
        for d in dirs:
            if not d.is_dir():
                continue
            for f in d.glob("*.json"):
                try:
                    f.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent clear
                    pass
        return removed


def default_cache() -> Optional[ResultCache]:
    """The process-wide cache, honouring the environment each call.

    ``SPLITQUANT_CACHE=0`` returns ``None`` (callers treat that as
    "always recompute"); ``SPLITQUANT_CACHE_DIR`` picks the root.  The
    environment is re-read on every call so tests can point the cache at
    a temp directory without import-order games.
    """
    if os.environ.get("SPLITQUANT_CACHE", "1") == "0":
        return None
    root = os.environ.get("SPLITQUANT_CACHE_DIR", _DEFAULT_DIR)
    global _CACHE
    if _CACHE is None or str(_CACHE.root) != str(Path(root).expanduser()):
        _CACHE = ResultCache(Path(root))
    return _CACHE


_CACHE: Optional[ResultCache] = None
