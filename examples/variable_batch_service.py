#!/usr/bin/env python
"""Variable-output-length serving, with execution timelines.

Real offline batches are not uniform: a summarization batch mixes 5-token
and 300-token generations.  This example exercises the variable-output
extension (paper Sec. IV-C sketches it; we implement it):

1. sample per-request output lengths from the CNN/DailyMail distribution,
2. plan against the *mean*-length uniform view while reserving KV for the
   longest request,
3. simulate with requests retiring early (decode micro-batches shrink),
4. render Gantt timelines of the SplitQuant plan vs the Uniform baseline
   so the bubble structure is visible.

Run:  python examples/variable_batch_service.py
"""

import dataclasses

from repro import (
    PlannerConfig,
    SplitQuantPlanner,
    get_model,
    table_iii_cluster,
)
from repro.baselines import plan_uniform_baseline
from repro.experiments.common import cost_model_for
from repro.pipeline import render_gantt, simulate_plan_variable, trace_plan
from repro.workloads import VariableBatchWorkload, sample_dataset


def main() -> None:
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(5)  # 3x T4 + 1x V100
    print(f"serving {spec.name} on {cluster.describe()}\n")

    lengths = sample_dataset("cnn_dailymail", 32, seed=7)
    outs = tuple(int(min(n, 300)) for n in lengths.output_lens)
    vwl = VariableBatchWorkload(prompt_len=512, output_lens=outs)
    print(f"workload: {vwl.describe()}")
    print(f"  total output tokens: {vwl.total_output_tokens}\n")

    planning = vwl.planning_view("mean")
    cm = cost_model_for(spec, cluster)
    cfg = PlannerConfig(
        group_size=2, max_orderings=4, microbatch_candidates=(8, 16, 32),
        time_limit_s=15.0,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
    uniform = plan_uniform_baseline(spec, cluster, planning)
    budget = planner.uniform_quality(uniform.bits if uniform else 3)
    planner = SplitQuantPlanner(
        spec, cluster, dataclasses.replace(cfg, quality_budget=budget),
        cost_model=cm,
    )
    result = planner.plan(planning)
    print(f"plan: {result.plan.describe()}\n")

    sq = simulate_plan_variable(result.plan, cluster, spec, vwl)
    print(f"SplitQuant : {sq.throughput_tokens_s:7.1f} tokens/s "
          f"(makespan {sq.makespan_s:.1f}s)")
    if uniform is not None:
        uni = simulate_plan_variable(uniform.plan, cluster, spec, vwl)
        print(f"Uniform-{uniform.bits:<3}: {uni.throughput_tokens_s:7.1f} "
              f"tokens/s (makespan {uni.makespan_s:.1f}s)")
        print(f"speedup    : "
              f"{sq.throughput_tokens_s / uni.throughput_tokens_s:.2f}x\n")

    # Timelines (uniform view keeps rows comparable).
    short = dataclasses.replace(planning, output_len=16,
                                reserve_output_len=vwl.max_output)
    print("SplitQuant timeline (first 16 decode steps shown):")
    tl = trace_plan(result.plan, cluster, spec, short)
    print(render_gantt(
        tl, width=90,
        labels=[f"{st.gpu_name}{'/tp' + str(st.tp_degree) if st.tp_degree > 1 else ''}"
                f"[{st.num_layers}]" for st in result.plan.stages],
    ))
    if uniform is not None:
        print("\nUniform timeline:")
        tl_u = trace_plan(uniform.plan, cluster, spec, short)
        print(render_gantt(
            tl_u, width=90,
            labels=[f"{st.gpu_name}[{st.num_layers}]"
                    for st in uniform.plan.stages],
        ))
        gaps = sum(len(tl_u.idle_gaps(i)) for i in range(len(tl_u.stages)))
        gaps_sq = sum(len(tl.idle_gaps(i)) for i in range(len(tl.stages)))
        print(f"\nidle gaps: uniform {gaps} vs splitquant {gaps_sq}")


if __name__ == "__main__":
    main()
