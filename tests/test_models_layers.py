"""Tests for per-layer compute/memory accounting."""

import pytest

from repro.models import (
    arithmetic_intensity,
    decode_bytes,
    decode_flops,
    embedding_bytes,
    get_model,
    hidden_state_bytes,
    kv_bytes_per_token,
    kv_cache_bytes,
    lm_head_flops,
    prefill_bytes,
    prefill_flops,
    weight_storage_bytes,
)


@pytest.fixture(scope="module")
def spec():
    return get_model("opt-13b")


def test_weight_bytes_scale_with_bits(spec):
    w16 = weight_storage_bytes(spec, 16)
    w8 = weight_storage_bytes(spec, 8)
    w4 = weight_storage_bytes(spec, 4)
    w3 = weight_storage_bytes(spec, 3)
    assert w16 > w8 > w4 > w3
    # One byte per linear element saved, minus the added scale metadata.
    linear = spec.decoder_linear_elements
    assert w16 - w8 > 0.95 * linear


def test_weight_bytes_sub16_carry_scale_metadata(spec):
    w4 = weight_storage_bytes(spec, 4)
    body = spec.decoder_linear_elements * 4 // 8
    norm = spec.decoder_norm_elements * 2
    assert w4 > body + norm  # group scales/zeros present


def test_invalid_bits_raise(spec):
    with pytest.raises(ValueError):
        weight_storage_bytes(spec, 5)


def test_kv_cache_linear_in_batch_and_context(spec):
    assert kv_cache_bytes(spec, 4, 100) == 2 * kv_cache_bytes(spec, 2, 100)
    assert kv_cache_bytes(spec, 2, 200) == 2 * kv_cache_bytes(spec, 2, 100)


def test_kv_quantization_halves_cache(spec):
    assert kv_bytes_per_token(spec, 8) == kv_bytes_per_token(spec, 16) // 2


def test_gqa_kv_smaller_than_mha():
    qwen = get_model("qwen2.5-7b")
    opt = get_model("opt-13b")
    # Per token, GQA stores kv_dim < hidden.
    assert kv_bytes_per_token(qwen) == 2 * qwen.kv_dim * 2
    assert kv_bytes_per_token(opt) == 2 * opt.hidden * 2


def test_prefill_flops_quadratic_in_seq(spec):
    f1 = prefill_flops(spec, 1, 512)
    f2 = prefill_flops(spec, 1, 1024)
    # Doubling seq more than doubles FLOPs (attention s^2 term).
    assert f2 > 2 * f1


def test_prefill_flops_linear_in_batch(spec):
    assert prefill_flops(spec, 8, 256) == pytest.approx(
        8 * prefill_flops(spec, 1, 256)
    )


def test_decode_flops_linear_in_past(spec):
    d1 = decode_flops(spec, 1, 100)
    d2 = decode_flops(spec, 1, 200)
    assert d2 > d1
    # projection part dominates; growth is attention-only
    assert d2 - d1 == pytest.approx(4.0 * 100 * spec.hidden)


def test_decode_bytes_dominated_by_weights_at_small_batch(spec):
    w = weight_storage_bytes(spec, 16)
    total = decode_bytes(spec, 1, 128, 16)
    assert w / total > 0.9


def test_decode_bytes_kv_grows_with_batch(spec):
    small = decode_bytes(spec, 1, 1024, 16)
    big = decode_bytes(spec, 64, 1024, 16)
    assert big > small * 2  # KV reads scale with batch


def test_lower_bits_reduce_decode_bytes(spec):
    assert decode_bytes(spec, 8, 512, 4) < decode_bytes(spec, 8, 512, 16)


def test_arithmetic_intensity_phase_gap(spec):
    """Sec. IV-A: prefill intensity orders of magnitude above decode."""
    pre = arithmetic_intensity(spec, 32, 512, "prefill")
    dec = arithmetic_intensity(spec, 32, 512, "decode")
    assert pre / dec > 50
    assert dec < 100  # decode is memory-bound territory


def test_arithmetic_intensity_values_near_paper():
    """Paper quotes decode intensity ~43 for OPT-30B at v=32, s=512."""
    spec30 = get_model("opt-30b")
    dec = arithmetic_intensity(spec30, 32, 512, "decode")
    assert 10 < dec < 200


def test_unknown_phase_raises(spec):
    with pytest.raises(ValueError):
        arithmetic_intensity(spec, 1, 128, "train")


def test_embedding_bytes_fp16(spec):
    assert embedding_bytes(spec) == (
        spec.embedding_elements + spec.lm_head_elements
    ) * 2


def test_lm_head_flops_linear_in_tokens(spec):
    assert lm_head_flops(spec, 10) == pytest.approx(10 * lm_head_flops(spec, 1))


def test_hidden_state_bytes(spec):
    assert hidden_state_bytes(spec, 4, 16) == 4 * 16 * spec.hidden * 2


def test_prefill_bytes_include_kv_write(spec):
    with_kv = prefill_bytes(spec, 8, 512, 16, bit_kv=16)
    half_kv = prefill_bytes(spec, 8, 512, 16, bit_kv=8)
    assert with_kv > half_kv
