"""SplitQuant's core: joint quantization / partition / micro-batch planning."""

from .config import PlannerConfig
from .costs import PlanningProblem, StageGroup, build_problem, group_layers
from .dp import DPOutcome, dp_search, flow_relaxed_span, segment_partition
from .enumeration import (
    candidate_orderings,
    microbatch_candidates,
    node_tp_groupings,
    scalable_orderings,
)
from .exhaustive import brute_force_solve
from .heuristic import bitwidth_transfer
from .ilp import (
    ILPSolution,
    solve_adabits,
    solve_partition_ilp,
    solve_partition_lp_relaxation,
)
from .planner import (
    CandidateStat,
    PlannerResult,
    SplitQuantPlanner,
    degrade_execution_plan,
    reduced_cluster,
    solution_to_plan,
)
from .replan import ClusterDelta, JobDelta, replan_incremental
from .search import (
    CandidateSearchEngine,
    SearchOutcome,
    SearchStats,
    analytic_lower_bound,
    mckp_lp_min_cost,
)

__all__ = [
    "PlannerConfig",
    "PlanningProblem",
    "StageGroup",
    "build_problem",
    "group_layers",
    "DPOutcome",
    "dp_search",
    "flow_relaxed_span",
    "segment_partition",
    "candidate_orderings",
    "microbatch_candidates",
    "node_tp_groupings",
    "scalable_orderings",
    "brute_force_solve",
    "bitwidth_transfer",
    "ILPSolution",
    "solve_adabits",
    "solve_partition_ilp",
    "solve_partition_lp_relaxation",
    "ClusterDelta",
    "JobDelta",
    "replan_incremental",
    "CandidateSearchEngine",
    "SearchOutcome",
    "SearchStats",
    "analytic_lower_bound",
    "mckp_lp_min_cost",
    "CandidateStat",
    "PlannerResult",
    "SplitQuantPlanner",
    "solution_to_plan",
]
