"""Fig. 12: ablation against pure adaptive quantization (*adabits*).

The adabits policy chooses per-layer bitwidths for quality alone on the
default topology; SplitQuant co-optimizes bitwidths with partitioning and
micro-batch sizing.  Clusters 5-8 with OPT-30B/66B — SplitQuant wins in
every case, isolating the value of joint optimization.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..baselines import plan_adabits_baseline
from ..core import PlannerConfig, SplitQuantPlanner
from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..workloads.spec import BatchWorkload
from .common import BITS, cost_model_for, throughput_of
from .harness import ExperimentResult

CASES: Tuple[Tuple[str, int], ...] = (
    ("opt-30b", 5),
    ("opt-30b", 6),
    ("opt-66b", 7),
    ("opt-30b", 8),
)


def run(max_orderings: int = 4, seed: int = 0) -> ExperimentResult:
    rows = []
    wins = []
    for model_name, cluster_idx in CASES:
        spec = get_model(model_name)
        cluster = table_iii_cluster(cluster_idx)
        wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
        cm = cost_model_for(spec, cluster)

        ada_plan = plan_adabits_baseline(spec, cluster, wl, cm, BITS)
        ada_tput = throughput_of(ada_plan, cluster, spec, wl)
        ada_quality = None

        cfg = PlannerConfig(
            group_size=2,
            max_orderings=max_orderings,
            microbatch_candidates=(8, 16),
            time_limit_s=20.0,
        )
        planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
        if ada_plan is not None:
            # Constrain SplitQuant to adabits' quality so the comparison
            # isolates scheduling, not extra quantization.
            k = {b: i for i, b in enumerate(BITS)}
            ada_quality = float(
                sum(
                    planner.omega_layers[i, k[b]]
                    for i, b in enumerate(ada_plan.bits_per_layer)
                )
            )
            cfg = dataclasses.replace(cfg, quality_budget=ada_quality)
            planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
        res = planner.plan(wl)
        sq_tput = throughput_of(res.plan if res else None, cluster, spec, wl)
        speedup = sq_tput / ada_tput if ada_tput > 0 else float("inf")
        wins.append(sq_tput >= ada_tput)
        rows.append(
            [model_name, f"cluster-{cluster_idx}", ada_tput, sq_tput,
             speedup if np.isfinite(speedup) else float("nan")]
        )
    return ExperimentResult(
        name="fig12",
        title="SplitQuant vs pure adaptive quantization (adabits)",
        headers=["model", "cluster", "adabits_tps", "splitquant_tps",
                 "speedup"],
        rows=rows,
        summary={"splitquant_wins_all": float(all(wins))},
        notes="Paper: joint optimization outperforms adabits in all cases.",
    )
