#!/usr/bin/env python
"""Quantization sensitivity analysis on a real model.

A deep dive into the machinery behind SplitQuant's bitwidth choices:

1. GPTQ vs round-to-nearest: layerwise loss and end-to-end perplexity,
2. Theorem 1 in practice: the variance bound versus measured output
   variance per operator,
3. Proposition 1 as a ranking: the variance indicator versus the measured
   per-layer perturbation, and versus the (much slower) Hessian route.

Run:  python examples/indicator_analysis.py
"""

import time

import numpy as np

from repro.quality import TinyLM, TinyLMConfig, build_calibration_tokens, build_eval_corpora
from repro.quant import (
    QuantConfig,
    empirical_quant_variance,
    gptq_quantize,
    hessian_sensitivity,
    layer_indicator,
    theorem1_variance_bound,
)


def main() -> None:
    model = TinyLM(
        TinyLMConfig(vocab=160, layers=6, hidden=64, ffn=192, heads=4,
                     max_seq=192, seed=1)
    )
    corpora = build_eval_corpora(model, n_seqs=6, seq_len=96)
    calib = build_calibration_tokens(model, n_seqs=4, seq_len=64)

    # ------------------------------------------------------------------
    print("== 1. GPTQ vs RTN (3-bit, all layers) ==")
    captures = model.capture_layer_inputs(calib)
    cfg = QuantConfig(bits=3, granularity="group", group_size=32)
    losses = []
    for i, (lw, cap) in enumerate(zip(model.layers, captures)):
        res = gptq_quantize(lw.w1, cap["w1"], cfg)
        losses.append((res.rtn_loss, res.loss))
        print(f"  layer {i} w1: rtn loss {res.rtn_loss:8.4f} -> "
              f"gptq {res.loss:8.4f} ({res.loss / res.rtn_loss:.0%})")
    ppl_rtn = model.quantized([3] * 6, method="rtn").perplexity(corpora["c4"])
    ppl_gptq = model.quantized(
        [3] * 6, method="gptq", calib_tokens=calib
    ).perplexity(corpora["c4"])
    print(f"  end-to-end PPL: rtn {ppl_rtn:.2f}  gptq {ppl_gptq:.2f}\n")

    # ------------------------------------------------------------------
    print("== 2. Theorem 1: bound vs measured output variance (4-bit) ==")
    for i, (lw, cap) in enumerate(zip(model.layers, captures)):
        w, x = lw.w1, cap["w1"]
        bound = theorem1_variance_bound(w, x, 4, "deterministic")
        measured = empirical_quant_variance(w, x, 4, "deterministic")
        print(f"  layer {i} w1: measured {measured:9.5f} <= "
              f"bound {bound:9.5f}  ({measured / bound:.0%} of bound)")
    print()

    # ------------------------------------------------------------------
    print("== 3. Ranking layers: indicator vs measured vs Hessian ==")
    stats = model.layer_operator_stats(calib)
    omega = [layer_indicator(ops, 3) for ops in stats]
    measured = []
    for lw, cap in zip(model.layers, captures):
        total = 0.0
        tensor_cfg = QuantConfig(bits=3, granularity="tensor")
        from repro.quant import quantize_dequantize

        for name, x in cap.items():
            w = lw.linear(name)
            err = quantize_dequantize(w, tensor_cfg) - w
            total += float(np.var(err @ x))
        measured.append(total)

    t0 = time.perf_counter()
    hess = [
        sum(
            hessian_sensitivity(lw.linear(name), x, 3)
            for name, x in cap.items()
        )
        for lw, cap in zip(model.layers, captures)
    ]
    t_hess = time.perf_counter() - t0
    t0 = time.perf_counter()
    _ = [layer_indicator(ops, 3) for ops in stats]
    t_var = time.perf_counter() - t0

    def ranks(v):
        return np.argsort(np.argsort(v))

    rho_var = np.corrcoef(ranks(omega), ranks(measured))[0, 1]
    rho_hess = np.corrcoef(ranks(hess), ranks(measured))[0, 1]
    print(f"  {'layer':>5} {'indicator':>11} {'measured':>11} {'hessian':>11}")
    for i in range(len(omega)):
        print(f"  {i:>5} {omega[i]:>11.4f} {measured[i]:>11.5f} "
              f"{hess[i]:>11.4f}")
    print(f"\n  rank corr vs measured: variance indicator {rho_var:.2f}, "
          f"hessian {rho_hess:.2f}")
    print(f"  compute time: variance {t_var * 1e3:.2f} ms vs hessian "
          f"{t_hess * 1e3:.2f} ms ({t_hess / max(t_var, 1e-9):.0f}x)")
    print("\nthe variance indicator ranks layers accurately at a tiny "
          "fraction of the Hessian route's cost — the Table V trade-off "
          "in miniature.")


if __name__ == "__main__":
    main()
