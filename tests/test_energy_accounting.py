"""Energy/$-cost accounting: the power model, parity, and objectives.

The contract (DESIGN.md, "Energy & cost accounting"): joules and dollars
are a *pure post-pass* over fields the event, fast and batched backends
already agree on bit-for-bit, so every assertion on cross-backend parity
here is ``==`` on raw floats.  The planner's non-throughput objectives
re-rank the candidate frontier, and the default objective must keep
every existing plan bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.costmodel.energy import (
    DEFAULT_PRICES,
    GPUPrice,
    PriceBook,
    default_price_book,
    plan_cost,
    plan_energy,
    stage_occupancies,
)
from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.pipeline import (
    OnlineConfig,
    PlanCase,
    evaluate_plans,
    simulate_online,
    simulate_plan,
)
from repro.plan import InfeasibleError, uniform_plan
from repro.simgpu.roofline import layer_occupancy
from repro.workloads import BatchWorkload, poisson_trace


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


@pytest.fixture(scope="module")
def case13b(cluster5, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 8, 4
    )
    wl = BatchWorkload(batch=16, prompt_len=256, output_len=32)
    return plan, cluster5, opt13b, wl


# ---------------------------------------------------------------------------
# Power model primitives
# ---------------------------------------------------------------------------


def test_gpu_specs_carry_wattages(t4, v100, a100, p100):
    for gpu in (t4, v100, a100, p100):
        assert 0 < gpu.idle_watts < gpu.peak_watts


def test_layer_occupancy_bounded(t4, v100, opt13b):
    for gpu in (t4, v100):
        for phase, n_tok in (("prefill", 512), ("decode", 300)):
            occ = layer_occupancy(gpu, opt13b, 8, phase, 8, n_tok, 16)
            assert 0.0 < occ <= 1.0


def test_stage_occupancies_shape(case13b):
    plan, cluster, spec, wl = case13b
    occs = stage_occupancies(plan, cluster, spec, wl)
    assert len(occs) == len(plan.stages)
    for pre, dec in occs:
        assert 0.0 < pre <= 1.0
        assert 0.0 < dec <= 1.0


def test_plan_energy_degenerate_and_clamped(case13b):
    plan, cluster, spec, wl = case13b
    n = len(plan.stages)
    assert plan_energy(plan, cluster, spec, wl, 0.0, 0.0, 0.0, [0.0] * n) == 0.0
    assert plan_cost(plan, cluster, 0.0, 0.0) == 0.0
    # Busy time is clamped to [0, makespan]: an over-reported busy span
    # can never exceed the all-busy draw, and negative busy is idle-only.
    idle_only = plan_energy(
        plan, cluster, spec, wl, 10.0, 5.0, 5.0, [-1.0] * n
    )
    over = plan_energy(plan, cluster, spec, wl, 10.0, 5.0, 5.0, [99.0] * n)
    capped = plan_energy(plan, cluster, spec, wl, 10.0, 5.0, 5.0, [10.0] * n)
    assert idle_only < over == capped


def test_plan_energy_monotonic_in_busy(case13b):
    plan, cluster, spec, wl = case13b
    n = len(plan.stages)
    lo = plan_energy(plan, cluster, spec, wl, 10.0, 5.0, 5.0, [2.0] * n)
    hi = plan_energy(plan, cluster, spec, wl, 10.0, 5.0, 5.0, [8.0] * n)
    assert 0.0 < lo < hi


# ---------------------------------------------------------------------------
# Price book
# ---------------------------------------------------------------------------


def test_price_book_tiers():
    book = default_price_book(spot_types=("T4-16G",))
    assert book.tier_of("T4-16G") == "spot"
    assert book.tier_of("V100-32G") == "on_demand"
    t4 = DEFAULT_PRICES["T4-16G"]
    assert book.rate_usd_hr("T4-16G") == t4.spot_usd_hr
    assert book.rate_usd_hr("V100-32G") == (
        DEFAULT_PRICES["V100-32G"].on_demand_usd_hr
    )
    # Spot is the discount tier for every registered model.
    for name, price in DEFAULT_PRICES.items():
        assert price.spot_usd_hr < price.on_demand_usd_hr


def test_price_book_fallback_and_bad_tier():
    book = default_price_book()
    assert book.rate_usd_hr("H999-1T") > 0.0  # unregistered -> fallback
    with pytest.raises(ValueError):
        GPUPrice(1.0, 0.5).rate("reserved")


def test_spot_pricing_lowers_cost(case13b):
    plan, cluster, spec, wl = case13b
    sim = simulate_plan(plan, cluster, spec, wl, check_memory=False)
    spot_all = default_price_book(
        spot_types=tuple(sorted({st.gpu_name for st in plan.stages}))
    )
    cheap = plan_cost(plan, cluster, sim.makespan_s, sim.energy_j, spot_all)
    assert cheap < sim.cost_usd


# ---------------------------------------------------------------------------
# Cross-backend parity + result surface
# ---------------------------------------------------------------------------


def test_energy_bit_identical_across_backends(case13b):
    plan, cluster, spec, wl = case13b
    ev = simulate_plan(plan, cluster, spec, wl,
                       check_memory=False, sim_backend="event")
    fa = simulate_plan(plan, cluster, spec, wl,
                       check_memory=False, sim_backend="fast")
    (ba,) = evaluate_plans(
        [PlanCase(plan, cluster, spec, wl)], check_memory=False
    )
    # energy_j/cost_usd participate in dataclass equality, so `==`
    # alone would fail on any divergence; assert the fields explicitly
    # too so a failure names the culprit.
    assert ev.energy_j == fa.energy_j == ba.energy_j
    assert ev.cost_usd == fa.cost_usd == ba.cost_usd
    assert ev == fa == ba
    assert ev.energy_j > 0.0
    assert ev.cost_usd > 0.0
    assert ev.joules_per_token > 0.0
    assert ev.usd_per_mtoken > 0.0


def test_energy_matches_post_pass(case13b):
    plan, cluster, spec, wl = case13b
    sim = simulate_plan(plan, cluster, spec, wl, check_memory=False)
    assert sim.energy_j == plan_energy(
        plan, cluster, spec, wl,
        sim.makespan_s, sim.prefill_span_s, sim.decode_span_s,
        sim.stage_busy_s,
    )
    assert sim.cost_usd == plan_cost(
        plan, cluster, sim.makespan_s, sim.energy_j
    )


def test_online_result_carries_energy(cluster5, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 4, 4
    )
    trace = poisson_trace(rate_per_s=3.0, duration_s=10.0, seed=5,
                          max_prompt_len=256, max_output_len=8)
    res = simulate_online(
        plan, cluster5, opt13b, trace, config=OnlineConfig(chunk_tokens=512)
    )
    assert res.energy_j is not None and res.energy_j > 0.0
    assert res.cost_usd is not None and res.cost_usd > 0.0
    assert res.joules_per_token > 0.0


# ---------------------------------------------------------------------------
# Planner objectives
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def objective_planner(opt13b, small_cluster, cost_model_13b):
    from repro.core import PlannerConfig, SplitQuantPlanner

    cfg = PlannerConfig(group_size=5, max_orderings=2,
                        microbatch_candidates=(4, 8), time_limit_s=10.0)
    return SplitQuantPlanner(
        opt13b, small_cluster, cfg, cost_model=cost_model_13b
    )


def test_default_objective_bit_identical(objective_planner, small_workload):
    baseline = objective_planner.plan(small_workload)
    explicit = objective_planner.plan(small_workload, objective="throughput")
    assert baseline is not None and explicit is not None
    assert explicit.plan == baseline.plan
    assert baseline.objective == "throughput"
    assert baseline.budget is None
    assert baseline.predicted_energy_j is None
    assert baseline.predicted_cost_usd is None


@pytest.mark.parametrize("objective,metric", [
    ("energy", "joules_per_token"),
    ("cost", "usd_per_mtoken"),
])
def test_objective_never_loses_on_its_metric(
    objective_planner, small_workload, small_cluster, opt13b,
    objective, metric,
):
    base = objective_planner.plan(small_workload)
    res = objective_planner.plan(small_workload, objective=objective)
    assert res is not None
    assert res.objective == objective
    assert res.predicted_energy_j is not None
    assert res.predicted_cost_usd is not None
    sim_base = simulate_plan(
        base.plan, small_cluster, opt13b, small_workload, check_memory=False
    )
    sim_obj = simulate_plan(
        res.plan, small_cluster, opt13b, small_workload, check_memory=False
    )
    assert getattr(sim_obj, metric) <= getattr(sim_base, metric) + 1e-9


def test_budgeted_objective(objective_planner, small_workload, small_cluster,
                            opt13b):
    free = objective_planner.plan(small_workload, objective="energy")
    sim = simulate_plan(
        free.plan, small_cluster, opt13b, small_workload, check_memory=False
    )
    # A budget just above the energy-optimal J/token is feasible by
    # construction: the energy-optimal candidate itself satisfies it.
    budget = sim.joules_per_token * 1.01
    res = objective_planner.plan(
        small_workload, objective="energy", budget=budget
    )
    assert res is not None
    assert res.budget == budget
    assert res.predicted_energy_j is not None


def test_budget_infeasible_raises(objective_planner, small_workload):
    with pytest.raises(InfeasibleError):
        objective_planner.plan(
            small_workload, objective="energy", budget=1e-12
        )


def test_budget_with_throughput_rejected(objective_planner, small_workload):
    with pytest.raises(ValueError):
        objective_planner.plan(
            small_workload, objective="throughput", budget=1.0
        )


def test_planner_config_validates_objective():
    from repro.core import PlannerConfig

    with pytest.raises(ValueError):
        PlannerConfig(objective="latency")
    with pytest.raises(ValueError):
        PlannerConfig(budget=-1.0)
    cfg = PlannerConfig(objective="cost", budget=5.0)
    assert cfg.objective == "cost"


def test_dp_tier_threads_objective(opt13b, small_cluster, cost_model_13b,
                                   small_workload):
    from repro.core import PlannerConfig, SplitQuantPlanner

    cfg = PlannerConfig(group_size=5, max_orderings=2,
                        microbatch_candidates=(4,), time_limit_s=10.0)
    planner = SplitQuantPlanner(
        opt13b, small_cluster, cfg, cost_model=cost_model_13b
    )
    res = planner.plan(small_workload, tier="dp", objective="energy")
    assert res is not None
    assert res.objective == "energy"
    assert res.predicted_energy_j is not None


# ---------------------------------------------------------------------------
# Fleet energy/cost + spot preemption
# ---------------------------------------------------------------------------

FLEET_INVENTORY = {"V100-32G": 3, "T4-16G": 4}


@pytest.fixture(scope="module")
def fleet_setup():
    from repro.fleet import FleetScheduler, make_job_queue, simulate_schedule

    jobs = make_job_queue(n_jobs=3, seed=0, models=("opt-1.3b", "bloom-3b"))
    sched = FleetScheduler(
        FLEET_INVENTORY, allocator="greedy",
        spot_types=("T4-16G", "V100-32G"),
    )
    schedule = sched.schedule(jobs)
    return sched, schedule, simulate_schedule(
        schedule, price_book=sched.price_book
    )


def test_fleet_result_carries_energy(fleet_setup):
    _, _, sim = fleet_setup
    assert sim.energy_j is not None and sim.energy_j > 0.0
    assert sim.cost_usd is not None and sim.cost_usd > 0.0
    assert sim.joules_per_token > 0.0
    assert sim.usd_per_mtoken > 0.0
    # Fleet joules cover every job's busy draw plus inventory idle, so
    # they dominate the sum of the per-job pipeline totals.
    busy = sum(
        (rec.batch_sim.energy_j or 0.0) * rec.num_batches
        for rec in sim.jobs
    )
    assert sim.energy_j >= busy


def test_fleet_spot_book_is_cheaper(fleet_setup):
    from repro.fleet import simulate_schedule

    _, schedule, spot_sim = fleet_setup
    on_demand = simulate_schedule(schedule, price_book=default_price_book())
    assert spot_sim.cost_usd < on_demand.cost_usd
    assert spot_sim.energy_j == on_demand.energy_j  # pricing only


def test_preempt_spot_validates_and_repairs(fleet_setup):
    sched, schedule, _ = fleet_setup
    with pytest.raises(KeyError):
        sched.preempt_spot(schedule, "no-such-job")
    with pytest.raises(ValueError):
        sched.preempt_spot(schedule, schedule.jobs[0].job.job_id,
                           gpu="P100-12G")  # not spot-priced
    repaired = sched.preempt_spot(schedule, schedule.jobs[0].job.job_id)
    assert len(repaired.jobs) == len(schedule.jobs)


def test_allocator_cost_objective():
    from repro.fleet import GreedyAllocator, group_rate_usd_hr

    with pytest.raises(ValueError):
        GreedyAllocator(objective="latency")
    book = default_price_book(spot_types=("T4-16G",))
    alloc = GreedyAllocator(objective="cost", price_book=book)
    assert alloc.objective == "cost"
    from repro.fleet import enumerate_groups

    groups = enumerate_groups(FLEET_INVENTORY, max_gpus=2, max_types=2)
    for g in groups:
        assert group_rate_usd_hr(g, book) == pytest.approx(
            sum(n * book.rate_usd_hr(name) for name, n in g.counts)
        )
