#!/usr/bin/env python
"""Quickstart: plan and simulate OPT-30B serving on a mixed T4/V100 cluster.

The smallest end-to-end tour of the public API, driven through the
:class:`repro.api.Session` façade:

1. pick a model and a heterogeneous cluster (Table III cluster 5),
2. let SplitQuant jointly choose per-layer bitwidths, the layer partition
   and micro-batch sizes (constrained to at least uniform-quantization
   quality),
3. simulate the resulting plan and the Uniform baseline, and compare.

Set ``SPLITQUANT_TRACE=trace.jsonl`` (or pass ``trace_path`` to the
Session) to capture a span trace of everything below, then render it
with ``python scripts/trace_report.py trace.jsonl``.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

import dataclasses

from repro import (
    BatchWorkload,
    PlannerConfig,
    Session,
    get_model,
    table_iii_cluster,
)
from repro.baselines import plan_uniform_baseline


def main() -> None:
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(5)  # 3x T4-16G + 1x V100-32G
    workload = BatchWorkload(batch=32, prompt_len=512, output_len=100)

    print(f"model   : {spec.describe()}")
    print(f"cluster : {cluster.describe()}")
    print(f"workload: {workload.describe()}\n")

    # --- SplitQuant -------------------------------------------------------
    config = PlannerConfig(
        group_size=2,
        max_orderings=6,
        microbatch_candidates=(8, 16, 32),
        time_limit_s=20.0,
    )
    # Constrain quality to at least the best Uniform baseline (Sec. VI-C).
    uniform = plan_uniform_baseline(spec, cluster, workload)
    ref_bits = uniform.bits if uniform else min(config.bit_choices)
    budget = Session(spec, cluster, config).planner.uniform_quality(ref_bits)

    sess = Session(
        spec, cluster, dataclasses.replace(config, quality_budget=budget)
    )
    result = sess.plan(workload)
    if result is None:
        raise SystemExit("no feasible plan — model too large for cluster")

    print("SplitQuant plan:")
    print(f"  {result.plan.describe()}")
    print(f"  planning time : {result.duration_s:.1f}s "
          f"({result.candidates_tried} candidates)")

    sim = sess.simulate()  # the plan and workload are remembered
    print(f"  throughput    : {sim.throughput_tokens_s:.1f} tokens/s")
    print(f"  stage util    : "
          + ", ".join(f"{u:.0%}" for u in sim.stage_utilization))

    # --- Uniform baseline -------------------------------------------------
    if uniform is None:
        print("\nUniform baseline: OOM at every precision")
        return
    base = sess.simulate(plan=uniform.plan)
    print(f"\nUniform baseline ({uniform.bits}-bit, even partition):")
    print(f"  throughput    : {base.throughput_tokens_s:.1f} tokens/s")
    print(
        f"\nSpeedup: {sim.throughput_tokens_s / base.throughput_tokens_s:.2f}x"
        " at >= Uniform model quality"
    )


if __name__ == "__main__":
    main()
