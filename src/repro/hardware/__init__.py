"""Hardware substrate: GPU specs, interconnects, clusters, fleet stats."""

from .cluster import (
    ClusterSpec,
    Device,
    all_table_iii_clusters,
    make_cluster,
    table_iii_cluster,
)
from .fleet import FleetStats, monthly_utilization_series, sample_fleet
from .gpus import (
    CUDA_CONTEXT_BYTES,
    GPU_REGISTRY,
    SUPPORTED_BITS,
    GPUSpec,
    get_gpu,
    list_gpus,
)
from .interconnect import (
    ETH_100G,
    ETH_800G,
    NVLINK,
    PCIE3,
    LinkSpec,
    get_link,
    intra_node_link,
)

__all__ = [
    "ClusterSpec",
    "Device",
    "all_table_iii_clusters",
    "make_cluster",
    "table_iii_cluster",
    "FleetStats",
    "monthly_utilization_series",
    "sample_fleet",
    "CUDA_CONTEXT_BYTES",
    "GPU_REGISTRY",
    "SUPPORTED_BITS",
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "ETH_100G",
    "ETH_800G",
    "NVLINK",
    "PCIE3",
    "LinkSpec",
    "get_link",
    "intra_node_link",
]
