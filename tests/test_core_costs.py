"""Tests for planning-problem construction."""

import numpy as np
import pytest

from repro.core import StageGroup, build_problem, group_layers
from repro.core.costs import group_indicator
from repro.quant import normalized_indicator_table
from repro.workloads import BatchWorkload

BITS = (3, 4, 8, 16)


def make_problem(spec, cluster, cm, eta=4, xi=4, group_size=2,
                 workload=None):
    ordering = tuple(
        StageGroup(device_ids=(d.device_id,), gpu=d.gpu)
        for d in cluster.devices
    )
    wl = workload or BatchWorkload(batch=8, prompt_len=256, output_len=32)
    omega = normalized_indicator_table(spec, BITS)
    return build_problem(
        spec, cluster, ordering, wl, cm, omega, eta, xi, BITS,
        group_size=group_size,
    )


def test_group_layers():
    assert group_layers(10, 3) == (3, 3, 3, 1)
    assert group_layers(8, 2) == (2, 2, 2, 2)
    assert group_layers(5, 10) == (5,)
    with pytest.raises(ValueError):
        group_layers(10, 0)


def test_group_indicator_sums():
    omega = np.arange(12.0).reshape(6, 2)
    grouped = group_indicator(omega, (2, 2, 2))
    assert grouped.shape == (3, 2)
    assert np.allclose(grouped[0], omega[0] + omega[1])


def test_problem_shapes(opt13b, small_cluster, cost_model_13b):
    p = make_problem(opt13b, small_cluster, cost_model_13b, group_size=2)
    G = -(-opt13b.num_layers // 2)
    assert p.n_groups == G
    assert p.l_pre.shape == (G, 2, 4)
    assert p.l_dec.shape == (G, 2, 4)
    assert p.mem.shape == (G, 4)
    assert p.omega.shape == (G, 4)
    assert p.capacity.shape == (2,)
    assert p.comm_pre.shape == (1,)


def test_costs_positive_and_ordered(opt13b, small_cluster, cost_model_13b):
    p = make_problem(opt13b, small_cluster, cost_model_13b)
    assert np.all(p.l_pre > 0)
    assert np.all(p.l_dec > 0)
    # Memory monotone in bits.
    assert np.all(np.diff(p.mem, axis=1) > 0)
    # T4 (stage 0) slower than V100 (stage 1) at FP16 prefill.
    assert np.all(p.l_pre[:, 0, 3] > p.l_pre[:, 1, 3])


def test_embedding_constants_on_edges(opt13b, small_cluster, cost_model_13b):
    p = make_problem(opt13b, small_cluster, cost_model_13b)
    assert p.const_pre[0] > 0  # embedding on first stage
    assert p.const_dec[-1] > 0  # LM head on last stage


def test_capacity_stage0_pays_embeddings(opt13b, small_cluster, cost_model_13b):
    p = make_problem(opt13b, small_cluster, cost_model_13b)
    # Stage 0 (T4, 16G) loses M_emb; raw capacity of V100 is larger anyway.
    t4_usable = small_cluster.devices[0].gpu.usable_mem_bytes
    assert p.capacity[0] < t4_usable


def test_microbatch_counts(opt13b, small_cluster, cost_model_13b):
    wl = BatchWorkload(batch=10, prompt_len=256, output_len=32)
    p = make_problem(opt13b, small_cluster, cost_model_13b, eta=4, xi=3,
                     workload=wl)
    assert p.mu_pre == 3
    assert p.mu_dec == 4
    assert p.prefill_jobs == 3 * wl.kappa


def test_latency_estimate_consistency(opt13b, small_cluster, cost_model_13b):
    p = make_problem(opt13b, small_cluster, cost_model_13b)
    G = p.n_groups
    stages = [0] * (G // 2) + [1] * (G - G // 2)
    lat_16 = p.latency_estimate(stages, [16] * G)
    lat_4 = p.latency_estimate(stages, [4] * G)
    assert lat_4 < lat_16  # decode dominates; 4-bit decodes faster


def test_quality_sum_and_memory_ok(opt13b, small_cluster, cost_model_13b):
    p = make_problem(opt13b, small_cluster, cost_model_13b)
    G = p.n_groups
    stages = [0] * (G // 2) + [1] * (G - G // 2)
    assert p.quality_sum([16] * G) == 0.0
    assert p.quality_sum([3] * G) > p.quality_sum([4] * G) > 0
    # FP16 OPT-13B halves fit this cluster; 3-bit certainly does.
    assert p.memory_ok(stages, [16] * G)
    assert p.memory_ok(stages, [3] * G)
    # Piling every layer onto the T4 stage at FP16 does not fit.
    assert not p.memory_ok([0] * G, [16] * G)


def test_invalid_microbatch_rejected(opt13b, small_cluster, cost_model_13b):
    with pytest.raises(ValueError):
        make_problem(opt13b, small_cluster, cost_model_13b, eta=0)


def test_tp_group_capacity(opt13b, cluster5, opt30b):
    from repro.core.costs import StageGroup

    t4 = cluster5.devices[0].gpu
    sg = StageGroup(device_ids=(0, 1), gpu=t4)
    assert sg.tp_degree == 2
    assert sg.capacity_bytes == 2 * t4.usable_mem_bytes
    assert sg.key() == ("T4-16G", 2)
