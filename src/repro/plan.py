"""Execution plans: the assigner's output, the runtime's input.

A plan maps a contiguous range of decoder layers (each with its own
quantization bitwidth) to every pipeline stage, names the devices forming
each stage (one device, or an intra-node tensor-parallel group), and fixes
the prefill/decode micro-batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage."""

    #: Cluster device ids forming the stage (len > 1 means TP).
    device_ids: Tuple[int, ...]
    #: GPU model name of the stage's devices (TP groups are homogeneous).
    gpu_name: str
    #: Global index of the stage's first decoder layer.
    layer_start: int
    #: Bitwidth per layer held by the stage, in model order.
    layer_bits: Tuple[int, ...]

    def __post_init__(self):
        if not self.device_ids:
            raise ValueError("stage needs at least one device")
        if not self.layer_bits:
            raise ValueError("stage must hold at least one layer")

    @property
    def num_layers(self) -> int:
        return len(self.layer_bits)

    @property
    def layer_end(self) -> int:
        """One past the stage's last layer."""
        return self.layer_start + self.num_layers

    @property
    def tp_degree(self) -> int:
        return len(self.device_ids)


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete serving plan for one model on one cluster."""

    model_name: str
    stages: Tuple[StagePlan, ...]
    #: Prefill micro-batch size (paper's eta).
    prefill_microbatch: int
    #: Decode micro-batch size (paper's xi).
    decode_microbatch: int
    bit_kv: int = 16

    def __post_init__(self):
        if not self.stages:
            raise ValueError("plan needs at least one stage")
        if self.prefill_microbatch <= 0 or self.decode_microbatch <= 0:
            raise ValueError("micro-batch sizes must be positive")
        expect = 0
        for st in self.stages:
            if st.layer_start != expect:
                raise ValueError(
                    f"stages not contiguous: stage starts at {st.layer_start}, "
                    f"expected {expect}"
                )
            expect = st.layer_end
        seen: set = set()
        for st in self.stages:
            for d in st.device_ids:
                if d in seen:
                    raise ValueError(f"device {d} used by two stages")
                seen.add(d)

    @property
    def num_layers(self) -> int:
        return self.stages[-1].layer_end

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def bits_per_layer(self) -> Tuple[int, ...]:
        """Global per-layer bitwidth assignment in model order."""
        out: List[int] = []
        for st in self.stages:
            out.extend(st.layer_bits)
        return tuple(out)

    def stage_of_layer(self, layer: int) -> int:
        for j, st in enumerate(self.stages):
            if st.layer_start <= layer < st.layer_end:
                return j
        raise IndexError(f"layer {layer} outside plan (L={self.num_layers})")

    def layers_per_stage(self) -> Tuple[int, ...]:
        return tuple(st.num_layers for st in self.stages)

    def bits_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for b in self.bits_per_layer:
            hist[b] = hist.get(b, 0) + 1
        return hist

    def describe(self) -> str:
        parts = []
        for st in self.stages:
            tp = f" tp{st.tp_degree}" if st.tp_degree > 1 else ""
            bits = "/".join(str(b) for b in sorted(set(st.layer_bits)))
            parts.append(
                f"{st.gpu_name}{tp}[{st.layer_start}:{st.layer_end}]@{bits}b"
            )
        return (
            f"{self.model_name}: "
            + " -> ".join(parts)
            + f" (eta={self.prefill_microbatch}, xi={self.decode_microbatch})"
        )


def uniform_plan(
    model_name: str,
    num_layers: int,
    device_groups: Sequence[Tuple[Tuple[int, ...], str]],
    bits: int,
    prefill_microbatch: int,
    decode_microbatch: int,
    bit_kv: int = 16,
) -> ExecutionPlan:
    """Evenly partition ``num_layers`` at a uniform bitwidth.

    ``device_groups`` lists (device_ids, gpu_name) per pipeline stage in
    order.  The first stages receive the remainder layers, as frameworks
    commonly do.
    """
    n_stages = len(device_groups)
    if n_stages == 0:
        raise ValueError("need at least one device group")
    if num_layers < n_stages:
        raise ValueError("fewer layers than stages")
    base = num_layers // n_stages
    rem = num_layers % n_stages
    stages: List[StagePlan] = []
    start = 0
    for j, (dev_ids, gpu_name) in enumerate(device_groups):
        count = base + (1 if j < rem else 0)
        stages.append(
            StagePlan(
                device_ids=tuple(dev_ids),
                gpu_name=gpu_name,
                layer_start=start,
                layer_bits=(bits,) * count,
            )
        )
        start += count
    return ExecutionPlan(
        model_name=model_name,
        stages=tuple(stages),
        prefill_microbatch=prefill_microbatch,
        decode_microbatch=decode_microbatch,
        bit_kv=bit_kv,
    )
