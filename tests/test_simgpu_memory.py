"""Tests for the simulated device-memory allocator."""

import pytest

from repro.simgpu import PAGE_BYTES, DeviceMemory, OutOfMemoryError


@pytest.fixture
def mem():
    return DeviceMemory(name="gpu0", capacity_bytes=100 * PAGE_BYTES)


def test_allocate_and_free(mem):
    mem.allocate("weights", 10 * PAGE_BYTES)
    assert mem.used_bytes == 10 * PAGE_BYTES
    freed = mem.free("weights")
    assert freed == 10 * PAGE_BYTES
    assert mem.used_bytes == 0


def test_page_rounding(mem):
    mem.allocate("x", 1)
    assert mem.used_bytes == PAGE_BYTES


def test_oom_raises_with_details(mem):
    mem.allocate("weights", 90 * PAGE_BYTES)
    with pytest.raises(OutOfMemoryError) as exc:
        mem.allocate("kv", 20 * PAGE_BYTES)
    assert exc.value.device == "gpu0"
    assert exc.value.requested == 20 * PAGE_BYTES
    assert "OOM on gpu0" in str(exc.value)


def test_oom_leaves_state_unchanged(mem):
    mem.allocate("a", 50 * PAGE_BYTES)
    with pytest.raises(OutOfMemoryError):
        mem.allocate("b", 60 * PAGE_BYTES)
    assert mem.used_bytes == 50 * PAGE_BYTES
    assert "b" not in mem.usage()


def test_duplicate_tag_rejected(mem):
    mem.allocate("kv", PAGE_BYTES)
    with pytest.raises(ValueError):
        mem.allocate("kv", PAGE_BYTES)


def test_free_unknown_tag(mem):
    with pytest.raises(KeyError):
        mem.free("nope")


def test_resize_grows_and_shrinks(mem):
    mem.allocate("kv", 10 * PAGE_BYTES)
    mem.resize("kv", 20 * PAGE_BYTES)
    assert mem.used_bytes == 20 * PAGE_BYTES
    mem.resize("kv", 5 * PAGE_BYTES)
    assert mem.used_bytes == 5 * PAGE_BYTES


def test_resize_oom(mem):
    mem.allocate("kv", 10 * PAGE_BYTES)
    mem.allocate("w", 80 * PAGE_BYTES)
    with pytest.raises(OutOfMemoryError):
        mem.resize("kv", 30 * PAGE_BYTES)


def test_resize_unknown_tag(mem):
    with pytest.raises(KeyError):
        mem.resize("nope", PAGE_BYTES)


def test_negative_allocation_rejected(mem):
    with pytest.raises(ValueError):
        mem.allocate("x", -1)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        DeviceMemory(name="bad", capacity_bytes=0)


def test_reset_clears_everything(mem):
    mem.allocate("a", PAGE_BYTES)
    mem.allocate("b", PAGE_BYTES)
    mem.reset()
    assert mem.used_bytes == 0
    assert mem.usage() == {}


def test_available_plus_used_is_capacity(mem):
    mem.allocate("a", 33 * PAGE_BYTES)
    assert mem.available_bytes + mem.used_bytes == mem.capacity_bytes
