"""Fig. 3: phase time decomposition across precisions and devices.

Top panel: end-to-end prefill/decode split for a batch of 8 sequences
generating 32 tokens (OPT-13B at prompt 1024, OPT-30B at prompt 128).
Bottom panel: single-layer execution-time ratios between P100 and V100 at
prompt 512 — the paper's 14.53x (prefill) vs 7.29x (decode) asymmetry.
"""

from __future__ import annotations

from ..hardware.gpus import get_gpu
from ..models.architectures import get_model
from ..simgpu.roofline import layer_time
from .harness import ExperimentResult

CASES = (("opt-13b", 1024), ("opt-30b", 128))
DEVICES = ("V100-32G", "P100-12G")
PRECISIONS = (16, 8, 4)


def _model_phase_times(
    model_name: str, prompt: int, device: str, bits: int, batch: int = 8,
    n_tokens: int = 32,
) -> tuple:
    spec = get_model(model_name)
    gpu = get_gpu(device)
    prefill = spec.num_layers * layer_time(gpu, spec, bits, "prefill", batch, prompt)
    decode = 0.0
    for t in range(1, n_tokens):
        decode += spec.num_layers * layer_time(
            gpu, spec, bits, "decode", batch, prompt + t
        )
    return prefill, decode


def run() -> ExperimentResult:
    rows = []
    for model_name, prompt in CASES:
        for device in DEVICES:
            for bits in PRECISIONS:
                pre, dec = _model_phase_times(model_name, prompt, device, bits)
                total = pre + dec
                rows.append(
                    [
                        model_name,
                        f"s={prompt}",
                        device,
                        bits,
                        pre,
                        dec,
                        100.0 * pre / total,
                    ]
                )

    # Bottom panel: single-layer P100/V100 ratios at s=512, batch 8.
    ratio_rows = []
    summary = {}
    for model_name in ("opt-13b", "opt-30b"):
        spec = get_model(model_name)
        v100, p100 = get_gpu("V100-32G"), get_gpu("P100-12G")
        r_pre = layer_time(p100, spec, 16, "prefill", 8, 512) / layer_time(
            v100, spec, 16, "prefill", 8, 512
        )
        r_dec = layer_time(p100, spec, 16, "decode", 8, 512) / layer_time(
            v100, spec, 16, "decode", 8, 512
        )
        rows.append([model_name, "ratio", "P100/V100", 16, r_pre, r_dec, 0.0])
        summary[f"{model_name}_prefill_ratio"] = r_pre
        summary[f"{model_name}_decode_ratio"] = r_dec

    # Long prompts make prefill substantial (paper: >= 36%).
    pre, dec = _model_phase_times("opt-13b", 1024, "V100-32G", 16)
    summary["opt13b_long_prompt_prefill_share"] = pre / (pre + dec)
    return ExperimentResult(
        name="fig03",
        title="Phase time decomposition with different precisions",
        headers=["model", "setting", "device", "bits", "prefill_s", "decode_s",
                 "prefill_%"],
        rows=rows,
        summary=summary,
        notes=(
            "Paper targets: P100/V100 ~14.5x in prefill vs ~7.3x in decode "
            "(FP16, s=512, v=8); prefill share >= 36% at long prompts."
        ),
    )
