"""Tests for the partition/bitwidth ILP, cross-checked against brute force."""

import pytest

from repro.core import (
    StageGroup,
    brute_force_solve,
    build_problem,
    solve_adabits,
    solve_partition_ilp,
)
from repro.quant import normalized_indicator_table
from repro.workloads import BatchWorkload

BITS = (4, 16)  # tiny bit set keeps brute force tractable


@pytest.fixture(scope="module")
def tiny_problem(opt13b, small_cluster, cost_model_13b):
    """6 groups x 2 stages x 2 bits — exhaustively checkable."""
    ordering = tuple(
        StageGroup(device_ids=(d.device_id,), gpu=d.gpu)
        for d in small_cluster.devices
    )
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=32)
    omega = normalized_indicator_table(opt13b, BITS)
    return build_problem(
        opt13b, small_cluster, ordering, wl, cost_model_13b, omega,
        eta=4, xi=4, bit_choices=BITS, group_size=7,  # ceil(40/7) = 6 groups
    )


def test_ilp_matches_brute_force(tiny_problem):
    ilp = solve_partition_ilp(tiny_problem, theta=10.0, time_limit_s=30.0)
    ref = brute_force_solve(tiny_problem, theta=10.0)
    assert ilp is not None and ref is not None
    obj_ilp = tiny_problem.latency_estimate(
        ilp.assign_stage, ilp.assign_bits
    ) + 10.0 * ilp.quality
    obj_ref = tiny_problem.latency_estimate(
        ref.assign_stage, ref.assign_bits
    ) + 10.0 * ref.quality
    assert obj_ilp <= obj_ref * 1.001


def test_ilp_respects_contiguity(tiny_problem):
    sol = solve_partition_ilp(tiny_problem, theta=10.0)
    stages = list(sol.assign_stage)
    assert stages == sorted(stages)  # non-decreasing = contiguous


def test_every_stage_nonempty(tiny_problem):
    sol = solve_partition_ilp(tiny_problem, theta=10.0)
    assert set(sol.assign_stage) == {0, 1}


def test_memory_feasible(tiny_problem):
    sol = solve_partition_ilp(tiny_problem, theta=10.0)
    assert tiny_problem.memory_ok(sol.assign_stage, sol.assign_bits)


def test_quality_budget_enforced(tiny_problem):
    free = solve_partition_ilp(tiny_problem, theta=0.0)
    budget = free.quality * 0.5
    constrained = solve_partition_ilp(
        tiny_problem, theta=0.0, quality_budget=budget
    )
    if constrained is not None:
        assert constrained.quality <= budget + 1e-9


def test_zero_budget_forces_fp16_or_infeasible(tiny_problem):
    sol = solve_partition_ilp(tiny_problem, theta=0.0, quality_budget=0.0)
    if sol is not None:
        assert set(sol.assign_bits) == {16}


def test_higher_theta_not_worse_quality(tiny_problem):
    lo = solve_partition_ilp(tiny_problem, theta=0.1)
    hi = solve_partition_ilp(tiny_problem, theta=1000.0)
    assert hi.quality <= lo.quality + 1e-9


def test_adabits_maximizes_quality(tiny_problem):
    ada = solve_adabits(tiny_problem)
    assert ada is not None
    # adabits should achieve (near-)minimum achievable indicator sum.
    ref = brute_force_solve(tiny_problem, theta=1e9)  # quality-dominated
    assert ada.quality <= ref.quality * 1.01 + 1e-9


def test_infeasible_returns_none(opt30b, small_cluster, cost_model_13b):
    """A model too large even at min bits must be infeasible."""
    from repro.costmodel.latency import LatencyCostModel
    from repro.simgpu import Profiler
    from repro.hardware import make_cluster

    tiny_cluster = make_cluster("tiny", [("P100-12G", 1)])
    cm = LatencyCostModel(opt30b)
    cm.fit([tiny_cluster.devices[0].gpu], BITS, Profiler(seed=0))
    ordering = (StageGroup(device_ids=(0,), gpu=tiny_cluster.devices[0].gpu),)
    omega = normalized_indicator_table(opt30b, BITS)
    problem = build_problem(
        opt30b, tiny_cluster, ordering,
        BatchWorkload(batch=8, prompt_len=256, output_len=32),
        cm, omega, 4, 4, BITS, group_size=8,
    )
    assert solve_partition_ilp(problem, theta=10.0) is None


def test_solution_records_solve_time(tiny_problem):
    sol = solve_partition_ilp(tiny_problem, theta=10.0)
    assert sol.solve_time_s > 0
    assert sol.status in ("optimal",) or sol.status.startswith("status-")


def test_brute_force_guard():
    class Fake:
        n_groups = 30
        n_stages = 4
        bit_choices = (3, 4, 8, 16)

    with pytest.raises((RuntimeError, AttributeError)):
        brute_force_solve(Fake(), max_states=100)
