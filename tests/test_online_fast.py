"""Differential tests: the epoch-vectorized online fast path vs the
event-driven oracle.

The contract (DESIGN.md, "Online fast path"): ``sim_backend="fast"``
must be *bit-identical* to ``sim_backend="event"`` on every field of
``OnlineSimResult`` — makespan, spans, per-stage busy times, memory
tuple, per-request TTFT/TPOT/latency tuples, the Little's-law area
integral, the admission counters, the processed-event count, and the
energy/cost post-pass.  Every assertion here is ``==`` on raw floats,
mirroring ``test_fastsim`` and ``test_online_sim``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware import make_cluster, table_iii_cluster
from repro.models import get_model
from repro.pipeline import OnlineConfig, simulate_online
from repro.pipeline.online_fast import fast_online_eligibility
from repro.plan import uniform_plan
from repro.simgpu import OutOfMemoryError
from repro.workloads import (
    ArrivalTrace,
    BatchWorkload,
    Request,
    bursty_trace,
    closed_batch_trace,
    diurnal_trace,
    poisson_trace,
)


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


def assert_bit_identical(event, fast):
    """Every compared and provenance-relevant field, exactly equal."""
    assert event.sim_backend == "event"
    assert fast.sim_backend == "fast"
    assert fast.backend_reason is None
    assert event.makespan_s == fast.makespan_s
    assert event.prefill_span_s == fast.prefill_span_s
    assert event.decode_span_s == fast.decode_span_s
    assert event.total_tokens == fast.total_tokens
    assert event.stage_busy_s == fast.stage_busy_s
    assert event.stage_memory_bytes == fast.stage_memory_bytes
    assert event.events_processed == fast.events_processed
    assert event.arrived == fast.arrived
    assert event.admitted == fast.admitted
    assert event.completed == fast.completed
    assert event.rejected_queue == fast.rejected_queue
    assert event.rejected_slo == fast.rejected_slo
    assert event.rejected_oom == fast.rejected_oom
    assert event.unserved == fast.unserved
    assert event.groups_formed == fast.groups_formed
    assert event.ttft_s == fast.ttft_s
    assert event.tpot_s == fast.tpot_s
    assert event.latency_s == fast.latency_s
    assert event.area_request_s == fast.area_request_s
    assert event.ttft_slo_s == fast.ttft_slo_s
    assert event.energy_j == fast.energy_j
    assert event.cost_usd == fast.cost_usd
    assert event == fast  # dataclass equality over the compared fields
    assert event.to_dict()["makespan_s"] == fast.to_dict()["makespan_s"]


def both(plan, cluster, spec, arrivals, config):
    event = simulate_online(plan, cluster, spec, arrivals, config=config,
                            sim_backend="event")
    fast = simulate_online(plan, cluster, spec, arrivals, config=config,
                           sim_backend="fast")
    assert_bit_identical(event, fast)
    return event, fast


# -- degenerate grid: the same seeded grid as test_online_sim ------------

GRID = [
    # (cluster index, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec)
    (5, "opt-13b", 8, 8, 256, 32, 2048, 4, 4),
    (5, "opt-13b", 4, 32, 512, 64, 256, 8, 16),
    (2, "opt-13b", 8, 16, 1024, 16, 512, 2, 8),
    (7, "opt-30b", 4, 64, 512, 128, 1024, 16, 32),
    (9, "opt-13b", 16, 24, 384, 48, 384, 6, 12),  # remainder microbatches
    (10, "opt-30b", 16, 8, 2048, 8, 512, 8, 8),  # kappa = 4
]


@pytest.mark.parametrize(
    "idx,model,bits,batch,prompt,out,chunk,mb_pre,mb_dec", GRID
)
def test_fast_equals_event_degenerate_grid(
    idx, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec
):
    cluster = table_iii_cluster(idx)
    spec = get_model(model)
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), bits, mb_pre, mb_dec
    )
    wl = BatchWorkload(
        batch=batch, prompt_len=prompt, output_len=out, chunk_tokens=chunk
    )
    both(plan, cluster, spec, closed_batch_trace(wl),
         OnlineConfig(chunk_tokens=chunk, admission="none"))


# -- streaming traffic: overlapping groups, every admission knob ---------

_STREAM_CASES = [
    # (trace kind, config kwargs)
    ("poisson", dict(admission="kv")),
    ("poisson", dict(admission="kv", ttft_slo_s=2.0)),
    ("poisson", dict(admission="kv", max_queue=4)),
    ("poisson", dict(admission="kv", max_group_size=3)),
    ("poisson", dict(admission="kv", horizon_s=3.0)),
    ("bursty", dict(admission="kv", ttft_slo_s=1.0, max_queue=8)),
    ("diurnal", dict(admission="kv", max_group_size=2, ttft_slo_s=4.0)),
]


def _stream(kind: str) -> ArrivalTrace:
    if kind == "poisson":
        return poisson_trace(rate_per_s=4.0, duration_s=6.0, seed=11,
                             max_prompt_len=512, max_output_len=24)
    if kind == "bursty":
        return bursty_trace(base_rate_per_s=1.0, burst_rate_per_s=20.0,
                            duration_s=6.0, seed=3, mean_quiet_s=2.0,
                            mean_burst_s=1.0, max_prompt_len=384,
                            max_output_len=16)
    return diurnal_trace(mean_rate_per_s=3.0, duration_s=6.0, seed=7,
                         amplitude=0.8, period_s=6.0,
                         max_prompt_len=512, max_output_len=24)


@pytest.mark.parametrize("kind,cfg_kwargs", _STREAM_CASES)
def test_fast_equals_event_streaming(kind, cfg_kwargs):
    cluster = make_cluster("fast-2dev", [("T4-16G", 1), ("V100-32G", 1)])
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), 4, 4, 4
    )
    trace = _stream(kind)
    event, fast = both(
        plan, cluster, spec, trace,
        OnlineConfig(chunk_tokens=512, **cfg_kwargs),
    )
    # The streaming cases must actually exercise continuous batching.
    assert event.groups_formed > 1


def test_fast_equals_event_overload_shedding():
    """Heavy overload: KV head-of-line blocking, SLO shedding, and
    queue-cap rejections all firing mid-stream."""
    cluster = make_cluster("fast-2dev", [("T4-16G", 1), ("V100-32G", 1)])
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), 4, 4, 4
    )
    trace = poisson_trace(rate_per_s=40.0, duration_s=4.0, seed=5,
                          max_prompt_len=1024, max_output_len=32)
    event, fast = both(
        plan, cluster, spec, trace,
        OnlineConfig(chunk_tokens=1024, admission="kv",
                     ttft_slo_s=1.5, max_queue=16),
    )
    assert event.rejected > 0  # shedding genuinely happened
    assert event.completed > 0


def test_fast_equals_event_kv_pressure_and_oom_rejection():
    """Per-request OOM rejection and head-of-line KV blocking."""
    cluster = make_cluster("fast-small", [("T4-16G", 1), ("V100-32G", 1)])
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), 4, 4, 4
    )
    reqs = tuple(
        Request(req_id=i, arrival_s=0.0, prompt_len=8192, output_len=64)
        for i in range(10)
    ) + (
        Request(req_id=10, arrival_s=0.5, prompt_len=2_000_000,
                output_len=8),
    )
    event, fast = both(
        plan, cluster, spec, ArrivalTrace(requests=reqs, source="test"),
        OnlineConfig(chunk_tokens=2048, admission="kv"),
    )
    assert event.rejected_oom == 1
    assert event.groups_formed > 1  # KV blocking split the burst


def test_fast_equals_event_ragged_retirement_tail():
    """Every request a different output length: retirement every round,
    plus single-token requests completing at the prefill barrier."""
    cluster = table_iii_cluster(5)
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), 8, 4, 4
    )
    reqs = tuple(
        Request(req_id=i, arrival_s=0.0, prompt_len=128 + 64 * i,
                output_len=1 + i)
        for i in range(12)
    )
    event, fast = both(
        plan, cluster, spec, ArrivalTrace(requests=reqs, source="test"),
        OnlineConfig(chunk_tokens=512, admission="none"),
    )
    assert event.completed == 12


def test_fast_equals_event_single_stage_pipeline():
    """J=1 degenerates the cascade to one server; still exact."""
    cluster = make_cluster("fast-1dev", [("A100-40G", 1)])
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), 4, 2, 2
    )
    trace = poisson_trace(rate_per_s=2.0, duration_s=4.0, seed=2,
                          max_prompt_len=256, max_output_len=12)
    both(plan, cluster, spec, trace,
         OnlineConfig(chunk_tokens=256, admission="kv"))


def test_fast_oom_parity(small_cluster, opt30b, small_workload):
    """Both backends pre-check memory identically (shared context)."""
    plan = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    for backend in ("event", "fast"):
        with pytest.raises(OutOfMemoryError):
            simulate_online(
                plan, small_cluster, opt30b,
                closed_batch_trace(small_workload),
                config=OnlineConfig(admission="none"),
                sim_backend=backend,
            )


def test_dispatch_validation_and_eligibility():
    cluster = make_cluster("fast-2dev", [("T4-16G", 1), ("V100-32G", 1)])
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), 4, 4, 4
    )
    wl = BatchWorkload(batch=2, prompt_len=128, output_len=4,
                       chunk_tokens=512)
    trace = closed_batch_trace(wl)
    cfg = OnlineConfig(chunk_tokens=512, admission="kv")
    with pytest.raises(ValueError):
        simulate_online(plan, cluster, spec, trace, config=cfg,
                        sim_backend="bogus")
    # Every online run is eligible; auto therefore runs fast with no
    # fallback reason recorded.
    assert fast_online_eligibility(plan, trace, cfg) is None
    auto = simulate_online(plan, cluster, spec, trace, config=cfg)
    assert auto.sim_backend == "fast"
    assert auto.backend_reason is None


def test_fast_backend_determinism():
    cluster = make_cluster("fast-2dev", [("T4-16G", 1), ("V100-32G", 1)])
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), 4, 4, 4
    )
    trace = poisson_trace(rate_per_s=6.0, duration_s=5.0, seed=9,
                          max_prompt_len=512, max_output_len=16)
    cfg = OnlineConfig(chunk_tokens=512, admission="kv", ttft_slo_s=10.0)
    a = simulate_online(plan, cluster, spec, trace, config=cfg,
                        sim_backend="fast")
    b = simulate_online(plan, cluster, spec, trace, config=cfg,
                        sim_backend="fast")
    assert a == b
    assert a.to_dict() == b.to_dict()


# -- Hypothesis: fast == event over randomized traces and configs --------

_CLUSTER = make_cluster("fast-prop", [("T4-16G", 1), ("V100-32G", 1)])
_SPEC = get_model("opt-13b")
_PLAN = uniform_plan(
    _SPEC.name,
    _SPEC.num_layers,
    [((d.device_id,), d.gpu.name) for d in _CLUSTER.devices],
    4, 4, 4,
)


@st.composite
def traces(draw, max_requests=10):
    n = draw(st.integers(min_value=1, max_value=max_requests))
    reqs = []
    for i in range(n):
        t = draw(st.floats(min_value=0.0, max_value=5.0,
                           allow_nan=False, allow_infinity=False))
        reqs.append(
            Request(
                req_id=i,
                arrival_s=t,
                prompt_len=draw(st.integers(min_value=16, max_value=512)),
                output_len=draw(st.integers(min_value=1, max_value=24)),
            )
        )
    reqs.sort(key=lambda r: r.arrival_s)
    reqs = tuple(
        Request(req_id=i, arrival_s=r.arrival_s,
                prompt_len=r.prompt_len, output_len=r.output_len)
        for i, r in enumerate(reqs)
    )
    return ArrivalTrace(requests=reqs, source="hypothesis")


_configs = st.builds(
    OnlineConfig,
    chunk_tokens=st.sampled_from([256, 512, 2048]),
    admission=st.just("kv"),
    max_group_size=st.one_of(st.none(), st.integers(1, 4)),
    max_queue=st.one_of(st.none(), st.integers(1, 6)),
    ttft_slo_s=st.one_of(st.none(), st.floats(0.01, 10.0)),
    horizon_s=st.one_of(st.none(), st.floats(0.0, 4.0)),
)


@given(trace=traces(), config=_configs)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_fast_equals_event(trace, config):
    both(_PLAN, _CLUSTER, _SPEC, trace, config)


@given(trace=traces())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_fast_work_conservation_and_littles_law(trace):
    """The shared invariants hold on the fast backend standalone."""
    res = simulate_online(
        _PLAN, _CLUSTER, _SPEC, trace,
        config=OnlineConfig(chunk_tokens=512, admission="kv"),
        sim_backend="fast",
    )
    assert res.arrived == trace.n_requests
    assert res.arrived == res.completed + res.rejected + res.unserved
    assert res.completed == trace.n_requests
    assert math.isclose(res.area_request_s, sum(res.latency_s),
                        rel_tol=1e-9, abs_tol=1e-12)
