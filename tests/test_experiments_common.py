"""Tests for the experiment helpers (common.py)."""


from repro.experiments.common import (
    BITS,
    cost_model_for,
    feasible_batch,
    microbatch_grid,
    throughput_of,
)
from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.plan import uniform_plan


def test_bits_constant():
    assert BITS == (3, 4, 8, 16)


def test_cost_model_cached_per_model_and_gpus(opt13b, small_cluster):
    a = cost_model_for(opt13b, small_cluster)
    b = cost_model_for(opt13b, small_cluster)
    assert a is b


def test_cost_model_distinct_per_model(opt13b, opt30b, small_cluster):
    a = cost_model_for(opt13b, small_cluster)
    b = cost_model_for(opt30b, small_cluster)
    assert a is not b


def test_feasible_batch_power_of_two():
    cluster = table_iii_cluster(9)
    spec = get_model("qwen2.5-14b")
    b = feasible_batch(spec, cluster, 1024, 128)
    assert b & (b - 1) == 0  # power of two
    assert 1 <= b <= 256


def test_feasible_batch_monotone_in_context():
    cluster = table_iii_cluster(9)
    spec = get_model("qwen2.5-14b")
    assert feasible_batch(spec, cluster, 512, 64) >= feasible_batch(
        spec, cluster, 8192, 64
    )


def test_feasible_batch_respects_cap():
    cluster = table_iii_cluster(10)
    spec = get_model("qwen2.5-7b")
    assert feasible_batch(spec, cluster, 128, 16, max_batch=32) <= 32


def test_throughput_of_none_is_zero(small_cluster, opt13b, small_workload):
    assert throughput_of(None, small_cluster, opt13b, small_workload) == 0.0


def test_throughput_of_oom_is_zero(small_cluster, opt30b, small_workload):
    groups = [((d.device_id,), d.gpu.name) for d in small_cluster.devices]
    plan = uniform_plan(opt30b.name, opt30b.num_layers, groups, 16, 4, 4)
    assert throughput_of(plan, small_cluster, opt30b, small_workload) == 0.0


def test_throughput_of_valid_plan(small_cluster, opt13b, small_workload):
    groups = [((d.device_id,), d.gpu.name) for d in small_cluster.devices]
    plan = uniform_plan(opt13b.name, opt13b.num_layers, groups, 8, 4, 4)
    assert throughput_of(plan, small_cluster, opt13b, small_workload) > 0


def test_microbatch_grid_contains_full_batch():
    grid = microbatch_grid(64)
    assert 64 in grid and 32 in grid and 16 in grid
    assert microbatch_grid(1) == (1,)
