"""Tests for the model architecture registry."""

import pytest

from repro.models import MODEL_REGISTRY, get_model, list_models


def test_all_paper_models_present():
    for name in (
        "opt-1.3b", "opt-13b", "opt-30b", "opt-66b", "opt-175b",
        "bloom-560m", "bloom-1b7", "bloom-3b",
        "qwen2.5-7b", "qwen2.5-14b", "qwen2.5-32b", "llama-3.3-70b",
    ):
        assert name in MODEL_REGISTRY


def test_aliases():
    assert get_model("7B-Instruct").name == "qwen2.5-7b"
    assert get_model("70b-instruct").name == "llama-3.3-70b"


def test_unknown_model_raises():
    with pytest.raises(KeyError, match="unknown model"):
        get_model("gpt-5")


@pytest.mark.parametrize(
    "name,params_b,tol",
    [
        ("opt-125m", 0.125, 0.15),
        ("opt-1.3b", 1.3, 0.1),
        ("opt-13b", 13.0, 0.05),
        ("opt-30b", 30.0, 0.05),
        ("opt-66b", 66.0, 0.05),
        ("opt-175b", 175.0, 0.05),
        ("bloom-3b", 3.0, 0.15),
        ("qwen2.5-7b", 7.6, 0.1),
        ("qwen2.5-14b", 14.7, 0.1),
        ("qwen2.5-32b", 32.5, 0.1),
        ("llama-3.3-70b", 70.0, 0.05),
    ],
)
def test_parameter_counts_match_published_sizes(name, params_b, tol):
    spec = get_model(name)
    got = spec.total_params / 1e9
    assert abs(got - params_b) / params_b < tol, f"{name}: {got:.2f}B"


def test_opt_decoder_weight_formula():
    """OPT layers match the paper's 4*h1^2 + 2*h1*h2 formula."""
    spec = get_model("opt-30b")
    expected = 4 * spec.hidden**2 + 2 * spec.hidden * spec.ffn
    assert spec.decoder_linear_elements == expected


def test_gqa_reduces_kv_dim():
    q = get_model("qwen2.5-7b")
    assert q.kv_dim < q.hidden
    assert q.kv_dim == q.num_kv_heads * q.head_dim
    o = get_model("opt-13b")
    assert o.kv_dim == o.hidden


def test_gated_mlp_has_three_mlp_matrices():
    q = get_model("qwen2.5-7b")
    assert len(q.linear_shapes) == 7  # q,k,v,o + gate,up,down
    o = get_model("opt-13b")
    assert len(o.linear_shapes) == 6


def test_opt_350m_embed_projection():
    """The d_t != h1 case of the paper's memory model."""
    spec = get_model("opt-350m")
    assert spec.embed_dim == 512 != spec.hidden
    # projections add 2 * h1 * d_t parameters
    base = spec.vocab_size * spec.embed_dim
    pos = spec.max_position_embeddings * spec.embed_dim
    proj = 2 * spec.hidden * spec.embed_dim
    assert spec.embedding_elements == base + pos + proj


def test_tied_lm_head_has_zero_extra_storage():
    assert get_model("opt-13b").lm_head_elements == 0
    assert get_model("qwen2.5-7b").lm_head_elements > 0


def test_bloom_has_no_position_table():
    spec = get_model("bloom-3b")  # ALiBi
    assert spec.embedding_elements == spec.vocab_size * spec.embed_dim


def test_invalid_head_config_rejected():
    from repro.models.architectures import ModelSpec

    with pytest.raises(ValueError):
        ModelSpec(
            name="bad", num_layers=2, hidden=10, ffn=40, num_heads=3,
            num_kv_heads=3, vocab_size=100, max_position_embeddings=128,
            embed_dim=10, learned_pos_embeddings=True, gated_mlp=False,
            tie_word_embeddings=True,
        )


def test_list_models_sorted():
    names = list_models()
    assert names == tuple(sorted(names))


def test_describe_contains_key_shapes():
    d = get_model("opt-30b").describe()
    assert "L=48" in d and "h1=7168" in d
