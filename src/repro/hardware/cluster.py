"""Cluster topology: devices, nodes, and the Table III evaluation clusters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .gpus import GPUSpec, get_gpu
from .interconnect import LinkSpec, get_link, intra_node_link


@dataclass(frozen=True)
class Device:
    """One physical GPU placed on a node."""

    device_id: int
    gpu: GPUSpec
    node_id: int

    @property
    def name(self) -> str:
        return f"{self.gpu.name}#{self.device_id}"


@dataclass(frozen=True)
class ClusterSpec:
    """A set of GPUs grouped into nodes joined by a cross-node link.

    GPUs of the same type live on the same node (as in the paper's testbed),
    but the class supports arbitrary placements.
    """

    name: str
    devices: Tuple[Device, ...]
    cross_node_link: LinkSpec

    def __post_init__(self):
        if not self.devices:
            raise ValueError("cluster must contain at least one device")
        ids = [d.device_id for d in self.devices]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate device ids in cluster")

    def __hash__(self):
        # Clusters appear in every simulator memo key; hashing the whole
        # device tuple per lookup dominates cache cost on large fleets,
        # so the (immutable) field hash is computed once and pinned.
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            h = hash((self.name, self.devices, self.cross_node_link))
            object.__setattr__(self, "_hash_cache", h)
            return h

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_nodes(self) -> int:
        return len({d.node_id for d in self.devices})

    @property
    def is_homogeneous(self) -> bool:
        return len({d.gpu.name for d in self.devices}) == 1

    def node_devices(self, node_id: int) -> Tuple[Device, ...]:
        """Devices co-located on ``node_id``."""
        return tuple(d for d in self.devices if d.node_id == node_id)

    def nodes(self) -> Dict[int, Tuple[Device, ...]]:
        """Mapping of node id to the devices placed on it."""
        out: Dict[int, List[Device]] = {}
        for d in self.devices:
            out.setdefault(d.node_id, []).append(d)
        return {k: tuple(v) for k, v in sorted(out.items())}

    def link_between(self, a: Device, b: Device) -> LinkSpec:
        """The link pipeline traffic between two devices traverses."""
        if a.device_id == b.device_id:
            raise ValueError("no link from a device to itself")
        if a.node_id == b.node_id:
            return intra_node_link(a.gpu.name)
        return self.cross_node_link

    def total_memory_bytes(self) -> int:
        return sum(d.gpu.mem_bytes for d in self.devices)

    def usable_memory_bytes(self) -> int:
        return sum(d.gpu.usable_mem_bytes for d in self.devices)

    def gpu_counts(self) -> Dict[str, int]:
        """Histogram of GPU model names in this cluster."""
        out: Dict[str, int] = {}
        for d in self.devices:
            out[d.gpu.name] = out.get(d.gpu.name, 0) + 1
        return out

    def describe(self) -> str:
        parts = [f"{n}x{g}" for g, n in sorted(self.gpu_counts().items())]
        return f"{self.name}: " + " + ".join(parts)


def make_cluster(
    name: str,
    groups: Sequence[Tuple[str, int]],
    cross_node_link: str = "eth-800g",
) -> ClusterSpec:
    """Build a cluster from ``(gpu_name, count)`` groups.

    Each group lands on its own node, mirroring the paper's testbed where
    GPUs of the same type share a node.
    """
    devices: List[Device] = []
    dev_id = 0
    for node_id, (gpu_name, count) in enumerate(groups):
        if count <= 0:
            raise ValueError(f"group {gpu_name!r} must have positive count")
        spec = get_gpu(gpu_name)
        for _ in range(count):
            devices.append(Device(device_id=dev_id, gpu=spec, node_id=node_id))
            dev_id += 1
    return ClusterSpec(
        name=name, devices=tuple(devices), cross_node_link=get_link(cross_node_link)
    )


def table_iii_cluster(index: int) -> ClusterSpec:
    """One of the ten evaluation clusters of Table III.

    Clusters 1, 8, 9, 10 are single-node; clusters 6 and 8 use 100 Gbps
    Ethernet and the rest 800 Gbps (Sec. VI-A).
    """
    defs: Dict[int, Tuple[List[Tuple[str, int]], str]] = {
        1: ([("V100-32G", 1)], "eth-800g"),
        2: ([("V100-32G", 2), ("A100-40G", 1)], "eth-800g"),
        3: ([("V100-32G", 1), ("A100-40G", 1)], "eth-800g"),
        4: ([("V100-32G", 3), ("A100-40G", 1)], "eth-800g"),
        5: ([("T4-16G", 3), ("V100-32G", 1)], "eth-800g"),
        6: ([("P100-12G", 3), ("V100-32G", 1)], "eth-100g"),
        7: ([("T4-16G", 4), ("V100-32G", 2)], "eth-800g"),
        8: ([("T4-16G", 4)], "eth-100g"),
        9: ([("V100-32G", 4)], "eth-800g"),
        10: ([("A100-40G", 4)], "eth-800g"),
    }
    try:
        groups, link = defs[index]
    except KeyError:
        raise KeyError(f"Table III defines clusters 1..10, got {index}") from None
    return make_cluster(f"cluster-{index}", groups, cross_node_link=link)


def all_table_iii_clusters() -> Dict[int, ClusterSpec]:
    """All ten Table III clusters keyed by index."""
    return {i: table_iii_cluster(i) for i in range(1, 11)}
