"""Simulated GPU testbed: roofline kernels, device memory, profiling."""

from .memory import PAGE_BYTES, DeviceMemory, OutOfMemoryError
from .profiler import LATENCY_NOISE_SIGMA, LatencySample, Profiler
from .roofline import (
    KERNELS_PER_LAYER,
    effective_bandwidth,
    embedding_time,
    layer_time,
    lm_head_time,
    tp_layer_time,
)

__all__ = [
    "PAGE_BYTES",
    "DeviceMemory",
    "OutOfMemoryError",
    "LATENCY_NOISE_SIGMA",
    "LatencySample",
    "Profiler",
    "KERNELS_PER_LAYER",
    "effective_bandwidth",
    "embedding_time",
    "layer_time",
    "lm_head_time",
    "tp_layer_time",
]
