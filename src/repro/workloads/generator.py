"""Batch synthesis for offline serving (Sec. VI-A workload setup).

Sampled requests are filtered against the model's
``max_position_embeddings``, grouped into batches of the configured size,
and padded to a uniform prompt length per batch (the paper's dynamic
chunking assumption), yielding the :class:`BatchWorkload` the planner and
simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..models.architectures import ModelSpec
from .distributions import LengthSample, sample_dataset
from .spec import BatchWorkload


@dataclass(frozen=True)
class WorkloadConfig:
    """Inference-engine workload hyperparameters (Sec. VI-A)."""

    dataset: str = "cnn_dailymail"
    batch_size: int = 256
    chunk_tokens: int = 2048
    #: Pad each batch's prompts up to this percentile of in-batch lengths.
    pad_percentile: float = 95.0
    seed: int = 0


def filter_by_context(
    sample: LengthSample, spec: ModelSpec
) -> LengthSample:
    """Drop requests whose prompt+output exceeds the model's context."""
    total = sample.prompt_lens + sample.output_lens
    keep = total <= spec.max_position_embeddings
    return LengthSample(
        prompt_lens=sample.prompt_lens[keep], output_lens=sample.output_lens[keep]
    )


def synthesize_batches(
    spec: ModelSpec,
    config: WorkloadConfig,
    n_requests: int = 1024,
) -> List[BatchWorkload]:
    """Sample, filter, group and pad requests into uniform batches."""
    sample = sample_dataset(config.dataset, n_requests, config.seed)
    sample = filter_by_context(sample, spec)
    if sample.n == 0:
        raise ValueError(
            f"no {config.dataset} request fits {spec.name}'s context window"
        )
    batches: List[BatchWorkload] = []
    for start in range(0, sample.n, config.batch_size):
        p = sample.prompt_lens[start : start + config.batch_size]
        o = sample.output_lens[start : start + config.batch_size]
        if p.size == 0:
            break
        pad_len = int(np.percentile(p, config.pad_percentile))
        pad_len = max(pad_len, 16)
        out_len = max(int(np.rint(o.mean())), 1)
        batches.append(
            BatchWorkload(
                batch=int(p.size),
                prompt_len=pad_len,
                output_len=out_len,
                chunk_tokens=config.chunk_tokens,
            )
        )
    return batches


def representative_workload(
    spec: ModelSpec, config: WorkloadConfig, n_requests: int = 1024
) -> BatchWorkload:
    """The single batch profile the assigner plans against.

    Offline workloads are predictable (Sec. II-C); planning uses the
    median-shaped batch of the synthesized set.
    """
    batches = synthesize_batches(spec, config, n_requests)
    prompts = sorted(b.prompt_len for b in batches)
    outputs = sorted(b.output_len for b in batches)
    mid = len(batches) // 2
    # When context filtering leaves fewer requests than one full batch,
    # plan for the largest batch that actually exists — not the phantom
    # configured size.
    batch = min(config.batch_size, max(b.batch for b in batches))
    return BatchWorkload(
        batch=batch,
        prompt_len=prompts[mid],
        output_len=outputs[mid],
        chunk_tokens=config.chunk_tokens,
    )
