"""Tests for the persistent content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    MISS,
    ResultCache,
    cache_key,
    canonical_json,
    code_version_salt,
    default_cache,
)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "store")


def test_round_trip(cache):
    key = cache_key({"x": 1})
    assert cache.get("ns", key) is MISS
    cache.put("ns", key, {"answer": [1, 2.5, "three", None]})
    assert cache.get("ns", key) == {"answer": [1, 2.5, "three", None]}
    assert cache.hits == 1 and cache.misses == 1
    assert cache.entries("ns") == 1


def test_cached_none_distinct_from_miss(cache):
    key = cache_key("infeasible-case")
    cache.put("ns", key, None)
    assert cache.get("ns", key) is None  # a hit, not MISS


def test_canonical_json_deterministic():
    a = canonical_json({"b": 2, "a": [1.5, True]})
    b = canonical_json({"a": [1.5, True], "b": 2})
    assert a == b
    assert cache_key({"b": 2, "a": [1.5, True]}) == cache_key(
        {"a": [1.5, True], "b": 2}
    )


def test_float_keys_exact():
    """Distinct floats never collide; equal floats always agree."""
    assert cache_key(0.1 + 0.2) != cache_key(0.3)
    assert cache_key(1e300) == cache_key(1e300)


def test_corrupt_entry_evicted(cache):
    key = cache_key("will-corrupt")
    cache.put("ns", key, {"v": 1})
    path = cache._path("ns", key)
    path.write_text('{"key": "abc", "value": {"v"')  # torn write
    assert cache.get("ns", key) is MISS
    assert cache.evictions == 1
    assert not path.exists()
    # recompute-and-overwrite works after eviction
    cache.put("ns", key, {"v": 2})
    assert cache.get("ns", key) == {"v": 2}


def test_entry_is_self_describing(cache):
    key = cache_key({"probe": 1})
    cache.put("ns", key, 42)
    entry = json.loads(cache._path("ns", key).read_text())
    assert entry["key"] == key
    assert entry["value"] == 42


def test_non_hex_key_rejected(cache):
    with pytest.raises(ValueError, match="hex digest"):
        cache.get("ns", "../../etc/passwd")


def test_clear(cache):
    for i in range(3):
        cache.put("a", cache_key(i), i)
    cache.put("b", cache_key("x"), "x")
    assert cache.clear("a") == 3
    assert cache.entries("a") == 0 and cache.entries("b") == 1
    assert cache.clear() == 1


def test_salt_invalidation(cache, monkeypatch):
    """Changing the code-version salt changes every embedding key."""
    monkeypatch.setenv("SPLITQUANT_CACHE_SALT", "v1")
    k1 = cache_key({"salt": code_version_salt(), "payload": "p"})
    cache.put("ns", k1, "old")
    monkeypatch.setenv("SPLITQUANT_CACHE_SALT", "v2")
    k2 = cache_key({"salt": code_version_salt(), "payload": "p"})
    assert k1 != k2
    assert cache.get("ns", k2) is MISS  # stale entry silently skipped


def test_default_cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("SPLITQUANT_CACHE_DIR", str(tmp_path / "c"))
    c = default_cache()
    assert c is not None and str(c.root) == str(tmp_path / "c")
    monkeypatch.setenv("SPLITQUANT_CACHE", "0")
    assert default_cache() is None
    monkeypatch.delenv("SPLITQUANT_CACHE")
    assert default_cache() is not None


# -- consumers -----------------------------------------------------------

def test_profiler_grid_warm_bit_identity(tmp_path, monkeypatch):
    """A warm profile_grid returns identical samples AND leaves the RNG
    stream exactly where a recompute would have."""
    monkeypatch.setenv("SPLITQUANT_CACHE_DIR", str(tmp_path))
    from repro.hardware import get_gpu
    from repro.models import get_model
    from repro.simgpu import Profiler

    gpu, spec = get_gpu("V100"), get_model("opt-13b")
    p_cold = Profiler(seed=5)
    cold = p_cold.profile_grid(gpu, spec, 4, "decode", (1, 4), (64, 256))
    after_cold = p_cold.measure_layer(gpu, spec, 4, "decode", 2, 128)

    p_warm = Profiler(seed=5)
    warm = p_warm.profile_grid(gpu, spec, 4, "decode", (1, 4), (64, 256))
    after_warm = p_warm.measure_layer(gpu, spec, 4, "decode", 2, 128)

    assert cold == warm
    assert after_cold == after_warm  # RNG stream position preserved


def test_cost_model_warm_bit_identity(tmp_path, monkeypatch):
    monkeypatch.setenv("SPLITQUANT_CACHE_DIR", str(tmp_path))
    from repro.experiments.common import _cost_model_cached
    from repro.hardware import get_gpu

    _cost_model_cached.cache_clear()
    cm_cold = _cost_model_cached("opt-13b", ("T4-16G", "V100-32G"))
    _cost_model_cached.cache_clear()
    cm_warm = _cost_model_cached("opt-13b", ("T4-16G", "V100-32G"))
    _cost_model_cached.cache_clear()

    gpu = get_gpu("T4")
    assert cm_cold.fitted_keys() == cm_warm.fitted_keys()
    for bits in (3, 4, 8, 16):
        for b, s in ((1, 64), (19, 777), (256, 2048)):
            assert cm_cold.prefill_time(gpu, bits, b, s) == \
                cm_warm.prefill_time(gpu, bits, b, s)
            assert cm_cold.decode_time(gpu, bits, b, s) == \
                cm_warm.decode_time(gpu, bits, b, s)


def test_cost_model_state_dict_round_trip(cost_model_13b, opt13b, t4):
    from repro.costmodel.latency import LatencyCostModel

    state = cost_model_13b.state_dict()
    restored = LatencyCostModel.from_state_dict(opt13b, state)
    # JSON round-trip in between (what the cache actually does).
    rejson = LatencyCostModel.from_state_dict(
        opt13b, json.loads(json.dumps(state))
    )
    for cm in (restored, rejson):
        assert cm.fitted_keys() == cost_model_13b.fitted_keys()
        assert cm.prefill_time(t4, 4, 8, 512) == \
            cost_model_13b.prefill_time(t4, 4, 8, 512)
        assert cm.decode_time(t4, 8, 16, 1024) == \
            cost_model_13b.decode_time(t4, 8, 16, 1024)


def test_state_dict_wrong_model_rejected(cost_model_13b, opt30b):
    from repro.costmodel.latency import LatencyCostModel

    with pytest.raises(ValueError, match="fitted for"):
        LatencyCostModel.from_state_dict(opt30b, cost_model_13b.state_dict())


def test_planner_pool_persistent_across_pools(tmp_path, monkeypatch):
    monkeypatch.setenv("SPLITQUANT_CACHE_DIR", str(tmp_path))
    from repro.core import PlannerConfig
    from repro.fleet.allocator import GroupSpec, PlannerPool
    from repro.fleet.jobs import FleetJob
    from repro.workloads import BatchWorkload

    inv = {"T4-16G": 2, "V100-32G": 1}
    cfg = PlannerConfig(time_limit_s=10.0, max_orderings=2, verify_top_k=1)
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=16)
    job = FleetJob(job_id="j", model="opt-13b", workload=wl)
    grp = GroupSpec(counts=(("T4-16G", 1), ("V100-32G", 1)))

    cold_pool = PlannerPool(inv, cfg)
    cold = cold_pool.evaluate(job, grp)
    assert cold_pool.evaluations == 1 and cold_pool.cache_hits == 0

    warm_pool = PlannerPool(inv, cfg)  # fresh memo, warm disk
    warm = warm_pool.evaluate(job, grp)
    assert warm_pool.evaluations == 0 and warm_pool.cache_hits == 1
    assert warm.result.plan == cold.result.plan
    # Allocator decisions key off these exact floats.
    assert warm.result.predicted_latency_s == cold.result.predicted_latency_s
    assert warm.result.throughput_tokens_s == cold.result.throughput_tokens_s
    assert warm.result.predicted_quality == cold.result.predicted_quality
