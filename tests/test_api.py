"""Tests for the ``repro.api`` Session façade and the Summary protocol."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    BatchWorkload,
    PlannerConfig,
    Session,
    Summary,
    Tracer,
    get_model,
)
from repro.hardware import make_cluster, table_iii_cluster
from repro.obs import current_tracer, parse_trace
from repro.pipeline import DegradedSimResult, PipelineSimResult
from repro.plan import ExecutionPlan, InfeasibleError, StagePlan, uniform_plan
from repro.runtime import FaultPlan


FAST = PlannerConfig(
    group_size=8,
    max_orderings=2,
    microbatch_candidates=(8,),
    verify_top_k=1,
    use_heuristic=True,
)
WL = BatchWorkload(batch=8, prompt_len=64, output_len=16)


@pytest.fixture(scope="module")
def planned_session():
    sess = Session("opt-13b", cluster=1, config=FAST)
    result = sess.plan(WL)
    assert result is not None
    return sess, result


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_model_by_name_or_spec(self):
        by_name = Session("opt-13b", cluster=1)
        by_spec = Session(get_model("opt-13b"), cluster=1)
        assert by_name.spec.name == by_spec.spec.name == "opt-13b"

    def test_cluster_by_index_or_spec(self):
        by_idx = Session("opt-13b", cluster=1)
        by_spec = Session("opt-13b", cluster=table_iii_cluster(1))
        assert by_idx.cluster.describe() == by_spec.cluster.describe()

    def test_trace_path_creates_tracer(self, tmp_path):
        sess = Session(
            "opt-13b", cluster=1, trace_path=str(tmp_path / "t.jsonl")
        )
        assert isinstance(sess.tracer, Tracer)
        assert sess.tracer.enabled

    def test_no_tracer_by_default(self):
        assert Session("opt-13b", cluster=1).tracer is None


# ---------------------------------------------------------------------------
# plan / simulate / serve
# ---------------------------------------------------------------------------


class TestPhases:
    def test_plan_returns_summary(self, planned_session):
        _, result = planned_session
        assert isinstance(result, Summary)
        assert result.throughput_tokens_s > 0
        assert result.duration_s >= 0
        json.dumps(result.to_dict())

    def test_simulate_remembers_last_plan(self, planned_session):
        sess, result = planned_session
        sim = sess.simulate()
        assert isinstance(sim, PipelineSimResult)
        assert isinstance(sim, Summary)
        assert sim.throughput_tokens_s > 0

    def test_simulate_accepts_planner_result_or_plan(self, planned_session):
        sess, result = planned_session
        a = sess.simulate(plan=result)
        b = sess.simulate(plan=result.plan)
        assert a.makespan_s == b.makespan_s

    def test_simulate_with_fault_plan_degrades(self):
        spec = get_model("opt-13b")
        cluster = make_cluster(
            "api-2dev", [("A100-40G", 1), ("V100-32G", 1)]
        )
        plan = uniform_plan(
            model_name=spec.name,
            num_layers=spec.num_layers,
            device_groups=[((0,), "A100-40G"), ((1,), "V100-32G")],
            bits=4,
            prefill_microbatch=8,
            decode_microbatch=8,
        )
        sess = Session(spec, cluster)
        wl = BatchWorkload(batch=16, prompt_len=128, output_len=16)
        deg = sess.simulate(
            plan=plan,
            workload=wl,
            fault_plan=FaultPlan.single_kill(stage=1, step=4),
            check_memory=False,
        )
        assert isinstance(deg, DegradedSimResult)
        assert isinstance(deg, Summary)
        assert deg.replans == 1

    def test_simulate_without_plan_raises(self):
        sess = Session("opt-13b", cluster=1)
        with pytest.raises(InfeasibleError):
            sess.simulate(workload=WL)

    def test_simulate_without_workload_raises(self, planned_session):
        sess, result = planned_session
        fresh = Session("opt-13b", cluster=1)
        with pytest.raises(ValueError, match="no workload"):
            fresh.simulate(plan=result.plan)

    def test_bad_plan_type_raises(self):
        sess = Session("opt-13b", cluster=1)
        with pytest.raises(TypeError, match="ExecutionPlan"):
            sess.simulate(plan=42, workload=WL)

    def test_serve_runs_proxy(self, planned_session):
        sess, result = planned_session
        gen = sess.serve()
        assert isinstance(gen, Summary)
        assert gen.tokens.shape[0] == min(WL.batch, 8)
        assert gen.generated_tokens == min(WL.output_len, 8)
        assert gen.throughput_tokens_s > 0

    def test_serve_through_fault(self):
        plan = ExecutionPlan(
            model_name="tiny",
            stages=(
                StagePlan((0, 1, 2), "V100-32G", 0, (8, 8, 8)),
                StagePlan((3, 4, 5), "T4-16G", 3, (4, 4, 8)),
            ),
            prefill_microbatch=2,
            decode_microbatch=2,
        )
        sess = Session("opt-13b", cluster=1)
        gen = sess.serve(
            workload=BatchWorkload(batch=4, prompt_len=8, output_len=6),
            plan=plan,
            fault_plan=FaultPlan.single_kill(stage=1, step=3),
        )
        assert gen.replans == 1
        assert len(gen.fault_events) == 1

    def test_serve_rejects_overlong_prompts(self, planned_session):
        sess, _ = planned_session
        with pytest.raises(ValueError, match="max_seq"):
            sess.serve(
                prompts=np.zeros((2, 100), dtype=np.int64), n_tokens=8
            )


# ---------------------------------------------------------------------------
# Tracer threading
# ---------------------------------------------------------------------------


class TestTracing:
    def test_one_tracer_covers_all_phases(self, tmp_path):
        path = tmp_path / "session.jsonl"
        with Session(
            "opt-13b", cluster=1, config=FAST, trace_path=str(path)
        ) as sess:
            sess.plan(WL)
            sess.simulate()
            sess.serve()
        records = parse_trace(path)
        names = {r["name"] for r in records}
        assert "planner.plan" in names
        assert "sim.run" in names
        assert "runtime.generate" in names
        # metrics snapshot alongside
        snap = json.loads((tmp_path / "session.jsonl.metrics.json").read_text())
        assert snap["planner.plans"]["value"] >= 1

    def test_tracer_not_leaked_globally(self):
        sess = Session(
            "opt-13b", cluster=1, config=FAST, tracer=Tracer(enabled=True)
        )
        sess.plan(WL)
        assert current_tracer() is None
        assert len(sess.tracer) > 0

    def test_trace_jsonl_and_flame(self):
        sess = Session(
            "opt-13b", cluster=1, config=FAST, tracer=Tracer(enabled=True)
        )
        sess.plan(WL)
        assert "planner.plan" in sess.trace_jsonl()
        assert "planner.plan" in sess.flame()

    def test_flame_without_tracer(self):
        assert "no tracer" in Session("opt-13b", cluster=1).flame()

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sess = Session(
            "opt-13b", cluster=1, config=FAST, trace_path=str(path)
        )
        sess.plan(WL)
        sess.close()
        first = path.read_text()
        sess.close()
        assert path.read_text() == first


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


class TestDeprecations:
    def test_planner_result_predicted_throughput_warns(self, planned_session):
        _, result = planned_session
        with pytest.warns(DeprecationWarning, match="predicted_throughput"):
            assert result.predicted_throughput == result.throughput_tokens_s

    def test_generation_total_time_warns(self, planned_session):
        sess, _ = planned_session
        gen = sess.serve()
        with pytest.warns(DeprecationWarning, match="total_time_s"):
            assert gen.total_time_s == gen.duration_s


# ---------------------------------------------------------------------------
# Summary protocol coverage
# ---------------------------------------------------------------------------


class TestSummaryProtocol:
    def test_all_results_share_protocol(self, planned_session):
        sess, result = planned_session
        summaries = [result, sess.simulate(), sess.serve()]
        for s in summaries:
            assert isinstance(s, Summary)
            d = s.to_dict()
            assert "kind" in d
            json.dumps(d)
        kinds = {s.to_dict()["kind"] for s in summaries}
        assert kinds == {"planner", "pipeline_sim", "generation"}
