"""Bench: regenerate Fig. 3 (phase time decomposition)."""

from repro.experiments import fig03_phase_decomposition


def test_fig03_phase_decomposition(experiment):
    res = experiment(fig03_phase_decomposition.run)
    # Paper: P100/V100 = 14.53x prefill vs 7.29x decode.
    assert 13 < res.summary["opt-13b_prefill_ratio"] < 16
    assert 6 < res.summary["opt-13b_decode_ratio"] < 8.5
    assert res.summary["opt13b_long_prompt_prefill_share"] >= 0.36
