"""Tests for the candidate search engine (bounds, pruning, parity)."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    PlannerConfig,
    SplitQuantPlanner,
    analytic_lower_bound,
    mckp_lp_min_cost,
    solve_partition_ilp,
    solve_partition_lp_relaxation,
)
from repro.core.costs import build_problem
from repro.core.enumeration import candidate_orderings
from repro.workloads import BatchWorkload

FAST = PlannerConfig(
    group_size=5,
    max_orderings=2,
    microbatch_candidates=(4, 8),
    time_limit_s=10.0,
    verify_top_k=1,
)


def _assert_same_plan(a, b):
    assert a is not None and b is not None
    assert a.plan == b.plan
    assert a.predicted_latency_s == b.predicted_latency_s
    assert a.predicted_quality == b.predicted_quality


# -- determinism regression: engine == naive serial search ---------------


@pytest.mark.parametrize("use_heuristic", [False, True])
def test_engine_matches_naive_small(opt13b, small_cluster, cost_model_13b,
                                    small_workload, use_heuristic):
    cfg = dataclasses.replace(FAST, use_heuristic=use_heuristic,
                              verify_top_k=2)
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    _assert_same_plan(planner.plan(small_workload),
                      planner.plan_reference(small_workload))


def test_engine_matches_naive_cluster5(opt30b, cluster5):
    """Second model/cluster pair, hard-budget mode (Sec. VI-C)."""
    base = PlannerConfig(group_size=8, max_orderings=3,
                         microbatch_candidates=(4, 8), time_limit_s=10.0,
                         verify_top_k=1)
    seed_planner = SplitQuantPlanner(opt30b, cluster5, base)
    budget = seed_planner.uniform_quality(4)
    cfg = dataclasses.replace(base, quality_budget=budget)
    planner = SplitQuantPlanner(
        opt30b, cluster5, cfg, cost_model=seed_planner.cost_model,
        omega_layers=seed_planner.omega_layers,
    )
    wl = BatchWorkload(batch=16, prompt_len=256, output_len=32)
    _assert_same_plan(planner.plan(wl), planner.plan_reference(wl))


def test_engine_parallel_matches_serial(opt13b, small_cluster,
                                        cost_model_13b, small_workload):
    serial = SplitQuantPlanner(opt13b, small_cluster, FAST,
                               cost_model=cost_model_13b)
    par_cfg = dataclasses.replace(FAST, parallelism=4)
    par = SplitQuantPlanner(opt13b, small_cluster, par_cfg,
                            cost_model=cost_model_13b)
    _assert_same_plan(par.plan(small_workload), serial.plan(small_workload))


def test_engine_prune_off_matches(opt13b, small_cluster, cost_model_13b,
                                  small_workload):
    on = SplitQuantPlanner(opt13b, small_cluster, FAST,
                           cost_model=cost_model_13b)
    off_cfg = dataclasses.replace(FAST, prune=False)
    off = SplitQuantPlanner(opt13b, small_cluster, off_cfg,
                            cost_model=cost_model_13b)
    r_on, r_off = on.plan(small_workload), off.plan(small_workload)
    _assert_same_plan(r_on, r_off)
    assert r_off.search.pruned == 0
    assert r_off.search.solved == r_off.search.enumerated - \
        r_off.search.infeasible


# -- admissibility: bounds never exceed a solved candidate's score -------


def _fuzz_problems(opt13b, cost_model_13b, small_cluster, n=4):
    rng = np.random.default_rng(7)
    omega = np.abs(rng.normal(size=(opt13b.num_layers, 4)))
    omega = np.sort(omega, axis=1)[:, ::-1].copy()  # decreasing in bits
    orderings = candidate_orderings(small_cluster, max_orderings=2)
    problems = []
    for i in range(n):
        wl = BatchWorkload(
            batch=int(rng.choice([8, 16])),
            prompt_len=int(rng.choice([128, 256])),
            output_len=int(rng.choice([16, 32])),
        )
        eta = int(rng.choice([4, 8]))
        xi = int(rng.choice([4, 8]))
        problems.append(build_problem(
            opt13b, small_cluster, orderings[i % len(orderings)], wl,
            cost_model_13b, omega, eta, xi, (3, 4, 8, 16), group_size=8,
        ))
    return problems


@pytest.mark.parametrize("theta,budget", [(10.0, None), (0.0, 30.0)])
def test_bounds_admissible_on_fuzzed_problems(opt13b, cost_model_13b,
                                              small_cluster, theta, budget):
    for problem in _fuzz_problems(opt13b, cost_model_13b, small_cluster):
        sol = solve_partition_ilp(problem, theta=theta,
                                  quality_budget=budget, time_limit_s=10.0)
        if sol is None:
            continue
        score = sol.latency_s + theta * sol.quality
        analytic = analytic_lower_bound(problem, theta, budget)
        assert analytic <= score * (1 + 1e-6) + 1e-9, (analytic, score)
        lp = solve_partition_lp_relaxation(problem, theta=theta,
                                           quality_budget=budget)
        assert lp is not None
        assert lp <= score * (1 + 1e-6) + 1e-9, (lp, score)


def test_lp_relaxation_flags_infeasible(opt13b, cost_model_13b,
                                        small_cluster):
    problem = _fuzz_problems(opt13b, cost_model_13b, small_cluster, n=1)[0]
    # Impossible quality budget: even all-16-bit quality exceeds it.
    assert solve_partition_lp_relaxation(
        problem, theta=0.0, quality_budget=-1.0
    ) == float("inf")


# -- the MCKP LP bound ---------------------------------------------------


def _mckp_exact(cost, weight, budget):
    """Integer optimum by brute force (tiny instances only)."""
    from itertools import product

    best = float("inf")
    G, K = cost.shape
    for picks in product(range(K), repeat=G):
        w = sum(weight[g, k] for g, k in enumerate(picks))
        if w <= budget:
            best = min(best, sum(cost[g, k] for g, k in enumerate(picks)))
    return best


def test_mckp_lp_lower_bounds_integer_optimum():
    rng = np.random.default_rng(3)
    for _ in range(25):
        cost = rng.uniform(0.1, 5.0, size=(3, 4))
        weight = rng.uniform(0.1, 5.0, size=(3, 4))
        budget = float(rng.uniform(1.0, 10.0))
        lp = mckp_lp_min_cost(cost, weight, budget)
        exact = _mckp_exact(cost, weight, budget)
        if exact == float("inf"):
            # LP may still be feasible fractionally, but if it is inf the
            # integer problem must be too (checked the other way below).
            continue
        assert lp <= exact + 1e-9


def test_mckp_lp_infeasible_when_weights_cannot_fit():
    cost = np.array([[1.0, 2.0]])
    weight = np.array([[5.0, 6.0]])
    assert mckp_lp_min_cost(cost, weight, 4.0) == float("inf")
    assert mckp_lp_min_cost(cost, weight, 5.0) == 1.0


def test_mckp_lp_unconstrained_picks_min_cost():
    cost = np.array([[3.0, 1.0], [2.0, 5.0]])
    weight = np.array([[1.0, 2.0], [1.0, 2.0]])
    assert mckp_lp_min_cost(cost, weight, 100.0) == pytest.approx(3.0)


# -- observability -------------------------------------------------------


def test_search_stats_surface_on_result(opt13b, small_cluster,
                                        cost_model_13b, small_workload):
    planner = SplitQuantPlanner(opt13b, small_cluster, FAST,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    s = res.search
    assert s is not None
    assert s.enumerated == res.candidates_tried == len(res.stats)
    assert s.enumerated == s.solved + s.pruned + s.infeasible
    assert s.cache_hits > 0  # repeated (eta, xi) shapes must hit the memo
    assert s.cache_misses > 0
    assert s.wall_time_s > 0
    assert s.parallelism == 1
    statuses = {st.status for st in res.stats}
    assert statuses <= {"optimal", "pruned", "infeasible", "heuristic"} | {
        st.status for st in res.stats if st.status.startswith("status-")
    }
    # Naive path reports no search stats.
    assert planner.plan_reference(small_workload).search is None


def test_search_prunes_on_budget_config(opt13b, small_cluster,
                                        cost_model_13b, small_workload):
    """Hard-budget mode: the LP bound is tight enough to prune."""
    base = SplitQuantPlanner(opt13b, small_cluster, FAST,
                             cost_model=cost_model_13b)
    cfg = dataclasses.replace(
        FAST, quality_budget=base.uniform_quality(4),
        microbatch_candidates=(2, 4, 8),
    )
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    assert res is not None
    s = res.search
    assert s.pruned > 0
    assert 0.0 < s.mean_bound_tightness <= 1.0 + 1e-6
    pruned_stats = [st for st in res.stats if st.status == "pruned"]
    assert len(pruned_stats) == s.pruned
    assert all(st.bound_s > 0 for st in pruned_stats)
    _assert_same_plan(res, planner.plan_reference(small_workload))


def test_config_validates_search_knobs():
    with pytest.raises(ValueError, match="parallelism"):
        PlannerConfig(parallelism=0)
    with pytest.raises(ValueError, match="bound"):
        PlannerConfig(bound="magic")


def test_microbatch_given_capped_and_deduped():
    from repro.core import microbatch_candidates

    # Oversized user-given sets are deduped, sorted and capped like the
    # derived power-of-two set (largest kept).
    assert microbatch_candidates(64, (1, 2, 4, 8, 16, 32, 64)) == \
        (8, 16, 32, 64)
    assert microbatch_candidates(64, (16, 8, 16, 8)) == (8, 16)
    assert microbatch_candidates(
        64, (1, 2, 4, 8, 16), max_candidates=2) == (8, 16)
    with pytest.raises(ValueError):
        microbatch_candidates(4, (8, 16))
