"""Tests for execution timelines and KV-quantized TinyLM."""

import numpy as np
import pytest

from repro.pipeline import render_gantt, simulate_plan, trace_plan
from repro.plan import uniform_plan
from repro.quality import TinyLMConfig


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


@pytest.fixture(scope="module")
def timeline(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    return trace_plan(plan, small_cluster, opt13b, small_workload)


def test_timeline_covers_all_stages(timeline):
    assert len(timeline.stages) == 2
    for name, jobs in timeline.stages:
        assert jobs
        for start, finish, label in jobs:
            assert 0 <= start <= finish <= timeline.makespan_s + 1e-9
            assert label[0] in ("P", "D")


def test_timeline_matches_plain_simulation(small_cluster, opt13b,
                                           small_workload, timeline):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    plain = simulate_plan(plan, small_cluster, opt13b, small_workload)
    assert timeline.makespan_s == pytest.approx(plain.makespan_s)
    assert timeline.result.throughput_tokens_s == pytest.approx(
        plain.throughput_tokens_s
    )


def test_jobs_non_overlapping_per_stage(timeline):
    for _, jobs in timeline.stages:
        ordered = sorted(jobs)
        for (s0, f0, _), (s1, _, _) in zip(ordered, ordered[1:]):
            assert s1 >= f0 - 1e-12


def test_prefill_before_decode(timeline):
    for _, jobs in timeline.stages:
        last_prefill = max(f for _, f, l in jobs if l.startswith("P"))
        first_decode = min(s for s, _, l in jobs if l.startswith("D"))
        assert first_decode >= last_prefill - 1e-9


def test_idle_gaps_detected(timeline):
    # Stage 1 (V100 behind the T4) necessarily idles during prefill fill.
    total_gaps = sum(
        len(timeline.idle_gaps(i)) for i in range(len(timeline.stages))
    )
    assert total_gaps >= 1


def test_render_gantt_format(timeline):
    text = render_gantt(timeline, width=60)
    lines = text.splitlines()
    assert len(lines) == len(timeline.stages) + 2
    assert "#" in text and "=" in text
    assert "prefill" in lines[-1]


def test_render_gantt_custom_labels(timeline):
    text = render_gantt(timeline, width=40, labels=["a", "b"])
    assert text.splitlines()[0].lstrip().startswith("a ")
    with pytest.raises(ValueError):
        render_gantt(timeline, labels=["only-one"])
    with pytest.raises(ValueError):
        render_gantt(timeline, width=5)


def test_server_class_restored_after_trace(small_cluster, opt13b,
                                           small_workload):
    from repro.pipeline import topology as topo_module
    from repro.pipeline.events import Server

    assert topo_module.Server is Server


# ---------------------------------------------------------------------------
# KV-cache quantization on TinyLM (the measurable bit_kv counterpart).
# ---------------------------------------------------------------------------


def test_kv_bits_validation():
    with pytest.raises(ValueError):
        TinyLMConfig(kv_bits=5)


def test_kv_quantization_degrades_gracefully(tiny_model, tiny_corpora):
    corpus = tiny_corpora["c4"]
    p16 = tiny_model.perplexity(corpus)
    p8 = tiny_model.with_kv_bits(8).perplexity(corpus)
    p4 = tiny_model.with_kv_bits(4).perplexity(corpus)
    assert p16 <= p8 * 1.001
    assert p8 < p4
    assert (p8 - p16) / p16 < 0.01  # KV-8 near-lossless
    assert (p4 - p16) / p16 < 0.10


def test_kv_view_shares_weights(tiny_model):
    view = tiny_model.with_kv_bits(8)
    assert view.layers is tiny_model.layers
    assert view.embed is tiny_model.embed
    assert view.config.kv_bits == 8
    assert tiny_model.config.kv_bits == 16  # original untouched


def test_kv_quantized_generation_runs(tiny_model, rng):
    view = tiny_model.with_kv_bits(8)
    prompts = rng.integers(0, view.config.vocab, size=(2, 8))
    logits, cache = view.prefill(prompts)
    out, cache = view.decode_step(logits.argmax(axis=-1), cache)
    assert np.all(np.isfinite(out))
    assert cache.length == 9
