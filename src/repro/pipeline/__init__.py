"""Pipeline serving: discrete-event engine, stage timing, simulator."""

from .events import EventLoop, FaultEvent, Server
from .simulator import (
    DegradedSimResult,
    PipelineSimResult,
    check_plan_memory,
    simulate_degraded,
    simulate_plan,
    simulate_plan_variable,
)
from .trace import Timeline, render_gantt, trace_plan
from .stage import (
    CostModelTiming,
    RooflineTiming,
    StageExecutionModel,
    TimingSource,
)

__all__ = [
    "EventLoop",
    "FaultEvent",
    "Server",
    "DegradedSimResult",
    "PipelineSimResult",
    "check_plan_memory",
    "simulate_degraded",
    "simulate_plan",
    "simulate_plan_variable",
    "Timeline",
    "render_gantt",
    "trace_plan",
    "CostModelTiming",
    "RooflineTiming",
    "StageExecutionModel",
    "TimingSource",
]
