"""Workload descriptions consumed by the planner and pipeline simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class BatchWorkload:
    """One offline serving batch after padding/uniformization (Sec. IV-C).

    Requests are padded to a uniform prompt length ``prompt_len`` and
    chunked-prefilled in ``kappa`` chunks of at most ``chunk_tokens``.
    """

    batch: int
    prompt_len: int
    output_len: int
    chunk_tokens: int = 2048
    #: KV reservation horizon when it must exceed the latency-planning
    #: ``output_len`` (variable-output workloads reserve for the longest
    #: request while planning latency for the mean).  None = output_len.
    reserve_output_len: int | None = None

    def __post_init__(self):
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.prompt_len <= 0 or self.output_len <= 0:
            raise ValueError("prompt_len and output_len must be positive")
        if self.chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        if (
            self.reserve_output_len is not None
            and self.reserve_output_len < self.output_len
        ):
            raise ValueError("reserve_output_len must cover output_len")

    @property
    def kappa(self) -> int:
        """Number of prefill chunks per request."""
        return -(-self.prompt_len // self.chunk_tokens)

    @property
    def chunk_len(self) -> int:
        """Tokens per prefill chunk (last chunk may be shorter; we model
        uniform chunks of the average length)."""
        return -(-self.prompt_len // self.kappa)

    @property
    def context_len(self) -> int:
        """Maximum total sequence length ``s + n`` (KV reservation)."""
        return self.prompt_len + (self.reserve_output_len or self.output_len)

    @property
    def total_output_tokens(self) -> int:
        return self.batch * self.output_len

    def describe(self) -> str:
        return (
            f"B={self.batch} s={self.prompt_len} n={self.output_len} "
            f"kappa={self.kappa}"
        )


@dataclass(frozen=True)
class VariableBatchWorkload:
    """A batch whose requests generate *different* numbers of tokens.

    The paper's latency model assumes a uniform ``n`` but notes it "can be
    readily adapted to variable-output-length scenarios by estimating
    token generation based on workload distribution" (Sec. IV-C).  This
    class carries the true per-request lengths; planning uses a summary
    statistic via :meth:`planning_view`, and the simulator lets requests
    retire early so decode micro-batches shrink over time.
    """

    prompt_len: int
    output_lens: Tuple[int, ...]
    chunk_tokens: int = 2048

    def __post_init__(self):
        if not self.output_lens:
            raise ValueError("need at least one request")
        if min(self.output_lens) <= 0:
            raise ValueError("output lengths must be positive")
        if self.prompt_len <= 0 or self.chunk_tokens <= 0:
            raise ValueError("prompt_len and chunk_tokens must be positive")

    @property
    def batch(self) -> int:
        return len(self.output_lens)

    @property
    def max_output(self) -> int:
        return max(self.output_lens)

    @property
    def mean_output(self) -> float:
        return sum(self.output_lens) / len(self.output_lens)

    @property
    def total_output_tokens(self) -> int:
        return sum(self.output_lens)

    @property
    def context_len(self) -> int:
        """KV reservation covers the longest request."""
        return self.prompt_len + self.max_output

    def planning_view(self, estimate: str = "mean") -> BatchWorkload:
        """The uniform workload the assigner plans against.

        ``estimate`` picks the token-generation estimator: ``"mean"``
        (throughput-matched) or ``"max"`` (reservation-matched).
        """
        if estimate == "mean":
            n = max(int(round(self.mean_output)), 1)
        elif estimate == "max":
            n = self.max_output
        else:
            raise ValueError(f"unknown estimate {estimate!r}")
        return BatchWorkload(
            batch=self.batch,
            prompt_len=self.prompt_len,
            output_len=n,
            chunk_tokens=self.chunk_tokens,
            # KV must be reserved for the longest request regardless of
            # the latency estimator.
            reserve_output_len=self.max_output,
        )

    def describe(self) -> str:
        return (
            f"B={self.batch} s={self.prompt_len} "
            f"n={min(self.output_lens)}..{self.max_output} "
            f"(mean {self.mean_output:.0f})"
        )
