"""The variance indicator of quantization sensitivity (Sec. IV-B).

Theorem 1 bounds the extra output variance a weight-only quantized linear
operator incurs:

* deterministic rounding:  ``D_W * S_W^2 * (1/4) * Var[X]``
* stochastic rounding:     ``D_W * S_W^2 * (1/6) * (E[X]^2 + Var[X])``

Proposition 1 sums this bound over the linear operators of a decoder layer
to get the sensitivity indicator ``omega_{i,b}`` that ranks how much
quantizing layer ``i`` to bitwidth ``b`` perturbs the model.  The indicator
costs only elementwise mean/variance statistics — O(D_W * D_X) versus the
O(D_W * D_X^2) Hessian alternative (see :mod:`repro.quant.hessian`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .schemes import QuantConfig


def scaling_factor(w: np.ndarray, bits: int, symmetric: bool = True) -> float:
    """Per-tensor scaling factor ``S_W(b)`` of Sec. IV-B."""
    w = np.asarray(w, dtype=np.float64)
    if symmetric:
        return float(np.max(np.abs(w))) / (2 ** (bits - 1) - 1)
    return float(w.max() - w.min()) / (2**bits - 1)


def g_statistic(x: np.ndarray, rounding: str = "deterministic") -> float:
    """``G(X)`` of Proposition 1 from calibration activations."""
    x = np.asarray(x, dtype=np.float64)
    var = float(np.var(x))
    if rounding == "deterministic":
        return var / 4.0
    if rounding == "stochastic":
        mean = float(np.mean(x))
        return (mean**2 + var) / 6.0
    raise ValueError(f"unknown rounding {rounding!r}")


def g_statistic_from_moments(
    mean: float, var: float, rounding: str = "deterministic"
) -> float:
    """``G(X)`` from precomputed activation moments (big-model path)."""
    if rounding == "deterministic":
        return var / 4.0
    if rounding == "stochastic":
        return (mean**2 + var) / 6.0
    raise ValueError(f"unknown rounding {rounding!r}")


def theorem1_variance_bound(
    w: np.ndarray, x: np.ndarray, bits: int, rounding: str = "deterministic"
) -> float:
    """Theorem 1's bound on the *extra* output variance from quantization.

    ``D_W`` is the number of error terms summed into each output element,
    i.e. the input dimension of the operator.
    """
    w = np.asarray(w, dtype=np.float64)
    d_w = w.shape[-1]
    s = scaling_factor(w, bits)
    return d_w * s * s * g_statistic(x, rounding)


def empirical_quant_variance(
    w: np.ndarray,
    x: np.ndarray,
    bits: int,
    rounding: str = "deterministic",
    seed: int = 0,
) -> float:
    """Measured extra output variance of quantizing ``w`` (for validation).

    Computes ``Var[(W_q - W) X]`` elementwise over calibration samples —
    the quantity Theorem 1 upper-bounds.
    """
    rng = np.random.default_rng(seed)
    cfg = QuantConfig(
        bits=bits, symmetric=True, granularity="tensor", rounding=rounding
    )
    from .schemes import quantize_dequantize

    wq = quantize_dequantize(w, cfg, rng)
    err_out = (np.asarray(wq) - np.asarray(w, dtype=np.float64)) @ np.asarray(
        x, dtype=np.float64
    )
    return float(np.var(err_out))


@dataclass(frozen=True)
class OperatorStats:
    """Summary statistics of one linear operator for indicator evaluation."""

    #: Input dimension (error terms summed per output element).
    d_w: int
    #: Largest |weight| (drives the per-bit scaling factor).
    w_absmax: float
    #: Calibration activation mean and variance.
    x_mean: float
    x_var: float

    def omega(self, bits: int, rounding: str = "deterministic") -> float:
        """The operator's contribution to the layer indicator at ``bits``."""
        if bits >= 16:
            return 0.0
        s = self.w_absmax / (2 ** (bits - 1) - 1)
        return self.d_w * s * s * g_statistic_from_moments(
            self.x_mean, self.x_var, rounding
        )


def operator_stats_from_arrays(w: np.ndarray, x: np.ndarray) -> OperatorStats:
    """Collect :class:`OperatorStats` from real weight/activation arrays."""
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    return OperatorStats(
        d_w=w.shape[-1],
        w_absmax=float(np.max(np.abs(w))),
        x_mean=float(np.mean(x)),
        x_var=float(np.var(x)),
    )


def layer_indicator(
    operators: Iterable[OperatorStats],
    bits: int,
    rounding: str = "deterministic",
) -> float:
    """Proposition 1: ``omega_{i,b}`` summed over a layer's operators."""
    return float(sum(op.omega(bits, rounding) for op in operators))


def indicator_table(
    layers: Sequence[Sequence[OperatorStats]],
    bit_choices: Sequence[int],
    rounding: str = "deterministic",
) -> np.ndarray:
    """``omega[i, k]`` for every layer i and bitwidth choice k.

    Rows are layers in model order; columns follow ``bit_choices``.
    FP16 entries are exactly zero (no quantization perturbation).
    """
    table = np.zeros((len(layers), len(bit_choices)))
    for i, ops in enumerate(layers):
        for k, b in enumerate(bit_choices):
            table[i, k] = layer_indicator(ops, b, rounding)
    return table


def random_indicator_table(
    num_layers: int,
    bit_choices: Sequence[int],
    seed: int = 0,
    scale: float = 1.0,
) -> np.ndarray:
    """The Random baseline of Sec. VI-E.

    Uniform draws, but within each layer the indicator value for a higher
    bitwidth is forced below that of any lower bitwidth (as the paper
    specifies), preserving the "more bits hurt less" ordering.
    """
    rng = np.random.default_rng(seed)
    table = np.zeros((num_layers, len(bit_choices)))
    order = np.argsort(bit_choices)[::-1]  # highest bits first
    for i in range(num_layers):
        draws = np.sort(rng.uniform(0.0, scale, size=len(bit_choices)))
        for rank, k in enumerate(order):
            table[i, k] = 0.0 if bit_choices[k] >= 16 else draws[rank]
    return table
