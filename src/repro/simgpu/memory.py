"""Simulated device memory: a tagged allocator with OOM semantics.

The runtime and pipeline simulator allocate model weights, KV cache and
activation workspace through this allocator so that infeasible plans fail
the same way they would on hardware — with an out-of-memory error naming
the device and the allocation that pushed it over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: CUDA allocators hand out memory in pages; round allocations up.
PAGE_BYTES = 2 * 1024 * 1024


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the device's remaining capacity."""

    def __init__(self, device: str, requested: int, available: int):
        super().__init__(
            f"OOM on {device}: requested {requested / 2**20:.1f} MiB, "
            f"available {available / 2**20:.1f} MiB"
        )
        self.device = device
        self.requested = requested
        self.available = available


def _round_up(nbytes: int) -> int:
    return -(-nbytes // PAGE_BYTES) * PAGE_BYTES


@dataclass
class DeviceMemory:
    """Byte-accounted memory of one simulated device."""

    name: str
    capacity_bytes: int
    _allocs: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")

    @property
    def used_bytes(self) -> int:
        return sum(self._allocs.values())

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, tag: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``tag`` (page-rounded); raises on OOM."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if tag in self._allocs:
            raise ValueError(f"tag {tag!r} already allocated on {self.name}")
        rounded = _round_up(nbytes)
        if rounded > self.available_bytes:
            raise OutOfMemoryError(self.name, rounded, self.available_bytes)
        self._allocs[tag] = rounded

    def free(self, tag: str) -> int:
        """Release the allocation under ``tag``; returns the bytes freed."""
        try:
            return self._allocs.pop(tag)
        except KeyError:
            raise KeyError(f"no allocation tagged {tag!r} on {self.name}") from None

    def resize(self, tag: str, nbytes: int) -> None:
        """Grow or shrink an existing allocation (KV cache growth)."""
        if tag not in self._allocs:
            raise KeyError(f"no allocation tagged {tag!r} on {self.name}")
        old = self._allocs[tag]
        rounded = _round_up(nbytes)
        if rounded - old > self.available_bytes:
            raise OutOfMemoryError(self.name, rounded - old, self.available_bytes)
        self._allocs[tag] = rounded

    def usage(self) -> Dict[str, int]:
        """Snapshot of live allocations (tag -> bytes)."""
        return dict(self._allocs)

    def reset(self) -> None:
        self._allocs.clear()
