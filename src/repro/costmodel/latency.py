"""Latency cost model (paper Sec. IV-A): phase-aware linear regression.

Prefill time is compute-driven and regressed on FLOP-shaped features
``{1, v, s, v*s, v*s^2}``; decode time is memory-driven and regressed on
MOP-shaped features ``{1, v, v*(t+s), (t+s)}`` where ``t+s`` is the total
context length.  One regression is fit per (device, bitwidth, phase) from
profiled calibration samples, exactly as the assigner does online.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..hardware.gpus import GPUSpec
from ..models.architectures import ModelSpec
from ..simgpu.profiler import LatencySample, Profiler

#: Default calibration grids (batch sizes x sequence/past lengths).
PREFILL_GRID: Tuple[Tuple[int, ...], Tuple[int, ...]] = (
    (1, 2, 4, 8, 16, 32, 64, 128, 256),
    (64, 128, 256, 512, 1024, 2048),
)
DECODE_GRID: Tuple[Tuple[int, ...], Tuple[int, ...]] = (
    (1, 2, 4, 8, 16, 32, 64, 128, 256),
    (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768),
)


def prefill_features(batch: float, seq: float) -> np.ndarray:
    """Feature vector for the prefill regression."""
    v, s = float(batch), float(seq)
    return np.array([1.0, v, s, v * s, v * s * s])


def decode_features(batch: float, context: float) -> np.ndarray:
    """Feature vector for the decode regression (``context = t + s``)."""
    v, c = float(batch), float(context)
    return np.array([1.0, v, v * c, c])


@dataclass
class PhaseRegression:
    """A fitted least-squares model for one (device, bits, phase)."""

    phase: str
    coef: np.ndarray

    def __post_init__(self) -> None:
        # Scalar coefficient tuple: `predict` sits on the planner's hottest
        # path (every candidate cost tensor and every simulator dry-run goes
        # through it), where allocating feature arrays and dispatching a
        # BLAS dot for 4-5 terms costs more than the arithmetic itself.
        self._c = tuple(float(x) for x in self.coef)

    def predict(self, batch: float, seq: float) -> float:
        v, s = float(batch), float(seq)
        c = self._c
        if self.phase == "prefill":
            val = c[0] + c[1] * v + c[2] * s + c[3] * (v * s) + c[4] * (v * s * s)
        else:
            val = c[0] + c[1] * v + c[2] * (v * s) + c[3] * s
        return val if val > 0.0 else 0.0


def fit_phase(samples: Sequence[LatencySample], phase: str) -> PhaseRegression:
    """Least-squares fit over profiled samples of one phase.

    Rows are weighted by ``1/y`` so the fit minimizes *relative* error —
    otherwise the largest-batch samples dominate and small-shape
    predictions (where planning decisions are often made) degrade.
    """
    rows = [s for s in samples if s.phase == phase]
    if len(rows) < 5:
        raise ValueError(f"need >= 5 {phase} samples, got {len(rows)}")
    feat_fn = prefill_features if phase == "prefill" else decode_features
    a = np.stack([feat_fn(s.batch, s.seq) for s in rows])
    y = np.array([s.time_s for s in rows])
    w = 1.0 / np.maximum(y, 1e-12)
    coef, *_ = np.linalg.lstsq(a * w[:, None], y * w, rcond=None)
    return PhaseRegression(phase=phase, coef=coef)


@dataclass(frozen=True)
class _Key:
    gpu: str
    bits: int
    phase: str


@dataclass
class LatencyCostModel:
    """Per-layer latency predictor across devices, precisions and phases.

    Fit once per (model, cluster) from profiler calibration payloads; used
    by the optimizer for the ``l_{i,j,b}`` terms of constraints (5)-(6).
    """

    spec: ModelSpec
    bit_kv: int = 16
    _models: Dict[Tuple[str, int, str], PhaseRegression] = field(
        default_factory=dict
    )

    def fit(
        self,
        gpus: Iterable[GPUSpec],
        bit_choices: Iterable[int],
        profiler: Profiler | None = None,
        prefill_grid: Tuple[Sequence[int], Sequence[int]] = PREFILL_GRID,
        decode_grid: Tuple[Sequence[int], Sequence[int]] = DECODE_GRID,
    ) -> "LatencyCostModel":
        """Profile calibration grids and fit every (gpu, bits, phase)."""
        profiler = profiler or Profiler(seed=0)
        for gpu in gpus:
            for bits in bit_choices:
                for phase, (batches, seqs) in (
                    ("prefill", prefill_grid),
                    ("decode", decode_grid),
                ):
                    samples = profiler.profile_grid(
                        gpu,
                        self.spec,
                        bits,
                        phase,
                        batches=batches,
                        seqs=seqs,
                        bit_kv=self.bit_kv,
                    )
                    self._models[(gpu.name, bits, phase)] = fit_phase(
                        samples, phase
                    )
        return self

    def _get(self, gpu: GPUSpec, bits: int, phase: str) -> PhaseRegression:
        try:
            return self._models[(gpu.name, bits, phase)]
        except KeyError:
            raise KeyError(
                f"no fitted model for ({gpu.name}, {bits}, {phase}); call fit()"
            ) from None

    def prefill_time(self, gpu: GPUSpec, bits: int, batch: int, seq: int) -> float:
        """Predicted per-layer prefill time (s)."""
        return self._get(gpu, bits, "prefill").predict(batch, seq)

    def decode_time(
        self, gpu: GPUSpec, bits: int, batch: int, context: int
    ) -> float:
        """Predicted per-layer decode-step time (s) at total context."""
        return self._get(gpu, bits, "decode").predict(batch, context)

    def fitted_keys(self) -> List[Tuple[str, int, str]]:
        return sorted(self._models)

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the fitted coefficients.

        Floats are emitted at full precision (``repr`` round-trips
        float64 exactly), so ``from_state_dict(spec, state_dict())``
        reproduces predictions bit-for-bit — the contract the persistent
        result cache relies on.
        """
        return {
            "spec": self.spec.name,
            "bit_kv": self.bit_kv,
            "models": [
                [gpu, bits, phase, [float(c) for c in reg.coef]]
                for (gpu, bits, phase), reg in sorted(self._models.items())
            ],
        }

    @classmethod
    def from_state_dict(
        cls, spec: ModelSpec, state: Dict[str, object]
    ) -> "LatencyCostModel":
        """Rebuild a fitted model from :meth:`state_dict` output."""
        if state.get("spec") != spec.name:
            raise ValueError(
                f"state fitted for {state.get('spec')!r}, not {spec.name!r}"
            )
        cm = cls(spec=spec, bit_kv=int(state.get("bit_kv", 16)))
        for gpu, bits, phase, coef in state["models"]:  # type: ignore[index]
            cm._models[(str(gpu), int(bits), str(phase))] = PhaseRegression(
                phase=str(phase), coef=np.asarray(coef, dtype=np.float64)
            )
        return cm


def relative_errors(
    model: LatencyCostModel,
    gpu: GPUSpec,
    bits: int,
    phase: str,
    workloads: Sequence[Tuple[int, int]],
    profiler: Profiler,
) -> np.ndarray:
    """|predicted - measured| / measured on unseen workloads (Fig. 8)."""
    errs = []
    for batch, seq in workloads:
        measured = profiler.measure_layer(gpu, model.spec, bits, phase, batch, seq)
        predicted = (
            model.prefill_time(gpu, bits, batch, seq)
            if phase == "prefill"
            else model.decode_time(gpu, bits, batch, seq)
        )
        errs.append(abs(predicted - measured) / measured)
    return np.array(errs)
