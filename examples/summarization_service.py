#!/usr/bin/env python
"""Offline summarization service on a mixed T4/V100 cluster.

The paper's first motivating workload (Sec. VI-A): a dedicated server
batch-summarizes CNN/DailyMail-style documents.  This example walks the
whole serving path:

1. sample a realistic article-length workload and synthesize padded
   batches that respect the model's context window,
2. plan with SplitQuant, constrained to Uniform-baseline quality,
3. compare all three policies (Uniform / Het / SplitQuant) by simulation,
4. report where the time goes (prefill vs decode, per-stage utilization).

Run:  python examples/summarization_service.py
"""

import dataclasses

from repro import (
    PlannerConfig,
    SplitQuantPlanner,
    get_model,
    simulate_plan,
    table_iii_cluster,
)
from repro.baselines import plan_het_baseline, plan_uniform_baseline
from repro.experiments.common import cost_model_for, feasible_batch
from repro.workloads import WorkloadConfig, representative_workload


def main() -> None:
    spec = get_model("qwen2.5-32b")
    cluster = table_iii_cluster(7)  # 4x T4 + 2x V100
    print(f"serving {spec.name} on {cluster.describe()}\n")

    # 1. Workload synthesis from the summarization length distribution.
    wl_cfg = WorkloadConfig(dataset="cnn_dailymail", batch_size=256, seed=0)
    wl = representative_workload(spec, wl_cfg)
    batch = feasible_batch(spec, cluster, wl.prompt_len, wl.output_len)
    wl = dataclasses.replace(wl, batch=batch)
    print(f"workload after padding/admission: {wl.describe()}")
    print(f"  ({wl.total_output_tokens} summary tokens per batch)\n")

    # 2. Plan.
    cm = cost_model_for(spec, cluster)
    cfg = PlannerConfig(
        group_size=4,
        max_orderings=6,
        microbatch_candidates=(batch // 4, batch // 2, batch),
        time_limit_s=20.0,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
    uniform = plan_uniform_baseline(spec, cluster, wl)
    ref_bits = uniform.bits if uniform else 3
    planner = SplitQuantPlanner(
        spec,
        cluster,
        dataclasses.replace(cfg, quality_budget=planner.uniform_quality(ref_bits)),
        cost_model=cm,
    )
    result = planner.plan(wl)
    if result is None:
        raise SystemExit("model does not fit this cluster")
    print(f"plan: {result.plan.describe()}\n")

    # 3. Policy comparison.
    het = plan_het_baseline(spec, cluster, wl, cm)
    rows = [("SplitQuant", result.plan)]
    if het:
        rows.append((f"Het ({het.bits}-bit)", het.plan))
    if uniform:
        rows.append((f"Uniform ({uniform.bits}-bit)", uniform.plan))
    print(f"{'policy':<20} {'tokens/s':>10} {'prefill':>9} {'decode':>9}")
    sims = {}
    for name, plan in rows:
        sim = simulate_plan(plan, cluster, spec, wl)
        sims[name] = sim
        print(
            f"{name:<20} {sim.throughput_tokens_s:>10.1f} "
            f"{sim.prefill_span_s:>8.1f}s {sim.decode_span_s:>8.1f}s"
        )

    # 4. Where the time goes under SplitQuant.
    sq = sims["SplitQuant"]
    print("\nper-stage utilization (SplitQuant):")
    for st, util in zip(result.plan.stages, sq.stage_utilization):
        bits = "/".join(str(b) for b in sorted(set(st.layer_bits)))
        tp = f" tp{st.tp_degree}" if st.tp_degree > 1 else ""
        print(
            f"  {st.gpu_name}{tp:<5} layers {st.layer_start:>2}-"
            f"{st.layer_end - 1:<2} @ {bits:>6}-bit : {util:.0%} busy"
        )


if __name__ == "__main__":
    main()
