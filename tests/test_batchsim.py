"""Differential tests: batched frontier evaluation vs per-plan fastsim.

``evaluate_plans`` claims each lane of the batched sweep is *bit-equal*
to running the per-plan fast backend on that case alone (and therefore
to the discrete-event oracle), even when the frontier is ragged — mixed
stage counts, micro-batch counts, decode horizons and workloads in one
call.  Every assertion here is ``==`` on whole results.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware import make_cluster, table_iii_cluster
from repro.models import get_model
from repro.obs import Tracer, metrics, use_tracer
from repro.pipeline import (
    PlanCase,
    evaluate_plans,
    simulate_plan,
    simulate_plan_variable,
)
from repro.plan import uniform_plan
from repro.simgpu import OutOfMemoryError
from repro.workloads import BatchWorkload
from repro.workloads.spec import VariableBatchWorkload


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


# The same seeded grid the per-plan differential suite uses: mixed
# cluster sizes (1..5 stages), models, bitwidths and micro-batching.
GRID = [
    # (cluster index, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec)
    (5, "opt-13b", 8, 8, 256, 32, 2048, 4, 4),
    (5, "opt-13b", 4, 32, 512, 64, 256, 8, 16),
    (2, "opt-13b", 8, 16, 1024, 16, 512, 2, 8),
    (7, "opt-30b", 4, 64, 512, 128, 1024, 16, 32),
    (9, "opt-13b", 16, 24, 384, 48, 384, 6, 12),
    (10, "opt-30b", 16, 8, 2048, 8, 512, 8, 8),
    (1, "opt-13b", 4, 8, 256, 32, 2048, 4, 4),  # single stage
]


def _grid_case(idx, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec):
    cluster = table_iii_cluster(idx)
    spec = get_model(model)
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), bits, mb_pre, mb_dec
    )
    wl = BatchWorkload(
        batch=batch, prompt_len=prompt, output_len=out, chunk_tokens=chunk
    )
    return PlanCase(plan=plan, cluster=cluster, spec=spec, workload=wl)


def test_mixed_frontier_bit_identical():
    """One ragged batched call == per-plan fastsim == event engine."""
    cases = [_grid_case(*row) for row in GRID]
    # A no-decode member (output_len == 1) rides along in the same batch.
    short = GRID[0][:5] + (1,) + GRID[0][6:]
    cases.append(_grid_case(*short))
    batched = evaluate_plans(cases, check_memory=True)
    assert len(batched) == len(cases)
    for case, res in zip(cases, batched):
        fast = simulate_plan(
            case.plan, case.cluster, case.spec, case.workload,
            sim_backend="fast",
        )
        assert res.sim_backend == "fast"
        assert res.backend_reason is None
        assert res.makespan_s == fast.makespan_s
        assert res.prefill_span_s == fast.prefill_span_s
        assert res.decode_span_s == fast.decode_span_s
        assert res.stage_busy_s == fast.stage_busy_s
        assert res == fast
    # Event-engine oracle parity on a couple of members (the per-plan
    # fast backend is itself differentially tested against the oracle).
    for i in (0, 3):
        ev = simulate_plan(
            cases[i].plan, cases[i].cluster, cases[i].spec,
            cases[i].workload, sim_backend="event",
        )
        assert batched[i] == ev


def test_empty_frontier():
    assert evaluate_plans([]) == []


def test_singleton_frontier(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    case = PlanCase(
        plan=plan, cluster=small_cluster, spec=opt13b, workload=small_workload
    )
    (res,) = evaluate_plans([case], check_memory=True)
    fast = simulate_plan(
        plan, small_cluster, opt13b, small_workload, sim_backend="fast"
    )
    assert res == fast


def test_check_memory_raises_like_per_plan(small_cluster, opt30b,
                                           small_workload):
    plan = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    case = PlanCase(
        plan=plan, cluster=small_cluster, spec=opt30b, workload=small_workload
    )
    # Default: frontier scoring skips the memory check.
    (res,) = evaluate_plans([case])
    assert res.stage_memory_bytes == tuple(0 for _ in plan.stages)
    with pytest.raises(OutOfMemoryError):
        evaluate_plans([case], check_memory=True)


def test_variable_uniform_member(small_cluster, opt13b):
    """A fixed-size variable workload rides the batched fast path."""
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    wl = VariableBatchWorkload(prompt_len=256, output_lens=(24,) * 8)
    case = PlanCase(
        plan=plan, cluster=small_cluster, spec=opt13b, workload=wl
    )
    (res,) = evaluate_plans([case])
    fast = simulate_plan_variable(
        plan, small_cluster, opt13b, wl, check_memory=False,
        sim_backend="fast",
    )
    assert res.sim_backend == "fast"
    assert res.total_tokens == wl.total_output_tokens
    assert res == fast


def test_retiring_member_falls_back_with_reason(small_cluster, opt13b):
    """Ineligible members drop to the event engine, with provenance."""
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    retiring = VariableBatchWorkload(
        prompt_len=256, output_lens=(8, 16, 24, 32, 8, 16, 24, 32)
    )
    uniform = BatchWorkload(batch=8, prompt_len=256, output_len=32)
    cases = [
        PlanCase(plan=plan, cluster=small_cluster, spec=opt13b,
                 workload=uniform),
        PlanCase(plan=plan, cluster=small_cluster, spec=opt13b,
                 workload=retiring),
    ]
    with use_tracer(Tracer(enabled=True)):
        before = metrics.counter("batchsim.fallback").value
        fast_res, event_res = evaluate_plans(cases, check_memory=True)
        assert metrics.counter("batchsim.fallback").value == before + 1
    assert fast_res.sim_backend == "fast"
    assert fast_res.backend_reason is None
    assert event_res.sim_backend == "event"
    assert "retire" in event_res.backend_reason
    oracle = simulate_plan_variable(
        plan, small_cluster, opt13b, retiring, sim_backend="event"
    )
    assert event_res == oracle


def test_counters_and_span(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    cases = [
        PlanCase(plan=plan, cluster=small_cluster, spec=opt13b,
                 workload=small_workload)
    ] * 3
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        plans_before = metrics.counter("batchsim.plans").value
        batches_before = metrics.counter("batchsim.batches").value
        evaluate_plans(cases)
        assert metrics.counter("batchsim.plans").value == plans_before + 3
        assert metrics.counter("batchsim.batches").value == batches_before + 1
    spans = [r for r in tracer.records if r["name"] == "batchsim.evaluate"]
    assert spans and spans[0]["attrs"]["plans"] == 3
    assert spans[0]["attrs"]["batched"] == 3
    assert spans[0]["attrs"]["fallbacks"] == 0


def test_layer_mismatch_rejected(small_cluster, opt13b, opt30b,
                                 small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    case = PlanCase(
        plan=plan, cluster=small_cluster, spec=opt30b, workload=small_workload
    )
    with pytest.raises(ValueError, match="layers"):
        evaluate_plans([case])


# -- property: random ragged frontiers stay exact ------------------------

_MEMBER = st.tuples(
    st.integers(min_value=1, max_value=32),      # batch
    st.integers(min_value=32, max_value=512),    # prompt
    st.integers(min_value=1, max_value=24),      # out
    st.sampled_from([128, 256, 2048]),           # chunk
    st.sampled_from([1, 2, 3, 4]),               # mb_pre
    st.sampled_from([1, 2, 4, 5, 8]),            # mb_dec
    st.sampled_from([3, 4, 8, 16]),              # bits
    st.sampled_from([1, 2, 3]),                  # n_devices -> n_stages
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(members=st.lists(_MEMBER, min_size=1, max_size=4))
def test_batched_equals_per_plan_property(members):
    spec = get_model("opt-13b")
    cases = []
    for batch, prompt, out, chunk, mb_pre, mb_dec, bits, n_dev in members:
        cluster = make_cluster(
            f"prop-{n_dev}",
            [("T4-16G", 1), ("V100-32G", 1), ("T4-16G", 1)][:n_dev],
        )
        plan = uniform_plan(
            spec.name, spec.num_layers, groups_of(cluster), bits,
            mb_pre, mb_dec,
        )
        wl = BatchWorkload(
            batch=batch, prompt_len=prompt, output_len=out,
            chunk_tokens=chunk,
        )
        cases.append(
            PlanCase(plan=plan, cluster=cluster, spec=spec, workload=wl)
        )
    batched = evaluate_plans(cases)
    for case, res in zip(cases, batched):
        fast = simulate_plan(
            case.plan, case.cluster, case.spec, case.workload,
            check_memory=False, sim_backend="fast",
        )
        assert res == fast
