"""Shared fixtures: small, fast instances of every substrate."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.costmodel.latency import LatencyCostModel

# Fixed profile for CI: derandomized so property suites are reproducible
# run-to-run (select with HYPOTHESIS_PROFILE=ci).
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    """Point the persistent result cache at a per-session temp dir.

    Keeps the suite hermetic: tests never read entries warmed by earlier
    runs under ``~/.cache/splitquant`` and never pollute the user's cache.
    """
    import os

    old = os.environ.get("SPLITQUANT_CACHE_DIR")
    os.environ["SPLITQUANT_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("splitquant-cache")
    )
    yield
    if old is None:
        os.environ.pop("SPLITQUANT_CACHE_DIR", None)
    else:
        os.environ["SPLITQUANT_CACHE_DIR"] = old
from repro.hardware import get_gpu, make_cluster, table_iii_cluster
from repro.models import get_model
from repro.quality import TinyLM, TinyLMConfig, build_eval_corpora
from repro.simgpu import Profiler
from repro.workloads import BatchWorkload


@pytest.fixture(scope="session")
def opt13b():
    return get_model("opt-13b")


@pytest.fixture(scope="session")
def opt30b():
    return get_model("opt-30b")


@pytest.fixture(scope="session")
def qwen7b():
    return get_model("qwen2.5-7b")


@pytest.fixture(scope="session")
def v100():
    return get_gpu("V100")


@pytest.fixture(scope="session")
def t4():
    return get_gpu("T4")


@pytest.fixture(scope="session")
def p100():
    return get_gpu("P100")


@pytest.fixture(scope="session")
def a100():
    return get_gpu("A100")


@pytest.fixture(scope="session")
def cluster5():
    """3x T4 + 1x V100 (Table III cluster 5)."""
    return table_iii_cluster(5)


@pytest.fixture(scope="session")
def small_cluster():
    """A 2-device heterogeneous cluster for fast planning tests."""
    return make_cluster("test-2dev", [("T4-16G", 1), ("V100-32G", 1)])


@pytest.fixture(scope="session")
def small_workload():
    return BatchWorkload(batch=8, prompt_len=256, output_len=32)


@pytest.fixture(scope="session")
def cost_model_13b(opt13b, t4, v100):
    cm = LatencyCostModel(opt13b)
    cm.fit([t4, v100], (3, 4, 8, 16), Profiler(seed=11))
    return cm


@pytest.fixture(scope="session")
def tiny_model():
    return TinyLM(
        TinyLMConfig(vocab=96, layers=4, hidden=48, ffn=128, heads=4,
                     max_seq=160, seed=3)
    )


@pytest.fixture(scope="session")
def tiny_corpora(tiny_model):
    return build_eval_corpora(tiny_model, n_seqs=4, seq_len=48)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)
