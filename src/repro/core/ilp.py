"""The joint partition + bitwidth ILP (objective (4), constraints (5)-(16)).

Decision variables ``z[g, j, k]`` place layer group ``g`` on stage ``j``
at bitwidth ``bit_choices[k]``; continuous epigraph variables model the
slowest-stage times and the decode-span max.  Solved with HiGHS through
``scipy.optimize.milp`` (the GUROBI substitute), honoring a wall-clock
time limit like the paper's 60 s solver budget (Sec. VI-F).

The *adabits* variant (pure adaptive quantization, Sec. IV-C / VI-H)
drops the latency terms and minimizes the quality indicator alone under
the same memory/contiguity constraints.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from ..obs import metrics, trace
from .costs import PlanningProblem

#: Re-entrancy state for :func:`_silenced_stdout`.  The search engine may
#: run several HiGHS solves concurrently; naive per-thread ``dup2`` juggling
#: races (one thread can "restore" another thread's devnull as the real
#: stdout and permanently swallow fd 1), so redirection is reference-counted
#: under a lock: the first solver in redirects, the last one out restores.
_silence_lock = threading.Lock()
_silence_depth = 0
_silence_saved_fd: Optional[int] = None
_silence_devnull = None


@contextlib.contextmanager
def _silenced_stdout():
    """Mute HiGHS's C-level debug chatter during a solve (thread-safe).

    Some HiGHS builds print internal diagnostics straight to fd 1, which
    scipy's ``disp=False`` cannot suppress.
    """
    global _silence_depth, _silence_saved_fd, _silence_devnull
    with _silence_lock:
        if _silence_depth == 0:
            try:
                _silence_saved_fd = os.dup(1)
            except OSError:  # exotic environments without a real fd 1
                _silence_saved_fd = None
            if _silence_saved_fd is not None:
                _silence_devnull = open(os.devnull, "wb")
                os.dup2(_silence_devnull.fileno(), 1)
        _silence_depth += 1
    try:
        yield
    finally:
        with _silence_lock:
            _silence_depth -= 1
            if _silence_depth == 0 and _silence_saved_fd is not None:
                os.dup2(_silence_saved_fd, 1)
                os.close(_silence_saved_fd)
                _silence_saved_fd = None
                _silence_devnull.close()
                _silence_devnull = None


@dataclass(frozen=True)
class ILPSolution:
    """A solved planning subproblem."""

    #: Stage index per layer group.
    assign_stage: Tuple[int, ...]
    #: Bitwidth per layer group.
    assign_bits: Tuple[int, ...]
    objective: float
    latency_s: float
    quality: float
    solve_time_s: float
    status: str


def _var_layout(problem: PlanningProblem) -> Tuple[int, int, int, int]:
    nz = problem.n_groups * problem.n_stages * problem.n_bits
    return nz, nz, nz + 1, nz + 2  # n_z, idx T_pre_max, T_dec_max, D


def _zidx(problem: PlanningProblem, g: int, j: int, k: int) -> int:
    return (g * problem.n_stages + j) * problem.n_bits + k


def _build_milp(
    problem: PlanningProblem,
    theta: float,
    quality_budget: Optional[float],
    latency_objective: bool = True,
) -> Tuple[np.ndarray, List[LinearConstraint], np.ndarray, Bounds]:
    """Assemble objective (4) + constraints (5)-(16) for one subproblem.

    Shared between the exact branch-and-bound solve and the LP relaxation
    the search engine uses as an admissible pruning bound — both must see
    bit-identical matrices for the bound to be sound.
    """
    G, N, K = problem.n_groups, problem.n_stages, problem.n_bits
    n = problem.workload.output_len
    nz, i_pre, i_dec, i_d = _var_layout(problem)
    nvars = nz + 3

    c = np.zeros(nvars)
    for g in range(G):
        for j in range(N):
            for k in range(K):
                idx = _zidx(problem, g, j, k)
                if latency_objective:
                    c[idx] = problem.l_pre[g, j, k] + theta * problem.omega[g, k]
                else:
                    # Tiny latency tie-breaker: the quality-only problem has
                    # a large plateau of symmetric optima that stalls
                    # branch-and-bound; epsilon-perturbing with layer costs
                    # breaks the symmetry without changing the quality
                    # optimum materially.
                    c[idx] = problem.omega[g, k] + 1e-4 * (
                        problem.l_pre[g, j, k] + problem.l_dec[g, j, k]
                    )
    if latency_objective:
        c[i_pre] = max(problem.prefill_jobs - 1, 0)
        c[i_d] = 1.0

    constraints: List[LinearConstraint] = []

    # (9)-(11): each group gets exactly one (stage, bitwidth).
    a_assign = lil_matrix((G, nvars))
    for g in range(G):
        for j in range(N):
            for k in range(K):
                a_assign[g, _zidx(problem, g, j, k)] = 1.0
    constraints.append(LinearConstraint(a_assign.tocsr(), 1.0, 1.0))

    if latency_objective:
        # (5): T_pre_max >= per-stage prefill time (incl. constants).
        a = lil_matrix((N, nvars))
        ub = np.zeros(N)
        for j in range(N):
            for g in range(G):
                for k in range(K):
                    a[j, _zidx(problem, g, j, k)] = problem.l_pre[g, j, k]
            a[j, i_pre] = -1.0
            ub[j] = -problem.const_pre[j]
        constraints.append(LinearConstraint(a.tocsr(), -np.inf, ub))

        # (6): T_dec_max >= per-stage decode time.
        a = lil_matrix((N, nvars))
        ub = np.zeros(N)
        for j in range(N):
            for g in range(G):
                for k in range(K):
                    a[j, _zidx(problem, g, j, k)] = problem.l_dec[g, j, k]
            a[j, i_dec] = -1.0
            ub[j] = -problem.const_dec[j]
        constraints.append(LinearConstraint(a.tocsr(), -np.inf, ub))

        # Decode span D >= bottleneck bound and >= round-trip bound.
        a = lil_matrix((2, nvars))
        ub = np.zeros(2)
        a[0, i_dec] = (n - 1) * problem.mu_dec
        a[0, i_d] = -1.0
        ub[0] = 0.0
        for g in range(G):
            for j in range(N):
                for k in range(K):
                    a[1, _zidx(problem, g, j, k)] = (n - 1) * problem.l_dec[
                        g, j, k
                    ]
        a[1, i_d] = -1.0
        ub[1] = -(n - 1) * (
            float(problem.const_dec.sum()) + float(problem.comm_dec.sum())
        )
        constraints.append(LinearConstraint(a.tocsr(), -np.inf, ub))

    # (12)-(13): per-stage memory.
    a = lil_matrix((N, nvars))
    for j in range(N):
        for g in range(G):
            for k in range(K):
                a[j, _zidx(problem, g, j, k)] = problem.mem[g, k]
    constraints.append(LinearConstraint(a.tocsr(), -np.inf, problem.capacity))

    # (15)-(16): contiguity — cumulative stage mass is non-increasing in g.
    if N > 1 and G > 1:
        a = lil_matrix(((G - 1) * (N - 1), nvars))
        row = 0
        for g in range(G - 1):
            for j in range(N - 1):
                for jj in range(j + 1):
                    for k in range(K):
                        a[row, _zidx(problem, g, jj, k)] = 1.0
                        a[row, _zidx(problem, g + 1, jj, k)] = -1.0
                row += 1
        constraints.append(LinearConstraint(a.tocsr(), 0.0, np.inf))

    # Every stage holds at least one group (no empty pipeline stages).
    if N > 1:
        a = lil_matrix((N, nvars))
        for j in range(N):
            for g in range(G):
                for k in range(K):
                    a[j, _zidx(problem, g, j, k)] = 1.0
        constraints.append(LinearConstraint(a.tocsr(), 1.0, np.inf))

    # Optional hard quality budget (Sec. VI-C mode).
    if quality_budget is not None:
        a = lil_matrix((1, nvars))
        for g in range(G):
            for j in range(N):
                for k in range(K):
                    a[0, _zidx(problem, g, j, k)] = problem.omega[g, k]
        constraints.append(LinearConstraint(a.tocsr(), -np.inf, quality_budget))

    integrality = np.zeros(nvars)
    integrality[:nz] = 1
    lb = np.zeros(nvars)
    ub_v = np.full(nvars, np.inf)
    ub_v[:nz] = 1.0
    if problem.comm_pre.size:
        lb[i_pre] = float(problem.comm_pre.max())
        lb[i_dec] = float(problem.comm_dec.max())
    return c, constraints, integrality, Bounds(lb, ub_v)


def solve_partition_ilp(
    problem: PlanningProblem,
    theta: float = 10.0,
    quality_budget: Optional[float] = None,
    time_limit_s: float = 60.0,
    latency_objective: bool = True,
) -> Optional[ILPSolution]:
    """Solve one planning subproblem; ``None`` when infeasible.

    ``latency_objective=False`` yields the *adabits* problem: minimize the
    quality indicator only (the latency epigraphs are dropped).
    """
    t0 = time.perf_counter()
    G, N, K = problem.n_groups, problem.n_stages, problem.n_bits
    nz, _, _, _ = _var_layout(problem)
    c, constraints, integrality, bounds = _build_milp(
        problem, theta, quality_budget, latency_objective
    )

    with trace.span(
        "ilp.solve",
        groups=G,
        stages=N,
        bits=K,
        mode="latency" if latency_objective else "adabits",
        budgeted=quality_budget is not None,
    ) as sp:
        with _silenced_stdout():
            res = milp(
                c,
                constraints=constraints,
                integrality=integrality,
                bounds=bounds,
                options={"time_limit": time_limit_s, "mip_rel_gap": 1e-4},
            )
        sp.set(status=int(res.status), feasible=res.x is not None)
    solve_time = time.perf_counter() - t0
    if trace.enabled:
        metrics.counter("ilp.solves").inc()
        metrics.histogram("ilp.solve_time_s").observe(solve_time)
        if res.x is None:
            metrics.counter("ilp.infeasible").inc()
    if res.x is None:
        return None

    z = res.x[:nz].reshape(G, N, K)
    assign_stage: List[int] = []
    assign_bits: List[int] = []
    for g in range(G):
        j, k = np.unravel_index(int(np.argmax(z[g])), (N, K))
        assign_stage.append(int(j))
        assign_bits.append(int(problem.bit_choices[k]))
    latency = problem.latency_estimate(assign_stage, assign_bits)
    quality = problem.quality_sum(assign_bits)
    return ILPSolution(
        assign_stage=tuple(assign_stage),
        assign_bits=tuple(assign_bits),
        objective=float(res.fun),
        latency_s=latency,
        quality=quality,
        solve_time_s=solve_time,
        status="optimal" if res.status == 0 else f"status-{res.status}",
    )


def solve_adabits(
    problem: PlanningProblem,
    quality_budget: Optional[float] = None,
    time_limit_s: float = 60.0,
) -> Optional[ILPSolution]:
    """Pure adaptive quantization: best quality that fits (no latency)."""
    return solve_partition_ilp(
        problem,
        theta=1.0,
        quality_budget=quality_budget,
        time_limit_s=time_limit_s,
        latency_objective=False,
    )


def solve_partition_lp_relaxation(
    problem: PlanningProblem,
    theta: float = 10.0,
    quality_budget: Optional[float] = None,
    time_limit_s: float = 60.0,
) -> Optional[float]:
    """LP relaxation of the partition MILP: an admissible score bound.

    Every feasible integer assignment scores
    ``latency + theta * quality  =  c @ z  +  sum(const_pre) +
    sum(comm_pre)`` (the epigraph variables are tight at a minimizer and
    the prefill constants/communication enter the score but not the
    objective vector), so the relaxation's optimum plus those constants
    lower-bounds the score of *any* solution a per-candidate solve can
    return.  Returns ``inf`` when the relaxation is provably infeasible
    (the integer problem then is too) and ``None`` when no bound could
    be computed (e.g. the LP hit the time limit) — callers must not
    prune on ``None``.
    """
    c, constraints, integrality, bounds = _build_milp(
        problem, theta, quality_budget, latency_objective=True
    )
    with trace.span(
        "ilp.lp_relaxation",
        groups=problem.n_groups,
        stages=problem.n_stages,
        budgeted=quality_budget is not None,
    ) as sp:
        with _silenced_stdout():
            res = milp(
                c,
                constraints=constraints,
                integrality=np.zeros_like(integrality),
                bounds=bounds,
                options={"time_limit": time_limit_s},
            )
        sp.set(status=int(res.status))
    if trace.enabled:
        metrics.counter("ilp.lp_relaxations").inc()
    if res.status == 2:  # LP infeasible => the ILP is infeasible as well
        return float("inf")
    if res.x is None:
        return None
    return float(res.fun) + float(
        problem.const_pre.sum() + problem.comm_pre.sum()
    )
