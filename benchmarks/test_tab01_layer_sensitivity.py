"""Bench: regenerate Table I (quality vs quantized layer range)."""

from repro.experiments import tab01_layer_sensitivity


def test_tab01_layer_sensitivity(experiment):
    res = experiment(tab01_layer_sensitivity.run)
    assert res.summary["opt-1.3b_early_best"] == 1.0
    assert res.summary["bloom-3b_early_best"] == 1.0
    assert res.summary["tinylm_prop1_rank_corr"] > 0.8
