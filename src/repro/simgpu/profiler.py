"""Profiling API: noisy "measurements" from the simulated testbed.

The assigner fits its cost models from a small set of GPU calibration
payloads (Sec. III).  This module plays the role of those payloads: it
returns roofline latencies perturbed by seeded multiplicative measurement
noise, plus memory readings with allocator page granularity, so that fitting
and validation (Fig. 8) exercise a realistic estimation problem rather than
reading the ground truth back.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

from ..hardware.gpus import GPUSpec
from ..models.architectures import ModelSpec
from ..models import layers as L
from .memory import PAGE_BYTES
from .roofline import layer_time

#: Relative std-dev of simulated latency measurements.
LATENCY_NOISE_SIGMA = 0.03


@dataclass(frozen=True)
class LatencySample:
    """One profiled layer execution."""

    phase: str
    bits: int
    batch: int
    seq: int
    time_s: float


@dataclass
class Profiler:
    """Measurement front-end over the roofline simulator."""

    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    #: Lognormal variates drawn so far — the RNG stream position.  Part of
    #: the persistent-cache key so a cache hit can *burn* the same number
    #: of draws and leave the stream exactly where a recompute would have.
    _draws: int = field(init=False, default=0, repr=False)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def measure_layer(
        self,
        gpu: GPUSpec,
        spec: ModelSpec,
        bits: int,
        phase: str,
        batch: int,
        seq: int,
        bit_kv: int = 16,
        repeats: int = 3,
    ) -> float:
        """Median of ``repeats`` noisy timings of one layer execution."""
        truth = layer_time(gpu, spec, bits, phase, batch, seq, bit_kv)
        noise = self._rng.lognormal(
            mean=0.0, sigma=LATENCY_NOISE_SIGMA, size=repeats
        )
        self._draws += repeats
        return float(truth * np.median(noise))

    def measure_memory(
        self,
        spec: ModelSpec,
        bits_per_layer: Sequence[int],
        batch: int,
        context: int,
        bit_kv: int = 16,
    ) -> int:
        """Observed bytes for a stage holding the given quantized layers.

        Weights and the KV reservation are pooled into one arena each (as
        caching allocators do) and page-rounded — the two components the
        Fig. 8 memory-fidelity experiment compares.
        """
        weights = sum(L.weight_storage_bytes(spec, bits) for bits in bits_per_layer)
        kv = len(list(bits_per_layer)) * L.kv_cache_bytes(
            spec, batch, context, bit_kv
        )
        rounded_w = -(-weights // PAGE_BYTES) * PAGE_BYTES
        rounded_kv = -(-kv // PAGE_BYTES) * PAGE_BYTES
        return rounded_w + rounded_kv

    def profile_grid(
        self,
        gpu: GPUSpec,
        spec: ModelSpec,
        bits: int,
        phase: str,
        batches: Iterable[int] = (1, 2, 4, 8, 16),
        seqs: Iterable[int] = (64, 128, 256, 512, 1024),
        bit_kv: int = 16,
    ) -> List[LatencySample]:
        """Calibration payload: measure a (batch x seq) grid for one config.

        For decode, ``seqs`` are past context lengths.

        Grids are memoized in the persistent result cache
        (:mod:`repro.cache`): the key covers the full device/model specs,
        the grid, the noise seed *and* the RNG stream position, so cached
        replies are bit-identical to recomputation — including the state
        the generator is left in (a hit burns the same number of noise
        variates a recompute would have drawn).
        """
        from ..cache import MISS, cache_key, code_version_salt, default_cache

        batches = tuple(batches)
        seqs = tuple(seqs)
        cache = default_cache()
        key = None
        if cache is not None:
            key = cache_key(
                {
                    "kind": "profile_grid",
                    "salt": code_version_salt(),
                    "gpu": dataclasses.asdict(gpu),
                    "model": dataclasses.asdict(spec),
                    "bits": bits,
                    "phase": phase,
                    "batches": batches,
                    "seqs": seqs,
                    "bit_kv": bit_kv,
                    "seed": self.seed,
                    "rng_draws": self._draws,
                }
            )
            hit = cache.get("profiler_grid", key)
            if hit is not MISS:
                draws = int(hit["draws"])
                if draws > 0:
                    # Batched fills consume the PCG64 stream exactly like
                    # the equivalent sequence of per-measurement draws.
                    self._rng.lognormal(
                        mean=0.0, sigma=LATENCY_NOISE_SIGMA, size=draws
                    )
                    self._draws += draws
                return [
                    LatencySample(p, b, v, s, t)
                    for p, b, v, s, t in hit["samples"]
                ]
        draws_before = self._draws
        samples: List[LatencySample] = []
        for v in batches:
            for s in seqs:
                t = self.measure_layer(gpu, spec, bits, phase, v, s, bit_kv)
                samples.append(LatencySample(phase, bits, v, s, t))
        if cache is not None:
            cache.put(
                "profiler_grid",
                key,
                {
                    "draws": self._draws - draws_before,
                    "samples": [
                        [s.phase, s.bits, s.batch, s.seq, s.time_s]
                        for s in samples
                    ],
                },
            )
        return samples
