"""Planning-problem construction: cost tensors for one candidate config.

Given a device-topology ordering, micro-batch sizes and the fitted cost
models, this module materializes everything the ILP/heuristic needs:
per-(group, stage, bitwidth) prefill/decode latencies, per-(group,
bitwidth) memory, per-group quality indicators, per-stage constants
(embedding/LM-head work, communication), and capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..costmodel.latency import LatencyCostModel
from ..costmodel.memory import (
    MemoryCostModel,
    activation_workspace_bytes,
    embedding_memory_bytes,
)
from ..hardware.cluster import ClusterSpec, Device
from ..hardware.gpus import GPUSpec
from ..hardware.interconnect import LinkSpec
from ..models.architectures import ModelSpec
from ..models import layers as L
from ..pipeline.stage import CostModelTiming, TimingSource
from ..simgpu import roofline
from ..workloads.spec import BatchWorkload


@dataclass(frozen=True)
class StageGroup:
    """One pipeline stage candidate: a device or an intra-node TP group."""

    device_ids: Tuple[int, ...]
    gpu: GPUSpec

    @property
    def tp_degree(self) -> int:
        return len(self.device_ids)

    @property
    def capacity_bytes(self) -> int:
        return self.gpu.usable_mem_bytes * self.tp_degree

    def key(self) -> Tuple[str, int]:
        """Symmetry key: orderings are deduped on (gpu model, tp degree)."""
        return (self.gpu.name, self.tp_degree)


@dataclass
class PlanningProblem:
    """All numbers for one (ordering, eta, xi) planning subproblem."""

    spec: ModelSpec
    workload: BatchWorkload
    ordering: Tuple[StageGroup, ...]
    eta: int
    xi: int
    bit_choices: Tuple[int, ...]
    #: Layer-group sizes (groups of consecutive decoder layers).
    group_sizes: Tuple[int, ...]
    #: l_pre[g, j, k]: per-chunk prefill time of group g on stage j at bits k.
    l_pre: np.ndarray
    #: l_dec[g, j, k]: per-token decode time at the average context s + n/2.
    l_dec: np.ndarray
    #: mem[g, k]: weights + KV reservation of group g at bits k.
    mem: np.ndarray
    #: omega[g, k]: summed variance indicator of group g at bits k.
    omega: np.ndarray
    #: Per-stage constants added to every chunk / decode step (embed, head).
    const_pre: np.ndarray
    const_dec: np.ndarray
    #: Per-stage capacity after subtracting workspace (and M_emb on stage 0).
    capacity: np.ndarray
    #: Per-boundary communication times (prefill chunk / decode step).
    comm_pre: np.ndarray
    comm_dec: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def n_stages(self) -> int:
        return len(self.ordering)

    @property
    def n_bits(self) -> int:
        return len(self.bit_choices)

    @property
    def mu_pre(self) -> int:
        return -(-self.workload.batch // self.eta)

    @property
    def mu_dec(self) -> int:
        return -(-self.workload.batch // self.xi)

    @property
    def prefill_jobs(self) -> int:
        """Total chunk jobs flowing through the pipeline in prefill."""
        return self.mu_pre * self.workload.kappa

    def latency_estimate(
        self, assign_stage: Sequence[int], assign_bits: Sequence[int]
    ) -> float:
        """Analytic end-to-end latency of a concrete assignment.

        Mirrors the ILP objective: prefill pipeline span plus the decode
        span as the max of the bottleneck-bound and round-trip-bound terms.
        Used by the heuristic and for reporting.
        """
        t_pre = self.const_pre.copy()
        t_dec = self.const_dec.copy()
        bit_idx = {b: k for k, b in enumerate(self.bit_choices)}
        for g, (j, b) in enumerate(zip(assign_stage, assign_bits)):
            k = bit_idx[int(b)]
            t_pre[j] += self.l_pre[g, j, k]
            t_dec[j] += self.l_dec[g, j, k]
        n = self.workload.output_len
        pre_bottleneck = max(
            float(np.max(t_pre)),
            float(np.max(self.comm_pre)) if self.comm_pre.size else 0.0,
        )
        prefill_span = float(t_pre.sum() + self.comm_pre.sum()) + (
            self.prefill_jobs - 1
        ) * pre_bottleneck
        dec_bottleneck = max(
            float(np.max(t_dec)),
            float(np.max(self.comm_dec)) if self.comm_dec.size else 0.0,
        )
        round_trip = float(t_dec.sum() + self.comm_dec.sum())
        decode_span = (n - 1) * max(self.mu_dec * dec_bottleneck, round_trip)
        return prefill_span + decode_span

    def quality_sum(
        self, assign_bits: Sequence[int]
    ) -> float:
        """Summed variance indicator of a concrete assignment."""
        bit_idx = {b: k for k, b in enumerate(self.bit_choices)}
        return float(
            sum(self.omega[g, bit_idx[int(b)]] for g, b in enumerate(assign_bits))
        )

    def memory_ok(
        self, assign_stage: Sequence[int], assign_bits: Sequence[int]
    ) -> bool:
        """Constraints (12)-(13) for a concrete assignment."""
        bit_idx = {b: k for k, b in enumerate(self.bit_choices)}
        used = np.zeros(self.n_stages)
        for g, (j, b) in enumerate(zip(assign_stage, assign_bits)):
            used[j] += self.mem[g, bit_idx[int(b)]]
        return bool(np.all(used <= self.capacity + 1e-6))


def group_layers(num_layers: int, group_size: int) -> Tuple[int, ...]:
    """Split ``num_layers`` into consecutive groups of ``group_size``."""
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    full, rem = divmod(num_layers, group_size)
    sizes = [group_size] * full
    if rem:
        sizes.append(rem)
    return tuple(sizes)


def group_indicator(
    omega_layers: np.ndarray, group_sizes: Sequence[int]
) -> np.ndarray:
    """Sum a per-layer indicator table over consecutive layer groups."""
    out = np.zeros((len(group_sizes), omega_layers.shape[1]))
    start = 0
    for g, size in enumerate(group_sizes):
        out[g] = omega_layers[start : start + size].sum(axis=0)
        start += size
    return out


@dataclass
class ProblemInvariants:
    """Everything about a candidate subproblem that does NOT depend on
    the micro-batch pair ``(eta, xi)``.

    The planner sweeps a grid of micro-batch pairs per (ordering, KV
    bitwidth); the memory table, grouped indicator, stage capacities and
    inter-stage links are identical across that whole grid.  The search
    engine materializes these once per (ordering, bit_kv) and specializes
    only the eta/xi-dependent arrays per candidate — the arrays here are
    shared read-only between candidates (and solver threads), never
    mutated.
    """

    ordering: Tuple[StageGroup, ...]
    bit_choices: Tuple[int, ...]
    group_sizes: Tuple[int, ...]
    #: mem[g, k]: weights + KV reservation of group g at bits k.
    mem: np.ndarray
    #: omega[g, k]: grouped variance indicator.
    omega: np.ndarray
    #: Raw per-stage capacity before eta-dependent deductions.
    cap_base: np.ndarray
    #: Inter-stage links (n_stages - 1 of them).
    links: Tuple[LinkSpec, ...]


def problem_invariants(
    spec: ModelSpec,
    cluster: ClusterSpec,
    ordering: Sequence[StageGroup],
    workload: BatchWorkload,
    omega_layers: np.ndarray,
    bit_choices: Sequence[int],
    group_size: int = 1,
    bit_kv: int = 16,
) -> ProblemInvariants:
    """Precompute the (eta, xi)-independent parts of a subproblem."""
    ordering = tuple(ordering)
    n_stages = len(ordering)
    bit_choices = tuple(bit_choices)
    group_sizes = group_layers(spec.num_layers, group_size)
    gs = np.array(group_sizes, dtype=float)

    mem_model = MemoryCostModel(
        spec=spec,
        batch=workload.batch,
        context=workload.context_len,
        bit_kv=bit_kv,
        chunk_tokens=workload.chunk_tokens,
    )
    mem = np.zeros((len(group_sizes), len(bit_choices)))
    for k, b in enumerate(bit_choices):
        per_layer = mem_model.layer_bytes(b)
        mem[:, k] = gs * per_layer

    omega = group_indicator(omega_layers, group_sizes)

    cap_base = np.array(
        [float(sg.capacity_bytes) for sg in ordering], dtype=float
    )

    by_id: Dict[int, Device] = {d.device_id: d for d in cluster.devices}
    links = tuple(
        cluster.link_between(
            by_id[ordering[j].device_ids[0]],
            by_id[ordering[j + 1].device_ids[0]],
        )
        for j in range(n_stages - 1)
    )
    return ProblemInvariants(
        ordering=ordering,
        bit_choices=bit_choices,
        group_sizes=group_sizes,
        mem=mem,
        omega=omega,
        cap_base=cap_base,
        links=links,
    )


def build_problem(
    spec: ModelSpec,
    cluster: ClusterSpec,
    ordering: Sequence[StageGroup],
    workload: BatchWorkload,
    cost_model: LatencyCostModel,
    omega_layers: np.ndarray,
    eta: int,
    xi: int,
    bit_choices: Sequence[int],
    group_size: int = 1,
    bit_kv: int = 16,
    phase_blind: bool = False,
    timing: Optional[TimingSource] = None,
    invariants: Optional[ProblemInvariants] = None,
) -> PlanningProblem:
    """Materialize the planning subproblem for one candidate configuration.

    ``phase_blind=True`` builds the ablation variant that ignores the
    decode phase's distinct device profile: decode costs are replaced by
    prefill costs rescaled to the same total magnitude, so partitioning
    balances on prefill ratios alone (what encoder-oriented heterogeneous
    partitioners do, Sec. II-B).

    ``timing`` lets a caller inject a (possibly memoized) timing source;
    ``invariants`` reuses precomputed (eta, xi)-independent tensors from
    :func:`problem_invariants`.  Both produce bit-identical problems to
    the self-contained call — the cached values are the very floats the
    uncached path computes.
    """
    if eta <= 0 or xi <= 0:
        raise ValueError("micro-batch sizes must be positive")
    ordering = tuple(ordering)
    n_stages = len(ordering)
    bit_choices = tuple(bit_choices)
    if invariants is None:
        invariants = problem_invariants(
            spec,
            cluster,
            ordering,
            workload,
            omega_layers,
            bit_choices,
            group_size=group_size,
            bit_kv=bit_kv,
        )
    group_sizes = invariants.group_sizes
    n_bits = len(bit_choices)

    if timing is None:
        timing = CostModelTiming(cost_model=cost_model, spec=spec)
    chunk = workload.chunk_len
    avg_ctx = workload.prompt_len + workload.output_len // 2

    # Per-layer, per-stage, per-bit unit costs, then scale by group size.
    unit_pre = np.zeros((n_stages, n_bits))
    unit_dec = np.zeros((n_stages, n_bits))
    for j, sg in enumerate(ordering):
        for k, b in enumerate(bit_choices):
            unit_pre[j, k] = timing.prefill(sg.gpu, b, eta, chunk, sg.tp_degree)
            unit_dec[j, k] = timing.decode(sg.gpu, b, xi, avg_ctx, sg.tp_degree)
    if phase_blind:
        # Keep the decode phase's overall magnitude but impose prefill's
        # cross-device/bit ratios on it.
        scale = unit_dec.sum() / max(unit_pre.sum(), 1e-12)
        unit_dec = unit_pre * scale
    gs = np.array(group_sizes, dtype=float)
    l_pre = gs[:, None, None] * unit_pre[None, :, :]
    l_dec = gs[:, None, None] * unit_dec[None, :, :]

    mem = invariants.mem
    omega = invariants.omega

    const_pre = np.zeros(n_stages)
    const_dec = np.zeros(n_stages)
    const_pre[0] += roofline.embedding_time(ordering[0].gpu, spec, eta * chunk)
    const_dec[0] += roofline.embedding_time(ordering[0].gpu, spec, xi)
    const_pre[-1] += roofline.lm_head_time(ordering[-1].gpu, spec, eta)
    const_dec[-1] += roofline.lm_head_time(ordering[-1].gpu, spec, xi)

    ws = activation_workspace_bytes(spec, eta, min(chunk, workload.context_len))
    capacity = invariants.cap_base - ws
    capacity[0] -= embedding_memory_bytes(spec, eta)
    if n_stages > 1:
        capacity[-1] -= spec.lm_head_elements * L.FP16_BYTES

    comm_pre = np.zeros(max(n_stages - 1, 0))
    comm_dec = np.zeros(max(n_stages - 1, 0))
    pre_bytes = L.hidden_state_bytes(spec, eta, chunk)
    dec_bytes = L.hidden_state_bytes(spec, xi, 1)
    for j, link in enumerate(invariants.links):
        comm_pre[j] = link.transfer_time(pre_bytes)
        comm_dec[j] = link.transfer_time(dec_bytes)

    return PlanningProblem(
        spec=spec,
        workload=workload,
        ordering=ordering,
        eta=eta,
        xi=xi,
        bit_choices=bit_choices,
        group_sizes=group_sizes,
        l_pre=l_pre,
        l_dec=l_dec,
        mem=mem,
        omega=omega,
        const_pre=const_pre,
        const_dec=const_dec,
        capacity=capacity,
        comm_pre=comm_pre,
        comm_dec=comm_dec,
    )
