"""Tests for the observability layer (``repro.obs``).

Covers the tracer (span nesting, exception safety, disabled no-op fast
path, normalization determinism), the metrics registry (counter/gauge/
histogram semantics, bucket edges, conflict detection) and the scoped
tracer installation helpers.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_FRACTION_BUCKETS,
    MetricsRegistry,
    Tracer,
    current_tracer,
    flame_summary,
    install_from_env,
    install_tracer,
    normalize_trace,
    parse_trace,
    trace,
    uninstall_tracer,
    use_tracer,
)
from repro.obs.tracer import NOOP_SPAN


# ---------------------------------------------------------------------------
# Span basics
# ---------------------------------------------------------------------------


class TestSpanNesting:
    def test_parent_and_depth(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
            with t.span("d"):
                pass
        recs = {r["name"]: r for r in t.records}
        assert recs["a"]["parent"] is None and recs["a"]["depth"] == 0
        assert recs["b"]["parent"] == recs["a"]["i"] and recs["b"]["depth"] == 1
        assert recs["c"]["parent"] == recs["b"]["i"] and recs["c"]["depth"] == 2
        assert recs["d"]["parent"] == recs["a"]["i"] and recs["d"]["depth"] == 1

    def test_sibling_spans_do_not_nest(self):
        t = Tracer(enabled=True)
        with t.span("x"):
            pass
        with t.span("y"):
            pass
        recs = t.records
        assert all(r["parent"] is None for r in recs)
        assert all(r["depth"] == 0 for r in recs)

    def test_attrs_recorded_and_set(self):
        t = Tracer(enabled=True)
        with t.span("s", k=3) as sp:
            sp.set(extra="v", n=7)
        (rec,) = t.records
        assert rec["attrs"] == {"k": 3, "extra": "v", "n": 7}

    def test_wall_and_cpu_time_nonnegative(self):
        t = Tracer(enabled=True)
        with t.span("s"):
            sum(range(1000))
        (rec,) = t.records
        assert rec["wall_s"] >= 0.0
        assert rec["cpu_s"] >= 0.0

    def test_per_thread_stacks(self):
        t = Tracer(enabled=True)

        def work(tag):
            with t.span(f"outer-{tag}"):
                with t.span(f"inner-{tag}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        recs = {r["name"]: r for r in t.records}
        for i in range(3):
            outer, inner = recs[f"outer-{i}"], recs[f"inner-{i}"]
            assert inner["parent"] == outer["i"]
            assert outer["parent"] is None


class TestSpanExceptionSafety:
    def test_error_status_and_propagation(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("no")
        (rec,) = t.records
        assert rec["status"] == "error:ValueError"
        assert t.open_spans == 0

    def test_nested_error_closes_all_spans(self):
        t = Tracer(enabled=True)
        with pytest.raises(KeyError):
            with t.span("outer"):
                with t.span("inner"):
                    raise KeyError("gone")
        recs = {r["name"]: r for r in t.records}
        assert recs["inner"]["status"] == "error:KeyError"
        assert recs["outer"]["status"] == "error:KeyError"
        assert t.open_spans == 0

    def test_ok_status_on_success(self):
        t = Tracer(enabled=True)
        with t.span("fine"):
            pass
        assert t.records[0]["status"] == "ok"


class TestDisabledNoop:
    def test_disabled_tracer_returns_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("anything") is NOOP_SPAN
        assert len(t) == 0

    def test_noop_span_api_is_inert(self):
        with NOOP_SPAN as sp:
            sp.set(a=1)
        # No state, no error — and reusable.
        with NOOP_SPAN:
            pass

    def test_global_dispatch_disabled_without_tracer(self):
        assert current_tracer() is None
        assert trace.enabled is False
        assert trace.span("x") is NOOP_SPAN

    def test_global_dispatch_enabled_under_use_tracer(self):
        t = Tracer(enabled=True)
        with use_tracer(t):
            assert trace.enabled is True
            with trace.span("inside"):
                pass
        assert trace.enabled is False
        assert [r["name"] for r in t.records] == ["inside"]


class TestTracerBookkeeping:
    def test_open_spans_counts(self):
        t = Tracer(enabled=True)
        sp = t.span("hanging")
        sp.__enter__()
        assert t.open_spans == 1
        sp.__exit__(None, None, None)
        assert t.open_spans == 0
        assert t.spans_started == t.spans_finished == 1

    def test_reset(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            pass
        t.reset()
        assert len(t) == 0
        assert t.spans_started == 0 and t.spans_finished == 0

    def test_jsonl_roundtrip(self, tmp_path):
        t = Tracer(enabled=True)
        with t.span("a", n=1):
            with t.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        t.write(str(path))
        parsed = parse_trace(str(path))
        assert len(parsed) == 2
        assert {r["name"] for r in parsed} == {"a", "b"}
        # Each line is valid standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)


# ---------------------------------------------------------------------------
# use_tracer / install helpers
# ---------------------------------------------------------------------------


class TestInstallScoping:
    def test_use_tracer_restores_previous(self):
        outer, inner = Tracer(enabled=True), Tracer(enabled=True)
        with use_tracer(outer):
            assert current_tracer() is outer
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_use_tracer_reentrant_same_tracer(self):
        t = Tracer(enabled=True)
        with use_tracer(t):
            with use_tracer(t):
                with trace.span("x"):
                    pass
            assert current_tracer() is t
        assert len(t) == 1

    def test_use_tracer_restores_on_error(self):
        t = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with use_tracer(t):
                raise RuntimeError("bail")
        assert current_tracer() is None

    def test_install_uninstall(self):
        t = Tracer(enabled=True)
        install_tracer(t)
        try:
            assert current_tracer() is t
        finally:
            uninstall_tracer()
        assert current_tracer() is None

    def test_install_from_env_absent(self):
        assert install_from_env(environ={}, register_atexit=False) is None
        assert current_tracer() is None

    def test_install_from_env_present(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = install_from_env(
            environ={"SPLITQUANT_TRACE": str(path)}, register_atexit=False
        )
        try:
            assert t is not None
            assert t.enabled
            assert current_tracer() is t
        finally:
            uninstall_tracer()


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


class TestNormalizeTrace:
    def _run_once(self):
        t = Tracer(enabled=True)
        with t.span("plan", model="m", ratio=0.3333333333333333):
            with t.span("solve", k=1):
                pass
            with t.span("solve", k=2):
                pass
        return t.records

    def test_identical_logical_runs_normalize_identically(self):
        a = normalize_trace(self._run_once())
        b = normalize_trace(self._run_once())
        assert isinstance(a, str)
        assert a == b

    def test_normalization_drops_timing_and_ids(self):
        norm = normalize_trace(self._run_once())
        for line in norm.splitlines():
            rec = json.loads(line)
            assert "t0_s" not in rec
            assert "wall_s" not in rec
            assert "cpu_s" not in rec
            assert "thread" not in rec
            assert "parent" not in rec
            assert set(rec) == {"path", "name", "status", "attrs", "i"}

    def test_normalization_keeps_ancestor_paths(self):
        norm = normalize_trace(self._run_once())
        paths = [json.loads(ln)["path"] for ln in norm.splitlines()]
        assert paths == ["plan", "plan/solve", "plan/solve"]

    def test_normalization_is_order_insensitive(self):
        recs = self._run_once()
        assert normalize_trace(recs) == normalize_trace(list(reversed(recs)))

    def test_float_attrs_rounded(self):
        t = Tracer(enabled=True)
        with t.span("s", x=0.1 + 0.2):
            pass
        (line,) = normalize_trace(t.records).splitlines()
        rec = json.loads(line)
        assert rec["attrs"]["x"] == float(f"{0.1 + 0.2:.12g}")


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_negative_inc_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5.0)
        g.add(-2.0)
        assert g.value == 3.0


class TestHistogram:
    def test_bucket_edges_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", boundaries=(1.0, 2.0, 5.0))
        # value == boundary lands in that boundary's bucket (le semantics)
        assert h.bucket_of(1.0) == 0
        assert h.bucket_of(1.5) == 1
        assert h.bucket_of(2.0) == 1
        assert h.bucket_of(5.0) == 2
        # overflow bucket
        assert h.bucket_of(5.0001) == 3

    def test_observe_accumulates(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", boundaries=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 3.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(6.0)
        assert h.counts == [2, 1, 1]
        assert h.mean == pytest.approx(1.5)

    def test_boundaries_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", boundaries=(2.0, 1.0))

    def test_default_fraction_buckets_cover_unit_interval(self):
        reg = MetricsRegistry()
        h = reg.histogram("f", boundaries=DEFAULT_FRACTION_BUCKETS)
        assert h.bucket_of(0.0) == 0
        # 1.0 is the last boundary, not overflow
        assert h.bucket_of(1.0) == len(DEFAULT_FRACTION_BUCKETS) - 1


class TestRegistryConflicts:
    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", boundaries=(1.0, 3.0))

    def test_snapshot_and_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", boundaries=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 2
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 1
        json.loads(reg.to_json())

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.counter("c").value == 0


# ---------------------------------------------------------------------------
# Flame report
# ---------------------------------------------------------------------------


class TestFlameSummary:
    def test_renders_tree(self):
        t = Tracer(enabled=True)
        with t.span("root"):
            with t.span("child"):
                pass
            with t.span("child"):
                pass
        text = flame_summary(t.records)
        assert "root" in text
        # aggregated: the two child spans collapse into one path line
        child_lines = [
            ln for ln in text.splitlines() if ln.lstrip().startswith("child")
        ]
        assert len(child_lines) == 1
        assert " 2 " in child_lines[0]

    def test_span_count_in_footer(self):
        t = Tracer(enabled=True)
        with t.span("only"):
            pass
        assert "1 spans, 0 errored" in flame_summary(t.records)

    def test_empty_trace(self):
        assert flame_summary([]) == "(empty trace)\n"


# ---------------------------------------------------------------------------
# Hypothesis: every span opened is closed exactly once
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def span_trees(draw, depth=0):
    """A random tree of (name, raises, children) span instructions."""
    name = draw(st.sampled_from(["a", "b", "c", "d"]))
    raises = draw(st.booleans()) if depth > 0 else False
    if depth >= 3 or raises:
        children = []
    else:
        children = draw(
            st.lists(span_trees(depth=depth + 1), min_size=0, max_size=3)
        )
    return (name, raises, children)


def _execute(tracer, node):
    name, raises, children = node
    with tracer.span(name):
        if raises:
            raise RuntimeError(name)
        for child in children:
            try:
                _execute(tracer, child)
            except RuntimeError:
                pass  # contain failures so siblings still run


@given(st.lists(span_trees(), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_every_span_opened_is_closed_exactly_once(trees):
    t = Tracer(enabled=True)
    for tree in trees:
        try:
            _execute(t, tree)
        except RuntimeError:
            pass
    assert t.open_spans == 0
    assert t.spans_started == t.spans_finished == len(t.records)
    # Every record carries a terminal status.
    assert all(
        r["status"] == "ok" or r["status"].startswith("error:")
        for r in t.records
    )
