"""Per-layer compute and memory-traffic accounting.

These functions turn a :class:`~repro.models.architectures.ModelSpec` into
the quantities the cost models and the kernel simulator consume:

* FLOPs per decoder layer in the prefill phase (processes ``v*s`` tokens,
  attention quadratic in ``s``) and per decode step (one token per request,
  attention linear in the past length),
* bytes moved per kernel (weights at the layer's bitwidth, KV cache reads
  and writes, activations) — the ``MOPs`` driving the memory-bound decode
  phase,
* weight storage per bitwidth including quantization scale/zero metadata.

FP16 activations are assumed throughout (weight-only and W8A8 schemes both
keep FP16 layer I/O at the boundaries we account at).
"""

from __future__ import annotations

from .architectures import ModelSpec

FP16_BYTES = 2
#: Group size for sub-byte quantization scales (GPTQ/AWQ default).
QUANT_GROUP_SIZE = 128


def weight_storage_bytes(
    spec: ModelSpec, bits: int, group_size: int = QUANT_GROUP_SIZE
) -> int:
    """Storage of one decoder layer's weights quantized to ``bits``.

    Matches the paper's ``(4*h1^2 + 2*h1*h2) * 4*bit/32`` element-scaling
    plus FP16 norm/bias parameters; sub-16-bit layers additionally carry a
    per-group FP16 scale and zero point.
    """
    if bits not in (3, 4, 8, 16):
        raise ValueError(f"unsupported bitwidth {bits}")
    linear = spec.decoder_linear_elements
    body = linear * bits // 8
    meta = 0
    if bits < 16:
        n_groups = -(-linear // group_size)  # ceil
        meta = n_groups * 2 * FP16_BYTES  # scale + zero per group
    norm = spec.decoder_norm_elements * FP16_BYTES
    return body + meta + norm


def embedding_bytes(spec: ModelSpec) -> int:
    """Storage of embeddings + LM head (kept in FP16, never quantized)."""
    return (spec.embedding_elements + spec.lm_head_elements) * FP16_BYTES


def kv_bytes_per_token(spec: ModelSpec, bit_kv: int = 16) -> int:
    """KV-cache bytes one layer stores per (request, token)."""
    return 2 * spec.kv_dim * bit_kv // 8


def kv_cache_bytes(
    spec: ModelSpec, batch: int, context: int, bit_kv: int = 16
) -> int:
    """KV-cache reservation of one layer for ``batch`` requests.

    ``context`` is the maximum total sequence length ``s + n`` the paper
    reserves for (prompt plus generated tokens).
    """
    return batch * context * kv_bytes_per_token(spec, bit_kv)


# ---------------------------------------------------------------------------
# FLOPs
# ---------------------------------------------------------------------------


def prefill_flops(spec: ModelSpec, batch: int, seq: int) -> float:
    """FLOPs of one decoder layer processing a ``batch x seq`` prompt chunk."""
    proj = 2.0 * batch * seq * spec.decoder_linear_elements
    # QK^T and attention-weighted V, causal: ~s^2/2 each but kernels compute
    # the dense rectangle; use the dense count as frameworks do.
    attn = 4.0 * batch * seq * seq * spec.hidden
    return proj + attn


def decode_flops(spec: ModelSpec, batch: int, past: int) -> float:
    """FLOPs of one decoder layer generating one token with ``past`` context."""
    proj = 2.0 * batch * spec.decoder_linear_elements
    attn = 4.0 * batch * (past + 1) * spec.hidden
    return proj + attn


# ---------------------------------------------------------------------------
# Bytes moved (MOPs)
# ---------------------------------------------------------------------------


def _activation_io_bytes(spec: ModelSpec, tokens: int) -> int:
    """Activation reads+writes of one layer for ``tokens`` total tokens.

    Counts the hidden-state traffic of the attention and MLP blocks
    (roughly 8 h1 + 2 h2 elements per token in FP16).
    """
    per_token = (8 * spec.hidden + 2 * spec.ffn) * FP16_BYTES
    return tokens * per_token


def prefill_bytes(
    spec: ModelSpec, batch: int, seq: int, bits: int, bit_kv: int = 16
) -> float:
    """Bytes one layer moves for a prefill chunk (weights, acts, KV write)."""
    w = weight_storage_bytes(spec, bits)
    act = _activation_io_bytes(spec, batch * seq)
    kv_write = batch * seq * kv_bytes_per_token(spec, bit_kv)
    return float(w + act + kv_write)


def decode_bytes(
    spec: ModelSpec, batch: int, past: int, bits: int, bit_kv: int = 16
) -> float:
    """Bytes one layer moves per decode step (weights, KV read, acts).

    The KV read over the whole past sequence plus the full weight matrix
    dominates — this is why decode is memory-bound and why lower weight
    bitwidths speed it up.
    """
    w = weight_storage_bytes(spec, bits)
    kv_read = batch * (past + 1) * kv_bytes_per_token(spec, bit_kv)
    act = _activation_io_bytes(spec, batch)
    return float(w + kv_read + act)


# ---------------------------------------------------------------------------
# Embedding / LM head compute
# ---------------------------------------------------------------------------


def embedding_flops(spec: ModelSpec, tokens: int) -> float:
    """Token + position embedding lookup cost (gather; counted as copies)."""
    return 2.0 * tokens * spec.embed_dim


def lm_head_flops(spec: ModelSpec, tokens: int) -> float:
    """Logit projection FLOPs for ``tokens`` output positions."""
    return 2.0 * tokens * spec.embed_dim * spec.vocab_size


def hidden_state_bytes(spec: ModelSpec, batch: int, tokens_per_req: int) -> int:
    """Size of the activation tensor handed between pipeline stages."""
    return batch * tokens_per_req * spec.hidden * FP16_BYTES


def arithmetic_intensity(
    spec: ModelSpec, batch: int, seq: int, phase: str, bits: int = 16
) -> float:
    """FLOPs-per-byte of one layer — the quantity contrasted in Sec. IV-A.

    ``phase`` is ``"prefill"`` or ``"decode"``; for decode, ``seq`` is the
    past context length.
    """
    if phase == "prefill":
        return prefill_flops(spec, batch, seq) / prefill_bytes(spec, batch, seq, bits)
    if phase == "decode":
        return decode_flops(spec, batch, seq) / decode_bytes(spec, batch, seq, bits)
    raise ValueError(f"unknown phase {phase!r}")
