"""Tests for planner extensions: KV planning, ablation flags, CLI."""

import dataclasses

import pytest

from repro.core import PlannerConfig, SplitQuantPlanner
from repro.experiments.__main__ import main as experiments_main
from repro.pipeline import simulate_plan
from repro.workloads import BatchWorkload

FAST = PlannerConfig(
    group_size=5,
    max_orderings=2,
    microbatch_candidates=(4, 8),
    time_limit_s=10.0,
    verify_top_k=1,
)


def test_kv_bit_choices_enumerated(opt13b, small_cluster, cost_model_13b,
                                   small_workload):
    cfg = dataclasses.replace(FAST, kv_bit_choices=(8, 16))
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    assert res is not None
    assert res.plan.bit_kv in (8, 16)
    sim = simulate_plan(res.plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_kv8_helps_memory_tight_case(opt30b):
    """On a memory-tight cluster, planning KV-8 must not hurt."""
    from repro.hardware import table_iii_cluster
    from repro.experiments.common import cost_model_for

    cluster = table_iii_cluster(6)
    wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
    cm = cost_model_for(opt30b, cluster)
    base_cfg = dataclasses.replace(FAST, group_size=4,
                                   microbatch_candidates=(8, 16))
    base = SplitQuantPlanner(opt30b, cluster, base_cfg, cost_model=cm).plan(wl)
    kv = SplitQuantPlanner(
        opt30b, cluster, dataclasses.replace(base_cfg, kv_bit_choices=(8, 16)),
        cost_model=cm,
    ).plan(wl)
    t_base = simulate_plan(base.plan, cluster, opt30b, wl).throughput_tokens_s
    t_kv = simulate_plan(kv.plan, cluster, opt30b, wl).throughput_tokens_s
    assert t_kv >= t_base * 0.99


def test_cost_model_for_kv_cached(opt13b, small_cluster, cost_model_13b):
    planner = SplitQuantPlanner(opt13b, small_cluster, FAST,
                                cost_model=cost_model_13b)
    assert planner.cost_model_for_kv(16) is cost_model_13b
    cm8 = planner.cost_model_for_kv(8)
    assert cm8 is planner.cost_model_for_kv(8)  # cached
    assert cm8 is not cost_model_13b


def test_tie_microbatches_flag(opt13b, small_cluster, cost_model_13b,
                               small_workload):
    cfg = dataclasses.replace(FAST, tie_microbatches=True,
                              microbatch_candidates=(2, 4, 8))
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    assert res is not None
    assert res.plan.prefill_microbatch == res.plan.decode_microbatch


def test_phase_blind_flag_produces_valid_plan(opt13b, small_cluster,
                                              cost_model_13b, small_workload):
    cfg = dataclasses.replace(FAST, phase_blind=True)
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    assert res is not None
    sim = simulate_plan(res.plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_phase_blind_problem_costs(opt13b, small_cluster, cost_model_13b):
    """Phase-blind decode costs inherit prefill's device ratios."""
    from repro.core import StageGroup, build_problem
    from repro.quant import normalized_indicator_table

    ordering = tuple(
        StageGroup(device_ids=(d.device_id,), gpu=d.gpu)
        for d in small_cluster.devices
    )
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=32)
    omega = normalized_indicator_table(opt13b, (3, 4, 8, 16))
    aware = build_problem(opt13b, small_cluster, ordering, wl,
                          cost_model_13b, omega, 4, 4, (3, 4, 8, 16))
    blind = build_problem(opt13b, small_cluster, ordering, wl,
                          cost_model_13b, omega, 4, 4, (3, 4, 8, 16),
                          phase_blind=True)
    # Same total decode magnitude, prefill ratios imposed.
    assert blind.l_dec.sum() == pytest.approx(aware.l_dec.sum(), rel=0.05)
    r_blind = blind.l_dec[0, 0, 3] / blind.l_dec[0, 1, 3]
    r_pre = aware.l_pre[0, 0, 3] / aware.l_pre[0, 1, 3]
    assert r_blind == pytest.approx(r_pre, rel=1e-6)


def test_cli_list(capsys):
    assert experiments_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig09" in out and "tab05" in out and "ablations" in out


def test_cli_unknown_experiment(capsys):
    assert experiments_main(["nope"]) == 2


def test_cli_runs_light_experiment(capsys):
    assert experiments_main(["fig01"]) == 0
    captured = capsys.readouterr()
    # Canonical result text on stdout; timing/progress on stderr so
    # parallel (--jobs N) and serial stdout are byte-identical.
    assert "Fleet GPU distribution" in captured.out
    assert "regenerated in" in captured.err
