"""Tests for variable-output-length workloads and their simulation."""

import pytest

from repro.pipeline import simulate_plan, simulate_plan_variable
from repro.plan import uniform_plan
from repro.workloads import BatchWorkload, VariableBatchWorkload


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


@pytest.fixture(scope="module")
def vworkload():
    return VariableBatchWorkload(
        prompt_len=256, output_lens=(10, 20, 20, 40, 40, 40, 80, 80)
    )


def test_properties(vworkload):
    assert vworkload.batch == 8
    assert vworkload.max_output == 80
    assert vworkload.mean_output == pytest.approx(41.25)
    assert vworkload.total_output_tokens == 330
    assert vworkload.context_len == 256 + 80


def test_validation():
    with pytest.raises(ValueError):
        VariableBatchWorkload(prompt_len=10, output_lens=())
    with pytest.raises(ValueError):
        VariableBatchWorkload(prompt_len=10, output_lens=(5, 0))
    with pytest.raises(ValueError):
        VariableBatchWorkload(prompt_len=0, output_lens=(5,))


def test_planning_views(vworkload):
    mean = vworkload.planning_view("mean")
    assert mean.output_len == 41
    assert mean.reserve_output_len == 80
    assert mean.context_len == vworkload.context_len
    mx = vworkload.planning_view("max")
    assert mx.output_len == 80
    with pytest.raises(ValueError):
        vworkload.planning_view("p99")


def test_reserve_output_len_validation():
    with pytest.raises(ValueError, match="reserve_output_len"):
        BatchWorkload(batch=1, prompt_len=10, output_len=50,
                      reserve_output_len=20)


def test_variable_simulation_basic(small_cluster, opt13b, vworkload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    res = simulate_plan_variable(plan, small_cluster, opt13b, vworkload)
    assert res.total_tokens == vworkload.total_output_tokens
    assert res.makespan_s > 0
    assert res.throughput_tokens_s > 0


def test_variable_cheaper_than_uniform_max(small_cluster, opt13b, vworkload):
    """Early retirement must beat padding everyone to the longest request."""
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    var = simulate_plan_variable(plan, small_cluster, opt13b, vworkload)
    mx = simulate_plan(
        plan, small_cluster, opt13b, vworkload.planning_view("max")
    )
    assert var.makespan_s < mx.makespan_s


def test_uniform_lengths_match_uniform_simulator(small_cluster, opt13b):
    """With identical per-request lengths both simulators must agree."""
    vwl = VariableBatchWorkload(prompt_len=256, output_lens=(32,) * 8)
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    var = simulate_plan_variable(plan, small_cluster, opt13b, vwl)
    uni = simulate_plan(
        plan, small_cluster, opt13b,
        BatchWorkload(batch=8, prompt_len=256, output_len=32),
    )
    assert var.total_tokens == uni.total_tokens
    assert var.makespan_s == pytest.approx(uni.makespan_s, rel=0.02)


def test_single_step_requests(small_cluster, opt13b):
    """Requests generating exactly one token need no decode at all."""
    vwl = VariableBatchWorkload(prompt_len=128, output_lens=(1, 1, 1, 1))
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    res = simulate_plan_variable(plan, small_cluster, opt13b, vwl)
    assert res.decode_span_s == 0.0
    assert res.total_tokens == 4


def test_memory_checked_at_max_context(small_cluster, opt30b):
    from repro.simgpu import OutOfMemoryError

    vwl = VariableBatchWorkload(prompt_len=256, output_lens=(8, 2000))
    plan = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 2, 2
    )
    with pytest.raises(OutOfMemoryError):
        simulate_plan_variable(plan, small_cluster, opt30b, vwl)


def test_describe(vworkload):
    d = vworkload.describe()
    assert "10..80" in d and "mean 41" in d
