"""Core quantization primitives (Sec. II-D).

Implements symmetric and asymmetric uniform quantization with deterministic
(round-to-nearest) or stochastic rounding, at per-tensor, per-channel or
per-group granularity.  These are the building blocks for RTN and GPTQ
weight quantization, the KV-cache quantizer, and the variance indicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class QuantConfig:
    """How to quantize a tensor."""

    bits: int
    symmetric: bool = True
    #: "tensor", "channel" (axis 0) or "group" (groups along the last axis).
    granularity: str = "channel"
    group_size: int = 128
    #: "deterministic" (round to nearest) or "stochastic".
    rounding: str = "deterministic"

    def __post_init__(self):
        if self.bits < 2 or self.bits > 16:
            raise ValueError(f"bits must be in [2, 16], got {self.bits}")
        if self.granularity not in ("tensor", "channel", "group"):
            raise ValueError(f"bad granularity {self.granularity!r}")
        if self.rounding not in ("deterministic", "stochastic"):
            raise ValueError(f"bad rounding {self.rounding!r}")
        if self.granularity == "group" and self.group_size <= 0:
            raise ValueError("group_size must be positive")

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1)) if self.symmetric else 0

    @property
    def qmax(self) -> int:
        if self.symmetric:
            return 2 ** (self.bits - 1) - 1
        return 2**self.bits - 1


@dataclass(frozen=True)
class QuantizedTensor:
    """A quantized tensor with its reconstruction metadata."""

    q: np.ndarray  # integer codes, same shape as the original
    scale: np.ndarray  # broadcastable to the original shape
    zero: np.ndarray  # zero point (float), broadcastable
    config: QuantConfig
    shape: Tuple[int, ...]

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point tensor."""
        return (self.q.astype(np.float64) - self.zero) * self.scale

    @property
    def nbytes_ideal(self) -> int:
        """Storage at exactly ``bits`` per element plus FP16 metadata."""
        n = int(np.prod(self.shape))
        meta = (self.scale.size + self.zero.size) * 2
        return (n * self.config.bits + 7) // 8 + meta


def _reduce_ranges(
    w: np.ndarray, cfg: QuantConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Min/max per quantization block, shaped to broadcast over ``w``."""
    if cfg.granularity == "tensor":
        return np.asarray(w.min()), np.asarray(w.max())
    if cfg.granularity == "channel":
        axes = tuple(range(1, w.ndim))
        return w.min(axis=axes, keepdims=True), w.max(axis=axes, keepdims=True)
    # group: blocks of group_size along the last axis
    *lead, last = w.shape
    g = cfg.group_size
    pad = (-last) % g
    if pad:
        wp = np.concatenate(
            [w, np.repeat(w[..., -1:], pad, axis=-1)], axis=-1
        )
    else:
        wp = w
    blocks = wp.reshape(*lead, wp.shape[-1] // g, g)
    mn = blocks.min(axis=-1, keepdims=True)
    mx = blocks.max(axis=-1, keepdims=True)
    # expand back to elementwise broadcast shape
    mn = np.repeat(mn, g, axis=-1).reshape(*lead, wp.shape[-1])[..., :last]
    mx = np.repeat(mx, g, axis=-1).reshape(*lead, wp.shape[-1])[..., :last]
    return mn, mx


def compute_scale_zero(
    w: np.ndarray, cfg: QuantConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Scale and zero point per the paper's Sec. II-D / IV-B definitions.

    Symmetric: ``s = max(|w_max|, |w_min|) / (2^(b-1) - 1)``, zero = 0.
    Asymmetric: ``s = (w_max - w_min) / (2^b - 1)``, zero = qmin - w_min/s.
    """
    mn, mx = _reduce_ranges(w, cfg)
    if cfg.symmetric:
        scale = np.maximum(np.abs(mn), np.abs(mx)) / (2 ** (cfg.bits - 1) - 1)
        scale = np.where(scale == 0.0, 1.0, scale)
        zero = np.zeros_like(scale)
    else:
        scale = (mx - mn) / (2**cfg.bits - 1)
        scale = np.where(scale == 0.0, 1.0, scale)
        zero = cfg.qmin - mn / scale
    return scale, zero


def _round(x: np.ndarray, rounding: str, rng: Optional[np.random.Generator]) -> np.ndarray:
    if rounding == "deterministic":
        return np.rint(x)
    if rng is None:
        rng = np.random.default_rng(0)
    floor = np.floor(x)
    frac = x - floor
    return floor + (rng.random(x.shape) < frac)


def quantize(
    w: np.ndarray,
    cfg: QuantConfig,
    rng: Optional[np.random.Generator] = None,
) -> QuantizedTensor:
    """Quantize ``w`` under ``cfg``; stochastic rounding uses ``rng``."""
    w = np.asarray(w, dtype=np.float64)
    scale, zero = compute_scale_zero(w, cfg)
    q = _round(w / scale + zero, cfg.rounding, rng)
    q = np.clip(q, cfg.qmin, cfg.qmax)
    return QuantizedTensor(
        q=q.astype(np.int32), scale=scale, zero=zero, config=cfg, shape=w.shape
    )


def quantize_dequantize(
    w: np.ndarray,
    cfg: QuantConfig,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Round-trip a tensor through quantization (the "fake quant" op)."""
    return quantize(w, cfg, rng).dequantize()


def quantization_mse(w: np.ndarray, cfg: QuantConfig) -> float:
    """Mean squared reconstruction error of quantizing ``w``."""
    err = np.asarray(w, dtype=np.float64) - quantize_dequantize(w, cfg)
    return float(np.mean(err**2))
