"""Threaded master/worker runtime executing plans on TinyLM.

Fault-tolerant: see :mod:`repro.runtime.faults` for the deterministic
failure-injection model and :class:`PipelineEngine` for the
checkpoint/degrade-and-replan recovery path.
"""

from .comm import Channel, ChannelClosed, StageFailure
from .engine import (
    GenerationResult,
    PipelineEngine,
    reference_generate,
    tinylm_layer_bytes,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FaultSpec,
    InjectedFault,
)
from .worker import RegroupMessage, StageMessage, StageWorker

__all__ = [
    "Channel",
    "ChannelClosed",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "GenerationResult",
    "InjectedFault",
    "PipelineEngine",
    "reference_generate",
    "RegroupMessage",
    "StageFailure",
    "StageMessage",
    "StageWorker",
    "tinylm_layer_bytes",
]
