"""Discrete-event fleet simulation: compose per-job pipeline sims.

Each scheduled job's one-batch serving is simulated with the PR-0
discrete-event pipeline simulator (:func:`repro.pipeline.simulate_plan`)
on the job's materialized group cluster; the measured per-batch makespan
replaces the planner's analytic prediction, the backfilling list
scheduler is re-run with the measured durations, and everything is
composed into a :class:`FleetSimResult`.

The headline metric mirrors Fig. 1: how many of the fleet's idle
GPU-hours would serving like this reclaim?  :meth:`FleetSimResult.
idle_recovery` extrapolates the pool utilization the schedule achieved
to the full idle capacity of a sampled fleet
(:class:`~repro.hardware.fleet.FleetStats`), using the same
:data:`~repro.hardware.fleet.HOURS_PER_MONTH` denominator
``FleetStats.idle_gpu_hours`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..hardware.fleet import HOURS_PER_MONTH, FleetStats
from ..models import get_model
from ..obs import metrics, trace
from ..pipeline.simulator import PipelineSimResult, simulate_plan
from .allocator import list_schedule
from .scheduler import FleetSchedule, ScheduledJob

__all__ = ["FleetSimResult", "JobSimRecord", "simulate_schedule"]


@dataclass(frozen=True)
class JobSimRecord:
    """One job's simulated run inside the fleet timeline."""

    job_id: str
    model: str
    group_counts: Tuple[Tuple[str, int], ...]
    num_batches: int
    start_s: float
    end_s: float
    total_tokens: int
    #: The one-batch discrete-event simulation the run is composed from.
    batch_sim: PipelineSimResult

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def throughput_tokens_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_tokens / self.duration_s

    def describe(self) -> str:
        group = "+".join(f"{n}x{g}" for g, n in self.group_counts)
        return (
            f"{self.job_id}: {self.model} on {group} "
            f"[{self.start_s:.1f}s - {self.end_s:.1f}s] "
            f"{self.throughput_tokens_s:.0f} tok/s"
        )


@dataclass(frozen=True)
class FleetSimResult:
    """Outcome of simulating a whole fleet schedule.

    Implements the :class:`repro.api.Summary` protocol — ``to_dict()``
    round-trips through :mod:`repro.serialization`,
    :attr:`throughput_tokens_s` is the fleet-aggregate output
    throughput, and :attr:`duration_s` is the fleet makespan.
    """

    inventory: Dict[str, int]
    jobs: Tuple[JobSimRecord, ...]
    makespan_s: float
    total_tokens: int
    allocator: str

    @property
    def throughput_tokens_s(self) -> float:
        """Aggregate output tokens/s over the fleet makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens / self.makespan_s

    @property
    def duration_s(self) -> float:
        """Fleet makespan (the Summary-protocol duration)."""
        return self.makespan_s

    def gpu_hours_used(self) -> Dict[str, float]:
        """Busy GPU-hours per type over the simulated timeline."""
        out: Dict[str, float] = {g: 0.0 for g in self.inventory}
        for rec in self.jobs:
            hours = rec.duration_s / 3600.0
            for g, n in rec.group_counts:
                out[g] = out.get(g, 0.0) + n * hours
        return out

    def pool_utilization(self) -> Dict[str, float]:
        """Busy fraction of each pool GPU type during the makespan."""
        if self.makespan_s <= 0:
            return {g: 0.0 for g in self.inventory}
        span_hours = self.makespan_s / 3600.0
        used = self.gpu_hours_used()
        return {
            g: min(used.get(g, 0.0) / (n * span_hours), 1.0)
            for g, n in self.inventory.items()
            if n > 0
        }

    def idle_recovery(
        self,
        stats: FleetStats,
        hours_per_month: float = HOURS_PER_MONTH,
    ) -> Dict[str, Any]:
        """Reclaimed idle GPU-hours vs the Fig. 1 baseline.

        Extrapolates the pool utilization this schedule achieved to the
        sampled fleet's whole idle capacity: operating all of type
        ``t``'s idle GPUs at the schedule's busy fraction reclaims
        ``idle_gpu_hours[t] * pool_utilization[t]`` GPU-hours/month.
        """
        idle = stats.idle_gpu_hours(hours_per_month=hours_per_month)
        util = self.pool_utilization()
        per_type = {
            g: {
                "idle_gpu_hours": idle.get(g, 0.0),
                "pool_utilization": util.get(g, 0.0),
                "reclaimed_gpu_hours": idle.get(g, 0.0) * util.get(g, 0.0),
            }
            for g in sorted(set(idle) | set(util))
        }
        total_idle = sum(v["idle_gpu_hours"] for v in per_type.values())
        total_reclaimed = sum(
            v["reclaimed_gpu_hours"] for v in per_type.values()
        )
        return {
            "per_type": per_type,
            "total_idle_gpu_hours": total_idle,
            "total_reclaimed_gpu_hours": total_reclaimed,
            "reclaimed_fraction": (
                total_reclaimed / total_idle if total_idle > 0 else 0.0
            ),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict via :mod:`repro.serialization` (round-trip)."""
        from ..serialization import fleet_result_to_dict

        return fleet_result_to_dict(self)

    def describe(self) -> str:
        lines = [
            f"fleet simulation ({self.allocator}): {len(self.jobs)} jobs, "
            f"makespan {self.makespan_s:.1f}s, "
            f"{self.throughput_tokens_s:.0f} tok/s aggregate"
        ]
        for rec in sorted(self.jobs, key=lambda r: (r.start_s, r.job_id)):
            lines.append("  " + rec.describe())
        return "\n".join(lines)


def simulate_schedule(
    schedule: FleetSchedule,
    cross_node_link: str = "eth-800g",
    check_memory: bool = True,
    sim_backend: str = "auto",
) -> FleetSimResult:
    """Simulate every scheduled job and compose the fleet timeline.

    ``sim_backend`` selects the per-job pipeline simulator engine
    (``"auto"`` takes the closed-form fast path whenever it is exact —
    which, for fleet jobs' uniform batches, is always).
    """
    with trace.span(
        "fleet.simulate",
        jobs=len(schedule.jobs),
        allocator=schedule.allocator,
    ) as sp:
        result = _simulate_schedule(
            schedule, cross_node_link, check_memory, sim_backend
        )
        sp.set(makespan_s=round(result.makespan_s, 3))
        if trace.enabled:
            metrics.counter("fleet.simulations").inc()
            metrics.counter("fleet.sim.jobs").inc(len(result.jobs))
        return result


def _one_job_sim(
    sj: ScheduledJob,
    cross_node_link: str,
    check_memory: bool,
    sim_backend: str = "auto",
) -> PipelineSimResult:
    assignment = sj.assignment
    cluster = assignment.materialize_cluster(cross_node_link)
    spec = get_model(assignment.job.model)
    return simulate_plan(
        assignment.result.plan,
        cluster,
        spec,
        assignment.job.workload,
        check_memory=check_memory,
        sim_backend=sim_backend,
    )


def _simulate_schedule(
    schedule: FleetSchedule,
    cross_node_link: str,
    check_memory: bool,
    sim_backend: str = "auto",
) -> FleetSimResult:
    batch_sims = [
        _one_job_sim(sj, cross_node_link, check_memory, sim_backend)
        for sj in schedule.jobs
    ]
    assignments = [sj.assignment for sj in schedule.jobs]
    durations = [
        sj.job.num_batches * sim.makespan_s
        for sj, sim in zip(schedule.jobs, batch_sims)
    ]
    start, end, makespan = list_schedule(
        assignments, schedule.inventory, durations=durations
    )
    records = tuple(
        JobSimRecord(
            job_id=sj.job.job_id,
            model=sj.job.model,
            group_counts=sj.group.counts,
            num_batches=sj.job.num_batches,
            start_s=s,
            end_s=e,
            total_tokens=sj.job.total_output_tokens,
            batch_sim=sim,
        )
        for sj, sim, s, e in zip(schedule.jobs, batch_sims, start, end)
    )
    return FleetSimResult(
        inventory=dict(schedule.inventory),
        jobs=records,
        makespan_s=makespan,
        total_tokens=sum(r.total_tokens for r in records),
        allocator=schedule.allocator,
    )
