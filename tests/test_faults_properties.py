"""Property-based tests for degrade-and-replan.

The contract under test: for ANY valid plan and ANY proper subset of
dead GPUs, :func:`repro.plan.degrade_plan` either returns a feasible
degraded plan (contiguous layers, fixed bitwidths, surviving devices
only, per-group caps held) or raises an explicit
:class:`~repro.plan.InfeasibleError` — it never crashes with anything
else and never silently violates a constraint.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import (
    ExecutionPlan,
    InfeasibleError,
    StagePlan,
    degrade_plan,
)

GPUS = ("T4-16G", "V100-32G", "A100-40G", "P100-12G")
BITS = (3, 4, 8, 16)


@st.composite
def plans(draw, max_stages=5, max_layers_per_stage=4):
    n_stages = draw(st.integers(2, max_stages))
    stages = []
    start = 0
    dev = 0
    for _ in range(n_stages):
        tp = draw(st.sampled_from([1, 1, 1, 2]))
        count = draw(st.integers(1, max_layers_per_stage))
        bits = tuple(draw(st.sampled_from(BITS)) for _ in range(count))
        stages.append(
            StagePlan(
                device_ids=tuple(range(dev, dev + tp)),
                gpu_name=draw(st.sampled_from(GPUS)),
                layer_start=start,
                layer_bits=bits,
            )
        )
        dev += tp
        start += count
    return ExecutionPlan(
        model_name="random",
        stages=tuple(stages),
        prefill_microbatch=draw(st.sampled_from([1, 2, 4])),
        decode_microbatch=draw(st.sampled_from([1, 2, 4])),
        bit_kv=draw(st.sampled_from([8, 16])),
    )


@st.composite
def plans_with_dead_devices(draw):
    """A plan plus a non-empty proper subset of its devices marked dead."""
    plan = draw(plans())
    devices = sorted({d for st_ in plan.stages for d in st_.device_ids})
    n_dead = draw(st.integers(1, len(devices) - 1))
    dead = draw(
        st.lists(
            st.sampled_from(devices),
            min_size=n_dead,
            max_size=n_dead,
            unique=True,
        )
    )
    return plan, set(dead)


def check_degraded_invariants(plan, degraded, surviving):
    # 1. Bitwidth sequence is untouched (bit-exactness precondition).
    assert degraded.bits_per_layer == plan.bits_per_layer
    # 2. Only surviving devices appear, in the original pipeline order.
    used = [st_.device_ids for st_ in degraded.stages]
    original_order = [
        st_.device_ids
        for st_ in plan.stages
        if all(d in surviving for d in st_.device_ids)
    ]
    assert used == original_order[: len(used)]
    for devs in used:
        assert all(d in surviving for d in devs)
    # 3. Contiguous cover of all layers, >= 1 layer per stage.
    expect_start = 0
    for st_ in degraded.stages:
        assert st_.layer_start == expect_start
        assert st_.num_layers >= 1
        expect_start += st_.num_layers
    assert expect_start == plan.num_layers
    # 4. Micro-batching and KV bitwidth carried over.
    assert degraded.prefill_microbatch == plan.prefill_microbatch
    assert degraded.decode_microbatch == plan.decode_microbatch
    assert degraded.bit_kv == plan.bit_kv


@given(case=plans_with_dead_devices())
@settings(max_examples=120, deadline=None)
def test_degrade_plan_feasible_or_explicit_infeasible(case):
    """Killing 1..n-1 GPUs yields a valid degraded plan or InfeasibleError."""
    plan, dead = case
    surviving = {
        d for st_ in plan.stages for d in st_.device_ids if d not in dead
    }
    try:
        degraded = degrade_plan(plan, surviving)
    except InfeasibleError:
        # Explicit infeasibility is a legal outcome; it must mean either
        # no stage group survived intact or fewer groups than needed.
        intact = [
            st_
            for st_ in plan.stages
            if all(d in surviving for d in st_.device_ids)
        ]
        assert not intact
        return
    check_degraded_invariants(plan, degraded, surviving)


@given(case=plans_with_dead_devices(), cap_scale=st.integers(1, 4))
@settings(max_examples=120, deadline=None)
def test_degrade_plan_with_caps_never_violates_them(case, cap_scale):
    """With per-device caps, any returned plan respects every group cap."""
    plan, dead = case
    surviving = {
        d for st_ in plan.stages for d in st_.device_ids if d not in dead
    }
    layer_cost = lambda i, b: b  # noqa: E731 - bytes proxy
    caps = {
        d: cap_scale * 8
        for st_ in plan.stages
        for d in st_.device_ids
    }
    try:
        degraded = degrade_plan(
            plan, surviving, capacity_bytes=caps, layer_cost=layer_cost
        )
    except InfeasibleError:
        return  # explicit refusal is always acceptable here
    check_degraded_invariants(plan, degraded, surviving)
    for st_ in degraded.stages:
        load = sum(layer_cost(0, b) for b in st_.layer_bits)
        cap = sum(caps[d] for d in st_.device_ids)
        assert load <= cap, "degrade_plan returned a cap-violating stage"


@given(seed=st.integers(0, 10_000), n_faults=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_random_fault_plans_are_replayable(seed, n_faults):
    from repro.runtime import FaultPlan
    from repro.serialization import dumps_fault_plan, loads_fault_plan

    fp = FaultPlan.random(
        seed=seed,
        num_stages=4,
        n_tokens=16,
        n_faults=n_faults,
        kinds=("kill", "slow", "drop"),
    )
    assert len(fp.specs) == n_faults
    assert fp == FaultPlan.random(
        seed=seed,
        num_stages=4,
        n_tokens=16,
        n_faults=n_faults,
        kinds=("kill", "slow", "drop"),
    )
    assert loads_fault_plan(dumps_fault_plan(fp)) == fp
    for spec in fp.specs:
        assert 0 <= spec.stage < 4
        assert 1 <= spec.step < 16


@pytest.mark.parametrize("kill", [(0,), (1,), (0, 1), (1, 2), (0, 2)])
def test_planner_replan_on_reduced_cluster(kill):
    """Planner.replan after a ClusterDelta plans a valid degraded topology
    (or raises InfeasibleError explicitly)."""
    from repro.core import ClusterDelta, PlannerConfig, SplitQuantPlanner
    from repro.hardware import make_cluster
    from repro.models import get_model
    from repro.workloads import BatchWorkload

    spec = get_model("opt-13b")
    cluster = make_cluster(
        "prop", [("A100-40G", 1), ("V100-32G", 1), ("T4-16G", 1)]
    )
    cfg = PlannerConfig(
        use_heuristic=True, microbatch_candidates=(4,), verify_top_k=1,
        enable_tp=False,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg)
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=32)
    surviving = [
        d.device_id for d in cluster.devices if d.device_id not in kill
    ]
    from repro.plan import InfeasibleError as IE

    prev = planner.plan(wl)
    assert prev is not None
    try:
        res = planner.replan(prev, ClusterDelta(removed_device_ids=kill))
    except IE:
        return
    assert res.tier in ("incremental-repair", "incremental-resolve")
    plan = res.plan
    assert plan.num_layers == spec.num_layers
    for st_ in plan.stages:
        assert all(d in surviving for d in st_.device_ids)
