"""Per-stage execution timing, backed by the roofline truth or a cost model.

The simulator asks each stage two questions: how long one prefill chunk of
a micro-batch takes, and how long one decode step takes at a given context
length.  Both are sums over the stage's layers at their assigned
bitwidths, plus embedding / LM-head work on the first / last stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..costmodel.latency import LatencyCostModel
from ..hardware.gpus import GPUSpec
from ..hardware.interconnect import intra_node_link
from ..models.architectures import ModelSpec
from ..simgpu import roofline
from ..plan import StagePlan


class TimingSource(Protocol):
    """Anything that can time one layer on one device."""

    def prefill(
        self, gpu: GPUSpec, bits: int, batch: int, seq: int, tp: int
    ) -> float: ...

    def decode(
        self, gpu: GPUSpec, bits: int, batch: int, context: int, tp: int
    ) -> float: ...


@dataclass(frozen=True)
class RooflineTiming:
    """Ground-truth timing straight from the kernel simulator."""

    spec: ModelSpec
    bit_kv: int = 16

    def _tp_bw(self, gpu: GPUSpec) -> float:
        return intra_node_link(gpu.name).bandwidth_bytes_s

    def prefill(
        self, gpu: GPUSpec, bits: int, batch: int, seq: int, tp: int = 1
    ) -> float:
        return roofline.tp_layer_time(
            gpu, self.spec, bits, "prefill", batch, seq, tp, self._tp_bw(gpu),
            self.bit_kv,
        )

    def decode(
        self, gpu: GPUSpec, bits: int, batch: int, context: int, tp: int = 1
    ) -> float:
        return roofline.tp_layer_time(
            gpu, self.spec, bits, "decode", batch, context, tp, self._tp_bw(gpu),
            self.bit_kv,
        )


@dataclass(frozen=True)
class CostModelTiming:
    """Timing through the fitted latency regressions (the planner's view).

    Tensor parallelism is approximated by dividing the single-device time
    by the TP degree and adding the all-reduce term — the same model the
    assigner uses when enumerating TP meshes.
    """

    cost_model: LatencyCostModel
    spec: ModelSpec

    def _with_tp(self, base: float, gpu: GPUSpec, tokens: int, tp: int) -> float:
        if tp <= 1:
            return base
        link = intra_node_link(gpu.name)
        msg = tokens * self.spec.hidden * 2
        allreduce = 2.0 * (2.0 * (tp - 1) / tp) * msg / link.bandwidth_bytes_s
        return base / tp + allreduce

    def prefill(
        self, gpu: GPUSpec, bits: int, batch: int, seq: int, tp: int = 1
    ) -> float:
        base = self.cost_model.prefill_time(gpu, bits, batch, seq)
        return self._with_tp(base, gpu, batch * seq, tp)

    def decode(
        self, gpu: GPUSpec, bits: int, batch: int, context: int, tp: int = 1
    ) -> float:
        base = self.cost_model.decode_time(gpu, bits, batch, context)
        return self._with_tp(base, gpu, batch, tp)


@dataclass
class MemoizedTiming:
    """A memo layer over any :class:`TimingSource` (the planner's cache).

    Unit layer costs depend only on ``(phase, gpu model, bits, batch,
    seq/context, tp degree)``, yet the candidate search evaluates the same
    tuples over and over: identical ``(gpu, tp)`` stage groups recur across
    device orderings, and each ``(eta, xi)`` micro-batch pair revisits every
    bitwidth.  Wrapping the timing source in a dict makes repeat lookups
    free *and* bit-identical to the uncached call — the cached value is the
    very float the source returned — so a memoized search stays exactly
    reproducible against the naive one.

    Not thread-safe by design: the search engine builds problems on the
    coordinating thread only and hands workers fully-materialized cost
    tensors.
    """

    source: TimingSource

    def __post_init__(self) -> None:
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0

    def prefill(
        self, gpu: GPUSpec, bits: int, batch: int, seq: int, tp: int = 1
    ) -> float:
        key = ("p", gpu.name, bits, batch, seq, tp)
        val = self._cache.get(key)
        if val is None:
            val = self.source.prefill(gpu, bits, batch, seq, tp)
            self._cache[key] = val
            self.misses += 1
        else:
            self.hits += 1
        return val

    def decode(
        self, gpu: GPUSpec, bits: int, batch: int, context: int, tp: int = 1
    ) -> float:
        key = ("d", gpu.name, bits, batch, context, tp)
        val = self._cache.get(key)
        if val is None:
            val = self.source.decode(gpu, bits, batch, context, tp)
            self._cache[key] = val
            self.misses += 1
        else:
            self.hits += 1
        return val


@dataclass
class StageExecutionModel:
    """Timing of one pipeline stage under a plan."""

    stage: StagePlan
    gpu: GPUSpec
    spec: ModelSpec
    timing: TimingSource
    is_first: bool = False
    is_last: bool = False

    def prefill_chunk_time(self, microbatch: int, chunk_len: int) -> float:
        """Time for one prefill chunk of ``microbatch`` requests."""
        total = 0.0
        for bits in self.stage.layer_bits:
            total += self.timing.prefill(
                self.gpu, bits, microbatch, chunk_len, self.stage.tp_degree
            )
        if self.is_first:
            total += roofline.embedding_time(
                self.gpu, self.spec, microbatch * chunk_len
            )
        if self.is_last:
            # Only the final chunk needs logits, but engines project the
            # chunk tail each time under chunked prefill; cost one head call.
            total += roofline.lm_head_time(self.gpu, self.spec, microbatch)
        return total

    def decode_step_time(self, microbatch: int, context: int) -> float:
        """Time for one decode step at total ``context`` length."""
        total = 0.0
        for bits in self.stage.layer_bits:
            total += self.timing.decode(
                self.gpu, bits, microbatch, context, self.stage.tp_degree
            )
        if self.is_first:
            total += roofline.embedding_time(self.gpu, self.spec, microbatch)
        if self.is_last:
            total += roofline.lm_head_time(self.gpu, self.spec, microbatch)
        return total

    def decode_time_series(
        self, microbatch: int, prompt_len: int, n_tokens: int, samples: int = 9
    ) -> np.ndarray:
        """Decode-step times for t = 1..n_tokens-1, by interpolation.

        Per-step cost is piecewise-linear in context length, so sampling a
        few contexts and interpolating is exact up to the roofline kink.
        """
        steps = np.arange(1, max(n_tokens, 2))
        contexts = prompt_len + steps
        if len(contexts) <= samples:
            return np.array(
                [self.decode_step_time(microbatch, int(c)) for c in contexts]
            )
        probe = np.unique(
            np.linspace(contexts[0], contexts[-1], samples).astype(int)
        )
        times = np.array(
            [self.decode_step_time(microbatch, int(c)) for c in probe]
        )
        return np.interp(contexts, probe, times)
