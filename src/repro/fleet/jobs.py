"""Fleet job model: offline serving jobs with deadline and quality SLOs.

A :class:`FleetJob` is one unit of fleet-level work: serve ``num_batches``
repetitions of a padded :class:`~repro.workloads.spec.BatchWorkload`
through one model, finishing within its deadline class, at a quality no
worse than uniform quantization at ``min_uniform_bits`` (the Sec. VI-C
hard-budget mode).  The scheduler carves a heterogeneous GPU group out of
the idle fleet for each job and runs the per-job SplitQuant planner on
that group.

:func:`make_job_queue` draws a seeded, reproducible queue of such jobs —
the multi-tenant offline traffic of the ROADMAP north star — mixing
models, batch shapes and deadline classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..workloads.spec import BatchWorkload

__all__ = ["DEADLINE_HOURS", "FleetJob", "make_job_queue"]

#: Deadline classes (hours until due).  ``urgent`` jobs are scheduled
#: first, ``batch`` jobs soak up whatever capacity is left.
DEADLINE_HOURS: Dict[str, float] = {
    "urgent": 1.0,
    "daily": 24.0,
    "batch": 168.0,
}


@dataclass(frozen=True)
class FleetJob:
    """One offline serving job in the fleet queue."""

    job_id: str
    #: Registered model name (``repro.models.get_model``).
    model: str
    workload: BatchWorkload
    #: How many batches of ``workload`` the job must serve.
    num_batches: int = 1
    #: One of :data:`DEADLINE_HOURS`.
    deadline_class: str = "batch"
    #: Quality SLO: the plan's summed variance indicator must not exceed
    #: uniform quantization at this bitwidth (``None`` = planner default
    #: theta trade-off, no hard budget).
    min_uniform_bits: Optional[int] = None
    #: Tie-breaker within a deadline class; higher runs earlier.
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if not self.model:
            raise ValueError("model must be non-empty")
        if self.num_batches <= 0:
            raise ValueError("num_batches must be positive")
        if self.deadline_class not in DEADLINE_HOURS:
            raise ValueError(
                f"unknown deadline class {self.deadline_class!r} "
                f"(expected one of {sorted(DEADLINE_HOURS)})"
            )

    @property
    def deadline_s(self) -> float:
        """Seconds until this job is due."""
        return DEADLINE_HOURS[self.deadline_class] * 3600.0

    @property
    def total_output_tokens(self) -> int:
        """Output tokens the job produces across all its batches."""
        return self.num_batches * self.workload.total_output_tokens

    def sort_key(self) -> Tuple[float, int, str]:
        """Deterministic scheduling order: due-first, then priority."""
        return (self.deadline_s, -self.priority, self.job_id)

    def describe(self) -> str:
        return (
            f"{self.job_id}: {self.model} x{self.num_batches} "
            f"[{self.workload.describe()}] {self.deadline_class}"
        )


#: Default model mix for the synthetic queue: small enough to plan fast,
#: large enough that groups of 2-4 tail GPUs are genuinely needed.
_QUEUE_MODELS: Tuple[str, ...] = ("opt-1.3b", "bloom-3b", "opt-13b")

_QUEUE_CLASSES: Tuple[str, ...] = ("urgent", "daily", "batch")


def make_job_queue(
    n_jobs: int = 8,
    seed: int = 0,
    models: Sequence[str] = _QUEUE_MODELS,
    min_uniform_bits: Optional[int] = 4,
) -> Tuple[FleetJob, ...]:
    """A seeded, reproducible queue of offline serving jobs.

    Batch sizes, prompt/output lengths, batch counts and deadline classes
    are drawn from ranges typical of offline summarization / extraction
    traffic; the same ``(n_jobs, seed, models)`` always yields the same
    queue.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if not models:
        raise ValueError("models must be non-empty")
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n_jobs):
        model = models[int(rng.integers(0, len(models)))]
        batch = int(rng.choice([8, 16, 32]))
        prompt_len = int(rng.choice([128, 256, 512]))
        output_len = int(rng.choice([32, 64, 128]))
        num_batches = int(rng.integers(2, 9))
        deadline = _QUEUE_CLASSES[int(rng.integers(0, len(_QUEUE_CLASSES)))]
        jobs.append(
            FleetJob(
                job_id=f"job-{i:02d}",
                model=model,
                workload=BatchWorkload(
                    batch=batch, prompt_len=prompt_len, output_len=output_len
                ),
                num_batches=num_batches,
                deadline_class=deadline,
                min_uniform_bits=min_uniform_bits,
                priority=int(rng.integers(0, 3)),
            )
        )
    return tuple(jobs)
