"""Per-layer sensitivity profiles for paper-scale models.

Real 30B–70B checkpoints are unavailable in this environment, but the
planner only consumes per-layer :class:`~repro.quant.indicator.OperatorStats`
(weight range, activation moments, operator widths).  We synthesize those
statistics with the qualitative structure measured on real LLMs and
confirmed by the paper's Table I:

* activation variance grows with depth (residual-stream magnitude growth),
  so **later layers are more quantization-sensitive** — quantizing layer
  ranges near the output degrades quality most (Table I's ordering),
* weight ranges widen mildly with depth,
* per-layer jitter is seeded by the model name so profiles are
  reproducible and distinct across models.

For small models the same statistics can instead be *measured* from a real
:mod:`repro.quality.tinylm` checkpoint; tests cross-validate the two paths.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

from ..models.architectures import ModelSpec
from .indicator import OperatorStats, indicator_table


def _model_seed(name: str) -> int:
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:4], "little")


def synthesize_layer_stats(
    spec: ModelSpec, seed: int | None = None
) -> List[List[OperatorStats]]:
    """Synthetic per-layer operator statistics for ``spec``.

    Returns one list of :class:`OperatorStats` per decoder layer, one entry
    per linear operator in the layer.
    """
    rng = np.random.default_rng(
        _model_seed(spec.name) if seed is None else seed
    )
    layers: List[List[OperatorStats]] = []
    L = spec.num_layers
    for i in range(L):
        depth = i / max(L - 1, 1)
        # Residual-stream activation variance grows with depth.
        act_var = 1.0 * (1.0 + 2.0 * depth) * rng.lognormal(0.0, 0.15)
        act_mean = 0.02 * rng.standard_normal()
        ops: List[OperatorStats] = []
        for out_dim, in_dim in spec.linear_shapes:
            w_absmax = 0.12 * (1.0 + 0.6 * depth) * rng.lognormal(0.0, 0.1)
            ops.append(
                OperatorStats(
                    d_w=in_dim,
                    w_absmax=w_absmax,
                    x_mean=act_mean,
                    x_var=act_var,
                )
            )
        layers.append(ops)
    return layers


def model_indicator_table(
    spec: ModelSpec,
    bit_choices: Sequence[int],
    rounding: str = "deterministic",
    seed: int | None = None,
) -> np.ndarray:
    """``omega[i, k]`` variance-indicator table for a paper-scale model."""
    stats = synthesize_layer_stats(spec, seed=seed)
    return indicator_table(stats, bit_choices, rounding)


def normalized_indicator_table(
    spec: ModelSpec,
    bit_choices: Sequence[int],
    rounding: str = "deterministic",
    seed: int | None = None,
) -> np.ndarray:
    """Indicator table scaled so uniform-4-bit sums to ``num_layers``.

    Normalization makes the quality-budget units comparable across models
    and keeps the ILP objective's theta sweep (Fig. 11) meaningful.
    """
    table = model_indicator_table(spec, bit_choices, rounding, seed)
    bit_list = list(bit_choices)
    if 4 in bit_list:
        ref = table[:, bit_list.index(4)].sum()
    else:
        ref = table.max(axis=1).sum()
    if ref > 0:
        table = table * (spec.num_layers / ref)
    return table
