"""Inter-stage communication channels for the threaded runtime.

Thin typed wrapper over ``queue.Queue`` with failure semantics the
fault-tolerant engine relies on:

* ``recv`` polls with exponential backoff instead of a single blocking
  wait, re-checking the *sender's* health between polls — so a receive on
  a channel whose producing worker died raises :class:`StageFailure`
  carrying the worker's real exception (with the stage name), never a
  bare ``TimeoutError`` 30 seconds later.
* ``send`` consults an optional fault hook (see
  :mod:`repro.runtime.faults`) that can drop a message in transit — the
  injection point for lost-message campaigns.
* A sentinel closes a channel; a close caused by a sender failure is
  translated into that failure at the receiver.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

_CLOSE = object()

#: recv() poll schedule: start fast, back off geometrically to a cap so a
#: healthy-but-slow pipeline costs microseconds and a dead one is noticed
#: within one poll interval of the sender dying.
_POLL_INITIAL_S = 0.002
_POLL_MAX_S = 0.1
_POLL_BACKOFF = 2.0


class ChannelClosed(RuntimeError):
    """Receiving from a channel whose sender has shut down cleanly."""


class StageFailure(RuntimeError):
    """The sending side of a channel failed; carries the real error.

    ``stage`` is the pipeline stage index of the failed sender (or -1
    when unknown).  The worker's original exception is chained as
    ``__cause__``.
    """

    def __init__(self, message: str, stage: int = -1) -> None:
        super().__init__(message)
        self.stage = stage


@dataclass
class Channel:
    """A one-directional message pipe between pipeline participants."""

    name: str
    maxsize: int = 0
    #: Stage index of the sending worker (-1 = the master / unknown).
    sender_stage: int = -1
    #: Returns the sender's captured exception, if it failed.
    sender_error: Optional[Callable[[], Optional[BaseException]]] = None
    #: Fault-injection hook: ``(phase, step, mb_id) -> drop this send?``.
    fault_hook: Optional[Callable[[str, int, int], bool]] = None
    #: Telemetry: messages dropped by fault injection.
    dropped: int = 0
    #: Telemetry: empty polls survived across all recv() calls.
    recv_retries: int = 0
    _q: queue.Queue = field(init=False, repr=False)

    def __post_init__(self):
        self._q = queue.Queue(maxsize=self.maxsize)

    def bind_sender(
        self,
        stage: int,
        error: Callable[[], Optional[BaseException]],
        fault_hook: Optional[Callable[[str, int, int], bool]] = None,
    ) -> None:
        """Attach the producing worker's identity and health probe."""
        self.sender_stage = stage
        self.sender_error = error
        self.fault_hook = fault_hook

    def _sender_failure(self) -> Optional[StageFailure]:
        if self.sender_error is None:
            return None
        err = self.sender_error()
        if err is None:
            return None
        failure = StageFailure(
            f"channel {self.name!r}: sender stage-{self.sender_stage} "
            f"failed: {err!r}",
            stage=self.sender_stage,
        )
        failure.__cause__ = err
        return failure

    def send(self, msg: Any) -> None:
        if self.fault_hook is not None:
            phase = getattr(msg, "phase", None)
            if phase is not None and self.fault_hook(
                phase, getattr(msg, "step", 0), getattr(msg, "mb_id", -1)
            ):
                self.dropped += 1
                return
        self._q.put(msg)

    def recv(self, timeout: Optional[float] = 30.0) -> Any:
        """Receive with backoff polling and sender-health checks.

        Raises :class:`StageFailure` (with the sender's real exception
        chained) when the producing worker has died, :class:`ChannelClosed`
        on a clean shutdown, and ``TimeoutError`` only when the sender is
        healthy yet silent for the full ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        poll = _POLL_INITIAL_S
        while True:
            wait = poll
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    failure = self._sender_failure()
                    if failure is not None:
                        raise failure
                    raise TimeoutError(
                        f"channel {self.name!r}: no message within {timeout}s"
                    ) from None
                wait = min(poll, remaining)
            try:
                msg = self._q.get(timeout=wait)
            except queue.Empty:
                self.recv_retries += 1
                failure = self._sender_failure()
                if failure is not None:
                    raise failure
                poll = min(poll * _POLL_BACKOFF, _POLL_MAX_S)
                continue
            if msg is _CLOSE:
                # A close triggered by a dying worker surfaces the real
                # error, not the sentinel.
                failure = self._sender_failure()
                if failure is not None:
                    raise failure
                raise ChannelClosed(f"channel {self.name!r} closed")
            return msg

    def close(self) -> None:
        self._q.put(_CLOSE)

    @property
    def pending(self) -> int:
        return self._q.qsize()
