"""Text flame summary of a JSONL trace (``scripts/trace_report.py``).

Aggregates spans by ancestor *path* (``planner.plan/search.run/...``)
and renders an indented tree: call count, total/mean wall time, total
CPU time, self time (wall minus same-thread children) and error count
per path, ordered by total wall time within each parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Union

from .tracer import parse_trace

__all__ = ["flame_summary", "PathStats"]


@dataclass
class PathStats:
    """Aggregate over all spans sharing one ancestor path."""

    path: str
    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    child_wall_s: float = 0.0
    errors: int = 0
    children: Dict[str, "PathStats"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def self_wall_s(self) -> float:
        return max(self.wall_s - self.child_wall_s, 0.0)


def _aggregate(records: List[Dict[str, Any]]) -> Dict[str, PathStats]:
    by_id = {r["i"]: r for r in records if r.get("i") is not None}

    def path_of(rec: Dict[str, Any]) -> str:
        names = [rec["name"]]
        seen = {rec.get("i")}
        parent = rec.get("parent")
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            rec = by_id[parent]
            names.append(rec["name"])
            parent = rec.get("parent")
        return "/".join(reversed(names))

    roots: Dict[str, PathStats] = {}

    def node(path: str) -> PathStats:
        parts = path.split("/")
        level = roots
        stats = None
        for i in range(len(parts)):
            p = "/".join(parts[: i + 1])
            stats = level.get(parts[i])
            if stats is None:
                stats = PathStats(path=p)
                level[parts[i]] = stats
            level = stats.children
        return stats

    for rec in records:
        p = path_of(rec)
        stats = node(p)
        stats.count += 1
        stats.wall_s += float(rec.get("wall_s", 0.0))
        stats.cpu_s += float(rec.get("cpu_s", 0.0))
        if str(rec.get("status", "ok")) != "ok":
            stats.errors += 1
        if "/" in p:
            node(p.rsplit("/", 1)[0]).child_wall_s += float(
                rec.get("wall_s", 0.0)
            )
    return roots


def _fmt_s(x: float) -> str:
    if x >= 1.0:
        return f"{x:8.3f}s"
    return f"{x * 1e3:7.2f}ms"


def flame_summary(
    source: Union[str, Iterable[Dict[str, Any]]],
    max_depth: int = 8,
) -> str:
    """Render an indented flame-style summary of a trace.

    ``source`` is a JSONL string, a path, or an iterable of records.
    """
    records = parse_trace(source)
    if not records:
        return "(empty trace)\n"
    roots = _aggregate(records)
    total_wall = sum(s.wall_s for s in roots.values())

    lines: List[str] = []
    lines.append(
        f"{'span':<52} {'count':>6} {'wall':>10} {'mean':>10} "
        f"{'self':>10} {'cpu':>10} {'err':>4}"
    )
    lines.append("-" * 106)

    def emit(stats: PathStats, depth: int) -> None:
        if depth >= max_depth:
            return
        label = ("  " * depth) + stats.name
        share = (
            f" ({stats.wall_s / total_wall:4.0%})"
            if total_wall > 0 and depth == 0
            else ""
        )
        lines.append(
            f"{(label + share):<52} {stats.count:>6} "
            f"{_fmt_s(stats.wall_s):>10} "
            f"{_fmt_s(stats.wall_s / stats.count if stats.count else 0):>10} "
            f"{_fmt_s(stats.self_wall_s):>10} "
            f"{_fmt_s(stats.cpu_s):>10} "
            f"{stats.errors:>4}"
        )
        for child in sorted(
            stats.children.values(), key=lambda s: -s.wall_s
        ):
            emit(child, depth + 1)

    for root in sorted(roots.values(), key=lambda s: -s.wall_s):
        emit(root, 0)
    lines.append("-" * 106)
    lines.append(
        f"{len(records)} spans, "
        f"{sum(1 for r in records if str(r.get('status', 'ok')) != 'ok')} "
        f"errored, root wall {total_wall:.3f}s"
    )
    return "\n".join(lines) + "\n"
