"""Fig. 7: input/output length distributions of the two workloads.

CNN/DailyMail summarization (moderate inputs, ~299-token outputs) versus
LooGLE long-context understanding (~97k-token inputs, ~63-token outputs),
plus the ShareGPT prompt-length histogram quoted in Sec. II-A.
"""

from __future__ import annotations

import numpy as np

from ..workloads.distributions import (
    length_histogram,
    sample_dataset,
)
from .harness import ExperimentResult


def run(n: int = 10_000, seed: int = 0) -> ExperimentResult:
    rows = []
    summary = {}
    for name in ("cnn_dailymail", "loogle", "sharegpt"):
        s = sample_dataset(name, n, seed)
        for kind, arr in (("input", s.prompt_lens), ("output", s.output_lens)):
            rows.append(
                [
                    name,
                    kind,
                    float(arr.mean()),
                    float(np.percentile(arr, 50)),
                    float(np.percentile(arr, 95)),
                    int(arr.min()),
                    int(arr.max()),
                ]
            )
        summary[f"{name}_mean_in"] = float(s.prompt_lens.mean())
        summary[f"{name}_mean_out"] = float(s.output_lens.mean())

    share = sample_dataset("sharegpt", n, seed)
    hist = length_histogram(share.prompt_lens)
    for bucket, frac in hist.items():
        rows.append(["sharegpt", f"bucket {bucket}", 100.0 * frac, 0.0, 0.0, 0, 0])
    return ExperimentResult(
        name="fig07",
        title="Workload input/output length distributions",
        headers=["dataset", "kind", "mean", "p50", "p95", "min", "max"],
        rows=rows,
        summary=summary,
        notes=(
            "Paper targets: LooGLE in ~97k / out ~63; CNN out ~299; "
            "ShareGPT buckets 14.2/20.5/14.2/14.5/36.5%."
        ),
    )
