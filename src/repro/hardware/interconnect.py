"""Interconnect model: intra-node links and cross-node Ethernet.

The paper's clusters place GPUs of the same type on the same node
(NVLink-connected) and join nodes with 100 Gbps or 800 Gbps Ethernet.
Pipeline-parallel activations cross whichever link connects consecutive
stages; tensor-parallel all-reduces stay intra-node by construction
(Sec. II-B forces intra-node TP).
"""

from __future__ import annotations

from dataclasses import dataclass

GBPS = 1e9 / 8  # bytes per second per "Gbps"


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link with bandwidth and latency."""

    name: str
    bandwidth_bytes_s: float
    latency_s: float

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across this link (alpha-beta model)."""
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_bytes_s


#: NVLink within a node (effective, one direction).
NVLINK = LinkSpec("nvlink", bandwidth_bytes_s=130e9, latency_s=4e-6)
#: PCIe 3.0 x16 fallback for nodes without NVLink (T4 boxes).
PCIE3 = LinkSpec("pcie3", bandwidth_bytes_s=11e9, latency_s=8e-6)
#: Cross-node Ethernet variants used in Table III.
ETH_100G = LinkSpec("eth-100g", bandwidth_bytes_s=100 * GBPS * 0.85, latency_s=30e-6)
ETH_800G = LinkSpec("eth-800g", bandwidth_bytes_s=800 * GBPS * 0.85, latency_s=20e-6)

_BY_NAME = {l.name: l for l in (NVLINK, PCIE3, ETH_100G, ETH_800G)}


def get_link(name: str) -> LinkSpec:
    """Look up a link spec by name (``nvlink``/``pcie3``/``eth-100g``/``eth-800g``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown link {name!r}; known: {sorted(_BY_NAME)}") from None


def intra_node_link(gpu_name: str) -> LinkSpec:
    """Link used between GPUs on the same node.

    T4 inference boxes typically lack NVLink; everything else in the
    testbed is NVLink-connected (Sec. VI-A).
    """
    return PCIE3 if gpu_name.startswith("T4") else NVLINK
