"""Command-line experiment runner.

Regenerate any paper table/figure::

    python -m repro.experiments fig10
    python -m repro.experiments all
    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate SplitQuant paper tables/figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig09 tab05), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, module in sorted(ALL_EXPERIMENTS.items()):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<6} {doc}")
        return 0

    names = (
        sorted(ALL_EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        t0 = time.perf_counter()
        result = ALL_EXPERIMENTS[name].run()
        print(result.to_text())
        print(f"[{name} regenerated in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
