"""SmoothQuant-style activation smoothing for W8A8 (Xiao et al.).

Activation outliers make per-tensor INT8 activation quantization lossy.
SmoothQuant migrates quantization difficulty from activations to weights
with a per-input-channel scale ``s_j = amax_j^alpha / wmax_j^(1-alpha)``:
``Y = (X diag(s)^-1)(diag(s) W^T)`` is mathematically identical but both
factors quantize better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schemes import QuantConfig, quantize_dequantize


@dataclass(frozen=True)
class SmoothedLinear:
    """A linear operator with smoothing folded in."""

    weight: np.ndarray  # (out, in), smoothing folded into columns
    smoothing: np.ndarray  # (in,), divide activations by this


def smoothing_scales(
    act_absmax: np.ndarray, weight: np.ndarray, alpha: float = 0.5
) -> np.ndarray:
    """Per-input-channel smoothing scales.

    ``act_absmax`` is the calibration abs-max per input channel; ``weight``
    is (out, in).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    a = np.maximum(np.asarray(act_absmax, dtype=np.float64), 1e-8)
    wmax = np.maximum(np.abs(weight).max(axis=0), 1e-8)
    s = a**alpha / wmax ** (1.0 - alpha)
    return np.maximum(s, 1e-8)


def smooth_linear(
    weight: np.ndarray, act_absmax: np.ndarray, alpha: float = 0.5
) -> SmoothedLinear:
    """Fold smoothing scales into a weight matrix."""
    s = smoothing_scales(act_absmax, weight, alpha)
    return SmoothedLinear(weight=np.asarray(weight) * s[None, :], smoothing=s)


def w8a8_matmul_error(
    weight: np.ndarray,
    x: np.ndarray,
    alpha: float = 0.5,
    use_smoothing: bool = True,
) -> float:
    """Relative output error of simulated W8A8 on calibration inputs.

    ``x`` is (in, n_samples).  Both weight and activation pass through
    8-bit per-tensor fake quantization — with and without smoothing this
    quantifies the benefit SmoothQuant provides.
    """
    w = np.asarray(weight, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    ref = w @ x
    if use_smoothing:
        act_absmax = np.abs(x).max(axis=1)
        sm = smooth_linear(w, act_absmax, alpha)
        w_eff = sm.weight
        x_eff = x / sm.smoothing[:, None]
    else:
        w_eff, x_eff = w, x
    cfg_w = QuantConfig(bits=8, symmetric=True, granularity="channel")
    cfg_a = QuantConfig(bits=8, symmetric=True, granularity="tensor")
    out = quantize_dequantize(w_eff, cfg_w) @ quantize_dequantize(x_eff, cfg_a)
    denom = float(np.linalg.norm(ref)) or 1.0
    return float(np.linalg.norm(out - ref)) / denom
