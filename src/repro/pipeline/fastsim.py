"""Closed-form steady-state fast path for the pipeline simulator.

The discrete-event simulator in :mod:`repro.pipeline.simulator` executes
one heap event per (micro-batch, stage, step) job.  For the uniform
micro-batch schedules the paper's offline serving model produces, that
event ordering is fully determined in advance, so the same finish times
admit a closed-form recurrence — the trick Vidur-class LLM-serving
simulators use to stay fast at fleet scale.

**Why the recurrence is exact.**  Every stage is a FIFO server whose jobs
arrive from exactly one upstream source (stage ``j-1`` forward, or the
last stage's feedback for stage 0 in decode), and finish times at a FIFO
server are nondecreasing in submission order, with event-loop ties broken
by the submission counter.  By induction the global service order at
every stage is the lexicographic job order — flat ``(micro-batch, chunk)``
for prefill and ``(round, micro-batch)`` for decode — so each stage's
finish times satisfy

    F[j][k] = max(F[j][k-1], A[j][k]) + dur[j][k]

where ``A[j][k]`` is the arrival (upstream finish + link time, or the
decode feedback ``F[last][m, t-1] + fb``).  The implementation replays
the *identical* floating-point operations the event loop performs —
``max`` then one add per job, ``np.cumsum`` (sequential) for the
zero-arrival first stage, busy-time accumulated in submission order — so
results are bit-equal to the event-driven oracle, not approximations.
The differential grid in ``tests/test_fastsim.py`` asserts exact
equality.

Eligibility: any fault-free uniform-micro-batch run (every
``simulate_plan`` call) and the fixed-size degenerate case of
``simulate_plan_variable`` (all requests generating the same number of
tokens, where retirement never splits a round).  Variable-length decode
with mid-flight retirement keeps the event-driven path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hardware.cluster import ClusterSpec, Device
from ..models.architectures import ModelSpec
from ..models import layers as L
from ..obs import trace
from ..plan import ExecutionPlan
from ..workloads.spec import BatchWorkload, VariableBatchWorkload
from .stage import RooflineTiming, StageExecutionModel, TimingSource

__all__ = ["fast_eligible", "fast_eligible_variable"]


def fast_eligible(plan: ExecutionPlan, workload: BatchWorkload) -> bool:
    """Whether the closed-form fast path applies to a uniform-batch run.

    Uniform micro-batching with no injected faults is exactly the
    ``simulate_plan`` contract, so every such run is eligible; the hook
    exists so ``sim_backend="auto"`` has one documented decision point.
    """
    return True


def fast_eligible_variable(workload: VariableBatchWorkload) -> bool:
    """The fixed-size portion of the variable simulator: equal lengths."""
    lens = workload.output_lens
    return len(set(lens)) == 1


def _build_stage_context(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    timing: TimingSource,
):
    """Stage execution models + links, mirroring ``_simulate_plan``."""
    by_id: Dict[int, Device] = {d.device_id: d for d in cluster.devices}
    n_stages = plan.num_stages
    stage_models = [
        StageExecutionModel(
            stage=st,
            gpu=by_id[st.device_ids[0]].gpu,
            spec=spec,
            timing=timing,
            is_first=(j == 0),
            is_last=(j == n_stages - 1),
        )
        for j, st in enumerate(plan.stages)
    ]
    fwd_links = [
        cluster.link_between(
            by_id[plan.stages[j].device_ids[0]],
            by_id[plan.stages[j + 1].device_ids[0]],
        )
        for j in range(n_stages - 1)
    ]
    feedback_link = (
        cluster.link_between(
            by_id[plan.stages[-1].device_ids[0]],
            by_id[plan.stages[0].device_ids[0]],
        )
        if n_stages > 1
        else None
    )
    return stage_models, fwd_links, feedback_link


def _fast_core(
    plan: ExecutionPlan,
    spec: ModelSpec,
    stage_models: List[StageExecutionModel],
    fwd_links,
    feedback_link,
    workload: BatchWorkload,
    emit_spans: bool,
) -> Tuple[float, float, List[float], int]:
    """The cumulative-max recurrence over (micro-batch x stage) arrays.

    Returns ``(prefill_span, decode_span, stage_busy, events)`` with
    every float bit-equal to what the event loop would produce.
    """
    from .simulator import _FEEDBACK_BYTES_PER_REQ, _microbatch_sizes

    n_stages = len(stage_models)

    # -- prefill: flat (micro-batch, chunk) wavefront -------------------
    pre_sizes = _microbatch_sizes(workload.batch, plan.prefill_microbatch)
    chunk = workload.chunk_len
    kappa = workload.kappa
    pre_time: Dict[Tuple[int, int], float] = {}
    for size in set(pre_sizes):
        for j, sm in enumerate(stage_models):
            pre_time[(j, size)] = sm.prefill_chunk_time(size, chunk)
    pre_comm: Dict[Tuple[int, int], float] = {}
    for size in set(pre_sizes):
        for j, link in enumerate(fwd_links):
            pre_comm[(j, size)] = link.transfer_time(
                L.hidden_state_bytes(spec, size, chunk)
            )

    n_mb = len(pre_sizes)
    sizes_flat = [size for size in pre_sizes for _ in range(kappa)]
    n_pre = n_mb * kappa
    pre_events = n_pre * n_stages

    busy: List[float] = []
    free: List[float] = []
    with trace.span(
        "sim.prefill", microbatches=n_mb, chunks=kappa
    ) if emit_spans else _NULL_CTX as sp:
        # Stage 0 sees zero arrivals: finish times are a plain running
        # sum, and np.cumsum accumulates sequentially (bit-identical to
        # the event loop's free_at chain).
        dur0 = np.asarray(
            [pre_time[(0, s)] for s in sizes_flat], dtype=np.float64
        )
        prev = np.cumsum(dur0)
        b = 0.0
        for d in dur0.tolist():
            b += d
        busy.append(b)
        free.append(float(prev[-1]))
        for j in range(1, n_stages):
            jm1 = j - 1
            comm = np.asarray(
                [pre_comm[(jm1, s)] for s in sizes_flat], dtype=np.float64
            )
            # Elementwise adds are one IEEE op per job — exact.
            arrivals = (prev + comm).tolist()
            dur = [pre_time[(j, s)] for s in sizes_flat]
            out = np.empty(n_pre, dtype=np.float64)
            f = 0.0
            b = 0.0
            for k in range(n_pre):
                a = arrivals[k]
                if f < a:
                    f = a
                d = dur[k]
                f = f + d
                out[k] = f
                b += d
            busy.append(b)
            free.append(f)
            prev = out
        # Per-stage finishes are nondecreasing in FIFO order, so the
        # last stage's final job is the event loop's max().
        prefill_span = float(prev[-1])
        if emit_spans:
            sp.set(events=pre_events)

    # -- decode: (round, micro-batch) with autoregressive feedback ------
    n_out = workload.output_len
    dec_sizes = _microbatch_sizes(workload.batch, plan.decode_microbatch)
    decode_steps = n_out - 1
    decode_span = 0.0
    dec_events = 0
    if decode_steps > 0:
        dec_series: Dict[Tuple[int, int], List[float]] = {}
        for size in set(dec_sizes):
            for j, sm in enumerate(stage_models):
                dec_series[(j, size)] = sm.decode_time_series(
                    size, workload.prompt_len, n_out
                ).tolist()
        dec_comm: Dict[Tuple[int, int], float] = {}
        for size in set(dec_sizes):
            for j, link in enumerate(fwd_links):
                dec_comm[(j, size)] = link.transfer_time(
                    L.hidden_state_bytes(spec, size, 1)
                )
        fb_delay = {
            size: (
                feedback_link.transfer_time(size * _FEEDBACK_BYTES_PER_REQ)
                if feedback_link is not None
                else 0.0
            )
            for size in set(dec_sizes)
        }

        n_dec = len(dec_sizes)
        dec_events = n_dec * decode_steps * n_stages
        # Hoisted per-stage structures: durations[j][m] indexed by round,
        # forward comm per (stage, micro-batch), feedback per micro-batch.
        series_jm = [
            [dec_series[(j, size)] for size in dec_sizes]
            for j in range(n_stages)
        ]
        comm_jm = [
            [dec_comm[(j, size)] for size in dec_sizes]
            for j in range(n_stages - 1)
        ]
        fb_m = [fb_delay[size] for size in dec_sizes]

        with trace.span(
            "sim.decode", microbatches=n_dec, steps=decode_steps
        ) if emit_spans else _NULL_CTX as sp:
            arrivals0 = [prefill_span] * n_dec
            rng_dec = range(n_dec)
            finishes: List[float] = arrivals0
            for t in range(decode_steps):
                cur = arrivals0
                for j in range(n_stages):
                    sj = series_jm[j]
                    fj = free[j]
                    bj = busy[j]
                    nxt: List[float] = []
                    append = nxt.append
                    if j == 0:
                        for m in rng_dec:
                            a = cur[m]
                            if fj < a:
                                fj = a
                            d = sj[m][t]
                            fj = fj + d
                            bj += d
                            append(fj)
                    else:
                        cm = comm_jm[j - 1]
                        for m in rng_dec:
                            a = finishes[m] + cm[m]
                            if fj < a:
                                fj = a
                            d = sj[m][t]
                            fj = fj + d
                            bj += d
                            append(fj)
                    free[j] = fj
                    busy[j] = bj
                    finishes = nxt
                if t + 1 < decode_steps:
                    arrivals0 = [
                        finishes[m] + fb_m[m] for m in rng_dec
                    ]
            decode_span = max(finishes) - prefill_span
            if emit_spans:
                sp.set(events=dec_events)

    return prefill_span, decode_span, busy, pre_events + dec_events


class _NullCtx:
    """A no-op ``with`` target standing in for a span (variable path)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:  # pragma: no cover - never called
        pass


_NULL_CTX = _NullCtx()


def _fast_simulate_plan(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    timing: Optional[TimingSource],
    check_memory: bool,
):
    """Fast-path twin of ``_simulate_plan`` (bit-equal results)."""
    from .simulator import PipelineSimResult, check_plan_memory

    if plan.num_layers != spec.num_layers:
        raise ValueError(
            f"plan covers {plan.num_layers} layers, model has {spec.num_layers}"
        )
    timing = timing or RooflineTiming(spec=spec, bit_kv=plan.bit_kv)
    stage_mem = (
        check_plan_memory(plan, cluster, spec, workload)
        if check_memory
        else tuple(0 for _ in plan.stages)
    )
    stage_models, fwd_links, feedback_link = _build_stage_context(
        plan, cluster, spec, timing
    )
    prefill_span, decode_span, busy, events = _fast_core(
        plan, spec, stage_models, fwd_links, feedback_link, workload,
        emit_spans=True,
    )
    return PipelineSimResult(
        makespan_s=prefill_span + decode_span,
        prefill_span_s=prefill_span,
        decode_span_s=decode_span,
        total_tokens=workload.batch * workload.output_len,
        stage_busy_s=tuple(busy),
        stage_memory_bytes=stage_mem,
        events_processed=events,
        sim_backend="fast",
    )


def _fast_simulate_plan_variable(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: VariableBatchWorkload,
    timing: Optional[TimingSource],
    check_memory: bool,
):
    """Fast-path twin of ``_simulate_plan_variable`` for equal lengths.

    With every request generating the same token count, retirement only
    happens after the final round, so the variable-length event schedule
    degenerates to the uniform one and the same recurrence is exact.
    Callers must check :func:`fast_eligible_variable` first.
    """
    from .simulator import PipelineSimResult, check_plan_memory

    if not fast_eligible_variable(workload):
        raise ValueError(
            "fast backend requires uniform output lengths; "
            "use sim_backend='event' for retiring requests"
        )
    if plan.num_layers != spec.num_layers:
        raise ValueError(
            f"plan covers {plan.num_layers} layers, model has {spec.num_layers}"
        )
    timing = timing or RooflineTiming(spec=spec, bit_kv=plan.bit_kv)
    uniform = BatchWorkload(
        batch=workload.batch,
        prompt_len=workload.prompt_len,
        output_len=workload.max_output,
        chunk_tokens=workload.chunk_tokens,
    )
    stage_mem = (
        check_plan_memory(plan, cluster, spec, uniform)
        if check_memory
        else tuple(0 for _ in plan.stages)
    )
    stage_models, fwd_links, feedback_link = _build_stage_context(
        plan, cluster, spec, timing
    )
    prefill_span, decode_span, busy, events = _fast_core(
        plan, spec, stage_models, fwd_links, feedback_link, uniform,
        emit_spans=False,
    )
    return PipelineSimResult(
        makespan_s=prefill_span + decode_span,
        prefill_span_s=prefill_span,
        decode_span_s=decode_span,
        total_tokens=workload.total_output_tokens,
        stage_busy_s=tuple(busy),
        stage_memory_bytes=stage_mem,
        events_processed=events,
        sim_backend="fast",
    )
