"""Bench: batched plan-frontier evaluation vs the per-plan fast path.

Measures ``repro.pipeline.evaluate_plans`` against a per-plan
``simulate_plan(sim_backend="fast")`` loop on two realistic frontiers:

* the Table-VI planner configuration (OPT-30B on cluster 5) with a
  frontier of bitwidth x micro-batching x chunking variants — the shape
  the candidate-search scoring stage sees, and
* a 25-GPU fleet inventory where every (job, group) probe materializes a
  different cluster — the shape the beam allocator's lookahead sees.

Both timings start from cold evaluation caches (``clear_table_caches``
runs inside the timed region), so the measured gap is the vectorized
sweep plus cross-plan component sharing, not warm-cache luck.  Results
must be *bit-identical* to the per-plan loop, and the batched path must
clear a hard >= 10x throughput floor.  Emits
``benchmarks/BENCH_batchsim.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.fleet.allocator import enumerate_groups
from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.pipeline import (
    PlanCase,
    clear_table_caches,
    evaluate_plans,
    simulate_plan,
)
from repro.plan import uniform_plan
from repro.workloads import BatchWorkload

OUT = Path(__file__).resolve().parent / "BENCH_batchsim.json"

#: The batched sweep must beat the per-plan loop by at least this factor.
MIN_SPEEDUP = 10.0
ROUNDS = 3

#: The fleet demo's idle pool: 25 GPUs across three types.
FLEET_INVENTORY = {"T4-16G": 10, "V100-32G": 8, "A100-40G": 7}


def _groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


def _planner_frontier():
    """The Table-VI scoring frontier: one cluster, many plan variants."""
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(5)
    cases = []
    for bits in (3, 4, 8, 16):
        for mb_pre in (2, 4, 8, 16, 32):
            for mb_dec in (4, 8, 16, 32, 64):
                plan = uniform_plan(
                    spec.name, spec.num_layers, _groups_of(cluster),
                    bits, mb_pre, mb_dec,
                )
                for chunk in (128, 256, 384, 512, 1024):
                    wl = BatchWorkload(
                        batch=64, prompt_len=512, output_len=128,
                        chunk_tokens=chunk,
                    )
                    cases.append(
                        PlanCase(
                            plan=plan, cluster=cluster, spec=spec,
                            workload=wl,
                        )
                    )
    return cases


def _fleet_frontier():
    """The beam-lookahead frontier: one plan per (job, group) probe."""
    spec = get_model("opt-13b")
    groups = enumerate_groups(FLEET_INVENTORY, max_gpus=4, max_types=2)
    jobs = [
        BatchWorkload(batch=b, prompt_len=p, output_len=o)
        for b, p, o in (
            (8, 256, 32), (16, 256, 64), (32, 512, 32), (8, 512, 64),
            (16, 384, 48), (64, 256, 16), (24, 512, 24), (48, 384, 32),
            (40, 256, 32), (48, 256, 64), (56, 512, 32), (16, 512, 64),
            (32, 384, 48), (32, 256, 16), (64, 512, 24), (24, 384, 32),
        )
    ]
    cases = []
    for wl in jobs:
        for g in groups:
            cluster = g.to_cluster(f"fleet-{g.describe()}", "eth-800g")
            plan = uniform_plan(
                spec.name, spec.num_layers, _groups_of(cluster), 4, 8, 8
            )
            cases.append(
                PlanCase(plan=plan, cluster=cluster, spec=spec, workload=wl)
            )
    return cases


def _measure(cases, rounds: int = ROUNDS):
    """(per_plan_wall_s, batched_wall_s, per_plan_results, batched_results).

    Both sides are timed best-of-``rounds`` from cold caches; cache
    clearing is inside the timed region so neither path inherits the
    other's warm tables.
    """

    def per_plan():
        clear_table_caches()
        return [
            simulate_plan(
                c.plan, c.cluster, c.spec, c.workload,
                check_memory=False, sim_backend="fast",
            )
            for c in cases
        ]

    def batched():
        clear_table_caches()
        return evaluate_plans(cases)

    loop_wall, loop_res = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        loop_res = per_plan()
        loop_wall = min(loop_wall, time.perf_counter() - t0)
    batch_wall, batch_res = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        batch_res = batched()
        batch_wall = min(batch_wall, time.perf_counter() - t0)
    return loop_wall, batch_wall, loop_res, batch_res


def _section(name, cases):
    loop_wall, batch_wall, loop_res, batch_res = _measure(cases)
    assert batch_res == loop_res, f"{name}: batched results diverged"
    speedup = loop_wall / batch_wall
    assert speedup >= MIN_SPEEDUP, (
        f"{name}: batched evaluation only {speedup:.1f}x faster "
        f"(need >= {MIN_SPEEDUP}x): per-plan {loop_wall * 1e3:.1f}ms vs "
        f"batched {batch_wall * 1e3:.1f}ms for {len(cases)} plans"
    )
    return {
        "plans": len(cases),
        "per_plan_wall_s": round(loop_wall, 5),
        "batched_wall_s": round(batch_wall, 5),
        "per_plan_plans_per_s": round(len(cases) / loop_wall, 1),
        "batched_plans_per_s": round(len(cases) / batch_wall, 1),
        "speedup": round(speedup, 2),
        "results_identical": True,
    }


def test_batchsim_scaling():
    planner_cases = _planner_frontier()
    fleet_cases = _fleet_frontier()

    record = {
        "bench": "batchsim_scaling",
        "min_speedup": MIN_SPEEDUP,
        "planner_frontier": _section("planner frontier", planner_cases),
        "fleet_frontier": _section("fleet frontier", fleet_cases),
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
