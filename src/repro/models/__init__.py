"""Model architecture registry and per-layer compute/memory accounting."""

from .architectures import MODEL_REGISTRY, ModelSpec, get_model, list_models
from .layers import (
    FP16_BYTES,
    QUANT_GROUP_SIZE,
    arithmetic_intensity,
    decode_bytes,
    decode_flops,
    embedding_bytes,
    embedding_flops,
    hidden_state_bytes,
    kv_bytes_per_token,
    kv_cache_bytes,
    lm_head_flops,
    prefill_bytes,
    prefill_flops,
    weight_storage_bytes,
)

__all__ = [
    "MODEL_REGISTRY",
    "ModelSpec",
    "get_model",
    "list_models",
    "FP16_BYTES",
    "QUANT_GROUP_SIZE",
    "arithmetic_intensity",
    "decode_bytes",
    "decode_flops",
    "embedding_bytes",
    "embedding_flops",
    "hidden_state_bytes",
    "kv_bytes_per_token",
    "kv_cache_bytes",
    "lm_head_flops",
    "prefill_bytes",
    "prefill_flops",
    "weight_storage_bytes",
]
