"""Execution timelines: record and render pipeline schedules.

``trace_plan`` reruns a plan through the discrete-event simulator with
per-job recording enabled and returns a :class:`Timeline`; ``render_gantt``
draws it as text — the quickest way to *see* pipeline bubbles, phase
boundaries and stage imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..plan import ExecutionPlan
from ..workloads.spec import BatchWorkload
from .simulator import PipelineSimResult, simulate_plan
from .stage import TimingSource


@dataclass(frozen=True)
class Timeline:
    """Per-stage job intervals of one simulated batch."""

    #: (stage name, ((start, finish, label), ...)) per pipeline stage.
    stages: Tuple[Tuple[str, Tuple[Tuple[float, float, str], ...]], ...]
    makespan_s: float
    result: PipelineSimResult

    def stage_jobs(self, index: int) -> Tuple[Tuple[float, float, str], ...]:
        return self.stages[index][1]

    def idle_gaps(self, index: int) -> List[Tuple[float, float]]:
        """Idle intervals of a stage between its first and last job."""
        jobs = sorted(self.stage_jobs(index))
        gaps: List[Tuple[float, float]] = []
        for (s0, f0, _), (s1, _, _) in zip(jobs, jobs[1:]):
            if s1 > f0 + 1e-12:
                gaps.append((f0, s1))
        return gaps


def trace_plan(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    timing: Optional[TimingSource] = None,
    check_memory: bool = True,
) -> Timeline:
    """Simulate ``plan`` with per-job recording and return the timeline."""
    captured: List[Tuple[str, Tuple[Tuple[float, float, str], ...]]] = []

    # simulate_plan constructs its own servers (via the shared topology);
    # intercept them by wrapping the Server class used at that call site.
    from . import topology as _topo
    from .events import Server

    servers_seen: List[Server] = []
    original = _topo.Server

    def recording_server(loop, name):  # matches Server(loop, name) call sites
        srv = original(loop, name, record_jobs=True)
        servers_seen.append(srv)
        return srv

    _topo.Server = recording_server  # type: ignore[assignment]
    try:
        # Per-job recording only exists in the discrete-event engine, so
        # pin the backend: the fast path computes the same finish times
        # in closed form without ever materializing servers.
        result = simulate_plan(
            plan, cluster, spec, workload, timing=timing,
            check_memory=check_memory, sim_backend="event",
        )
    finally:
        _topo.Server = original  # type: ignore[assignment]
    for srv in servers_seen:
        captured.append((srv.name, tuple(srv.jobs)))
    return Timeline(
        stages=tuple(captured),
        makespan_s=result.makespan_s,
        result=result,
    )


def render_gantt(
    timeline: Timeline,
    width: int = 100,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a timeline as a text Gantt chart.

    Busy time is drawn with ``#`` (prefill-tagged jobs) and ``=``
    (decode-tagged jobs); idle time with spaces.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    span = timeline.makespan_s
    if span <= 0:
        return "(empty timeline)"
    lines = []
    name_w = max(len(n) for n, _ in timeline.stages)
    if labels is not None:
        if len(labels) != len(timeline.stages):
            raise ValueError("one label per stage required")
        name_w = max(name_w, max(len(l) for l in labels))
    for i, (name, jobs) in enumerate(timeline.stages):
        row = [" "] * width
        for start, finish, label in jobs:
            a = int(start / span * (width - 1))
            b = max(int(finish / span * (width - 1)), a)
            ch = "#" if label.startswith("P") else "="
            for k in range(a, b + 1):
                row[k] = ch
        shown = labels[i] if labels is not None else name
        lines.append(f"{shown:>{name_w}} |{''.join(row)}|")
    scale = f"{' ' * name_w} 0s{' ' * (width - 12)}{span:8.2f}s"
    lines.append(scale)
    lines.append(f"{' ' * name_w} #=prefill  ==decode")
    return "\n".join(lines)
