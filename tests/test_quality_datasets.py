"""Tests for the synthetic evaluation corpora."""

import numpy as np
import pytest

from repro.quality import (
    CORPUS_SPECS,
    build_calibration_tokens,
    build_eval_corpora,
    zipfian_stream,
)


def test_three_paper_corpora(tiny_corpora):
    assert set(tiny_corpora.names()) == {"wikitext2", "ptb", "c4"}
    assert set(CORPUS_SPECS) == {"wikitext2", "ptb", "c4"}


def test_corpora_shapes(tiny_corpora):
    for name in tiny_corpora.names():
        assert tiny_corpora[name].shape == (4, 48)


def test_corpora_deterministic(tiny_model):
    a = build_eval_corpora(tiny_model, n_seqs=2, seq_len=24)
    b = build_eval_corpora(tiny_model, n_seqs=2, seq_len=24)
    for name in a.names():
        assert np.array_equal(a[name], b[name])


def test_corpora_differ_between_names(tiny_corpora):
    assert not np.array_equal(tiny_corpora["wikitext2"], tiny_corpora["ptb"])


def test_tokens_in_vocab(tiny_model, tiny_corpora):
    for name in tiny_corpora.names():
        arr = tiny_corpora[name]
        assert arr.min() >= 0 and arr.max() < tiny_model.config.vocab


def test_calibration_tokens(tiny_model):
    calib = build_calibration_tokens(tiny_model, n_seqs=3, seq_len=32)
    assert calib.shape == (3, 32)


def test_zipfian_marginals():
    stream = zipfian_stream(vocab=100, n_seqs=50, seq_len=200, seed=0)
    counts = np.bincount(stream.ravel(), minlength=100)
    # Token 0 (rank 1) should be far more frequent than token 50.
    assert counts[0] > 5 * counts[50]


def test_zipfian_validation():
    with pytest.raises(ValueError):
        zipfian_stream(vocab=1, n_seqs=1, seq_len=10)


def test_harder_corpus_has_higher_ppl(tiny_model, tiny_corpora):
    """Higher sampling temperature -> less predictable -> higher PPL."""
    ppl_wiki = tiny_model.perplexity(tiny_corpora["wikitext2"])  # temp .75
    ppl_c4 = tiny_model.perplexity(tiny_corpora["c4"])  # temp .95
    assert ppl_c4 > ppl_wiki
