"""Planner configuration (the user inputs of Fig. 6, step 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs of the SplitQuant assigner.

    ``theta`` is the paper's quality scalar trading throughput against
    model quality in objective (4); ``quality_budget`` instead imposes a
    hard cap on the summed variance indicator (the Sec. VI-C mode that
    guarantees at-least-Uniform quality).  ``group_size`` groups decoder
    layers for ILP-size reduction (Table VI); ``use_heuristic`` swaps the
    ILP for the bitwidth-transfer heuristic.
    """

    bit_choices: Tuple[int, ...] = (3, 4, 8, 16)
    #: Planning tier: ``"exact"`` runs the enumerating candidate search
    #: (MILP or hill-climb per candidate), ``"dp"`` the scalable
    #: DP-over-contiguous-segments planner, ``"auto"`` routes by instance
    #: size (exact up to ``auto_exact_max_devices`` GPUs, DP beyond).
    tier: str = "auto"
    #: Largest cluster (device count) ``tier="auto"`` still plans exactly.
    auto_exact_max_devices: int = 8
    #: Stage-count prefixes the DP tier tries per ordering (ranked by the
    #: flow relaxation); higher explores more pipeline depths.
    dp_prefix_candidates: int = 3
    #: Hill-climb polish iterations after the segment DP (0 disables).
    dp_polish_iters: int = 40
    theta: float = 10.0
    quality_budget: Optional[float] = None
    group_size: int = 2
    use_heuristic: bool = False
    #: Per-solve wall-clock limit for the MILP backend (seconds).
    time_limit_s: float = 60.0
    bit_kv: int = 16
    #: Candidate KV-cache bitwidths to enumerate (extension beyond the
    #: paper, which fixes ``bit_kv``); None plans at ``bit_kv`` only.
    kv_bit_choices: Optional[Tuple[int, ...]] = None
    #: Candidate micro-batch sizes; None derives powers of two from B.
    microbatch_candidates: Optional[Tuple[int, ...]] = None
    #: Cap on device-topology orderings explored (pruned search space).
    max_orderings: int = 24
    #: Re-score this many top candidates with the cost-model-driven event
    #: simulator before committing (dry-run refinement; 1 disables).
    verify_top_k: int = 3
    #: Explore intra-node tensor-parallel stage groupings.
    enable_tp: bool = True
    #: Ablation: force the prefill and decode micro-batch sizes equal.
    tie_microbatches: bool = False
    #: Ablation: plan with phase-blind costs (prefill ratios for both
    #: phases), disabling the paper's phase-aware partitioning.
    phase_blind: bool = False
    #: Worker threads for candidate solving in the search engine; 1 keeps
    #: the solve loop serial.  The chosen plan is bit-identical either way
    #: (deterministic reduction on (score, enumeration index)).
    parallelism: int = 1
    #: Planning objective: ``"throughput"`` (the paper's default),
    #: ``"energy"`` (J/token) or ``"cost"`` ($/Mtoken).  Non-throughput
    #: objectives re-rank the verified candidate frontier by the energy
    #: model (:mod:`repro.costmodel.energy`); with a ``budget`` they
    #: instead maximize throughput subject to the ceiling.
    objective: str = "throughput"
    #: Optional objective budget: a J/token ceiling under
    #: ``objective="energy"``, a $/Mtoken ceiling under
    #: ``objective="cost"``; ignored for ``"throughput"``.
    budget: Optional[float] = None
    #: Skip candidates whose admissible lower bound proves they cannot
    #: enter the verified top-k.  Never changes the chosen plan.
    prune: bool = True
    #: Lower-bound family for pruning: "auto" picks "lp" (exact-MILP LP
    #: relaxation) for the ILP backend and "analytic" (MCKP + structural
    #: bounds) for the heuristic; "none" disables bounding entirely.
    bound: str = "auto"
    seed: int = 0

    def __post_init__(self):
        if not self.bit_choices:
            raise ValueError("need at least one bitwidth choice")
        if sorted(self.bit_choices) != list(self.bit_choices):
            raise ValueError("bit_choices must be sorted ascending")
        if self.theta < 0:
            raise ValueError("theta must be non-negative")
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")
        if self.time_limit_s <= 0:
            raise ValueError("time_limit_s must be positive")
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.bound not in ("auto", "lp", "analytic", "none"):
            raise ValueError(
                "bound must be one of 'auto', 'lp', 'analytic', 'none'"
            )
        if self.tier not in ("auto", "exact", "dp"):
            raise ValueError("tier must be one of 'auto', 'exact', 'dp'")
        if self.objective not in ("throughput", "energy", "cost"):
            raise ValueError(
                "objective must be one of 'throughput', 'energy', 'cost'"
            )
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive when set")
        if self.auto_exact_max_devices <= 0:
            raise ValueError("auto_exact_max_devices must be positive")
        if self.dp_prefix_candidates <= 0:
            raise ValueError("dp_prefix_candidates must be positive")
        if self.dp_polish_iters < 0:
            raise ValueError("dp_polish_iters must be non-negative")
