"""Cost models: memory (Sec. IV-A) and phase-aware latency regression."""

from .latency import (
    DECODE_GRID,
    PREFILL_GRID,
    LatencyCostModel,
    PhaseRegression,
    decode_features,
    fit_phase,
    prefill_features,
    relative_errors,
)
from .memory import (
    MemoryCostModel,
    activation_workspace_bytes,
    embedding_memory_bytes,
    layer_memory_bytes,
)

__all__ = [
    "DECODE_GRID",
    "PREFILL_GRID",
    "LatencyCostModel",
    "PhaseRegression",
    "decode_features",
    "fit_phase",
    "prefill_features",
    "relative_errors",
    "MemoryCostModel",
    "activation_workspace_bytes",
    "embedding_memory_bytes",
    "layer_memory_bytes",
]
