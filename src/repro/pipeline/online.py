"""Online serving simulation: arrivals, continuous batching, admission.

The online driver runs the *same* event core as the offline simulator —
:class:`~repro.pipeline.events.EventLoop` FIFO servers parameterized by
:class:`~repro.pipeline.topology.PipelineTopology` — but feeds it a
stream of requests instead of one closed batch:

* Requests enter a FIFO queue as they arrive.
* The scheduler greedily drains admissible requests into *groups*; each
  group is chunk-prefilled as padded micro-batches and then decoded with
  per-request retirement, exactly like the offline drivers.
* Groups overlap on the stage servers: a new group's prefill micro-
  batches slot in between an older group's decode steps (continuous
  micro-batch refill), with decode submissions keeping priority at each
  refill point.
* Admission is KV-aware: each request reserves its per-stage KV cache
  under the paging budget of :mod:`repro.costmodel.memory` at admission
  and releases it at completion.  Requests can also be rejected on queue
  overflow or an expired TTFT SLO.

Two backends share this scheduler, selected by ``sim_backend``:

* ``"event"`` — the per-job discrete-event oracle (one heap event per
  (micro-batch, stage, step) job).
* ``"fast"`` — the epoch-vectorized driver in
  :mod:`repro.pipeline.online_fast`: between scheduler decision points
  the submitted work per stage is deterministic FIFO, so whole prefill
  waves and decode rounds advance with the same max-plus recurrence as
  :mod:`repro.pipeline.fastsim`, replaying the identical float
  operations.  Results are bit-equal to the event backend.
* ``"auto"`` (default) — dispatch through
  :func:`~repro.pipeline.online_fast.fast_online_eligibility`, with the
  decline reason (if any) recorded as
  :attr:`OnlineSimResult.backend_reason`.

The contract with the offline path is differential: with every arrival
at t=0, admission disabled, and one unbounded group, the event sequence
replays the offline ``simulate_plan`` run *bit-identically* (makespan,
spans, busy times, memory tuple, and event count) — enforced by
``tests/test_online_sim.py``; the fast/event equivalence across the
full online grid (overload, shedding, ragged tails) is enforced by
``tests/test_online_fast.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..costmodel.memory import (
    activation_workspace_bytes,
    embedding_memory_bytes,
)
from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..models import layers as L
from ..obs import metrics, trace
from ..plan import ExecutionPlan
from ..simgpu.memory import OutOfMemoryError
from ..workloads.arrivals import ArrivalTrace, Request
from ..workloads.spec import BatchWorkload
from .events import EventLoop
from .fastsim import _bounded_put, _timing_token
from .simulator import _check_backend, check_plan_memory
from .stage import RooflineTiming, TimingSource
from .topology import PipelineTopology, microbatch_sizes

__all__ = [
    "ADMISSION_POLICIES",
    "OnlineConfig",
    "OnlineSimResult",
    "OnlineTables",
    "clear_online_caches",
    "online_tables",
    "simulate_online",
]

#: Accepted admission policies: ``"kv"`` reserves per-request KV cache
#: against each stage's memory budget; ``"none"`` admits everything
#: (the offline-equivalent mode — memory is then pre-checked worst-case).
ADMISSION_POLICIES = ("kv", "none")


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online serving simulation."""

    #: Prefill chunking cap, like ``BatchWorkload.chunk_tokens``.
    chunk_tokens: int = 2048
    #: Admission policy (see :data:`ADMISSION_POLICIES`).
    admission: str = "kv"
    #: Cap on requests per continuous-batching group (None = unbounded).
    max_group_size: Optional[int] = None
    #: Queue overflow limit; arrivals beyond it are rejected (None = ∞).
    max_queue: Optional[int] = None
    #: Reject still-queued requests whose wait already exceeds this TTFT
    #: SLO at the next scheduling point (None = no SLO admission).
    ttft_slo_s: Optional[float] = None
    #: Stop admitting arrivals after this time; they count as unserved.
    horizon_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission {self.admission!r} "
                f"(expected one of {ADMISSION_POLICIES})"
            )
        if self.chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        if self.max_group_size is not None and self.max_group_size <= 0:
            raise ValueError("max_group_size must be positive")
        if self.max_queue is not None and self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive")
        if self.horizon_s is not None and self.horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")


def _percentile(values: Tuple[float, ...], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class OnlineSimResult:
    """Outcome of one online serving simulation (Summary-compliant)."""

    makespan_s: float
    prefill_span_s: float
    decode_span_s: float
    total_tokens: int
    stage_busy_s: Tuple[float, ...]
    stage_memory_bytes: Tuple[int, ...]
    events_processed: int
    arrived: int
    admitted: int
    completed: int
    rejected_queue: int
    rejected_slo: int
    rejected_oom: int
    unserved: int
    groups_formed: int
    #: Per completed request (ascending ``req_id``): first-token latency,
    #: per-output-token time, and end-to-end latency.
    ttft_s: Tuple[float, ...]
    tpot_s: Tuple[float, ...]
    latency_s: Tuple[float, ...]
    #: Time-integral of the in-system request count (request-seconds),
    #: accumulated event-by-event — the independent side of the
    #: Little's-law consistency property.
    area_request_s: float
    #: SLO echoed from the config so attainment is self-contained.
    ttft_slo_s: Optional[float] = None
    #: Provenance only (excluded from equality), like the offline result.
    sim_backend: str = field(default="event", compare=False)
    backend_reason: Optional[str] = field(default=None, compare=False)
    #: Joules / dollars for the run, computed by the same pure post-pass
    #: as the offline result (worst-case reference shapes), so the
    #: degenerate online run matches offline energy bit-for-bit.
    energy_j: Optional[float] = None
    cost_usd: Optional[float] = None

    @property
    def rejected(self) -> int:
        return self.rejected_queue + self.rejected_slo + self.rejected_oom

    @property
    def throughput_tokens_s(self) -> float:
        """Output token throughput — the Summary-protocol headline."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens / self.makespan_s

    @property
    def duration_s(self) -> float:
        """Simulated wall-clock (the Summary-protocol duration)."""
        return self.makespan_s

    @property
    def stage_utilization(self) -> Tuple[float, ...]:
        if self.makespan_s <= 0:
            return tuple(0.0 for _ in self.stage_busy_s)
        return tuple(min(b / self.makespan_s, 1.0) for b in self.stage_busy_s)

    @property
    def bubble_fraction(self) -> float:
        util = self.stage_utilization
        return 1.0 - float(np.mean(util)) if util else 0.0

    @property
    def mean_concurrency(self) -> float:
        """Little's-law L: time-averaged requests in system."""
        if self.makespan_s <= 0:
            return 0.0
        return self.area_request_s / self.makespan_s

    def ttft_percentile(self, q: float) -> float:
        return _percentile(self.ttft_s, q)

    def tpot_percentile(self, q: float) -> float:
        return _percentile(self.tpot_s, q)

    def latency_percentile(self, q: float) -> float:
        return _percentile(self.latency_s, q)

    @property
    def joules_per_token(self) -> float:
        """Energy efficiency headline (J per output token)."""
        if self.energy_j is None or self.total_tokens <= 0:
            return 0.0
        return self.energy_j / self.total_tokens

    @property
    def usd_per_mtoken(self) -> float:
        """Dollar efficiency headline ($ per million output tokens)."""
        if self.cost_usd is None or self.total_tokens <= 0:
            return 0.0
        return self.cost_usd / (self.total_tokens / 1e6)

    @property
    def ttft_slo_attainment(self) -> Optional[float]:
        """Fraction of completed requests whose TTFT met the SLO."""
        if self.ttft_slo_s is None or not self.ttft_s:
            return None
        met = sum(1 for t in self.ttft_s if t <= self.ttft_slo_s)
        return met / len(self.ttft_s)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict via :mod:`repro.serialization` (round-trip)."""
        from ..serialization import online_result_to_dict

        return online_result_to_dict(self)


class _Group:
    """One continuous-batching group in flight."""

    __slots__ = (
        "gid", "requests", "pad", "kappa", "chunk_len", "max_output",
        "pending_prefill", "prefill_end",
    )

    def __init__(self, gid: int, requests: List[Request], chunk_tokens: int):
        self.gid = gid
        self.requests = requests
        self.pad = max(r.prompt_len for r in requests)
        self.kappa = -(-self.pad // chunk_tokens)
        self.chunk_len = -(-self.pad // self.kappa)
        self.max_output = max(r.output_len for r in requests)
        self.pending_prefill = 0
        self.prefill_end = 0.0


def _chunk_len_of(prompt_len: int, chunk_tokens: int) -> int:
    kappa = -(-prompt_len // chunk_tokens)
    return -(-prompt_len // kappa)


# ---------------------------------------------------------------------------
# Memoized duration tables, shared by both backends.
# ---------------------------------------------------------------------------


class OnlineTables:
    """Memoized online duration lookups over one pipeline topology.

    Every quantity the online drivers need — per-stage prefill chunk
    times, link delays, decode step series keyed by (group size, padded
    prompt, max output), and the last-to-first feedback delay — is a
    pure function of the topology, so one bundle per
    ``(plan, cluster, spec, timing)`` serves every run, every refill
    point, and both backends.  The event driver previously rebuilt these
    dicts per run; sharing the bundle makes repeat traces (benchmarks,
    fleets, differential tests) pay each lookup once.
    """

    __slots__ = (
        "topo", "_pre_time", "_pre_comm", "_dec_series", "_dec_comm",
        "_feedback",
    )

    def __init__(self, topo: PipelineTopology):
        self.topo = topo
        self._pre_time: Dict[Tuple[int, int, int], float] = {}
        self._pre_comm: Dict[Tuple[int, int, int], float] = {}
        self._dec_series: Dict[Tuple[int, int, int, int], List[float]] = {}
        self._dec_comm: Dict[Tuple[int, int], float] = {}
        self._feedback: Dict[int, float] = {}

    def pre_time(self, j: int, size: int, chunk_len: int) -> float:
        key = (j, size, chunk_len)
        t = self._pre_time.get(key)
        if t is None:
            t = self._pre_time[key] = self.topo.prefill_time(
                j, size, chunk_len
            )
        return t

    def pre_comm(self, j: int, size: int, chunk_len: int) -> float:
        key = (j, size, chunk_len)
        t = self._pre_comm.get(key)
        if t is None:
            t = self._pre_comm[key] = self.topo.prefill_comm(
                j, size, chunk_len
            )
        return t

    def dec_series(
        self, j: int, size: int, pad: int, max_n: int
    ) -> List[float]:
        key = (j, size, pad, max_n)
        series = self._dec_series.get(key)
        if series is None:
            series = self._dec_series[key] = self.topo.decode_series(
                j, size, pad, max_n
            )
        return series

    def dec_step(
        self, j: int, size: int, pad: int, max_n: int, t: int
    ) -> float:
        return self.dec_series(j, size, pad, max_n)[t - 1]

    def dec_comm(self, j: int, size: int) -> float:
        key = (j, size)
        t = self._dec_comm.get(key)
        if t is None:
            t = self._dec_comm[key] = self.topo.decode_comm(j, size)
        return t

    def feedback(self, size: int) -> float:
        t = self._feedback.get(size)
        if t is None:
            t = self._feedback[size] = self.topo.feedback_delay(size)
        return t


_ONLINE_TABLE_CACHE: Dict[Any, Tuple[TimingSource, OnlineTables]] = {}
_ONLINE_TABLE_CACHE_MAX = 64


def online_tables(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    timing: TimingSource,
) -> OnlineTables:
    """The memoized :class:`OnlineTables` for this configuration.

    Value-hashable timings (the frozen dataclasses, including the
    default roofline) key by value, so repeat runs with the same plan
    hit the same bundle across simulator calls.
    """
    key = (plan, cluster, spec, _timing_token(timing))
    hit = _ONLINE_TABLE_CACHE.get(key)
    if hit is not None:
        return hit[1]
    topo = PipelineTopology.build(plan, cluster, spec, timing)
    tables = OnlineTables(topo)
    _bounded_put(
        _ONLINE_TABLE_CACHE, _ONLINE_TABLE_CACHE_MAX, key, (timing, tables)
    )
    return tables


def clear_online_caches() -> None:
    """Drop the online duration-table memo (benchmarks use this)."""
    _ONLINE_TABLE_CACHE.clear()


# ---------------------------------------------------------------------------
# Shared per-run context and scheduler state.
# ---------------------------------------------------------------------------


class _OnlineContext:
    """Immutable inputs of one online run, shared by both backends.

    Bundles the topology/duration tables, the static per-stage memory
    residency, and the admission pre-checks so the event and fast
    drivers build their worlds from the same bytes.
    """

    __slots__ = (
        "plan", "cluster", "spec", "config", "tables", "topo", "n_stages",
        "last_stage", "capacities", "layers_per_stage", "max_output",
        "ref_chunk", "static", "stage_mem0",
    )

    def __init__(
        self,
        plan: ExecutionPlan,
        cluster: ClusterSpec,
        spec: ModelSpec,
        arrivals: ArrivalTrace,
        config: OnlineConfig,
        timing: Optional[TimingSource],
        check_memory: bool,
    ):
        self.plan = plan
        self.cluster = cluster
        self.spec = spec
        self.config = config
        if timing is None:
            timing = RooflineTiming(spec=spec, bit_kv=plan.bit_kv)
        self.tables = online_tables(plan, cluster, spec, timing)
        self.topo = self.tables.topo
        self.n_stages = self.topo.num_stages
        self.last_stage = self.n_stages - 1
        self.capacities = self.topo.stage_capacities()
        self.layers_per_stage = [len(st.layer_bits) for st in plan.stages]

        self.max_output = max(r.output_len for r in arrivals.requests)
        self.ref_chunk = max(
            _chunk_len_of(r.prompt_len, config.chunk_tokens)
            for r in arrivals.requests
        )

        # Static per-stage residency: weights + activation workspace (+
        # the embeddings / LM head placement of check_plan_memory).  KV
        # is the dynamic part the admission controller meters on top.
        static: List[int] = []
        for j, st in enumerate(plan.stages):
            b = sum(
                L.weight_storage_bytes(spec, bits) for bits in st.layer_bits
            )
            b += activation_workspace_bytes(
                spec, plan.prefill_microbatch, self.ref_chunk
            )
            if j == 0:
                b += embedding_memory_bytes(spec, plan.prefill_microbatch)
            if j == self.last_stage and j != 0:
                b += spec.lm_head_elements * L.FP16_BYTES
            static.append(b)
        self.static = static

        self.stage_mem0: Optional[Tuple[int, ...]] = None
        if config.admission == "none":
            if check_memory:
                # All-resident worst case — the exact offline pre-check,
                # so the degenerate configuration raises (or not)
                # identically.
                worst = BatchWorkload(
                    batch=arrivals.n_requests,
                    prompt_len=arrivals.max_prompt,
                    output_len=self.max_output,
                    chunk_tokens=config.chunk_tokens,
                )
                self.stage_mem0 = check_plan_memory(
                    plan, cluster, spec, worst
                )
            else:
                self.stage_mem0 = tuple(0 for _ in plan.stages)
        elif check_memory:
            for j, st in enumerate(plan.stages):
                if static[j] > self.capacities[j]:
                    raise OutOfMemoryError(
                        f"stage{j}({st.gpu_name})",
                        static[j],
                        self.capacities[j],
                    )


class _OnlineState:
    """Queue / KV / SLO bookkeeping, shared verbatim by both backends.

    Every scheduler decision — admission, SLO shedding, group formation,
    KV reservation, Little's-law accumulation — happens only at driver
    events, through these methods, in the same order with the same float
    operations.  The driver plugs in ``launch`` (called by
    :meth:`try_schedule` with an admitted group) and owns everything
    between decision points.
    """

    __slots__ = (
        "ctx", "queue", "kv_used", "kv_peak", "counts", "first_token_t",
        "completion_t", "prefill_end_max", "completion_max", "area_value",
        "area_n", "area_last", "_kv_req_cache", "launch",
    )

    def __init__(self, ctx: _OnlineContext):
        self.ctx = ctx
        self.queue: Deque[Request] = deque()
        self.kv_used = [0] * ctx.n_stages
        self.kv_peak = [0] * ctx.n_stages
        self.counts = {
            "arrived": 0, "admitted": 0, "completed": 0,
            "rejected_queue": 0, "rejected_slo": 0, "rejected_oom": 0,
            "unserved": 0, "groups": 0, "tokens": 0,
        }
        self.first_token_t: Dict[int, float] = {}
        self.completion_t: Dict[int, float] = {}
        self.prefill_end_max = 0.0
        self.completion_max = 0.0
        # Little's-law area: integrate the in-system count event-by-event.
        self.area_value = 0.0
        self.area_n = 0
        self.area_last = 0.0
        self._kv_req_cache: Dict[int, Tuple[int, ...]] = {}
        self.launch = None  # set by the driver: fn(requests, now)

    def area_advance(self, now: float) -> None:
        self.area_value += self.area_n * (now - self.area_last)
        self.area_last = now

    def kv_req(self, context_len: int) -> Tuple[int, ...]:
        got = self._kv_req_cache.get(context_len)
        if got is None:
            ctx = self.ctx
            got = self._kv_req_cache[context_len] = tuple(
                ctx.layers_per_stage[j]
                * L.kv_cache_bytes(ctx.spec, 1, context_len, ctx.plan.bit_kv)
                for j in range(ctx.n_stages)
            )
        return got

    # ---- request lifecycle --------------------------------------------
    def reject(self, req: Request, now: float, kind: str) -> None:
        self.area_advance(now)
        self.area_n -= 1
        self.counts[f"rejected_{kind}"] += 1

    def enqueue(self, req: Request, now: float) -> None:
        config = self.ctx.config
        self.counts["arrived"] += 1
        if config.horizon_s is not None and req.arrival_s > config.horizon_s:
            self.counts["unserved"] += 1
            return
        self.area_advance(now)
        self.area_n += 1
        if (
            config.max_queue is not None
            and len(self.queue) >= config.max_queue
        ):
            self.reject(req, now, "queue")
            return
        self.queue.append(req)

    def complete(self, req: Request, now: float) -> None:
        self.area_advance(now)
        self.area_n -= 1
        self.counts["completed"] += 1
        self.counts["tokens"] += req.output_len
        self.completion_t[req.req_id] = now
        if now > self.completion_max:
            self.completion_max = now
        if self.ctx.config.admission == "kv":
            need = self.kv_req(req.context_len)
            for j in range(self.ctx.n_stages):
                self.kv_used[j] -= need[j]

    def barrier(self, requests: List[Request], end: float) -> None:
        """First-token bookkeeping at a group's prefill barrier."""
        if end > self.prefill_end_max:
            self.prefill_end_max = end
        if end > self.completion_max:
            self.completion_max = end
        for r in requests:
            self.first_token_t[r.req_id] = end

    # ---- scheduling ----------------------------------------------------
    def try_schedule(self, now: float) -> None:
        ctx = self.ctx
        config = ctx.config
        queue = self.queue
        while queue:
            group: List[Request] = []
            while queue and (
                config.max_group_size is None
                or len(group) < config.max_group_size
            ):
                req = queue[0]
                if (
                    config.ttft_slo_s is not None
                    and now - req.arrival_s > config.ttft_slo_s
                ):
                    queue.popleft()
                    self.reject(req, now, "slo")
                    continue
                if config.admission == "kv":
                    need = self.kv_req(req.context_len)
                    if any(
                        ctx.static[j] + need[j] > ctx.capacities[j]
                        for j in range(ctx.n_stages)
                    ):
                        # Can never fit, even on an idle pipeline.
                        queue.popleft()
                        self.reject(req, now, "oom")
                        continue
                    if any(
                        ctx.static[j] + self.kv_used[j] + need[j]
                        > ctx.capacities[j]
                        for j in range(ctx.n_stages)
                    ):
                        break  # head-of-line block until KV frees up
                    for j in range(ctx.n_stages):
                        self.kv_used[j] += need[j]
                        if self.kv_used[j] > self.kv_peak[j]:
                            self.kv_peak[j] = self.kv_used[j]
                group.append(queue.popleft())
            if not group:
                break
            self.counts["admitted"] += len(group)
            self.counts["groups"] += 1
            self.launch(group, now)


def _finalize(
    ctx: _OnlineContext,
    state: _OnlineState,
    arrivals: ArrivalTrace,
    stage_busy: Tuple[float, ...],
    events_processed: int,
    end_now: float,
    sim_backend: str,
) -> OnlineSimResult:
    """Drain leftovers and assemble the result (both backends)."""
    config = ctx.config
    # Defensive: a future policy could leave the queue blocked at drain;
    # count leftovers as unserved so work conservation stays exact.
    for _req in state.queue:
        state.area_advance(end_now)
        state.area_n -= 1
        state.counts["unserved"] += 1
    state.queue.clear()
    state.area_advance(max(end_now, state.completion_max))

    prefill_span = state.prefill_end_max
    decode_span = (
        state.completion_max - prefill_span
        if state.completion_max > 0
        else 0.0
    )
    makespan = prefill_span + decode_span

    if config.admission == "kv":
        stage_mem = tuple(
            ctx.static[j] + state.kv_peak[j] for j in range(ctx.n_stages)
        )
    else:
        assert ctx.stage_mem0 is not None
        stage_mem = ctx.stage_mem0

    done_ids = sorted(state.completion_t)
    by_id = {r.req_id: r for r in arrivals.requests}
    first_token_t = state.first_token_t
    completion_t = state.completion_t
    ttft = tuple(
        first_token_t[i] - by_id[i].arrival_s for i in done_ids
    )
    tpot = tuple(
        (completion_t[i] - first_token_t[i]) / (by_id[i].output_len - 1)
        if by_id[i].output_len > 1
        else 0.0
        for i in done_ids
    )
    latency = tuple(
        completion_t[i] - by_id[i].arrival_s for i in done_ids
    )

    # Energy/cost post-pass at the worst-case reference shapes — the
    # identical expression the degenerate-equivalence memory check uses,
    # so a one-closed-batch stream reproduces the offline attach exactly.
    from ..costmodel.energy import plan_cost, plan_energy

    energy_ref = BatchWorkload(
        batch=arrivals.n_requests,
        prompt_len=arrivals.max_prompt,
        output_len=ctx.max_output,
        chunk_tokens=config.chunk_tokens,
    )
    energy = plan_energy(
        ctx.plan, ctx.cluster, ctx.spec, energy_ref,
        makespan, prefill_span, decode_span, stage_busy,
    )
    cost = plan_cost(ctx.plan, ctx.cluster, makespan, energy)

    counts = state.counts
    return OnlineSimResult(
        makespan_s=makespan,
        prefill_span_s=prefill_span,
        decode_span_s=decode_span,
        total_tokens=counts["tokens"],
        stage_busy_s=stage_busy,
        stage_memory_bytes=stage_mem,
        events_processed=events_processed,
        arrived=counts["arrived"],
        admitted=counts["admitted"],
        completed=counts["completed"],
        rejected_queue=counts["rejected_queue"],
        rejected_slo=counts["rejected_slo"],
        rejected_oom=counts["rejected_oom"],
        unserved=counts["unserved"],
        groups_formed=counts["groups"],
        ttft_s=ttft,
        tpot_s=tpot,
        latency_s=latency,
        area_request_s=state.area_value,
        ttft_slo_s=config.ttft_slo_s,
        sim_backend=sim_backend,
        energy_j=energy,
        cost_usd=cost,
    )


def _arrival_waves(
    arrivals: ArrivalTrace,
) -> Tuple[List[Request], List[Tuple[float, List[Request]]]]:
    """Split the trace into t<=0 requests and same-instant later waves.

    One wave per *distinct* arrival time, so a same-instant burst is
    offered to the scheduler together (and the event count stays zero
    for the offline-degenerate all-at-t0 configuration).
    """
    initial = [r for r in arrivals.requests if r.arrival_s <= 0.0]
    later = [r for r in arrivals.requests if r.arrival_s > 0.0]
    waves: List[Tuple[float, List[Request]]] = []
    i = 0
    while i < len(later):
        k = i
        t_arr = later[i].arrival_s
        while k < len(later) and later[k].arrival_s == t_arr:
            k += 1
        waves.append((t_arr, later[i:k]))
        i = k
    return initial, waves


def simulate_online(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    arrivals: ArrivalTrace,
    config: Optional[OnlineConfig] = None,
    timing: Optional[TimingSource] = None,
    check_memory: bool = True,
    sim_backend: str = "auto",
) -> OnlineSimResult:
    """Simulate serving an arrival stream under ``plan`` on ``cluster``.

    See the module docstring for the scheduling and admission semantics.
    With ``admission="none"`` and ``check_memory`` set, memory is
    pre-checked against the all-resident worst case exactly as the
    offline :func:`~repro.pipeline.simulator.check_plan_memory` would,
    raising :class:`~repro.simgpu.memory.OutOfMemoryError` on misfit.

    ``sim_backend`` selects the engine: ``"event"`` runs the per-job
    discrete-event oracle, ``"fast"`` the epoch-vectorized driver
    (:mod:`repro.pipeline.online_fast`), and ``"auto"`` (default)
    dispatches through the eligibility predicate.  The backends are
    bit-identical; :attr:`OnlineSimResult.sim_backend` records which
    one ran.
    """
    config = config or OnlineConfig()
    _check_backend(sim_backend)
    from .online_fast import _fast_simulate_online, fast_online_eligibility

    reason = fast_online_eligibility(plan, arrivals, config)
    use_fast = sim_backend == "fast" or (
        sim_backend == "auto" and reason is None
    )
    with trace.span(
        "sim.online",
        stages=plan.num_stages,
        requests=arrivals.n_requests,
        admission=config.admission,
        backend="fast" if use_fast else "event",
    ) as sp:
        if use_fast:
            result = _fast_simulate_online(
                plan, cluster, spec, arrivals, config, timing, check_memory
            )
        else:
            result = _simulate_online(
                plan, cluster, spec, arrivals, config, timing, check_memory
            )
            if sim_backend == "auto" and reason is not None:
                result = replace(result, backend_reason=reason)
        sp.set(
            events=result.events_processed,
            completed=result.completed,
            rejected=result.rejected,
            groups=result.groups_formed,
        )
        if trace.enabled:
            metrics.counter("sim.online_runs").inc()
            metrics.counter(
                f"sim.online_backend_{result.sim_backend}"
            ).inc()
            metrics.counter("sim.online_arrived").inc(result.arrived)
            metrics.counter("sim.online_completed").inc(result.completed)
            metrics.counter("sim.online_rejected").inc(result.rejected)
            metrics.counter("sim.online_groups").inc(result.groups_formed)
            metrics.counter("sim.events").inc(result.events_processed)
        return result


def _simulate_online(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    arrivals: ArrivalTrace,
    config: OnlineConfig,
    timing: Optional[TimingSource],
    check_memory: bool,
) -> OnlineSimResult:
    ctx = _OnlineContext(
        plan, cluster, spec, arrivals, config, timing, check_memory
    )
    tables = ctx.tables
    last_stage = ctx.last_stage
    pre_time = tables.pre_time
    pre_comm = tables.pre_comm
    dec_step = tables.dec_step
    dec_comm = tables.dec_comm

    loop = EventLoop()
    servers = ctx.topo.make_servers(loop)
    submit_at = [s.submit for s in servers]

    state = _OnlineState(ctx)
    complete = state.complete
    try_schedule = state.try_schedule

    def launch_group(requests: List[Request], now: float) -> None:
        g = _Group(state.counts["groups"] - 1, requests, config.chunk_tokens)
        pre_sizes = microbatch_sizes(len(requests), plan.prefill_microbatch)
        g.pending_prefill = len(pre_sizes) * g.kappa

        def submit_prefill(j: int, m: int, c: int, size: int,
                           ready: float) -> None:
            def done(finish: float) -> None:
                if j < last_stage:
                    arrival = finish + pre_comm(j, size, g.chunk_len)
                    submit_prefill(j + 1, m, c, size, arrival)
                else:
                    if finish > g.prefill_end:
                        g.prefill_end = finish
                    g.pending_prefill -= 1
                    if g.pending_prefill == 0:
                        on_group_prefill_done(g)

            submit_at[j](
                pre_time(j, size, g.chunk_len), done,
                not_before=ready, label=f"P{g.gid}.{m}.{c}",
            )

        with trace.span(
            "sim.online.group",
            size=len(requests), kappa=g.kappa, start=now,
        ):
            for m, size in enumerate(pre_sizes):
                for c in range(g.kappa):
                    submit_prefill(0, m, c, size, now)

    state.launch = launch_group

    def on_group_prefill_done(g: _Group) -> None:
        # The zeroing event is the group's latest prefill completion, so
        # loop.now == g.prefill_end here (same barrier as offline).
        end = g.prefill_end
        state.barrier(g.requests, end)
        singles = [r for r in g.requests if r.output_len == 1]
        xi = plan.decode_microbatch
        slices = [
            g.requests[s : s + xi]
            for s in range(0, len(g.requests), xi)
        ]
        for m, sl in enumerate(slices):
            size = sum(1 for r in sl if r.output_len > 1)
            if size > 0:
                launch_decode(g, m, sl, size, end)
        for r in singles:
            complete(r, end)
        # Refill point: freed KV (one-token requests) or queued arrivals
        # can now form the next group; decode above keeps priority.
        try_schedule(end)

    def launch_decode(g: _Group, m: int, sl: List[Request],
                      size0: int, ready0: float) -> None:
        def active(t: int) -> int:
            return sum(1 for r in sl if r.output_len > t)

        def submit_dec(j: int, t: int, size: int, ready: float) -> None:
            def done(finish: float) -> None:
                if j < last_stage:
                    submit_dec(j + 1, t, size, finish + dec_comm(j, size))
                    return
                nxt = active(t + 1)
                if nxt > 0:
                    fb = tables.feedback(nxt)
                    submit_dec(0, t + 1, nxt, finish + fb)
                retired = [r for r in sl if r.output_len == t + 1]
                if retired:
                    for r in retired:
                        complete(r, finish)
                    try_schedule(finish)

            submit_at[j](
                dec_step(j, size, g.pad, g.max_output, t), done,
                not_before=ready, label=f"D{g.gid}.{m}.{t}",
            )

        submit_dec(0, 1, size0, ready0)

    # ---- inject arrivals and run ---------------------------------------
    initial, waves = _arrival_waves(arrivals)
    for r in initial:
        state.enqueue(r, 0.0)
    try_schedule(0.0)

    for t_arr, wave in waves:
        def fire(wave: List[Request] = wave, t_arr: float = t_arr) -> None:
            for r in wave:
                state.enqueue(r, t_arr)
            try_schedule(t_arr)

        loop.at(t_arr, fire)

    loop.run()

    stage_busy = tuple(s.busy_time for s in servers)
    return _finalize(
        ctx, state, arrivals, stage_busy, loop.processed, loop.now, "event"
    )
