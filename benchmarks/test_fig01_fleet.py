"""Bench: regenerate Fig. 1 (fleet distribution and utilization)."""

from repro.experiments import fig01_fleet


def test_fig01_fleet(experiment):
    res = experiment(fig01_fleet.run)
    # Paper's shape: small A100 share, big utilization gap to the tail.
    assert res.summary["a100_share"] < 0.15
    assert res.summary["util_gap_x"] > 1.5
