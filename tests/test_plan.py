"""Tests for execution-plan structures."""

import pytest

from repro.plan import ExecutionPlan, StagePlan, uniform_plan


def make_plan():
    return ExecutionPlan(
        model_name="opt-13b",
        stages=(
            StagePlan((0,), "T4-16G", 0, (8, 8, 4)),
            StagePlan((1, 2), "T4-16G", 3, (4, 4)),
            StagePlan((3,), "V100-32G", 5, (16,)),
        ),
        prefill_microbatch=4,
        decode_microbatch=8,
    )


def test_basic_properties():
    plan = make_plan()
    assert plan.num_layers == 6
    assert plan.num_stages == 3
    assert plan.bits_per_layer == (8, 8, 4, 4, 4, 16)
    assert plan.layers_per_stage() == (3, 2, 1)
    assert plan.stages[1].tp_degree == 2


def test_stage_of_layer():
    plan = make_plan()
    assert plan.stage_of_layer(0) == 0
    assert plan.stage_of_layer(3) == 1
    assert plan.stage_of_layer(5) == 2
    with pytest.raises(IndexError):
        plan.stage_of_layer(6)


def test_bits_histogram():
    assert make_plan().bits_histogram() == {8: 2, 4: 3, 16: 1}


def test_describe_readable():
    d = make_plan().describe()
    assert "T4-16G" in d and "tp2" in d and "eta=4" in d


def test_non_contiguous_rejected():
    with pytest.raises(ValueError, match="contiguous"):
        ExecutionPlan(
            model_name="m",
            stages=(
                StagePlan((0,), "T4-16G", 0, (8,)),
                StagePlan((1,), "T4-16G", 2, (8,)),  # gap at layer 1
            ),
            prefill_microbatch=1,
            decode_microbatch=1,
        )


def test_duplicate_device_rejected():
    with pytest.raises(ValueError, match="two stages"):
        ExecutionPlan(
            model_name="m",
            stages=(
                StagePlan((0,), "T4-16G", 0, (8,)),
                StagePlan((0,), "T4-16G", 1, (8,)),
            ),
            prefill_microbatch=1,
            decode_microbatch=1,
        )


def test_empty_stage_rejected():
    with pytest.raises(ValueError):
        StagePlan((0,), "T4-16G", 0, ())


def test_bad_microbatch_rejected():
    with pytest.raises(ValueError):
        ExecutionPlan(
            model_name="m",
            stages=(StagePlan((0,), "T4-16G", 0, (8,)),),
            prefill_microbatch=0,
            decode_microbatch=1,
        )


def test_uniform_plan_even_split():
    groups = [((0,), "T4-16G"), ((1,), "T4-16G"), ((2,), "V100-32G")]
    plan = uniform_plan("opt-13b", 10, groups, 8, 4, 4)
    assert plan.layers_per_stage() == (4, 3, 3)
    assert set(plan.bits_per_layer) == {8}


def test_uniform_plan_exact_split():
    groups = [((0,), "A"), ((1,), "A")]
    plan = uniform_plan("m", 8, groups, 16, 2, 2)
    assert plan.layers_per_stage() == (4, 4)


def test_uniform_plan_fewer_layers_than_stages():
    with pytest.raises(ValueError):
        uniform_plan("m", 1, [((0,), "A"), ((1,), "A")], 16, 1, 1)


def test_uniform_plan_needs_groups():
    with pytest.raises(ValueError):
        uniform_plan("m", 4, [], 16, 1, 1)
