"""Tests for plan JSON (de)serialization."""

import json

import pytest

from repro.plan import ExecutionPlan, StagePlan
from repro.serialization import (
    SCHEMA_VERSION,
    dumps_plan,
    load_plan,
    loads_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)


@pytest.fixture
def plan():
    return ExecutionPlan(
        model_name="opt-30b",
        stages=(
            StagePlan((0, 1), "T4-16G", 0, (4, 4, 8)),
            StagePlan((2,), "V100-32G", 3, (16,)),
        ),
        prefill_microbatch=8,
        decode_microbatch=16,
        bit_kv=8,
    )


def test_roundtrip_exact(plan):
    assert loads_plan(dumps_plan(plan)) == plan


def test_dict_roundtrip(plan):
    assert plan_from_dict(plan_to_dict(plan)) == plan


def test_json_is_valid_and_versioned(plan):
    data = json.loads(dumps_plan(plan))
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["model_name"] == "opt-30b"
    assert len(data["stages"]) == 2


def test_file_roundtrip(plan, tmp_path):
    path = tmp_path / "plan.json"
    save_plan(plan, path)
    assert load_plan(path) == plan


def test_unknown_schema_rejected(plan):
    data = plan_to_dict(plan)
    data["schema_version"] = 999
    with pytest.raises(ValueError, match="schema version"):
        plan_from_dict(data)


def test_bit_kv_default(plan):
    data = plan_to_dict(plan)
    del data["bit_kv"]
    restored = plan_from_dict(data)
    assert restored.bit_kv == 16


def test_corrupt_plan_rejected(plan):
    data = plan_to_dict(plan)
    data["stages"][1]["layer_start"] = 7  # breaks contiguity
    with pytest.raises(ValueError):
        plan_from_dict(data)


def test_planner_output_serializes(opt13b, small_cluster, cost_model_13b,
                                   small_workload, tmp_path):
    from repro.core import PlannerConfig, SplitQuantPlanner

    cfg = PlannerConfig(group_size=5, max_orderings=2,
                        microbatch_candidates=(4,), time_limit_s=10.0,
                        verify_top_k=1)
    res = SplitQuantPlanner(
        opt13b, small_cluster, cfg, cost_model=cost_model_13b
    ).plan(small_workload)
    path = tmp_path / "p.json"
    save_plan(res.plan, path)
    assert load_plan(path) == res.plan
