"""Execution plans: the assigner's output, the runtime's input.

A plan maps a contiguous range of decoder layers (each with its own
quantization bitwidth) to every pipeline stage, names the devices forming
each stage (one device, or an intra-node tensor-parallel group), and fixes
the prefill/decode micro-batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class InfeasibleError(RuntimeError):
    """No execution plan satisfies the constraints (memory/quality/devices).

    Raised instead of returning a silently-wrong plan: callers asking for a
    degraded plan after GPU failures must either get a feasible plan or
    this explicit error — never a crash or a constraint violation.
    """


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage."""

    #: Cluster device ids forming the stage (len > 1 means TP).
    device_ids: Tuple[int, ...]
    #: GPU model name of the stage's devices (TP groups are homogeneous).
    gpu_name: str
    #: Global index of the stage's first decoder layer.
    layer_start: int
    #: Bitwidth per layer held by the stage, in model order.
    layer_bits: Tuple[int, ...]

    def __post_init__(self):
        if not self.device_ids:
            raise ValueError("stage needs at least one device")
        if not self.layer_bits:
            raise ValueError("stage must hold at least one layer")

    def __hash__(self):
        # Stages (and the plans holding them) are hashed on every
        # simulator memo lookup; cache the field hash once per object.
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            h = hash(
                (self.device_ids, self.gpu_name, self.layer_start,
                 self.layer_bits)
            )
            object.__setattr__(self, "_hash_cache", h)
            return h

    @property
    def num_layers(self) -> int:
        return len(self.layer_bits)

    @property
    def layer_end(self) -> int:
        """One past the stage's last layer."""
        return self.layer_start + self.num_layers

    @property
    def tp_degree(self) -> int:
        return len(self.device_ids)


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete serving plan for one model on one cluster."""

    model_name: str
    stages: Tuple[StagePlan, ...]
    #: Prefill micro-batch size (paper's eta).
    prefill_microbatch: int
    #: Decode micro-batch size (paper's xi).
    decode_microbatch: int
    bit_kv: int = 16

    def __post_init__(self):
        if not self.stages:
            raise ValueError("plan needs at least one stage")
        if self.prefill_microbatch <= 0 or self.decode_microbatch <= 0:
            raise ValueError("micro-batch sizes must be positive")
        expect = 0
        for st in self.stages:
            if st.layer_start != expect:
                raise ValueError(
                    f"stages not contiguous: stage starts at {st.layer_start}, "
                    f"expected {expect}"
                )
            expect = st.layer_end
        seen: set = set()
        for st in self.stages:
            for d in st.device_ids:
                if d in seen:
                    raise ValueError(f"device {d} used by two stages")
                seen.add(d)

    def __hash__(self):
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            h = hash(
                (self.model_name, self.stages, self.prefill_microbatch,
                 self.decode_microbatch, self.bit_kv)
            )
            object.__setattr__(self, "_hash_cache", h)
            return h

    @property
    def num_layers(self) -> int:
        return self.stages[-1].layer_end

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def bits_per_layer(self) -> Tuple[int, ...]:
        """Global per-layer bitwidth assignment in model order."""
        out: List[int] = []
        for st in self.stages:
            out.extend(st.layer_bits)
        return tuple(out)

    def stage_of_layer(self, layer: int) -> int:
        for j, st in enumerate(self.stages):
            if st.layer_start <= layer < st.layer_end:
                return j
        raise IndexError(f"layer {layer} outside plan (L={self.num_layers})")

    def layers_per_stage(self) -> Tuple[int, ...]:
        return tuple(st.num_layers for st in self.stages)

    def bits_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for b in self.bits_per_layer:
            hist[b] = hist.get(b, 0) + 1
        return hist

    def describe(self) -> str:
        parts = []
        for st in self.stages:
            tp = f" tp{st.tp_degree}" if st.tp_degree > 1 else ""
            bits = "/".join(str(b) for b in sorted(set(st.layer_bits)))
            parts.append(
                f"{st.gpu_name}{tp}[{st.layer_start}:{st.layer_end}]@{bits}b"
            )
        return (
            f"{self.model_name}: "
            + " -> ".join(parts)
            + f" (eta={self.prefill_microbatch}, xi={self.decode_microbatch})"
        )


def uniform_plan(
    model_name: str,
    num_layers: int,
    device_groups: Sequence[Tuple[Tuple[int, ...], str]],
    bits: int,
    prefill_microbatch: int,
    decode_microbatch: int,
    bit_kv: int = 16,
) -> ExecutionPlan:
    """Evenly partition ``num_layers`` at a uniform bitwidth.

    ``device_groups`` lists (device_ids, gpu_name) per pipeline stage in
    order.  The first stages receive the remainder layers, as frameworks
    commonly do.
    """
    n_stages = len(device_groups)
    if n_stages == 0:
        raise ValueError("need at least one device group")
    if num_layers < n_stages:
        raise ValueError("fewer layers than stages")
    base = num_layers // n_stages
    rem = num_layers % n_stages
    stages: List[StagePlan] = []
    start = 0
    for j, (dev_ids, gpu_name) in enumerate(device_groups):
        count = base + (1 if j < rem else 0)
        stages.append(
            StagePlan(
                device_ids=tuple(dev_ids),
                gpu_name=gpu_name,
                layer_start=start,
                layer_bits=(bits,) * count,
            )
        )
        start += count
    return ExecutionPlan(
        model_name=model_name,
        stages=tuple(stages),
        prefill_microbatch=prefill_microbatch,
        decode_microbatch=decode_microbatch,
        bit_kv=bit_kv,
    )


def degrade_plan(
    plan: ExecutionPlan,
    surviving_device_ids: Iterable[int],
    capacity_bytes: Optional[Dict[int, int]] = None,
    layer_cost: Optional[Callable[[int, int], int]] = None,
) -> ExecutionPlan:
    """Redistribute a plan's layers over the surviving devices.

    The fault-tolerant runtime calls this when stage workers die mid-batch:
    every stage whose devices all survive keeps its device group, stages
    touching a dead device are dropped, and the *same* per-layer bitwidth
    sequence (quantized weights already exist — re-quantization is an
    offline operation) is re-partitioned contiguously over the surviving
    groups in pipeline order.  Keeping the bitwidths fixed is what makes
    degraded generation bit-exact against the fault-free reference.

    ``capacity_bytes`` maps device id to usable bytes and ``layer_cost``
    maps ``(layer_index, bits)`` to that layer's resident bytes; when both
    are given the partition respects the per-group memory caps.  An exact
    suffix-feasibility table (contiguous-partition DP, cheap at these
    sizes) guarantees a cap-respecting partition is found whenever one
    exists, with boundaries placed as close to a capacity-proportional
    balance as feasibility allows.  Raises :class:`InfeasibleError` when
    no surviving group remains or the layers cannot fit.
    """
    surviving = set(surviving_device_ids)
    groups: List[StagePlan] = [
        st for st in plan.stages if all(d in surviving for d in st.device_ids)
    ]
    if not groups:
        raise InfeasibleError(
            f"no surviving stage groups (survivors={sorted(surviving)})"
        )
    bits = plan.bits_per_layer
    L = len(bits)
    G = len(groups)
    if L < G:
        groups = groups[:L]
        G = L

    def cost(i: int) -> float:
        if layer_cost is not None:
            return float(layer_cost(i, bits[i]))
        return float(bits[i])  # proxy weight: resident bytes scale with bits

    weights = [cost(i) for i in range(L)]
    prefix = [0.0]
    for w in weights:
        prefix.append(prefix[-1] + w)
    caps: List[float]
    if capacity_bytes is not None:
        caps = [
            float(sum(capacity_bytes.get(d, 0) for d in g.device_ids))
            for g in groups
        ]
        total_cap = sum(caps)
    else:
        caps = [float("inf")] * G
        total_cap = float(G)

    def load(a: int, b: int) -> float:
        return prefix[b] - prefix[a]

    # feasible[j][i]: layers[i:] can be contiguously assigned to
    # groups[j:] with >= 1 layer per group and per-group capacity held.
    feasible = [[False] * (L + 1) for _ in range(G + 1)]
    feasible[G][L] = True
    for j in range(G - 1, -1, -1):
        for i in range(L - 1, -1, -1):
            for k in range(i + 1, L + 1):
                if load(i, k) > caps[j]:
                    break
                if feasible[j + 1][k]:
                    feasible[j][i] = True
                    break
    if not feasible[0][0]:
        raise InfeasibleError(
            f"{load(0, L):.3g} bytes of layers do not fit any contiguous "
            f"partition over {G} surviving stage group(s) "
            f"(total capacity {total_cap:.3g})"
        )

    counts: List[int] = []
    start = 0
    for j in range(G):
        left = L - start
        if j == G - 1:
            counts.append(left)
            start = L
            continue
        share = (
            (caps[j] / total_cap)
            if capacity_bytes is not None
            else 1.0 / G
        )
        target = min(max(round(L * share), 1), left - (G - j - 1))
        # Admissible counts: fit this group's cap and leave a feasible
        # suffix.  Pick the admissible count closest to the balanced
        # target (ties toward taking fewer layers here).
        best: Optional[int] = None
        for count in range(1, left):  # later groups still need >= 1 layer
            if load(start, start + count) > caps[j]:
                break
            if not feasible[j + 1][start + count]:
                continue
            if best is None or abs(count - target) < abs(best - target):
                best = count
        assert best is not None, "DP said feasible but no admissible count"
        counts.append(best)
        start += best

    stages: List[StagePlan] = []
    start = 0
    for g, count in zip(groups, counts):
        stages.append(
            StagePlan(
                device_ids=g.device_ids,
                gpu_name=g.gpu_name,
                layer_start=start,
                layer_bits=tuple(bits[start : start + count]),
            )
        )
        start += count
    return ExecutionPlan(
        model_name=plan.model_name,
        stages=tuple(stages),
        prefill_microbatch=plan.prefill_microbatch,
        decode_microbatch=plan.decode_microbatch,
        bit_kv=plan.bit_kv,
    )
