"""Tests for Theorem 1 and the Proposition 1 variance indicator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    OperatorStats,
    empirical_quant_variance,
    g_statistic,
    indicator_table,
    layer_indicator,
    operator_stats_from_arrays,
    random_indicator_table,
    scaling_factor,
    theorem1_variance_bound,
)

BITS = (3, 4, 8, 16)


@pytest.fixture(scope="module")
def wx():
    rng = np.random.default_rng(7)
    w = rng.standard_normal((32, 64)) * 0.1
    x = rng.standard_normal((64, 512))
    return w, x


@given(
    seed=st.integers(min_value=0, max_value=1000),
    bits=st.sampled_from([3, 4, 8]),
)
@settings(max_examples=30, deadline=None)
def test_theorem1_deterministic_bound_holds(seed, bits):
    """Property: the worst-case deterministic bound dominates measurement."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((16, 32)) * rng.uniform(0.01, 1.0)
    x = rng.standard_normal((32, 256))
    bound = theorem1_variance_bound(w, x, bits, "deterministic")
    emp = empirical_quant_variance(w, x, bits, "deterministic", seed=seed)
    assert emp <= bound * 1.01


@given(
    seed=st.integers(min_value=0, max_value=1000),
    bits=st.sampled_from([3, 4, 8]),
)
@settings(max_examples=30, deadline=None)
def test_theorem1_stochastic_estimate_tracks_measurement(seed, bits):
    """The stochastic form is an average-case estimate (uniform fractional
    parts), so it should track the measurement within a modest factor."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((16, 32)) * rng.uniform(0.01, 1.0)
    x = rng.standard_normal((32, 256))
    est = theorem1_variance_bound(w, x, bits, "stochastic")
    emp = empirical_quant_variance(w, x, bits, "stochastic", seed=seed)
    assert emp <= est * 2.0
    assert emp >= est / 10.0


def test_bound_not_vacuous(wx):
    """Deterministic-rounding error is uniform-ish: ~1/3 of the bound."""
    w, x = wx
    bound = theorem1_variance_bound(w, x, 4, "deterministic")
    emp = empirical_quant_variance(w, x, 4, "deterministic")
    assert emp > bound / 10


def test_scaling_factor_definitions(wx):
    w, _ = wx
    s_sym = scaling_factor(w, 4, symmetric=True)
    assert s_sym == pytest.approx(np.max(np.abs(w)) / 7)
    s_asym = scaling_factor(w, 4, symmetric=False)
    assert s_asym == pytest.approx((w.max() - w.min()) / 15)


def test_g_statistic_forms(wx):
    _, x = wx
    det = g_statistic(x, "deterministic")
    sto = g_statistic(x, "stochastic")
    assert det == pytest.approx(np.var(x) / 4)
    assert sto == pytest.approx((np.mean(x) ** 2 + np.var(x)) / 6)
    with pytest.raises(ValueError):
        g_statistic(x, "banker")


def test_operator_stats_capture(wx):
    w, x = wx
    st_ = operator_stats_from_arrays(w, x)
    assert st_.d_w == 64
    assert st_.w_absmax == pytest.approx(np.max(np.abs(w)))
    assert st_.omega(16) == 0.0
    assert st_.omega(3) > st_.omega(4) > st_.omega(8) > 0


def test_layer_indicator_sums_operators(wx):
    w, x = wx
    ops = [operator_stats_from_arrays(w, x)] * 3
    assert layer_indicator(ops, 4) == pytest.approx(3 * ops[0].omega(4))


def test_indicator_table_shape_and_monotonicity(wx):
    w, x = wx
    layers = [[operator_stats_from_arrays(w * (i + 1), x)] for i in range(4)]
    table = indicator_table(layers, BITS)
    assert table.shape == (4, 4)
    # Monotone in bits within a layer.
    for i in range(4):
        assert table[i, 0] > table[i, 1] > table[i, 2] > table[i, 3] == 0
    # Larger weight range -> larger indicator.
    assert np.all(np.diff(table[:, 0]) > 0)


def test_indicator_scales_with_scale_squared():
    a = OperatorStats(d_w=100, w_absmax=0.1, x_mean=0.0, x_var=1.0)
    b = OperatorStats(d_w=100, w_absmax=0.2, x_mean=0.0, x_var=1.0)
    assert b.omega(4) == pytest.approx(4 * a.omega(4))


def test_random_indicator_table_properties():
    table = random_indicator_table(10, BITS, seed=0)
    assert table.shape == (10, 4)
    # FP16 column zero, and higher bits never above lower bits.
    assert np.all(table[:, 3] == 0)
    for i in range(10):
        assert table[i, 0] >= table[i, 1] >= table[i, 2] >= 0
    # Different from the deterministic indicator: uniform draws.
    other = random_indicator_table(10, BITS, seed=1)
    assert not np.allclose(table, other)


def test_stochastic_vs_deterministic_bounds_differ(wx):
    w, x = wx
    det = theorem1_variance_bound(w, x, 4, "deterministic")
    sto = theorem1_variance_bound(w, x, 4, "stochastic")
    assert det != sto
