"""Tests for AWQ activation-aware quantization."""

import numpy as np
import pytest

from repro.quant import QuantConfig, awq_quantize


@pytest.fixture(scope="module")
def salient_case():
    rng = np.random.default_rng(0)
    w = rng.standard_normal((48, 64)) * 0.1
    x = rng.standard_normal((64, 256))
    x[7] *= 25.0  # a salient input channel
    x[21] *= 12.0
    return w, x


def test_awq_beats_rtn_with_salient_channels(salient_case):
    w, x = salient_case
    for bits in (3, 4):
        cfg = QuantConfig(bits=bits, granularity="group", group_size=32)
        res = awq_quantize(w, x, cfg)
        assert res.loss < res.rtn_loss * 0.7, bits


def test_awq_chooses_nonzero_alpha_for_outliers(salient_case):
    w, x = salient_case
    res = awq_quantize(w, x)
    assert res.alpha > 0.0


def test_awq_neutral_without_outliers():
    rng = np.random.default_rng(1)
    w = rng.standard_normal((32, 48)) * 0.1
    x = rng.standard_normal((48, 256))
    res = awq_quantize(w, x)
    # Uniform activations: scaling cannot be much better than RTN.
    assert res.loss <= res.rtn_loss * 1.001


def test_scales_geometric_mean_one(salient_case):
    w, x = salient_case
    res = awq_quantize(w, x)
    assert np.exp(np.mean(np.log(res.scales))) == pytest.approx(1.0)


def test_effective_weight_close_to_original(salient_case):
    w, x = salient_case
    res = awq_quantize(w, x, QuantConfig(bits=8, granularity="group",
                                         group_size=32))
    rel = np.linalg.norm(res.weight - w) / np.linalg.norm(w)
    assert rel < 0.02


def test_input_validation(salient_case):
    w, x = salient_case
    with pytest.raises(ValueError):
        awq_quantize(w[0], x)
    with pytest.raises(ValueError):
        awq_quantize(w, x[:5])


def test_custom_alpha_grid(salient_case):
    w, x = salient_case
    res = awq_quantize(w, x, alpha_grid=(0.0, 0.5))
    assert res.alpha in (0.0, 0.5)
