"""Tests for the Uniform / Het / adabits baselines."""

import pytest

from repro.baselines import (
    default_microbatch,
    default_stage_groups,
    plan_adabits_baseline,
    plan_het_baseline,
    plan_uniform_baseline,
    proportional_split,
    repair_partition_for_memory,
)
from repro.pipeline import simulate_plan

BITS = (3, 4, 8, 16)


def test_default_stage_groups_pp(cluster5):
    groups = default_stage_groups(cluster5)
    assert len(groups) == 4
    assert all(len(ids) == 1 for ids, _ in groups)


def test_default_stage_groups_tp(cluster5):
    from repro.hardware import table_iii_cluster

    c8 = table_iii_cluster(8)
    groups = default_stage_groups(c8, tp_degree=2)
    assert len(groups) == 2
    assert all(len(ids) == 2 for ids, _ in groups)
    with pytest.raises(ValueError):
        default_stage_groups(cluster5, tp_degree=2)  # 3 T4s % 2 != 0


def test_default_microbatch_pipeline_filling():
    assert default_microbatch(32, 4) == 8
    assert default_microbatch(32, 1) == 32
    assert default_microbatch(2, 8) == 1


def test_uniform_picks_highest_feasible_bits(small_cluster, opt13b,
                                             small_workload):
    res = plan_uniform_baseline(opt13b, small_cluster, small_workload, BITS)
    assert res is not None
    # OPT-13B halves (~7 GB FP16) fit both devices: FP16 is kept.
    assert res.bits == 16
    assert set(res.plan.bits_per_layer) == {16}


def test_uniform_lowers_precision_when_needed(small_cluster, opt30b,
                                              small_workload):
    res = plan_uniform_baseline(opt30b, small_cluster, small_workload, BITS)
    assert res is not None
    # OPT-30B halves (~30 GB FP16) exceed the 16 GB T4: precision drops.
    assert res.bits < 16


def test_uniform_returns_none_when_nothing_fits(opt30b, small_workload):
    from repro.hardware import make_cluster

    cluster = make_cluster("tiny", [("P100-12G", 1)])
    assert plan_uniform_baseline(opt30b, cluster, small_workload, BITS) is None


def test_uniform_plan_simulates(small_cluster, opt13b, small_workload):
    res = plan_uniform_baseline(opt13b, small_cluster, small_workload, BITS)
    sim = simulate_plan(res.plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_uniform_even_partition(small_cluster, opt13b, small_workload):
    res = plan_uniform_baseline(opt13b, small_cluster, small_workload, BITS)
    assert res.plan.layers_per_stage() == (20, 20)


def test_proportional_split_properties():
    counts = proportional_split(48, [1.0, 2.0, 1.0])
    assert sum(counts) == 48
    assert counts[1] > counts[0]
    assert all(c >= 1 for c in counts)


def test_proportional_split_extreme_speeds():
    counts = proportional_split(10, [1e-9, 1.0])
    assert counts[0] >= 1  # non-empty even for a uselessly slow stage
    assert sum(counts) == 10


def test_proportional_split_too_few_layers():
    with pytest.raises(ValueError):
        proportional_split(2, [1.0, 1.0, 1.0])


def test_repair_partition_shifts_overflow():
    # Stage 0 can hold 2 layers, stage 1 can hold 10.
    repaired = repair_partition_for_memory([6, 2], layer_bytes=10,
                                           capacities=[20, 100])
    assert repaired == [2, 6]


def test_repair_partition_infeasible():
    assert repair_partition_for_memory([4, 4], 10, [10, 10]) is None


def test_repair_partition_noop_when_fitting():
    assert repair_partition_for_memory([2, 2], 10, [100, 100]) == [2, 2]


def test_het_balances_by_speed(small_cluster, opt13b, small_workload,
                               cost_model_13b):
    res = plan_het_baseline(opt13b, small_cluster, small_workload,
                            cost_model_13b, BITS)
    assert res is not None
    # The V100 stage must get more layers than the T4 stage.
    layers = {st.gpu_name: st.num_layers for st in res.plan.stages}
    assert layers["V100-32G"] > layers["T4-16G"]
    # Uniform precision across all layers.
    assert len(set(res.plan.bits_per_layer)) == 1


def test_het_simulates(small_cluster, opt13b, small_workload, cost_model_13b):
    res = plan_het_baseline(opt13b, small_cluster, small_workload,
                            cost_model_13b, BITS)
    sim = simulate_plan(res.plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_adabits_plan(small_cluster, opt13b, small_workload, cost_model_13b):
    plan = plan_adabits_baseline(opt13b, small_cluster, small_workload,
                                 cost_model_13b, BITS)
    assert plan is not None
    sim = simulate_plan(plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0
    # Quality-first: mixes precisions to use available memory.
    hist = plan.bits_histogram()
    assert max(hist) >= 8  # some high-precision layers kept
