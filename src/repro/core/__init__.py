"""SplitQuant's core: joint quantization / partition / micro-batch planning."""

from .config import PlannerConfig
from .costs import PlanningProblem, StageGroup, build_problem, group_layers
from .enumeration import (
    candidate_orderings,
    microbatch_candidates,
    node_tp_groupings,
)
from .exhaustive import brute_force_solve
from .heuristic import bitwidth_transfer
from .ilp import ILPSolution, solve_adabits, solve_partition_ilp
from .planner import (
    CandidateStat,
    PlannerResult,
    SplitQuantPlanner,
    solution_to_plan,
)

__all__ = [
    "PlannerConfig",
    "PlanningProblem",
    "StageGroup",
    "build_problem",
    "group_layers",
    "candidate_orderings",
    "microbatch_candidates",
    "node_tp_groupings",
    "brute_force_solve",
    "bitwidth_transfer",
    "ILPSolution",
    "solve_adabits",
    "solve_partition_ilp",
    "CandidateStat",
    "PlannerResult",
    "SplitQuantPlanner",
    "solution_to_plan",
]
