"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The numeric half of the observability layer (spans answer *where time
went*, metrics answer *how often / how much*).  Zero dependencies,
thread-safe, and cheap enough that call sites only guard updates behind
``trace.enabled`` to keep the disabled fast path at one attribute check.

Naming convention: ``<subsystem>.<noun>[_<unit>]`` with subsystems
``planner`` / ``search`` / ``ilp`` / ``sim`` / ``runtime`` — e.g.
``planner.candidates_pruned`` (counter), ``runtime.heartbeat_age_s``
(gauge), ``sim.bubble_fraction`` (histogram).  Histograms use *fixed*
bucket boundaries chosen at creation so snapshots from different runs
merge/compare trivially; a sample equal to a boundary lands in that
boundary's bucket (``le`` semantics), larger-than-all samples land in
the overflow bucket.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_FRACTION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Latency-style boundaries (seconds), log-ish spaced across the repo's
#: observed range: sub-ms event-loop ticks up to the 60 s solver budget.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

#: Boundaries for [0, 1] ratios (utilization, bubble fraction, bound
#: tightness).
DEFAULT_FRACTION_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-boundary histogram with ``le`` bucket semantics.

    ``boundaries`` must be strictly increasing.  ``counts[i]`` holds
    samples ``v <= boundaries[i]`` (and ``> boundaries[i-1]``); the
    final slot ``counts[-1]`` is the overflow bucket
    (``v > boundaries[-1]``).
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count", "_lock")

    def __init__(
        self,
        name: str,
        boundaries: Tuple[float, ...],
        lock: threading.Lock,
    ) -> None:
        if not boundaries:
            raise ValueError("histogram needs at least one boundary")
        if list(boundaries) != sorted(set(boundaries)):
            raise ValueError("boundaries must be strictly increasing")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(boundaries) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self.counts[idx] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_of(self, value: float) -> int:
        """Index of the bucket a value would land in (test hook)."""
        return bisect.bisect_left(self.boundaries, value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Process-wide named instruments, created lazily on first use.

    Re-requesting a name returns the same instrument; requesting it as a
    different type (or a histogram with different boundaries) raises —
    silent shadowing would corrupt dashboards.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls, factory):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
                return inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name, self._lock))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, self._lock))

    def histogram(
        self,
        name: str,
        boundaries: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        bounds = boundaries or DEFAULT_SECONDS_BUCKETS
        hist = self._get(
            name, Histogram, lambda: Histogram(name, bounds, self._lock)
        )
        if boundaries is not None and hist.boundaries != tuple(
            float(b) for b in boundaries
        ):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{hist.boundaries}"
            )
        return hist

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._instruments.get(name)

    def names(self):
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain dicts (JSON-safe)."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: inst.to_dict() for name, inst in sorted(items)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every instrument (tests and fresh sessions)."""
        with self._lock:
            self._instruments.clear()
