"""Tests for the GPU spec registry."""

import pytest

from repro.hardware import (
    CUDA_CONTEXT_BYTES,
    GPU_REGISTRY,
    SUPPORTED_BITS,
    get_gpu,
    list_gpus,
)


def test_registry_has_all_paper_gpus():
    for name in ("T4-16G", "P100-12G", "V100-32G", "A100-40G"):
        assert name in GPU_REGISTRY


def test_aliases_resolve():
    assert get_gpu("A100").name == "A100-40G"
    assert get_gpu("T4").name == "T4-16G"
    assert get_gpu("V100").name == "V100-32G"
    assert get_gpu("P100").name == "P100-12G"


def test_unknown_gpu_raises():
    with pytest.raises(KeyError, match="unknown GPU"):
        get_gpu("H100")


def test_list_gpus_sorted_and_complete():
    names = list_gpus()
    assert names == tuple(sorted(names))
    assert len(names) == len(GPU_REGISTRY)


def test_usable_memory_subtracts_cuda_context():
    for spec in GPU_REGISTRY.values():
        assert spec.usable_mem_bytes == spec.mem_bytes - CUDA_CONTEXT_BYTES
        assert spec.usable_mem_bytes > 0


def test_memory_capacity_ordering():
    mems = {n: s.mem_bytes for n, s in GPU_REGISTRY.items()}
    assert mems["A100-40G"] > mems["V100-32G"] > mems["T4-16G"] > mems["P100-12G"]


def test_compute_capability_ordering_fp16():
    flops = {n: s.fp16_tflops for n, s in GPU_REGISTRY.items()}
    assert flops["A100-40G"] > flops["V100-32G"] > flops["T4-16G"] > flops["P100-12G"]


def test_int8_tensor_core_support_matrix():
    """Sec. II-E: T4 and A100 have fast INT8, P100/V100 do not."""
    assert get_gpu("T4").int8_tensor_cores
    assert get_gpu("A100").int8_tensor_cores
    assert not get_gpu("V100").int8_tensor_cores
    assert not get_gpu("P100").int8_tensor_cores


def test_int8_faster_than_fp16_on_tensor_core_devices():
    for name in ("T4", "A100"):
        gpu = get_gpu(name)
        assert gpu.compute_tflops(8) > gpu.compute_tflops(16)


def test_int8_not_faster_on_non_tensor_core_devices():
    for name in ("V100", "P100"):
        gpu = get_gpu(name)
        assert gpu.compute_tflops(8) <= gpu.compute_tflops(16)


def test_weight_only_bits_compute_at_fp16_rate():
    for spec in GPU_REGISTRY.values():
        assert spec.compute_tflops(4) == spec.fp16_tflops
        assert spec.compute_tflops(3) == spec.fp16_tflops


def test_flops_per_byte_t4_a100_high_intensity():
    """Sec. II-D: modern GPUs have high compute-to-memory ratios."""
    assert get_gpu("A100").flops_per_byte > 100
    assert get_gpu("T4").flops_per_byte > 100
    assert get_gpu("P100").flops_per_byte < 30


def test_supported_bits_constant():
    assert SUPPORTED_BITS == (3, 4, 8, 16)


def test_replace_overrides_field():
    gpu = get_gpu("T4").replace(mem_bytes=1)
    assert gpu.mem_bytes == 1
    assert gpu.name == "T4-16G"
    assert get_gpu("T4").mem_bytes != 1  # original untouched


def test_decode_bandwidth_below_peak():
    for spec in GPU_REGISTRY.values():
        assert spec.mem_bw_decode_gbps <= spec.mem_bw_gbps
