"""Bench: the closed-form fast simulator vs the discrete-event engine.

Measures both pipeline-simulation backends on a fleet-scale
configuration (OPT-30B on Table III cluster 7 — six stages — with a
64-request batch decoding 256 tokens: ~12k heap events per event-driven
run), asserts the fast path returns *bit-identical* results at >= 5x
less wall-clock, and times the persistent result cache's effect on a
cost-model fit (cold fit vs warm restore).  Emits
``benchmarks/BENCH_sim.json`` with the measured record.

Memory checking is disabled for the timing loop: the bench measures
engine speed, not feasibility (both backends share the identical
``check_plan_memory`` path anyway).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.pipeline import simulate_plan
from repro.plan import uniform_plan
from repro.workloads import BatchWorkload

OUT = Path(__file__).resolve().parent / "BENCH_sim.json"

#: The fast path must beat the event loop by at least this factor.
MIN_SPEEDUP = 5.0
ROUNDS = 5


def _fleet_scale_config():
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(7)  # 4x T4 + 2x V100: six stages
    plan = uniform_plan(
        spec.name,
        spec.num_layers,
        [((d.device_id,), d.gpu.name) for d in cluster.devices],
        bits=4,
        prefill_microbatch=16,
        decode_microbatch=8,
    )
    workload = BatchWorkload(
        batch=64, prompt_len=512, output_len=256, chunk_tokens=512
    )
    return spec, cluster, plan, workload


def _wall(fn, rounds: int = ROUNDS) -> float:
    """Best-of-``rounds`` wall-clock of one call (seconds)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_sim_scaling():
    spec, cluster, plan, workload = _fleet_scale_config()

    run_event = lambda: simulate_plan(  # noqa: E731
        plan, cluster, spec, workload,
        check_memory=False, sim_backend="event",
    )
    run_fast = lambda: simulate_plan(  # noqa: E731
        plan, cluster, spec, workload,
        check_memory=False, sim_backend="fast",
    )

    ev = run_event()
    fa = run_fast()
    # Hard parity requirement: the fast path is a reimplementation of
    # the same schedule, never an approximation.
    assert ev == fa
    assert ev.events_processed == fa.events_processed
    assert ev.events_processed > 10_000  # fleet-scale, not a toy

    event_wall_s = _wall(run_event)
    fast_wall_s = _wall(run_fast)
    speedup = event_wall_s / fast_wall_s
    assert speedup >= MIN_SPEEDUP, (
        f"fast backend only {speedup:.1f}x faster "
        f"(need >= {MIN_SPEEDUP}x): event {event_wall_s * 1e3:.2f}ms "
        f"vs fast {fast_wall_s * 1e3:.2f}ms"
    )

    # -- persistent cache: cold cost-model fit vs warm restore ----------
    from repro.experiments.common import _cost_model_cached

    saved = os.environ.get("SPLITQUANT_CACHE_DIR")
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["SPLITQUANT_CACHE_DIR"] = tmp
        try:
            _cost_model_cached.cache_clear()
            t0 = time.perf_counter()
            cold = _cost_model_cached("opt-30b", ("T4-16G", "V100-32G"))
            cold_s = time.perf_counter() - t0
            _cost_model_cached.cache_clear()
            t0 = time.perf_counter()
            warm = _cost_model_cached("opt-30b", ("T4-16G", "V100-32G"))
            warm_s = time.perf_counter() - t0
            _cost_model_cached.cache_clear()
        finally:
            if saved is None:
                os.environ.pop("SPLITQUANT_CACHE_DIR", None)
            else:
                os.environ["SPLITQUANT_CACHE_DIR"] = saved
    assert cold.fitted_keys() == warm.fitted_keys()
    assert warm_s < cold_s, (
        f"warm cache restore ({warm_s:.3f}s) not faster than "
        f"cold fit ({cold_s:.3f}s)"
    )

    record = {
        "bench": "sim_scaling",
        "model": spec.name,
        "cluster": cluster.name,
        "workload": {
            "batch": workload.batch,
            "prompt_len": workload.prompt_len,
            "output_len": workload.output_len,
            "chunk_tokens": workload.chunk_tokens,
        },
        "stages": plan.num_stages,
        "events_per_run": ev.events_processed,
        "event_wall_s": round(event_wall_s, 5),
        "fast_wall_s": round(fast_wall_s, 5),
        "speedup": round(speedup, 2),
        "results_identical": ev == fa,
        "cache": {
            "cost_model_cold_fit_s": round(cold_s, 4),
            "cost_model_warm_restore_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 2),
        },
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
