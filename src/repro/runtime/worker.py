"""Pipeline-stage workers: one thread per stage, each owning a layer range.

A worker receives hidden-state messages, runs its (quantized) decoder
layers with per-micro-batch KV caches, and forwards the result to the next
stage (or back to the master after the last stage) — the distributed
execution of Fig. 6, step 3, with threads standing in for worker
processes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..quality.tinylm import LayerWeights, TinyLMConfig, layer_forward
from .comm import Channel, ChannelClosed


@dataclass(frozen=True)
class StageMessage:
    """One unit of pipeline work."""

    phase: str  # "prefill" | "decode"
    mb_id: int
    hidden: np.ndarray  # (B, T, H) activations entering the stage


@dataclass(frozen=True)
class RegroupMessage:
    """Phase-switch control: re-slice KV caches into new micro-batches.

    The paper's master engine "dynamically adapts micro-batch sizes across
    generation phases" (Sec. III): prefill runs at eta, decode at xi.  Each
    entry of ``groups`` describes one new micro-batch as a concatenation of
    slices ``(old_mb_id, local_start, local_end)`` of the old ones.  The
    message flows through the pipeline so every stage regroups exactly
    once, and its arrival at the master signals completion.
    """

    groups: Tuple[Tuple[Tuple[int, int, int], ...], ...]


class StageWorker(threading.Thread):
    """Executes a contiguous range of decoder layers."""

    def __init__(
        self,
        stage_index: int,
        config: TinyLMConfig,
        layers: List[LayerWeights],
        in_ch: Channel,
        out_ch: Channel,
    ) -> None:
        super().__init__(name=f"stage-{stage_index}", daemon=True)
        self.stage_index = stage_index
        self.config = config
        self.layers = layers
        self.in_ch = in_ch
        self.out_ch = out_ch
        #: Per-micro-batch, per-local-layer KV caches.
        self._caches: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        self.busy_time = 0.0
        self.jobs = 0
        self.error: Optional[BaseException] = None

    def _forward(self, msg: StageMessage) -> np.ndarray:
        x = msg.hidden
        if msg.phase == "prefill":
            caches: List[Tuple[np.ndarray, np.ndarray]] = []
            for lw in self.layers:
                x, kv = layer_forward(self.config, lw, x)
                caches.append(kv)
            self._caches[msg.mb_id] = caches
        elif msg.phase == "decode":
            try:
                caches = self._caches[msg.mb_id]
            except KeyError:
                raise RuntimeError(
                    f"stage {self.stage_index}: decode for unknown "
                    f"micro-batch {msg.mb_id}"
                ) from None
            for i, lw in enumerate(self.layers):
                x, kv = layer_forward(self.config, lw, x, cache=caches[i])
                caches[i] = kv
        else:
            raise ValueError(f"unknown phase {msg.phase!r}")
        return x

    def _regroup(self, msg: RegroupMessage) -> None:
        new_caches: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        for new_id, parts in enumerate(msg.groups):
            merged: List[Tuple[np.ndarray, np.ndarray]] = []
            for layer_idx in range(len(self.layers)):
                ks, vs = [], []
                for old_id, lo, hi in parts:
                    k, v = self._caches[old_id][layer_idx]
                    ks.append(k[lo:hi])
                    vs.append(v[lo:hi])
                merged.append(
                    (np.concatenate(ks, axis=0), np.concatenate(vs, axis=0))
                )
            new_caches[new_id] = merged
        self._caches = new_caches

    def run(self) -> None:
        try:
            while True:
                try:
                    msg = self.in_ch.recv()
                except ChannelClosed:
                    self.out_ch.close()
                    return
                if isinstance(msg, RegroupMessage):
                    self._regroup(msg)
                    self.out_ch.send(msg)
                    continue
                t0 = time.perf_counter()
                out = self._forward(msg)
                self.busy_time += time.perf_counter() - t0
                self.jobs += 1
                self.out_ch.send(
                    StageMessage(phase=msg.phase, mb_id=msg.mb_id, hidden=out)
                )
        except BaseException as exc:  # surfaced by the engine
            self.error = exc
            self.out_ch.close()

    def reset_caches(self) -> None:
        self._caches.clear()

    def cache_tokens(self, mb_id: int) -> int:
        """Current KV length for a micro-batch (test/inspection hook)."""
        caches = self._caches.get(mb_id)
        if not caches:
            return 0
        return int(caches[0][0].shape[1])
