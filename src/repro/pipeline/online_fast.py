"""Epoch-vectorized fast path for the online serving simulator.

The event backend in :mod:`repro.pipeline.online` spends one heap event
per (micro-batch, stage, step) job.  But between scheduler decision
points — admission, group launch, per-request retirement, SLO expiry —
the submitted work per stage is deterministic FIFO, so whole *units* of
work advance in closed form with the same max-plus recurrence as
:mod:`repro.pipeline.fastsim`:

    F[j][k] = max(F[j][k-1], A[j][k]) + dur[j][k]

**Why cascading whole units is exact.**  Every stage-0 submission in the
online engine happens *synchronously inside a scheduler event*: a group
launch submits all of its prefill chunks at once, and each decode
feedback submits exactly one next-round job.  Finish times at a FIFO
server are nondecreasing in submission order, and each stage ``j+1``
submission fires at its stage-``j`` finish, so by induction the global
service order at every stage is *unit-major*: if unit U1's stage-0
submission precedes U2's, then U1's jobs precede U2's at every stage.  A
driver that processes units (one prefill wave, one decode round) in
stage-0 submission-time order and commits each unit through all stages
immediately therefore reproduces the event engine's schedules — the
same ``max`` then one add per job, the same per-server busy-time
accumulation order — bit-identically.

The coarse event heap orders only scheduler boundaries:

* *arrival waves* (kind 0) — the engine schedules all arrival timers
  upfront, so at equal times they beat any finish callback;
* *prefill barriers* and *decode round completions* (kind 1) — distinct
  last-stage finish times of a FIFO server with positive durations never
  collide, and the creation-order ``seq`` mirrors the engine's
  submission counters in any residual tie.

Between boundaries the driver fast-forwards decode rounds inline — the
steady-state stretch where nothing retires and no earlier coarse event
is pending — which is exactly the offline recurrence re-run per round,
with no heap traffic at all.

Scheduler state (queue, KV ledger, SLO shedding, Little's-law area,
energy post-pass) is the *shared* :class:`~repro.pipeline.online._OnlineState`
/ :func:`~repro.pipeline.online._finalize` code, so decisions and
accounting are identical by construction, not by re-implementation.

Eligibility: every online run replays exactly (the argument above has
no side conditions), so :func:`fast_online_eligibility` — the
documented decision point ``sim_backend="auto"`` routes through —
always returns ``None``, mirroring the offline
:func:`~repro.pipeline.fastsim.fast_eligibility` precedent.
``tests/test_online_fast.py`` pins the full differential grid.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import List, Optional

from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..obs import trace
from ..plan import ExecutionPlan
from ..workloads.arrivals import ArrivalTrace, Request
from .online import (
    OnlineConfig,
    OnlineSimResult,
    _arrival_waves,
    _finalize,
    _Group,
    _OnlineContext,
    _OnlineState,
)
from .stage import TimingSource
from .topology import microbatch_sizes

__all__ = ["fast_online_eligibility"]


def fast_online_eligibility(
    plan: ExecutionPlan,
    arrivals: ArrivalTrace,
    config: OnlineConfig,
) -> Optional[str]:
    """Why the fast path would *decline* this online run, or ``None``.

    The unit-major replay argument (module docstring) covers every
    configuration the online scheduler can produce — overlapping
    groups, KV/SLO shedding, ragged retirement, mid-stream rejection —
    so every run is eligible.  The hook exists so ``sim_backend="auto"``
    has one documented decision point that future ineligible features
    (e.g. preemption between groups) can return a reason string from,
    surfaced as :attr:`OnlineSimResult.backend_reason`.
    """
    return None


# Coarse event kinds (heap tuples sort by (time, kind, seq)).
_ARRIVE = 0
_BARRIER = 1
_ROUND = 2


class _Chain:
    """One decode slice's in-flight state (per (group, micro-batch))."""

    __slots__ = (
        "g", "sl", "lens", "n", "retire", "t", "rows", "comms", "row_size",
    )

    def __init__(self, g: _Group, sl: List[Request]):
        self.g = g
        self.sl = sl
        self.lens = sorted(r.output_len for r in sl)
        self.n = len(sl)
        self.retire = set(self.lens)
        self.t = 0
        self.rows: List[List[float]] = []
        self.comms: List[float] = []
        self.row_size = -1


def _fast_simulate_online(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    arrivals: ArrivalTrace,
    config: OnlineConfig,
    timing: Optional[TimingSource],
    check_memory: bool,
) -> OnlineSimResult:
    ctx = _OnlineContext(
        plan, cluster, spec, arrivals, config, timing, check_memory
    )
    tables = ctx.tables
    n_stages = ctx.n_stages
    stages_1 = range(1, n_stages)
    pre_time = tables.pre_time
    pre_comm = tables.pre_comm
    dec_series = tables.dec_series
    dec_comm = tables.dec_comm
    feedback = tables.feedback
    xi = plan.decode_microbatch
    mb_pre = plan.prefill_microbatch

    state = _OnlineState(ctx)
    complete = state.complete
    try_schedule = state.try_schedule

    # Per-stage FIFO server state, mirroring Server.free_at / busy_time.
    free = [0.0] * n_stages
    busy = [0.0] * n_stages
    jobs = 0  # every committed job is one Server.submit = one loop event
    heap: list = []
    heappush = heapq.heappush
    seq = 0  # creation order of kind-1 events (engine counter mirror)

    def launch_group(requests: List[Request], now: float) -> None:
        nonlocal jobs, seq
        g = _Group(state.counts["groups"] - 1, requests, config.chunk_tokens)
        pre_sizes = microbatch_sizes(len(requests), mb_pre)
        with trace.span(
            "sim.online.group",
            size=len(requests), kappa=g.kappa, start=now,
        ):
            # All of this wave's stage-0 submissions happen at this
            # instant, so the whole wave cascades through every stage
            # now (unit-major order; see module docstring).
            chunk = g.chunk_len
            kappa = g.kappa
            sizes = [s for s in pre_sizes for _ in range(kappa)]
            fin: List[float] = []
            f = free[0]
            b = busy[0]
            for size in sizes:
                if f < now:
                    f = now
                d = pre_time(0, size, chunk)
                f = f + d
                b += d
                fin.append(f)
            free[0] = f
            busy[0] = b
            for j in stages_1:
                jm1 = j - 1
                f = free[j]
                b = busy[j]
                for k, size in enumerate(sizes):
                    a = fin[k] + pre_comm(jm1, size, chunk)
                    if f < a:
                        f = a
                    d = pre_time(j, size, chunk)
                    f = f + d
                    b += d
                    fin[k] = f
                free[j] = f
                busy[j] = b
            jobs += len(sizes) * n_stages
            # FIFO finishes are nondecreasing, so the last chunk's
            # last-stage finish is the group's prefill barrier.
            g.prefill_end = fin[-1]
            heappush(heap, (fin[-1], 1, seq, _BARRIER, g))
            seq += 1

    state.launch = launch_group

    def cascade_round(ch: _Chain, t: int, size: int, ready: float) -> float:
        """Commit one decode round through every stage; returns its
        last-stage finish (the engine's round-completion event time)."""
        nonlocal jobs
        if size != ch.row_size:
            g = ch.g
            ch.rows = [
                dec_series(j, size, g.pad, g.max_output)
                for j in range(n_stages)
            ]
            ch.comms = [dec_comm(j, size) for j in range(n_stages - 1)]
            ch.row_size = size
        rows = ch.rows
        comms = ch.comms
        ti = t - 1
        f = free[0]
        if f < ready:
            f = ready
        d = rows[0][ti]
        f = f + d
        busy[0] += d
        free[0] = f
        prev = f
        for j in stages_1:
            a = prev + comms[j - 1]
            f = free[j]
            if f < a:
                f = a
            d = rows[j][ti]
            f = f + d
            busy[j] += d
            free[j] = f
            prev = f
        jobs += n_stages
        return prev

    def on_barrier(g: _Group, end: float) -> None:
        nonlocal seq
        state.barrier(g.requests, end)
        singles = [r for r in g.requests if r.output_len == 1]
        slices = [
            g.requests[s : s + xi]
            for s in range(0, len(g.requests), xi)
        ]
        for sl in slices:
            size = sum(1 for r in sl if r.output_len > 1)
            if size > 0:
                # Round-1 submissions happen at the barrier, slice by
                # slice; rounds 2+ belong to each chain's own events.
                ch = _Chain(g, sl)
                ch.t = 1
                fin = cascade_round(ch, 1, size, end)
                heappush(heap, (fin, 1, seq, _ROUND, ch))
                seq += 1
        for r in singles:
            complete(r, end)
        # Refill point: freed KV (one-token requests) or queued arrivals
        # can now form the next group; decode above keeps priority.
        try_schedule(end)

    def on_round(ch: _Chain, fin: float) -> float:
        """Process round completions for this chain, fast-forwarding
        inline while no earlier coarse event is pending; returns the
        time of the last round processed (the engine's loop.now)."""
        nonlocal seq
        sl = ch.sl
        lens = ch.lens
        n = ch.n
        retire = ch.retire
        t = ch.t
        while True:
            # Mirror of the engine's last-stage decode callback: submit
            # the next round first (decode keeps priority), then retire
            # completed requests and refill.
            nxt = n - bisect_right(lens, t + 1)
            if nxt > 0:
                nfin = cascade_round(ch, t + 1, nxt, fin + feedback(nxt))
            if t + 1 in retire:
                for r in sl:
                    if r.output_len == t + 1:
                        complete(r, fin)
                try_schedule(fin)
            if nxt == 0:
                return fin
            t += 1
            # Inline fast-forward: round t's completion can be processed
            # now unless some pending coarse event is due first (ties go
            # to the heap — the engine scheduled those callbacks first).
            if heap and heap[0][0] <= nfin:
                ch.t = t
                heappush(heap, (nfin, 1, seq, _ROUND, ch))
                seq += 1
                return fin
            fin = nfin

    # ---- inject arrivals and run ---------------------------------------
    initial, waves = _arrival_waves(arrivals)
    for r in initial:
        state.enqueue(r, 0.0)
    try_schedule(0.0)
    for widx, (t_arr, wave) in enumerate(waves):
        heappush(heap, (t_arr, 0, widx, _ARRIVE, wave))

    now = 0.0
    heappop = heapq.heappop
    while heap:
        ev = heappop(heap)
        now = ev[0]
        act = ev[3]
        if act == _ROUND:
            now = on_round(ev[4], now)
        elif act == _BARRIER:
            on_barrier(ev[4], now)
        else:
            for r in ev[4]:
                state.enqueue(r, now)
            try_schedule(now)

    events = len(waves) + jobs
    return _finalize(
        ctx, state, arrivals, tuple(busy), events, now, "fast"
    )
