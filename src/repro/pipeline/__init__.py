"""Pipeline serving: discrete-event engine, stage timing, simulator."""

from .events import EventLoop, FaultEvent, Server
from .batchsim import PlanCase, evaluate_plans
from .fastsim import (
    build_plan_tables,
    clear_table_caches,
    fast_eligibility,
    fast_eligibility_variable,
    fast_eligible,
    fast_eligible_variable,
)
from .online import (
    ADMISSION_POLICIES,
    OnlineConfig,
    OnlineSimResult,
    OnlineTables,
    clear_online_caches,
    online_tables,
    simulate_online,
)
from .online_fast import fast_online_eligibility
from .simulator import (
    DegradedSimResult,
    PipelineSimResult,
    SIM_BACKENDS,
    check_plan_memory,
    simulate_degraded,
    simulate_plan,
    simulate_plan_variable,
)
from .topology import PipelineTopology, microbatch_sizes
from .trace import Timeline, render_gantt, trace_plan
from .stage import (
    CostModelTiming,
    RooflineTiming,
    StageExecutionModel,
    TimingSource,
)

__all__ = [
    "EventLoop",
    "FaultEvent",
    "Server",
    "ADMISSION_POLICIES",
    "DegradedSimResult",
    "OnlineConfig",
    "OnlineSimResult",
    "OnlineTables",
    "PipelineSimResult",
    "PipelineTopology",
    "SIM_BACKENDS",
    "check_plan_memory",
    "clear_online_caches",
    "microbatch_sizes",
    "online_tables",
    "simulate_online",
    "PlanCase",
    "build_plan_tables",
    "clear_table_caches",
    "evaluate_plans",
    "fast_eligibility",
    "fast_online_eligibility",
    "fast_eligibility_variable",
    "fast_eligible",
    "fast_eligible_variable",
    "simulate_degraded",
    "simulate_plan",
    "simulate_plan_variable",
    "Timeline",
    "render_gantt",
    "trace_plan",
    "CostModelTiming",
    "RooflineTiming",
    "StageExecutionModel",
    "TimingSource",
]
