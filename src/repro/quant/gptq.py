"""GPTQ: error-compensating weight-only quantization (Frantar et al.).

A faithful numpy implementation of the algorithm the paper uses for its
3/4-bit kernels: columns of the weight matrix are quantized one at a time
and the rounding error of each column is propagated into the not-yet-
quantized columns through the inverse Hessian ``H = 2 X X^T + damp*I`` of
the layerwise objective ``||WX - W_q X||_2^2`` (paper Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .schemes import QuantConfig, QuantizedTensor, compute_scale_zero


@dataclass(frozen=True)
class GPTQResult:
    """Outcome of GPTQ on one linear operator."""

    quantized: QuantizedTensor
    #: Layerwise objective ||WX - W_q X||^2 / n_samples after quantization.
    loss: float
    #: The same objective for plain round-to-nearest, for comparison.
    rtn_loss: float


def _layer_loss(w: np.ndarray, wq: np.ndarray, x: np.ndarray) -> float:
    """Eq. (1): mean squared output error over the calibration set."""
    err = (w - wq) @ x
    return float(np.sum(err**2) / x.shape[1])


def hessian_from_inputs(x: np.ndarray, damp_ratio: float = 0.01) -> np.ndarray:
    """``H = 2 X X^T`` with proportional diagonal damping.

    ``x`` has shape (in_features, n_samples).
    """
    h = 2.0 * (x @ x.T)
    mean_diag = float(np.mean(np.diag(h)))
    damp = damp_ratio * (mean_diag if mean_diag > 0 else 1.0)
    h[np.diag_indices_from(h)] += damp
    return h


def gptq_quantize(
    w: np.ndarray,
    x: np.ndarray,
    cfg: QuantConfig,
    damp_ratio: float = 0.01,
    rng: Optional[np.random.Generator] = None,
) -> GPTQResult:
    """Quantize ``w`` (out x in) against calibration inputs ``x`` (in x n).

    Scales are per output channel, refreshed at every ``cfg.group_size``
    column boundary from the *current* (error-compensated) weights, as in
    group-wise GPTQ without activation reordering.
    """
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("w must be 2-D (out_features x in_features)")
    if x.ndim != 2 or x.shape[0] != w.shape[1]:
        raise ValueError("x must be (in_features x n_samples)")
    out_f, in_f = w.shape

    # RTN reference for the comparison loss.
    rtn_cfg = QuantConfig(
        bits=cfg.bits,
        symmetric=cfg.symmetric,
        granularity="channel",
        rounding="deterministic",
    )
    scale0, zero0 = compute_scale_zero(w, rtn_cfg)
    q_rtn = np.clip(np.rint(w / scale0 + zero0), rtn_cfg.qmin, rtn_cfg.qmax)
    rtn_loss = _layer_loss(w, (q_rtn - zero0) * scale0, x)

    h = hessian_from_inputs(x, damp_ratio)
    # Inverse Hessian, updated by exact OBQ coordinate elimination as
    # columns are fixed (equivalent to GPTQ's Cholesky formulation).
    hinv = np.linalg.inv(h)

    work = w.copy()
    q_codes = np.zeros_like(w)
    scales = np.zeros_like(w)
    zeros = np.zeros_like(w)
    group = cfg.group_size if cfg.granularity == "group" else in_f
    cur_scale = None
    cur_zero = None
    for i in range(in_f):
        if i % group == 0:
            block = work[:, i : i + group]
            cur_scale, cur_zero = compute_scale_zero(
                block,
                QuantConfig(
                    bits=cfg.bits, symmetric=cfg.symmetric, granularity="channel"
                ),
            )
            cur_scale = cur_scale[:, 0]
            cur_zero = cur_zero[:, 0]
        col = work[:, i]
        q = np.clip(np.rint(col / cur_scale + cur_zero), cfg.qmin, cfg.qmax)
        dq = (q - cur_zero) * cur_scale
        q_codes[:, i] = q
        scales[:, i] = cur_scale
        zeros[:, i] = cur_zero
        d = hinv[i, i]
        err = (col - dq) / d
        if i + 1 < in_f:
            # Propagate the rounding error into unquantized columns, then
            # eliminate coordinate i from the inverse Hessian.
            work[:, i + 1 :] -= np.outer(err, hinv[i, i + 1 :])
            hinv[i + 1 :, i + 1 :] -= (
                np.outer(hinv[i + 1 :, i], hinv[i, i + 1 :]) / d
            )

    qt = QuantizedTensor(
        q=q_codes.astype(np.int32),
        scale=scales,
        zero=zeros,
        config=cfg,
        shape=w.shape,
    )
    loss = _layer_loss(w, qt.dequantize(), x)
    return GPTQResult(quantized=qt, loss=loss, rtn_loss=rtn_loss)
