"""Fig. 4: perplexity & accuracy under different quantization schemes.

Two complementary reproductions:

* **Analytic** (paper scale): BLOOM-3B and OPT-1.3B through the calibrated
  quality model, for schemes FP16 / INT8 / 4-bit / 3-bit and the paper's
  stochastic mixed-precision allocations `mixed4-8` and `mixed3-4`.
* **Measured** (TinyLM): the same schemes on a real numpy transformer whose
  weights are actually quantized and whose perplexity/accuracy are actually
  computed — validating that the orderings the analytic model encodes hold
  on a real model.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..models.architectures import get_model
from ..quality.datasets import build_eval_corpora
from ..quality.perplexity import evaluate_assignment
from ..quality.quality_model import AnalyticQualityModel
from ..quality.tinylm import TinyLM, TinyLMConfig
from .harness import ExperimentResult


def scheme_bits(scheme: str, num_layers: int, seed: int = 0) -> List[int]:
    """Per-layer bitwidths for a named scheme."""
    rng = np.random.default_rng(seed)
    if scheme == "fp16":
        return [16] * num_layers
    if scheme == "int8":
        return [8] * num_layers
    if scheme == "int4":
        return [4] * num_layers
    if scheme == "int3":
        return [3] * num_layers
    if scheme == "mixed4-8":
        return [int(b) for b in rng.choice([4, 8], size=num_layers)]
    if scheme == "mixed3-4":
        return [int(b) for b in rng.choice([3, 4], size=num_layers)]
    raise ValueError(f"unknown scheme {scheme!r}")


SCHEMES = ("fp16", "int8", "mixed4-8", "int4", "mixed3-4", "int3")


def run(seed: int = 0, tiny_seqs: int = 6, tiny_len: int = 80) -> ExperimentResult:
    rows = []
    summary: Dict[str, float] = {}

    # Analytic path — the paper's models.
    for model_name in ("bloom-3b", "opt-1.3b"):
        spec = get_model(model_name)
        qm = AnalyticQualityModel.for_model(spec)
        for scheme in SCHEMES:
            bits = scheme_bits(scheme, spec.num_layers, seed)
            ppl = qm.per_dataset_ppl(bits)
            rows.append(
                [
                    model_name,
                    scheme,
                    ppl["wikitext2"],
                    ppl["ptb"],
                    ppl["c4"],
                    qm.avg_ppl(bits),
                    qm.accuracy(bits),
                ]
            )
            summary[f"{model_name}_{scheme}_ppl"] = qm.avg_ppl(bits)

    # Measured path — real quantization on TinyLM.
    model = TinyLM(TinyLMConfig(vocab=128, layers=6, hidden=64, ffn=192,
                                heads=4, max_seq=192, seed=seed))
    corpora = build_eval_corpora(model, n_seqs=tiny_seqs, seq_len=tiny_len)
    for scheme in SCHEMES:
        bits = scheme_bits(scheme, model.config.layers, seed)
        rep = evaluate_assignment(model, bits, corpora)
        p = rep.per_corpus_ppl
        rows.append(
            [
                "tinylm(measured)",
                scheme,
                p["wikitext2"],
                p["ptb"],
                p["c4"],
                rep.avg_ppl,
                100.0 * rep.accuracy,
            ]
        )
        summary[f"tinylm_{scheme}_ppl"] = rep.avg_ppl
    return ExperimentResult(
        name="fig04",
        title="Quality under quantization schemes (PPL lower / acc higher = better)",
        headers=["model", "scheme", "wikitext2", "ptb", "c4", "avg_ppl", "acc_%"],
        rows=rows,
        summary=summary,
        notes=(
            "Paper's shape: mixed4-8 ~ int8 >> int4 > mixed3-4 > int3; "
            "mixed precision preserves accuracy better than uniform low-bit."
        ),
    )
