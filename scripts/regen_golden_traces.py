#!/usr/bin/env python
"""Regenerate the golden-trace fixtures in tests/data/.

Run after an *intentional* change to the discrete-event simulator or the
degraded-recovery mirror, then review the fixture diffs like any other
code change:

    PYTHONPATH=src python scripts/regen_golden_traces.py

``tests/test_golden_traces.py`` compares these files byte-for-byte.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.golden_utils import regenerate_all  # noqa: E402


def main() -> int:
    for name, path in regenerate_all().items():
        print(f"wrote {path.relative_to(REPO)}  ({name})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
