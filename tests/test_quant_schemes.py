"""Tests (incl. property-based) for the core quantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    QuantConfig,
    compute_scale_zero,
    quantization_mse,
    quantize,
    quantize_dequantize,
)

_float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=24),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)


def test_config_validation():
    with pytest.raises(ValueError):
        QuantConfig(bits=1)
    with pytest.raises(ValueError):
        QuantConfig(bits=4, granularity="blockwise")
    with pytest.raises(ValueError):
        QuantConfig(bits=4, rounding="nearest-even")
    with pytest.raises(ValueError):
        QuantConfig(bits=4, granularity="group", group_size=0)


def test_qmin_qmax_symmetric():
    cfg = QuantConfig(bits=4, symmetric=True)
    assert (cfg.qmin, cfg.qmax) == (-8, 7)
    cfg = QuantConfig(bits=8, symmetric=False)
    assert (cfg.qmin, cfg.qmax) == (0, 255)


@given(w=_float_arrays, bits=st.sampled_from([3, 4, 8]))
@settings(max_examples=40, deadline=None)
def test_roundtrip_error_bounded_by_scale(w, bits):
    """|w - dq(q(w))| <= scale/2 elementwise (deterministic rounding)."""
    cfg = QuantConfig(bits=bits, symmetric=True, granularity="tensor")
    qt = quantize(w, cfg)
    err = np.abs(qt.dequantize() - w)
    assert np.all(err <= qt.scale * 0.5 + 1e-12)


@given(w=_float_arrays)
@settings(max_examples=25, deadline=None)
def test_codes_within_range(w):
    cfg = QuantConfig(bits=4, symmetric=True, granularity="channel")
    qt = quantize(w, cfg)
    assert qt.q.min() >= cfg.qmin
    assert qt.q.max() <= cfg.qmax


@pytest.mark.parametrize("bits1,bits2", [(3, 4), (4, 8), (8, 16), (3, 8)])
def test_more_bits_less_error(bits1, bits2):
    rng = np.random.default_rng(0)
    w = rng.standard_normal((32, 64))
    lo = quantization_mse(w, QuantConfig(bits=bits1))
    hi = quantization_mse(w, QuantConfig(bits=bits2))
    assert hi < lo


def test_finer_granularity_less_error():
    rng = np.random.default_rng(1)
    w = rng.standard_normal((16, 128)) * np.linspace(0.1, 3.0, 16)[:, None]
    t = quantization_mse(w, QuantConfig(bits=4, granularity="tensor"))
    c = quantization_mse(w, QuantConfig(bits=4, granularity="channel"))
    g = quantization_mse(
        w, QuantConfig(bits=4, granularity="group", group_size=32)
    )
    assert c < t
    assert g <= c * 1.05


def test_asymmetric_handles_shifted_data():
    rng = np.random.default_rng(2)
    w = rng.random((8, 64)) + 5.0  # all-positive, offset
    sym = quantization_mse(w, QuantConfig(bits=4, symmetric=True))
    asym = quantization_mse(w, QuantConfig(bits=4, symmetric=False))
    assert asym < sym


def test_constant_tensor_exact():
    w = np.full((4, 8), 3.25)
    out = quantize_dequantize(w, QuantConfig(bits=4, symmetric=False))
    assert np.allclose(out, w)


def test_zero_tensor_survives():
    w = np.zeros((4, 4))
    out = quantize_dequantize(w, QuantConfig(bits=3))
    assert np.allclose(out, 0.0)


def test_stochastic_rounding_unbiased():
    rng = np.random.default_rng(3)
    w = rng.standard_normal((16, 16))
    cfg = QuantConfig(bits=4, rounding="stochastic", granularity="tensor")
    outs = [
        quantize_dequantize(w, cfg, np.random.default_rng(s)) for s in range(200)
    ]
    bias = np.mean([np.mean(o - w) for o in outs])
    assert abs(bias) < 5e-3


def test_scale_zero_shapes_by_granularity():
    w = np.ones((6, 90))
    s, z = compute_scale_zero(w, QuantConfig(bits=4, granularity="tensor"))
    assert s.shape == () or s.shape == (1,) or s.size == 1
    s, z = compute_scale_zero(w, QuantConfig(bits=4, granularity="channel"))
    assert s.shape == (6, 1)
    s, z = compute_scale_zero(
        w, QuantConfig(bits=4, granularity="group", group_size=32)
    )
    assert s.shape == w.shape  # broadcast elementwise for ragged groups


def test_group_size_not_dividing_last_axis():
    rng = np.random.default_rng(4)
    w = rng.standard_normal((4, 50))  # 50 % 32 != 0
    out = quantize_dequantize(
        w, QuantConfig(bits=4, granularity="group", group_size=32)
    )
    assert out.shape == w.shape
    assert np.abs(out - w).max() < 1.0


def test_nbytes_ideal_counts_bits():
    rng = np.random.default_rng(5)
    w = rng.standard_normal((16, 64))
    qt = quantize(w, QuantConfig(bits=4, granularity="tensor"))
    assert qt.nbytes_ideal < w.size  # < 1 byte per element + tiny meta
