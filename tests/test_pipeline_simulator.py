"""Tests for the end-to-end pipeline serving simulator."""

import pytest

from repro.pipeline import (
    CostModelTiming,
    RooflineTiming,
    StageExecutionModel,
    check_plan_memory,
    simulate_plan,
)
from repro.plan import StagePlan, uniform_plan
from repro.simgpu import OutOfMemoryError
from repro.workloads import BatchWorkload


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


def test_basic_simulation(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    res = simulate_plan(plan, small_cluster, opt13b, small_workload)
    assert res.makespan_s > 0
    assert res.throughput_tokens_s > 0
    assert res.total_tokens == small_workload.batch * small_workload.output_len
    assert res.makespan_s == pytest.approx(
        res.prefill_span_s + res.decode_span_s
    )
    assert len(res.stage_busy_s) == 2


def test_busy_time_bounded_by_makespan(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    res = simulate_plan(plan, small_cluster, opt13b, small_workload)
    for busy in res.stage_busy_s:
        assert busy <= res.makespan_s * (1 + 1e-9)
    assert 0 <= res.bubble_fraction < 1


def test_layer_count_mismatch_rejected(small_cluster, opt13b, small_workload):
    plan = uniform_plan("x", 10, groups_of(small_cluster), 8, 4, 4)
    with pytest.raises(ValueError, match="layers"):
        simulate_plan(plan, small_cluster, opt13b, small_workload)


def test_oom_detected(small_cluster, opt30b, small_workload):
    """OPT-30B FP16 cannot fit a 16 GB T4 stage."""
    plan = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    with pytest.raises(OutOfMemoryError):
        simulate_plan(plan, small_cluster, opt30b, small_workload)


def test_check_memory_skippable(small_cluster, opt30b, small_workload):
    plan = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    res = simulate_plan(
        plan, small_cluster, opt30b, small_workload, check_memory=False
    )
    assert res.makespan_s > 0


def test_more_microbatches_fill_pipeline(small_cluster, opt13b):
    wl = BatchWorkload(batch=16, prompt_len=256, output_len=32)
    one = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 16, 16
    )
    four = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    r_one = simulate_plan(one, small_cluster, opt13b, wl)
    r_four = simulate_plan(four, small_cluster, opt13b, wl)
    # Pipelining with multiple micro-batches beats a single giant batch
    # across 2 stages (bubble elimination beats kernel efficiency here).
    assert r_four.prefill_span_s < r_one.prefill_span_s


def test_quantization_improves_decode(small_cluster, opt13b, small_workload):
    p16 = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    p4 = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 4, 4, 4
    )
    r16 = simulate_plan(p16, small_cluster, opt13b, small_workload,
                        check_memory=False)
    r4 = simulate_plan(p4, small_cluster, opt13b, small_workload,
                       check_memory=False)
    assert r4.decode_span_s < r16.decode_span_s


def test_single_stage_no_comm(opt13b, small_workload):
    from repro.hardware import make_cluster

    cluster = make_cluster("one", [("V100-32G", 1)])
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster), 8, 4, 4
    )
    res = simulate_plan(plan, cluster, opt13b, small_workload)
    assert res.throughput_tokens_s > 0


def test_output_len_one_skips_decode(small_cluster, opt13b):
    wl = BatchWorkload(batch=4, prompt_len=128, output_len=1)
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    res = simulate_plan(plan, small_cluster, opt13b, wl)
    assert res.decode_span_s == 0.0
    assert res.total_tokens == 4


def test_cost_model_timing_close_to_roofline(
    small_cluster, opt13b, small_workload, cost_model_13b
):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    truth = simulate_plan(plan, small_cluster, opt13b, small_workload)
    pred = simulate_plan(
        plan, small_cluster, opt13b, small_workload,
        timing=CostModelTiming(cost_model=cost_model_13b, spec=opt13b),
        check_memory=False,
    )
    assert abs(pred.makespan_s - truth.makespan_s) / truth.makespan_s < 0.1


def test_check_plan_memory_returns_usage(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 4, 4, 4
    )
    usage = check_plan_memory(plan, small_cluster, opt13b, small_workload)
    assert len(usage) == 2
    assert all(u > 0 for u in usage)


def test_decode_time_series_interpolation(opt13b, v100):
    sm = StageExecutionModel(
        stage=StagePlan((0,), v100.name, 0, (8,) * 4),
        gpu=v100,
        spec=opt13b,
        timing=RooflineTiming(spec=opt13b),
    )
    series = sm.decode_time_series(4, 256, 50)
    assert len(series) == 49
    # Monotone non-decreasing in context.
    assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
    exact = sm.decode_step_time(4, 256 + 25)
    assert abs(series[24] - exact) / exact < 0.02


def test_stage_chunk_time_scales_with_layers(opt13b, v100):
    one = StageExecutionModel(
        stage=StagePlan((0,), v100.name, 0, (8,)),
        gpu=v100, spec=opt13b, timing=RooflineTiming(spec=opt13b),
    )
    four = StageExecutionModel(
        stage=StagePlan((0,), v100.name, 0, (8,) * 4),
        gpu=v100, spec=opt13b, timing=RooflineTiming(spec=opt13b),
    )
    assert four.prefill_chunk_time(4, 256) == pytest.approx(
        4 * one.prefill_chunk_time(4, 256)
    )


def test_first_last_stage_extras(opt13b, v100):
    base = StageExecutionModel(
        stage=StagePlan((0,), v100.name, 0, (8,)),
        gpu=v100, spec=opt13b, timing=RooflineTiming(spec=opt13b),
    )
    first = StageExecutionModel(
        stage=StagePlan((0,), v100.name, 0, (8,)),
        gpu=v100, spec=opt13b, timing=RooflineTiming(spec=opt13b),
        is_first=True,
    )
    last = StageExecutionModel(
        stage=StagePlan((0,), v100.name, 0, (8,)),
        gpu=v100, spec=opt13b, timing=RooflineTiming(spec=opt13b),
        is_last=True,
    )
    t = base.decode_step_time(4, 256)
    assert first.decode_step_time(4, 256) > t
    assert last.decode_step_time(4, 256) > t
