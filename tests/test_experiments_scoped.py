"""Scoped (single-configuration) runs of the heavy experiment modules.

The benchmarks run the full paper configurations; these tests exercise the
same code paths on one small configuration each so `pytest tests/` covers
every experiment module end-to-end.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig09_hetero_vllm,
    fig10_hetero_custom,
    fig11_theta_sensitivity,
    tab05_indicator,
    tab06_grouping_heuristic,
)


@pytest.mark.parametrize("dataset", ["cnn_dailymail", "loogle"])
def test_fig09_build_workload(dataset):
    wl = fig09_hetero_vllm.build_workload(dataset, "qwen2.5-14b", 3)
    assert wl.batch >= 1
    assert wl.prompt_len <= 32768 - 512
    if dataset == "loogle":
        assert wl.kappa > 1  # long prompts chunk
        assert wl.batch <= 64  # KV-admission caps concurrency


def test_fig09_single_cluster():
    res = fig09_hetero_vllm.run(clusters=(3,), datasets=("cnn_dailymail",))
    assert len(res.rows) == 1
    row = res.rows[0]
    uniform, splitquant = row[4], row[6]
    assert splitquant >= uniform * 0.95


def test_fig10_single_cluster():
    res = fig10_hetero_custom.run(clusters=(5,))
    assert len(res.rows) == 1
    _, _, uniform, het, splitquant, speedup = res.rows[0]
    assert splitquant >= het * 0.99
    assert splitquant >= uniform * 0.99


def test_tab05_overhead_model():
    from repro.hardware import get_gpu
    from repro.models import get_model

    spec = get_model("opt-66b")
    gpu = get_gpu("A100")
    var = tab05_indicator.indicator_overhead_s(spec, gpu, "variance")
    hes = tab05_indicator.indicator_overhead_s(spec, gpu, "hessian")
    rnd = tab05_indicator.indicator_overhead_s(spec, gpu, "random")
    assert rnd == 0.0
    assert 100 < var < 10_000  # minutes-scale, like the paper's 434 s
    assert 20 < hes / var < 100  # the paper's 58-73x ballpark
    with pytest.raises(ValueError):
        tab05_indicator.indicator_overhead_s(spec, gpu, "oracle")


def test_tab05_hessian_table_correlates_with_truth():
    from repro.models import get_model
    from repro.quality import AnalyticQualityModel

    qm = AnalyticQualityModel.for_model(get_model("opt-30b"), (3, 4, 8, 16))
    hess = tab05_indicator._hessian_table(qm)
    corr = np.corrcoef(hess[:, 1], qm.true_sens[:, 1])[0, 1]
    assert corr > 0.9  # informed estimator
    assert not np.allclose(hess, qm.true_sens)  # but not the oracle


def test_tab06_single_case(monkeypatch):
    monkeypatch.setattr(
        tab06_grouping_heuristic, "CASES", (("opt-30b", 5),)
    )
    res = tab06_grouping_heuristic.run(time_limit_s=20.0)
    assert len(res.rows) == 3
    strategies = {r[2] for r in res.rows}
    assert strategies == {"group=2", "group=1", "heuristic"}
    assert all(r[3] > 0 for r in res.rows)  # all found serving plans


def test_fig11_single_case(monkeypatch):
    monkeypatch.setattr(
        fig11_theta_sensitivity, "CASES", (("opt-30b", 8),)
    )
    res = fig11_theta_sensitivity.run(thetas=(1.0, 100.0))
    assert len(res.rows) == 2
    assert res.summary["opt-30b_tput_monotone"] == 1.0
    assert res.summary["opt-30b_ppl_monotone"] == 1.0
