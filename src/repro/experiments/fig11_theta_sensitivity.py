"""Fig. 11: sensitivity to the quality scalar theta.

Sweeping theta through {0.1x, 1x, 10x} of the default on (OPT-66B,
cluster 7) and (OPT-30B, cluster 8): larger theta weighs quality more,
so throughput falls while perplexity improves.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..core import PlannerConfig, SplitQuantPlanner
from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..quality.quality_model import AnalyticQualityModel
from ..workloads.spec import BatchWorkload
from .common import BITS, cost_model_for, throughput_of
from .harness import ExperimentResult

CASES: Tuple[Tuple[str, int], ...] = (("opt-66b", 7), ("opt-30b", 8))
THETAS: Tuple[float, ...] = (1.0, 10.0, 100.0)


def run(
    thetas: Sequence[float] = THETAS,
    max_orderings: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    rows = []
    summary: Dict[str, float] = {}
    for model_name, cluster_idx in CASES:
        spec = get_model(model_name)
        cluster = table_iii_cluster(cluster_idx)
        wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
        cm = cost_model_for(spec, cluster)
        qm = AnalyticQualityModel.for_model(spec, bit_choices=BITS)
        tputs, ppls = [], []
        for theta in thetas:
            cfg = PlannerConfig(
                theta=theta,
                group_size=2,
                max_orderings=max_orderings,
                microbatch_candidates=(8, 16),
                time_limit_s=30.0,
            )
            planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
            res = planner.plan(wl)
            tput = throughput_of(res.plan if res else None, cluster, spec, wl)
            ppl = (
                qm.avg_ppl(list(res.plan.bits_per_layer))
                if res is not None
                else float("nan")
            )
            tputs.append(tput)
            ppls.append(ppl)
            rows.append(
                [model_name, f"cluster-{cluster_idx}", f"{theta:g}x",
                 tput, ppl]
            )
        summary[f"{model_name}_tput_monotone"] = float(
            all(a >= b - 1e-9 for a, b in zip(tputs, tputs[1:]))
        )
        summary[f"{model_name}_ppl_monotone"] = float(
            all(a >= b - 1e-9 for a, b in zip(ppls, ppls[1:]))
        )
    return ExperimentResult(
        name="fig11",
        title="Throughput/quality trade-off across theta",
        headers=["model", "cluster", "theta", "tokens_per_s", "avg_ppl"],
        rows=rows,
        summary=summary,
        notes="Paper: larger theta -> lower throughput, better perplexity.",
    )
