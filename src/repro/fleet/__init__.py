"""``repro.fleet``: the fleet-level multi-job serving layer.

Turns the paper's Fig. 1 motivation into a working scheduler: a seeded
fleet sample (:func:`repro.hardware.fleet.sample_fleet`) yields a
schedulable inventory of idle GPUs, a queue of offline serving jobs
(:func:`make_job_queue`) is carved into per-job heterogeneous GPU groups
by a greedy bin-packing baseline or a beam/lookahead allocator (each
group planned by the per-job :class:`~repro.core.SplitQuantPlanner`
through a shared, memoized :class:`PlannerPool`), and the whole schedule
is replayed through the discrete-event fleet simulator to measure
aggregate tokens/s, fleet makespan and — the headline — reclaimed idle
GPU-hours vs the Fig. 1 baseline.

Quickstart::

    from repro.fleet import FleetScheduler, make_job_queue, simulate_schedule
    from repro.hardware.fleet import sample_fleet, schedulable_inventory

    inv = schedulable_inventory(sample_fleet(seed=0), pool_gpus=24)
    jobs = make_job_queue(n_jobs=8, seed=0)
    schedule = FleetScheduler(inv, allocator="beam").schedule(jobs)
    result = simulate_schedule(schedule)
    print(result.describe())
    print(result.idle_recovery(sample_fleet(seed=0)))
"""

from .allocator import (
    Assignment,
    BeamAllocator,
    GreedyAllocator,
    GroupSpec,
    PlannerPool,
    enumerate_groups,
    group_rate_usd_hr,
    list_schedule,
)
from .jobs import DEADLINE_HOURS, FleetJob, make_job_queue
from .online import (
    JobArrival,
    OnlineFleetResult,
    OnlineFleetScheduler,
    OnlineJobRecord,
    make_job_arrivals,
    simulate_online_fleet,
)
from .scheduler import (
    FleetSchedule,
    FleetScheduler,
    ScheduledJob,
    compare_allocators,
    default_fleet_config,
)
from .simulator import FleetSimResult, JobSimRecord, simulate_schedule

__all__ = [
    "Assignment",
    "BeamAllocator",
    "DEADLINE_HOURS",
    "FleetJob",
    "FleetSchedule",
    "FleetScheduler",
    "FleetSimResult",
    "GreedyAllocator",
    "GroupSpec",
    "JobArrival",
    "JobSimRecord",
    "OnlineFleetResult",
    "OnlineFleetScheduler",
    "OnlineJobRecord",
    "PlannerPool",
    "ScheduledJob",
    "make_job_arrivals",
    "simulate_online_fleet",
    "compare_allocators",
    "default_fleet_config",
    "enumerate_groups",
    "group_rate_usd_hr",
    "list_schedule",
    "make_job_queue",
    "simulate_schedule",
]
