"""Sub-byte bit packing of quantized integer codes.

Real serving kernels store 3/4/8-bit codes densely packed into 32-bit words
(GPTQ/Marlin layouts).  We implement an exact bitstream packer so quantized
tensors round-trip losslessly and storage math in tests reflects reality.
Codes are stored *unsigned* (offset by ``-qmin``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pack_bits(codes: np.ndarray, bits: int, qmin: int = 0) -> np.ndarray:
    """Pack integer ``codes`` (any shape) into a flat uint32 word array.

    ``qmin`` is subtracted first so signed symmetric codes fit in
    ``bits`` unsigned bits.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    flat = np.asarray(codes).ravel().astype(np.int64) - qmin
    if flat.size and (flat.min() < 0 or flat.max() >= (1 << bits)):
        raise ValueError(f"codes out of range for {bits}-bit packing")
    total_bits = flat.size * bits
    n_words = (total_bits + 31) // 32
    words = np.zeros(n_words, dtype=np.uint64)
    positions = np.arange(flat.size, dtype=np.int64) * bits
    word_idx = positions // 32
    bit_off = positions % 32
    vals = flat.astype(np.uint64)
    # First word contribution.
    np.bitwise_or.at(words, word_idx, vals << bit_off.astype(np.uint64))
    # Spill into the next word when a code straddles a boundary.
    spill = bit_off + bits > 32
    if spill.any():
        idx2 = word_idx[spill] + 1
        shift = (32 - bit_off[spill]).astype(np.uint64)
        np.bitwise_or.at(words, idx2, vals[spill] >> shift)
    return (words & np.uint64(0xFFFFFFFF)).astype(np.uint32)


def unpack_bits(
    words: np.ndarray, bits: int, count: int, qmin: int = 0
) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover ``count`` codes as int32."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    w = np.asarray(words, dtype=np.uint64)
    positions = np.arange(count, dtype=np.int64) * bits
    word_idx = positions // 32
    bit_off = positions % 32
    mask = np.uint64((1 << bits) - 1)
    out = (w[word_idx] >> bit_off.astype(np.uint64)) & mask
    spill = bit_off + bits > 32
    if spill.any():
        idx2 = word_idx[spill] + 1
        shift = (32 - bit_off[spill]).astype(np.uint64)
        extra = (w[idx2] << shift) & mask
        out[spill] |= extra
    return out.astype(np.int64).astype(np.int32) + qmin


def packed_nbytes(count: int, bits: int) -> int:
    """Bytes of the packed word array holding ``count`` codes."""
    return 4 * ((count * bits + 31) // 32)


def pack_tensor(
    codes: np.ndarray, bits: int, qmin: int = 0
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Pack a tensor's codes; returns (words, original_shape)."""
    return pack_bits(codes, bits, qmin), tuple(np.asarray(codes).shape)


def unpack_tensor(
    words: np.ndarray, bits: int, shape: Tuple[int, ...], qmin: int = 0
) -> np.ndarray:
    """Unpack to the original tensor shape."""
    count = int(np.prod(shape)) if shape else 1
    return unpack_bits(words, bits, count, qmin).reshape(shape)
