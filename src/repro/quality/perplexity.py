"""Perplexity / accuracy evaluation of quantized TinyLM checkpoints."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .datasets import EvalCorpora
from .tinylm import TinyLM


@dataclass(frozen=True)
class QualityReport:
    """Quality of one bitwidth assignment on the evaluation corpora."""

    per_corpus_ppl: Dict[str, float]
    accuracy: float

    @property
    def avg_ppl(self) -> float:
        vals = list(self.per_corpus_ppl.values())
        return float(np.mean(vals))


def evaluate_ppl(
    model: TinyLM, corpora: EvalCorpora
) -> Dict[str, float]:
    """Perplexity of ``model`` on every corpus."""
    return {name: model.perplexity(corpora[name]) for name in corpora.names()}


def next_token_accuracy(model: TinyLM, tokens: np.ndarray) -> float:
    """Greedy next-token accuracy — the zero-shot-benchmark stand-in.

    Real LAMBADA/ARC/PIQA need natural language; greedy top-1 agreement on
    held-out model-generated text plays the same role (a task score that
    degrades monotonically with weight perturbation).
    """
    logits = model.logits(np.asarray(tokens)[:, :-1])
    pred = logits.argmax(axis=-1)
    return float((pred == np.asarray(tokens)[:, 1:]).mean())


def evaluate_assignment(
    base_model: TinyLM,
    bits_per_layer: Sequence[int],
    corpora: EvalCorpora,
    method: str = "rtn",
    calib_tokens: Optional[np.ndarray] = None,
    acc_corpus: str = "wikitext2",
) -> QualityReport:
    """Quantize ``base_model`` per-layer and measure its quality."""
    q = base_model.quantized(bits_per_layer, method=method, calib_tokens=calib_tokens)
    ppl = evaluate_ppl(q, corpora)
    acc = next_token_accuracy(q, corpora[acc_corpus])
    return QualityReport(per_corpus_ppl=ppl, accuracy=acc)
