"""Energy and dollar-cost accounting for simulated serving runs.

Every simulation backend (event, fast, batched) reports bit-identical
makespans, phase spans and per-stage busy times for the same plan; this
module turns those into joules and dollars as a *pure post-pass* over
exactly that shared state, so energy totals inherit the backends'
bit-identity for free — no per-event power integration, no backend-
specific accumulators.

The power model is the standard linear idle/peak interpolation: a GPU
draws ``idle_watts`` while holding the context and
``idle + (peak - idle) * occupancy`` while a kernel runs, where the
occupancy comes from the roofline decomposition
(:func:`repro.simgpu.roofline.layer_occupancy`) at the plan's
representative prefill/decode shapes.  Dollar cost is GPU rental
(per-type $/hr, on-demand or spot tier) for the whole makespan plus
electricity for the joules consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..hardware.cluster import ClusterSpec
from ..hardware.gpus import GPUSpec
from ..models.architectures import ModelSpec
from ..plan import ExecutionPlan, StagePlan
from ..simgpu.roofline import layer_occupancy
from ..workloads.spec import BatchWorkload

__all__ = [
    "GPUPrice",
    "PriceBook",
    "default_price_book",
    "plan_energy",
    "plan_cost",
    "stage_occupancies",
    "DEFAULT_ELECTRICITY_USD_PER_KWH",
]

#: Grid electricity price used when a price book does not override it.
DEFAULT_ELECTRICITY_USD_PER_KWH = 0.12

#: Seconds per kWh-hour divisor: J -> kWh.
_JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class GPUPrice:
    """Hourly rental rates for one GPU model."""

    on_demand_usd_hr: float
    spot_usd_hr: float

    def rate(self, tier: str) -> float:
        if tier == "on_demand":
            return self.on_demand_usd_hr
        if tier == "spot":
            return self.spot_usd_hr
        raise ValueError(f"unknown price tier {tier!r}")


#: Cloud-typical hourly rates (on-demand, spot) per registered GPU model.
DEFAULT_PRICES: Dict[str, GPUPrice] = {
    "A100-40G": GPUPrice(3.67, 1.47),
    "V100-32G": GPUPrice(2.48, 0.99),
    "T4-16G": GPUPrice(0.53, 0.21),
    "P100-12G": GPUPrice(1.46, 0.58),
}

#: Rate applied to GPU models without a registered price.
_FALLBACK_PRICE = GPUPrice(1.0, 0.4)


@dataclass(frozen=True)
class PriceBook:
    """Per-type $/hr price tiers plus the electricity rate.

    ``spot_types`` lists GPU model names rented at the (cheaper,
    preemptible) spot tier; everything else is billed on-demand.  Frozen
    and tuple-backed so it can sit on planner/fleet configuration and in
    cache keys.
    """

    prices: Tuple[Tuple[str, GPUPrice], ...]
    electricity_usd_per_kwh: float = DEFAULT_ELECTRICITY_USD_PER_KWH
    spot_types: Tuple[str, ...] = ()

    def tier_of(self, gpu_name: str) -> str:
        return "spot" if gpu_name in self.spot_types else "on_demand"

    def price_of(self, gpu_name: str) -> GPUPrice:
        for name, price in self.prices:
            if name == gpu_name:
                return price
        return _FALLBACK_PRICE

    def rate_usd_hr(self, gpu_name: str) -> float:
        """Hourly rental rate for ``gpu_name`` at its configured tier."""
        return self.price_of(gpu_name).rate(self.tier_of(gpu_name))


def default_price_book(
    spot_types: Sequence[str] = (),
    electricity_usd_per_kwh: float = DEFAULT_ELECTRICITY_USD_PER_KWH,
    prices: Optional[Mapping[str, GPUPrice]] = None,
) -> PriceBook:
    """The registry price book, optionally marking some types as spot."""
    if prices is None:
        return _default_price_book_cached(
            tuple(spot_types), electricity_usd_per_kwh
        )
    return PriceBook(
        prices=tuple(sorted(prices.items())),
        electricity_usd_per_kwh=electricity_usd_per_kwh,
        spot_types=tuple(spot_types),
    )


@lru_cache(maxsize=64)
def _default_price_book_cached(
    spot_types: Tuple[str, ...], electricity_usd_per_kwh: float
) -> PriceBook:
    return PriceBook(
        prices=tuple(sorted(DEFAULT_PRICES.items())),
        electricity_usd_per_kwh=electricity_usd_per_kwh,
        spot_types=spot_types,
    )


@lru_cache(maxsize=4096)
def _stage_gpus(
    plan: ExecutionPlan, cluster: ClusterSpec
) -> Tuple[GPUSpec, ...]:
    """The GPU spec of each stage (TP groups are homogeneous)."""
    by_id = {d.device_id: d.gpu for d in cluster.devices}
    return tuple(by_id[st.device_ids[0]] for st in plan.stages)


def stage_occupancies(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
) -> Tuple[Tuple[float, float], ...]:
    """Per-stage (prefill, decode) roofline occupancies for ``plan``.

    Evaluated at the plan's representative shapes — one prefill chunk at
    the prefill micro-batch size, one mid-context decode step at the
    decode micro-batch size — and averaged over each stage's layers
    weighted by their bitwidths.  A pure function of frozen inputs, so
    every backend derives the identical numbers.
    """
    gpus = _stage_gpus(plan, cluster)
    eta = max(min(plan.prefill_microbatch, workload.batch), 1)
    xi = max(min(plan.decode_microbatch, workload.batch), 1)
    chunk = max(workload.chunk_len, 1)
    mid_ctx = workload.prompt_len + max(workload.output_len // 2, 1)
    return tuple(
        _stage_occupancy(st, gpu, spec, eta, xi, chunk, mid_ctx, plan.bit_kv)
        for st, gpu in zip(plan.stages, gpus)
    )


@lru_cache(maxsize=8192)
def _stage_occupancy(
    st: StagePlan,
    gpu: GPUSpec,
    spec: ModelSpec,
    eta: int,
    xi: int,
    chunk: int,
    mid_ctx: int,
    bit_kv: int,
) -> Tuple[float, float]:
    """One stage's (prefill, decode) occupancy pair.

    Layers with the same bitwidth share one roofline evaluation
    (weighted by multiplicity), and the whole pair is memoized on the
    stage — this post-pass runs once per plan per simulation, so it has
    to stay cheap next to the vectorized batched scorer.
    """
    counts: Dict[int, int] = {}
    for bits in st.layer_bits:
        counts[bits] = counts.get(bits, 0) + 1
    pre = 0.0
    dec = 0.0
    for bits, cnt in counts.items():
        pre += cnt * layer_occupancy(
            gpu, spec, bits, "prefill", eta, chunk, bit_kv
        )
        dec += cnt * layer_occupancy(
            gpu, spec, bits, "decode", xi, mid_ctx, bit_kv
        )
    n = len(st.layer_bits)
    return pre / n, dec / n


def plan_energy(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    makespan_s: float,
    prefill_span_s: float,
    decode_span_s: float,
    stage_busy_s: Sequence[float],
) -> float:
    """Joules drawn by the plan's GPUs over one simulated run.

    Each stage's GPUs idle at ``idle_watts`` for the whole makespan and
    add ``(peak - idle) * occupancy`` watts for their busy seconds, with
    the occupancy blended between the prefill and decode operating
    points by the phase-span split.  Every input is a field the event,
    fast and batched backends already agree on bit-for-bit, so the sum
    is bit-identical across them by construction.
    """
    if makespan_s <= 0.0:
        return 0.0
    gpus = _stage_gpus(plan, cluster)
    occs = stage_occupancies(plan, cluster, spec, workload)
    w_pre = prefill_span_s / makespan_s
    w_dec = decode_span_s / makespan_s
    total = 0.0
    for st, gpu, (occ_pre, occ_dec), busy in zip(
        plan.stages, gpus, occs, stage_busy_s
    ):
        occ = w_pre * occ_pre + w_dec * occ_dec
        busy_clamped = min(max(busy, 0.0), makespan_s)
        per_gpu = (
            makespan_s * gpu.idle_watts
            + busy_clamped * (gpu.peak_watts - gpu.idle_watts) * occ
        )
        total += st.tp_degree * per_gpu
    return total


def plan_cost(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    makespan_s: float,
    energy_j: float,
    price_book: Optional[PriceBook] = None,
) -> float:
    """Dollars for one simulated run: GPU rental plus electricity.

    Rental bills every GPU the plan occupies for the full makespan at
    its price-book tier; electricity converts ``energy_j`` at the
    book's grid rate.  Pure arithmetic over backend-agreed fields, so it
    shares the energy totals' cross-backend bit-identity.
    """
    if makespan_s <= 0.0:
        return 0.0
    book = price_book if price_book is not None else default_price_book()
    rental = _plan_rate_usd_hr(plan, book) * makespan_s / 3600.0
    electricity = energy_j / _JOULES_PER_KWH * book.electricity_usd_per_kwh
    return rental + electricity


@lru_cache(maxsize=4096)
def _plan_rate_usd_hr(plan: ExecutionPlan, book: PriceBook) -> float:
    """Aggregate $/hr of every GPU the plan occupies, at book tiers."""
    rate = 0.0
    for st in plan.stages:
        rate += st.tp_degree * book.rate_usd_hr(st.gpu_name)
    return rate
