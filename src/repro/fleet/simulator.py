"""Discrete-event fleet simulation: compose per-job pipeline sims.

Each scheduled job's one-batch serving is simulated with the PR-0
discrete-event pipeline simulator (:func:`repro.pipeline.simulate_plan`)
on the job's materialized group cluster; the measured per-batch makespan
replaces the planner's analytic prediction, the backfilling list
scheduler is re-run with the measured durations, and everything is
composed into a :class:`FleetSimResult`.

The headline metric mirrors Fig. 1: how many of the fleet's idle
GPU-hours would serving like this reclaim?  :meth:`FleetSimResult.
idle_recovery` extrapolates the pool utilization the schedule achieved
to the full idle capacity of a sampled fleet
(:class:`~repro.hardware.fleet.FleetStats`), using the same
:data:`~repro.hardware.fleet.HOURS_PER_MONTH` denominator
``FleetStats.idle_gpu_hours`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..costmodel.energy import PriceBook, default_price_book
from ..hardware.fleet import HOURS_PER_MONTH, FleetStats
from ..hardware.gpus import get_gpu
from ..models import get_model
from ..obs import metrics, trace
from ..pipeline.simulator import PipelineSimResult, simulate_plan
from .allocator import list_schedule
from .scheduler import FleetSchedule, ScheduledJob

__all__ = ["FleetSimResult", "JobSimRecord", "simulate_schedule"]

_JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class JobSimRecord:
    """One job's simulated run inside the fleet timeline."""

    job_id: str
    model: str
    group_counts: Tuple[Tuple[str, int], ...]
    num_batches: int
    start_s: float
    end_s: float
    total_tokens: int
    #: The one-batch discrete-event simulation the run is composed from.
    batch_sim: PipelineSimResult

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def throughput_tokens_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_tokens / self.duration_s

    def describe(self) -> str:
        group = "+".join(f"{n}x{g}" for g, n in self.group_counts)
        return (
            f"{self.job_id}: {self.model} on {group} "
            f"[{self.start_s:.1f}s - {self.end_s:.1f}s] "
            f"{self.throughput_tokens_s:.0f} tok/s"
        )


@dataclass(frozen=True)
class FleetSimResult:
    """Outcome of simulating a whole fleet schedule.

    Implements the :class:`repro.api.Summary` protocol — ``to_dict()``
    round-trips through :mod:`repro.serialization`,
    :attr:`throughput_tokens_s` is the fleet-aggregate output
    throughput, and :attr:`duration_s` is the fleet makespan.
    """

    inventory: Dict[str, int]
    jobs: Tuple[JobSimRecord, ...]
    makespan_s: float
    total_tokens: int
    allocator: str
    #: Fleet-wide joules over the makespan: every job's per-batch energy
    #: times its batch count, plus idle draw for unallocated inventory
    #: GPU-seconds.  ``None`` on results predating energy accounting.
    energy_j: Optional[float] = None
    #: Fleet-wide dollars: the whole inventory rented for the makespan at
    #: the price book's tier rates, plus electricity for ``energy_j``.
    cost_usd: Optional[float] = None

    @property
    def joules_per_token(self) -> float:
        """Energy efficiency headline (J per output token)."""
        if self.energy_j is None or self.total_tokens <= 0:
            return 0.0
        return self.energy_j / self.total_tokens

    @property
    def usd_per_mtoken(self) -> float:
        """Dollar efficiency headline ($ per million output tokens)."""
        if self.cost_usd is None or self.total_tokens <= 0:
            return 0.0
        return self.cost_usd / (self.total_tokens / 1e6)

    @property
    def throughput_tokens_s(self) -> float:
        """Aggregate output tokens/s over the fleet makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens / self.makespan_s

    @property
    def duration_s(self) -> float:
        """Fleet makespan (the Summary-protocol duration)."""
        return self.makespan_s

    def gpu_hours_used(self) -> Dict[str, float]:
        """Busy GPU-hours per type over the simulated timeline."""
        out: Dict[str, float] = {g: 0.0 for g in self.inventory}
        for rec in self.jobs:
            hours = rec.duration_s / 3600.0
            for g, n in rec.group_counts:
                out[g] = out.get(g, 0.0) + n * hours
        return out

    def pool_utilization(self) -> Dict[str, float]:
        """Busy fraction of each pool GPU type during the makespan."""
        if self.makespan_s <= 0:
            return {g: 0.0 for g in self.inventory}
        span_hours = self.makespan_s / 3600.0
        used = self.gpu_hours_used()
        return {
            g: min(used.get(g, 0.0) / (n * span_hours), 1.0)
            for g, n in self.inventory.items()
            if n > 0
        }

    def idle_recovery(
        self,
        stats: FleetStats,
        hours_per_month: float = HOURS_PER_MONTH,
    ) -> Dict[str, Any]:
        """Reclaimed idle GPU-hours vs the Fig. 1 baseline.

        Extrapolates the pool utilization this schedule achieved to the
        sampled fleet's whole idle capacity: operating all of type
        ``t``'s idle GPUs at the schedule's busy fraction reclaims
        ``idle_gpu_hours[t] * pool_utilization[t]`` GPU-hours/month.
        """
        idle = stats.idle_gpu_hours(hours_per_month=hours_per_month)
        util = self.pool_utilization()
        per_type = {
            g: {
                "idle_gpu_hours": idle.get(g, 0.0),
                "pool_utilization": util.get(g, 0.0),
                "reclaimed_gpu_hours": idle.get(g, 0.0) * util.get(g, 0.0),
            }
            for g in sorted(set(idle) | set(util))
        }
        total_idle = sum(v["idle_gpu_hours"] for v in per_type.values())
        total_reclaimed = sum(
            v["reclaimed_gpu_hours"] for v in per_type.values()
        )
        return {
            "per_type": per_type,
            "total_idle_gpu_hours": total_idle,
            "total_reclaimed_gpu_hours": total_reclaimed,
            "reclaimed_fraction": (
                total_reclaimed / total_idle if total_idle > 0 else 0.0
            ),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict via :mod:`repro.serialization` (round-trip)."""
        from ..serialization import fleet_result_to_dict

        return fleet_result_to_dict(self)

    def describe(self) -> str:
        lines = [
            f"fleet simulation ({self.allocator}): {len(self.jobs)} jobs, "
            f"makespan {self.makespan_s:.1f}s, "
            f"{self.throughput_tokens_s:.0f} tok/s aggregate"
        ]
        for rec in sorted(self.jobs, key=lambda r: (r.start_s, r.job_id)):
            lines.append("  " + rec.describe())
        return "\n".join(lines)


def simulate_schedule(
    schedule: FleetSchedule,
    cross_node_link: str = "eth-800g",
    check_memory: bool = True,
    sim_backend: str = "auto",
    price_book: Optional[PriceBook] = None,
) -> FleetSimResult:
    """Simulate every scheduled job and compose the fleet timeline.

    ``sim_backend`` selects the per-job pipeline simulator engine
    (``"auto"`` takes the closed-form fast path whenever it is exact —
    which, for fleet jobs' uniform batches, is always).  ``price_book``
    prices the fleet's rental and electricity
    (:func:`repro.costmodel.energy.default_price_book` when ``None``) —
    GPU types listed in its ``spot_types`` bill at spot rates.
    """
    with trace.span(
        "fleet.simulate",
        jobs=len(schedule.jobs),
        allocator=schedule.allocator,
    ) as sp:
        result = _simulate_schedule(
            schedule, cross_node_link, check_memory, sim_backend, price_book
        )
        sp.set(makespan_s=round(result.makespan_s, 3))
        if trace.enabled:
            metrics.counter("fleet.simulations").inc()
            metrics.counter("fleet.sim.jobs").inc(len(result.jobs))
        return result


def _one_job_sim(
    sj: ScheduledJob,
    cross_node_link: str,
    check_memory: bool,
    sim_backend: str = "auto",
) -> PipelineSimResult:
    assignment = sj.assignment
    cluster = assignment.materialize_cluster(cross_node_link)
    spec = get_model(assignment.job.model)
    return simulate_plan(
        assignment.result.plan,
        cluster,
        spec,
        assignment.job.workload,
        check_memory=check_memory,
        sim_backend=sim_backend,
    )


def _fleet_energy_cost(
    inventory: Dict[str, int],
    records: Tuple[JobSimRecord, ...],
    makespan_s: float,
    price_book: PriceBook,
) -> Tuple[float, float]:
    """Compose fleet joules and dollars from the per-job simulations.

    Busy energy is each job's one-batch ``energy_j`` scaled by its batch
    count (the job's GPUs draw that power for its whole slot).  Idle
    energy covers the rest of the inventory: each type's un-allocated
    GPU-seconds over the makespan at its idle wattage.  Cost rents the
    whole inventory for the makespan (spot or on-demand per the price
    book) and adds electricity for the total joules.
    """
    busy_j = sum(
        (rec.batch_sim.energy_j or 0.0) * rec.num_batches for rec in records
    )
    allocated_s: Dict[str, float] = {g: 0.0 for g in inventory}
    for rec in records:
        for g, n in rec.group_counts:
            allocated_s[g] = allocated_s.get(g, 0.0) + n * rec.duration_s
    idle_j = 0.0
    rental_usd = 0.0
    for g, n in inventory.items():
        idle_gpu_s = max(n * makespan_s - allocated_s.get(g, 0.0), 0.0)
        idle_j += get_gpu(g).idle_watts * idle_gpu_s
        rental_usd += n * price_book.rate_usd_hr(g) * (makespan_s / 3600.0)
    energy = busy_j + idle_j
    cost = rental_usd + (
        energy / _JOULES_PER_KWH
    ) * price_book.electricity_usd_per_kwh
    return energy, cost


def _simulate_schedule(
    schedule: FleetSchedule,
    cross_node_link: str,
    check_memory: bool,
    sim_backend: str = "auto",
    price_book: Optional[PriceBook] = None,
) -> FleetSimResult:
    if price_book is None:
        price_book = default_price_book()
    batch_sims = [
        _one_job_sim(sj, cross_node_link, check_memory, sim_backend)
        for sj in schedule.jobs
    ]
    assignments = [sj.assignment for sj in schedule.jobs]
    durations = [
        sj.job.num_batches * sim.makespan_s
        for sj, sim in zip(schedule.jobs, batch_sims)
    ]
    start, end, makespan = list_schedule(
        assignments, schedule.inventory, durations=durations
    )
    records = tuple(
        JobSimRecord(
            job_id=sj.job.job_id,
            model=sj.job.model,
            group_counts=sj.group.counts,
            num_batches=sj.job.num_batches,
            start_s=s,
            end_s=e,
            total_tokens=sj.job.total_output_tokens,
            batch_sim=sim,
        )
        for sj, sim, s, e in zip(schedule.jobs, batch_sims, start, end)
    )
    energy, cost = _fleet_energy_cost(
        dict(schedule.inventory), records, makespan, price_book
    )
    return FleetSimResult(
        inventory=dict(schedule.inventory),
        jobs=records,
        makespan_s=makespan,
        total_tokens=sum(r.total_tokens for r in records),
        allocator=schedule.allocator,
        energy_j=energy,
        cost_usd=cost,
    )
