"""``repro.obs``: the zero-dependency observability subsystem.

Three pieces, all stdlib-only:

* :mod:`~repro.obs.tracer` — span-based tracing with nesting, wall/CPU
  time, JSONL export and deterministic normalization for golden tests;
* :mod:`~repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket histograms;
* :mod:`~repro.obs.report` — the text flame summary behind
  ``scripts/trace_report.py``.

Library code traces through the module-level :data:`trace` dispatcher::

    from repro.obs import trace, metrics

    with trace.span("ilp.solve", groups=G, stages=N):
        ...
    if trace.enabled:
        metrics.counter("planner.candidates_pruned").inc()

By default no tracer is installed and ``trace.enabled`` is ``False``:
``trace.span`` returns a shared no-op and hot loops skip entirely on the
one-attribute check.  Enable by installing a tracer
(:func:`install_tracer` / the :func:`use_tracer` context manager — what
:class:`repro.api.Session` does) or by setting the environment variable
``SPLITQUANT_TRACE=/path/to/trace.jsonl``, which activates tracing at
import and writes the JSONL at interpreter exit.
"""

from __future__ import annotations

import atexit
import contextlib
import os
from typing import Any, Iterator, Optional, Union

from .metrics import (
    Counter,
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import flame_summary
from .tracer import NOOP_SPAN, Span, Tracer, normalize_trace, parse_trace

__all__ = [
    "Counter",
    "DEFAULT_FRACTION_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "TRACE_ENV",
    "Tracer",
    "current_tracer",
    "flame_summary",
    "install_from_env",
    "install_tracer",
    "metrics",
    "normalize_trace",
    "parse_trace",
    "trace",
    "uninstall_tracer",
    "use_tracer",
]

#: Environment variable holding the JSONL output path.
TRACE_ENV = "SPLITQUANT_TRACE"


class _TraceDispatch:
    """The process-wide tracing entry point library code imports.

    Holds at most one active :class:`Tracer`.  ``enabled`` is a plain
    attribute kept in sync with the installed tracer so hot paths pay a
    single attribute check when tracing is off.
    """

    __slots__ = ("enabled", "tracer")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.tracer: Optional[Tracer] = None

    def span(self, name: str, **attrs: Any):
        t = self.tracer
        if t is None or not self.enabled:
            return NOOP_SPAN
        return t.span(name, **attrs)


#: The singleton dispatcher (import this, never a Tracer, in library code).
trace = _TraceDispatch()

#: The process-wide metrics registry (always usable; call sites guard
#: updates behind ``trace.enabled`` to keep the disabled path free).
metrics = MetricsRegistry()


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, if any."""
    return trace.tracer


def install_tracer(tracer: Tracer) -> Optional[Tracer]:
    """Install ``tracer`` globally; returns the previously installed one."""
    previous = trace.tracer
    trace.tracer = tracer
    trace.enabled = bool(tracer.enabled)
    return previous


def uninstall_tracer() -> Optional[Tracer]:
    """Remove the installed tracer (tracing disabled); returns it."""
    previous = trace.tracer
    trace.tracer = None
    trace.enabled = False
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scoped install: activate ``tracer`` for the block, then restore.

    ``None`` disables tracing for the block.  Re-entrant — nested
    ``use_tracer`` blocks restore the outer tracer on exit.
    """
    prev_tracer, prev_enabled = trace.tracer, trace.enabled
    trace.tracer = tracer
    trace.enabled = bool(tracer is not None and tracer.enabled)
    try:
        yield tracer
    finally:
        trace.tracer, trace.enabled = prev_tracer, prev_enabled


def install_from_env(
    environ: Optional[dict] = None, register_atexit: bool = True
) -> Optional[Tracer]:
    """Activate tracing when ``SPLITQUANT_TRACE`` names an output path.

    Installs a fresh global tracer and (by default) registers an atexit
    hook that writes the JSONL trace — plus a ``<path>.metrics.json``
    metrics snapshot — when the interpreter exits.  Returns the tracer,
    or ``None`` when the variable is unset/empty.
    """
    env = os.environ if environ is None else environ
    path = env.get(TRACE_ENV, "").strip()
    if not path:
        return None
    tracer = Tracer(enabled=True)
    install_tracer(tracer)
    if register_atexit:
        owner_pid = os.getpid()

        def _dump() -> None:
            # Forked children (e.g. parallel experiment-runner workers)
            # inherit this hook; only the registering process may write,
            # or exiting workers would clobber the parent's trace.
            if os.getpid() != owner_pid:
                return
            tracer.write(path)
            snapshot = metrics.to_json()
            with open(path + ".metrics.json", "w") as fh:
                fh.write(snapshot + "\n")

        atexit.register(_dump)
    return tracer


#: Auto-activation: importing repro with SPLITQUANT_TRACE set turns the
#: whole process into a traced run (used by the CI fault-demo job).
_env_tracer = install_from_env()
