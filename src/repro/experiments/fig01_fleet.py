"""Fig. 1: production-fleet GPU distribution and monthly utilization."""

from __future__ import annotations

from ..hardware.fleet import monthly_utilization_series, sample_fleet
from .harness import ExperimentResult


def run(n_gpus: int = 10_000, months: int = 12, seed: int = 0) -> ExperimentResult:
    """Regenerate both panels: type shares and per-type utilization."""
    stats = sample_fleet(n_gpus=n_gpus, seed=seed)
    series = monthly_utilization_series(months=months, n_gpus=n_gpus, seed=seed)
    shares = stats.shares()
    idle = stats.idle_gpu_hours()
    rows = []
    for gpu in sorted(shares, key=shares.get, reverse=True):
        util = series[gpu]
        rows.append(
            [
                gpu,
                100.0 * shares[gpu],
                100.0 * stats.utilization[gpu],
                100.0 * min(util),
                100.0 * max(util),
                idle[gpu] / 1e3,
            ]
        )
    a100_util = stats.utilization["A100-40G"]
    tail_util = (
        stats.utilization["T4-16G"]
        + stats.utilization["P100-12G"]
        + stats.utilization["V100-32G"]
    ) / 3.0
    return ExperimentResult(
        name="fig01",
        title="Fleet GPU distribution and monthly utilization",
        headers=[
            "gpu",
            "share_%",
            "util_%",
            "util_min_%",
            "util_max_%",
            "idle_kGPUh/mo",
        ],
        rows=rows,
        summary={
            "a100_share": shares["A100-40G"],
            "a100_util": a100_util,
            "tail_util": tail_util,
            "util_gap_x": a100_util / tail_util,
        },
        notes=(
            "Paper's shape: A100s are a small slice yet run hot; the "
            "T4/P100/V100 tail idles — the capacity SplitQuant unlocks."
        ),
    )
