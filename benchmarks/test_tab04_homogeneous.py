"""Bench: regenerate Table IV (homogeneous clusters, TP/PP topologies)."""

from repro.experiments import tab04_homogeneous


def test_tab04_homogeneous(experiment):
    res = experiment(tab04_homogeneous.run)
    # Paper: SplitQuant matches-or-beats the best baseline topology.
    for key in ("cluster1_speedup", "cluster9_speedup", "cluster10_speedup"):
        assert res.summary[key] >= 0.97
    # Topology choice matters: PP4 is never the best Uniform config.
    uniform = [r for r in res.rows if r[2] == "Uniform" and r[0] != "cluster-1"]
    for cluster in ("cluster-9", "cluster-10"):
        rows = [r for r in uniform if r[0] == cluster]
        best = max(rows, key=lambda r: r[4])
        assert best[3] != "PP4"
