"""Online fleet scheduling: jobs arrive and depart over time.

The offline :class:`~repro.fleet.scheduler.FleetScheduler` sees the whole
job queue upfront and packs it globally.  Online, jobs show up one at a
time and the allocator must react *incrementally*: an arriving job is
placed on the currently **free** inventory only — running jobs keep
their groups and plans untouched, nothing is re-packed from scratch.  A
job that cannot start now but could ever run on the total inventory
waits in a FIFO queue (with backfill past a blocked head); a job no
group of the pool can ever serve is dropped immediately.

One :class:`~repro.fleet.allocator.PlannerPool` persists across all
arrivals, so the shared cost models, indicator tables, and memoized
per-(model, group, workload) plans warm up as the stream progresses —
the fleet-level analogue of the online simulator's duration caches.

Everything is deterministic: arrivals are seeded, placement ties break
exactly like :class:`~repro.fleet.allocator.GreedyAllocator`, and the
timeline replays on the same :class:`~repro.pipeline.events.EventLoop`
the pipeline simulators use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import PlannerConfig
from ..obs import metrics, trace
from ..pipeline.events import EventLoop
from .allocator import Assignment, GroupSpec, PlannerPool, enumerate_groups
from .jobs import FleetJob, make_job_queue

__all__ = [
    "JobArrival",
    "OnlineFleetResult",
    "OnlineFleetScheduler",
    "OnlineJobRecord",
    "make_job_arrivals",
    "simulate_online_fleet",
]


@dataclass(frozen=True)
class JobArrival:
    """One fleet job plus the time it shows up."""

    job: FleetJob
    arrival_s: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


def make_job_arrivals(
    n_jobs: int = 8,
    seed: int = 0,
    mean_interarrival_s: float = 120.0,
    **job_kwargs: object,
) -> Tuple[JobArrival, ...]:
    """A seeded Poisson stream of fleet jobs.

    Job parameters come from :func:`~repro.fleet.jobs.make_job_queue`
    (same seed), arrival gaps from an exponential of the given mean; the
    first job arrives at t=0 so the fleet is never trivially idle.
    """
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    jobs = make_job_queue(n_jobs=n_jobs, seed=seed, **job_kwargs)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival_s, size=len(jobs))
    t = 0.0
    out: List[JobArrival] = []
    for i, job in enumerate(jobs):
        out.append(JobArrival(job=job, arrival_s=t))
        t += float(gaps[i])
    return tuple(out)


@dataclass(frozen=True)
class OnlineJobRecord:
    """One job's life on the online fleet timeline."""

    job_id: str
    model: str
    group_counts: Tuple[Tuple[str, int], ...]
    arrival_s: float
    start_s: float
    end_s: float
    total_tokens: int

    @property
    def wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def turnaround_s(self) -> float:
        return self.end_s - self.arrival_s

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def describe(self) -> str:
        group = "+".join(f"{n}x{g}" for g, n in self.group_counts)
        return (
            f"{self.job_id}: {self.model} on {group} "
            f"arrived {self.arrival_s:.0f}s, waited {self.wait_s:.0f}s, "
            f"ran [{self.start_s:.0f}s - {self.end_s:.0f}s]"
        )


@dataclass(frozen=True)
class OnlineFleetResult:
    """Outcome of one online fleet run (Summary-compliant)."""

    inventory: Dict[str, int]
    jobs: Tuple[OnlineJobRecord, ...]
    #: Jobs no group of the total inventory could ever serve.
    dropped: Tuple[str, ...]
    makespan_s: float
    total_tokens: int
    #: Planner-pool observability; cache warmth varies run to run, so
    #: (like the simulator's provenance fields) it is excluded from
    #: equality.
    pool_stats: Dict[str, int] = field(default_factory=dict, compare=False)
    #: Events the replay loop processed (arrivals + job finishes).
    #: Provenance for the drain-queue regression tests; excluded from
    #: equality like the pipeline result's provenance fields.
    events_processed: int = field(default=0, compare=False)

    @property
    def throughput_tokens_s(self) -> float:
        """Aggregate output tokens/s over the online makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens / self.makespan_s

    @property
    def duration_s(self) -> float:
        """Online-fleet makespan (the Summary-protocol duration)."""
        return self.makespan_s

    @property
    def mean_wait_s(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(r.wait_s for r in self.jobs) / len(self.jobs)

    @property
    def max_wait_s(self) -> float:
        return max((r.wait_s for r in self.jobs), default=0.0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary dict."""
        return {
            "kind": "online_fleet",
            "inventory": dict(sorted(self.inventory.items())),
            "makespan_s": self.makespan_s,
            "total_tokens": self.total_tokens,
            "throughput_tokens_s": self.throughput_tokens_s,
            "mean_wait_s": self.mean_wait_s,
            "dropped": list(self.dropped),
            "jobs": [
                {
                    "job_id": r.job_id,
                    "model": r.model,
                    "group": [list(c) for c in r.group_counts],
                    "arrival_s": r.arrival_s,
                    "start_s": r.start_s,
                    "end_s": r.end_s,
                    "total_tokens": r.total_tokens,
                }
                for r in self.jobs
            ],
        }

    def describe(self) -> str:
        lines = [
            f"online fleet: {len(self.jobs)} jobs served on "
            + " + ".join(
                f"{n}x{g}" for g, n in sorted(self.inventory.items())
            )
            + f", makespan {self.makespan_s:.0f}s, "
            f"{self.throughput_tokens_s:.0f} tok/s aggregate, "
            f"mean wait {self.mean_wait_s:.0f}s"
        ]
        for r in sorted(self.jobs, key=lambda r: (r.arrival_s, r.job_id)):
            lines.append("  " + r.describe())
        if self.dropped:
            lines.append("  dropped: " + ", ".join(self.dropped))
        return "\n".join(lines)


class _Running:
    __slots__ = ("assignment", "arrival_s", "start_s", "end_s")

    def __init__(self, assignment: Assignment, arrival_s: float,
                 start_s: float, end_s: float):
        self.assignment = assignment
        self.arrival_s = arrival_s
        self.start_s = start_s
        self.end_s = end_s


class OnlineFleetScheduler:
    """Incremental allocation of arriving jobs onto free fleet capacity.

    Holds the free-GPU ledger and the waiting queue; the driver
    (:func:`simulate_online_fleet`) feeds it ``submit`` / ``release``
    calls in event order.  Placement of one job mirrors the greedy
    allocator's pick — best predicted tokens/s per GPU among feasible
    groups — but restricted to the *free* inventory, so running jobs are
    never disturbed.
    """

    def __init__(
        self,
        inventory: Dict[str, int],
        config: Optional[PlannerConfig] = None,
        cross_node_link: str = "eth-800g",
        parallelism: int = 1,
        max_gpus: int = 4,
        max_types: int = 2,
        index_queue: bool = True,
    ) -> None:
        if config is None:
            from .scheduler import default_fleet_config

            config = default_fleet_config()
        self.inventory = {g: n for g, n in inventory.items() if n > 0}
        self.free = dict(self.inventory)
        self.pool = PlannerPool(
            self.inventory,
            config=config,
            cross_node_link=cross_node_link,
            parallelism=parallelism,
        )
        self.max_gpus = max_gpus
        self.max_types = max_types
        self.index_queue = index_queue
        self._all_groups = enumerate_groups(
            self.inventory, max_gpus=max_gpus, max_types=max_types
        )
        #: Waiting jobs as (job, arrival time), FIFO by arrival.
        self.queue: List[Tuple[FleetJob, float]] = []
        #: Admissibility index: per waiting job, its planner-feasible
        #: assignments over every inventory-fitting group (in group
        #: enumeration order).  Planner feasibility depends only on the
        #: (job, group) pair — never on the free budget — so a release
        #: event just filters this list by ``fits(free)`` instead of
        #: re-running the planner scan per waiting job.
        self._feasible_cache: Dict[str, List[Assignment]] = {}

    @staticmethod
    def _place_key(a: Assignment) -> Tuple[float, int]:
        return (a.tokens_s_per_gpu, -a.group.total)

    def _feasible_on(
        self, job: FleetJob, budget: Dict[str, int]
    ) -> List[Assignment]:
        """Planner-feasible assignments on budget-fitting groups, in
        group enumeration order (the tie-break order of ``_best_on``)."""
        candidates = [g for g in self._all_groups if g.fits(budget)]
        if not candidates:
            return []
        evaluated = self.pool.evaluate_many([(job, g) for g in candidates])
        return [a for a in evaluated if a is not None]

    def _best_on(
        self, job: FleetJob, budget: Dict[str, int]
    ) -> Optional[Assignment]:
        feasible = self._feasible_on(job, budget)
        if not feasible:
            return None
        return max(feasible, key=self._place_key)

    def _reserve(self, group: GroupSpec) -> None:
        for g, n in group.counts:
            self.free[g] -= n

    def _release(self, group: GroupSpec) -> None:
        for g, n in group.counts:
            self.free[g] += n

    def submit(
        self, job: FleetJob, now: float
    ) -> Tuple[str, Optional[Assignment]]:
        """Offer an arriving job; returns (status, assignment).

        ``status`` is ``"started"`` (placed on free GPUs now),
        ``"queued"`` (feasible on the total inventory, waiting), or
        ``"dropped"`` (no group of this pool can ever serve it).
        """
        assignment = self._best_on(job, self.free)
        if assignment is not None:
            self._reserve(assignment.group)
            return "started", assignment
        feasible = self._feasible_on(job, self.inventory)
        if feasible:
            if self.index_queue:
                self._feasible_cache[job.job_id] = feasible
            self.queue.append((job, now))
            return "queued", None
        return "dropped", None

    def drain_queue(
        self, now: float
    ) -> List[Tuple[FleetJob, float, Assignment]]:
        """Start every waiting job that now fits (FIFO, with backfill).

        Called after a release; returns the started
        ``(job, arrival, assignment)`` triples in start order.  With
        ``index_queue`` (default) the pick filters each job's cached
        admissibility index by the free budget — zero planner calls —
        and is decision-identical to the legacy per-job planner rescan:
        free-fitting groups are a subset of inventory-fitting ones, the
        cached list preserves group enumeration order, and the max key
        is the same, so the same assignment wins every tie.
        """
        started: List[Tuple[FleetJob, float, Assignment]] = []
        remaining: List[Tuple[FleetJob, float]] = []
        for job, arrival in self.queue:
            if self.index_queue:
                fits = [
                    a
                    for a in self._feasible_cache[job.job_id]
                    if a.group.fits(self.free)
                ]
                assignment = (
                    max(fits, key=self._place_key) if fits else None
                )
            else:
                assignment = self._best_on(job, self.free)
            if assignment is None:
                remaining.append((job, arrival))
                continue
            self._reserve(assignment.group)
            self._feasible_cache.pop(job.job_id, None)
            started.append((job, arrival, assignment))
        self.queue = remaining
        return started


def simulate_online_fleet(
    inventory: Dict[str, int],
    arrivals: Sequence[Union[JobArrival, Tuple[float, FleetJob]]],
    config: Optional[PlannerConfig] = None,
    cross_node_link: str = "eth-800g",
    parallelism: int = 1,
    use_sim_durations: bool = True,
    index_queue: bool = True,
    prewarm: Optional[bool] = None,
) -> OnlineFleetResult:
    """Replay an arrival stream of fleet jobs through the online scheduler.

    Job durations come from the batched pipeline simulator
    (:meth:`PlannerPool.score_assignments`) when ``use_sim_durations``
    is set — the same measured per-batch makespans the offline
    :func:`~repro.fleet.simulator.simulate_schedule` composes — falling
    back to the planner's analytic prediction where scoring declines.

    ``index_queue`` keeps a per-job admissibility index so queue drains
    filter cached feasible assignments instead of re-running the planner
    scan; decisions are identical either way.  ``prewarm`` (default: on
    when ``parallelism > 1``) evaluates every (job, fitting-group) pair
    across the planner pool's workers *before* the serial replay, so the
    replay itself only hits memoized results — the reduction stays in
    arrival order and the outcome is bit-identical to a cold run.
    """
    if not arrivals:
        raise ValueError("arrival stream is empty")
    stream: List[JobArrival] = [
        a if isinstance(a, JobArrival) else JobArrival(job=a[1], arrival_s=a[0])
        for a in arrivals
    ]
    stream.sort(key=lambda a: (a.arrival_s, a.job.job_id))
    ids = [a.job.job_id for a in stream]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate job ids in arrival stream")

    with trace.span(
        "fleet.online",
        jobs=len(stream),
        gpus=sum(inventory.values()),
    ) as sp:
        result = _simulate_online_fleet(
            inventory, stream, config, cross_node_link, parallelism,
            use_sim_durations, index_queue, prewarm,
        )
        sp.set(
            served=len(result.jobs),
            dropped=len(result.dropped),
            makespan_s=round(result.makespan_s, 3),
        )
        if trace.enabled:
            metrics.counter("fleet.online_runs").inc()
            metrics.counter("fleet.online_served").inc(len(result.jobs))
            metrics.counter("fleet.online_dropped").inc(len(result.dropped))
        return result


def _simulate_online_fleet(
    inventory: Dict[str, int],
    stream: List[JobArrival],
    config: Optional[PlannerConfig],
    cross_node_link: str,
    parallelism: int,
    use_sim_durations: bool,
    index_queue: bool,
    prewarm: Optional[bool],
) -> OnlineFleetResult:
    sched = OnlineFleetScheduler(
        inventory,
        config=config,
        cross_node_link=cross_node_link,
        parallelism=parallelism,
        index_queue=index_queue,
    )
    if prewarm is None:
        prewarm = parallelism > 1
    if prewarm:
        # Evaluate the whole (job, fitting-group) grid upfront: with a
        # parallel pool the pairs fan out across workers, and the serial
        # replay below only hits memoized results.  Evaluation order
        # never affects decisions (results are keyed per pair), so this
        # is bit-identical to the cold replay.
        pairs = [
            (ja.job, g)
            for ja in stream
            for g in sched._all_groups
            if g.fits(sched.inventory)
        ]
        evaluated = sched.pool.evaluate_many(pairs)
        if use_sim_durations:
            sched.pool.score_assignments(
                [a for a in evaluated if a is not None]
            )
    loop = EventLoop()
    records: List[OnlineJobRecord] = []
    dropped: List[str] = []

    def duration_of(assignment: Assignment) -> float:
        if use_sim_durations:
            score = sched.pool.score_assignments([assignment])[0]
            if score is not None:
                return assignment.job.num_batches * score
        return assignment.duration_s

    def start(job: FleetJob, arrival: float, assignment: Assignment,
              now: float) -> None:
        end = now + duration_of(assignment)
        records.append(
            OnlineJobRecord(
                job_id=job.job_id,
                model=job.model,
                group_counts=assignment.group.counts,
                arrival_s=arrival,
                start_s=now,
                end_s=end,
                total_tokens=job.total_output_tokens,
            )
        )

        def finish() -> None:
            sched._release(assignment.group)
            for qjob, qarr, qassign in sched.drain_queue(loop.now):
                start(qjob, qarr, qassign, loop.now)

        loop.at(end, finish)

    for ja in stream:
        def arrive(ja: JobArrival = ja) -> None:
            status, assignment = sched.submit(ja.job, loop.now)
            if status == "started":
                assert assignment is not None
                start(ja.job, ja.arrival_s, assignment, loop.now)
            elif status == "dropped":
                dropped.append(ja.job.job_id)

        loop.at(ja.arrival_s, arrive)

    loop.run()

    makespan = max((r.end_s for r in records), default=0.0)
    return OnlineFleetResult(
        inventory=dict(sched.inventory),
        jobs=tuple(records),
        dropped=tuple(dropped),
        makespan_s=makespan,
        total_tokens=sum(r.total_tokens for r in records),
        pool_stats=sched.pool.stats(),
        events_processed=loop.processed,
    )
