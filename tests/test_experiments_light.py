"""Tests of the fast experiment modules (shape assertions vs the paper)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentResult


def test_registry_covers_every_table_and_figure():
    assert set(ALL_EXPERIMENTS) == {
        "fig01", "fig03", "fig04", "fig05", "fig07", "fig08", "fig09",
        "fig10", "fig11", "fig12", "tab01", "tab04", "tab05", "tab06",
        "ablations", "pareto",
    }


@pytest.fixture(scope="module")
def fig01():
    return ALL_EXPERIMENTS["fig01"].run(n_gpus=4000, months=3)


def test_fig01_shape(fig01):
    assert fig01.summary["a100_share"] < 0.15
    assert fig01.summary["a100_util"] > 0.8
    assert fig01.summary["util_gap_x"] > 1.5


def test_fig03_phase_ratios():
    res = ALL_EXPERIMENTS["fig03"].run()
    assert 13 < res.summary["opt-13b_prefill_ratio"] < 16
    assert 6 < res.summary["opt-13b_decode_ratio"] < 8.5
    # Long prompts make prefill substantial (paper: >= 36%).
    assert res.summary["opt13b_long_prompt_prefill_share"] >= 0.36


def test_fig05_precision_phenomena():
    res = ALL_EXPERIMENTS["fig05"].run()
    s = res.summary
    assert s["v100_prefill_fp16_over_4bit"] <= 1.0  # fp16 wins prefill
    assert s["v100_decode_fp16_over_4bit"] > 1.5  # 4-bit wins decode
    assert s["t4_prefill_fp16_over_int8"] > 1.2  # T4 int8 fast
    assert s["v100_prefill_fp16_over_int8"] < 1.0  # V100 int8 slow


def test_fig07_distributions():
    res = ALL_EXPERIMENTS["fig07"].run(n=4000)
    s = res.summary
    assert 80_000 < s["loogle_mean_in"] < 115_000
    assert 50 < s["loogle_mean_out"] < 80
    assert 270 < s["cnn_dailymail_mean_out"] < 330


def test_fig08_costmodel_fidelity():
    res = ALL_EXPERIMENTS["fig08"].run(n_memory_cases=6,
                                       n_latency_workloads=20)
    assert res.summary["memory_mean_err"] < 0.01  # near-negligible
    assert res.summary["latency_mean_err"] < 0.06  # paper: < 6%


@pytest.fixture(scope="module")
def fig04():
    return ALL_EXPERIMENTS["fig04"].run(tiny_seqs=4, tiny_len=56)


def test_fig04_analytic_scheme_ordering(fig04):
    s = fig04.summary
    for model in ("bloom-3b", "opt-1.3b"):
        assert s[f"{model}_fp16_ppl"] <= s[f"{model}_int8_ppl"] * 1.001
        assert s[f"{model}_int8_ppl"] < s[f"{model}_int4_ppl"]
        assert s[f"{model}_int4_ppl"] < s[f"{model}_int3_ppl"]
        # Mixed allocations sit between their endpoints.
        assert (
            s[f"{model}_int8_ppl"]
            <= s[f"{model}_mixed4-8_ppl"]
            <= s[f"{model}_int4_ppl"]
        )
        assert (
            s[f"{model}_int4_ppl"]
            <= s[f"{model}_mixed3-4_ppl"]
            <= s[f"{model}_int3_ppl"]
        )


def test_fig04_measured_tinylm_ordering(fig04):
    s = fig04.summary
    assert s["tinylm_fp16_ppl"] <= s["tinylm_int8_ppl"] * 1.01
    assert s["tinylm_int8_ppl"] < s["tinylm_int3_ppl"]
    assert s["tinylm_mixed3-4_ppl"] < s["tinylm_int3_ppl"]


def test_tab01_early_layers_least_sensitive():
    res = ALL_EXPERIMENTS["tab01"].run()
    assert res.summary["opt-1.3b_early_best"] == 1.0
    assert res.summary["bloom-3b_early_best"] == 1.0
    # Proposition 1 on a real model: indicator ranks measured perturbation.
    assert res.summary["tinylm_prop1_rank_corr"] > 0.8


def test_experiment_result_formatting():
    res = ExperimentResult(
        name="x", title="t", headers=["a", "b"],
        rows=[[1, 2.5], ["z", 10_000.0]], summary={"k": 1.0},
    )
    text = res.to_text()
    assert "== x: t ==" in text
    assert "10,000" in text
    assert res.column("a") == [1, "z"]
    with pytest.raises(ValueError):
        res.column("missing")
