"""Synthetic production-fleet statistics (paper Fig. 1).

Fig. 1 motivates the work with two observations from a production cluster:
(a) high-calibre GPUs (A100) are a small fraction of the fleet, with most
capacity in older inference parts (T4, V100, P100), and (b) monthly
utilization is far higher on A100s than on the long tail.

We reproduce those statistics with a seeded generator: a fleet of GPUs is
drawn from the published share distribution and per-GPU monthly effective
hours are sampled from per-type beta distributions whose means match the
utilization gap the paper shows.

:data:`HOURS_PER_MONTH` is the single source of truth for converting a
monthly utilization fraction into GPU-hours; the fleet scheduler
(:mod:`repro.fleet`) imports it so idle-hour accounting lines up exactly
with :meth:`FleetStats.idle_gpu_hours`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

#: Hours in the nominal scheduling month (30 days).  Shared by
#: :meth:`FleetStats.idle_gpu_hours` and the fleet scheduler's
#: GPU-hour accounting so "reclaimed idle hours" is measured against the
#: same denominator Fig. 1 uses.
HOURS_PER_MONTH: float = 720.0

#: Share of each GPU type in the fleet (sums to 1), shaped after Fig. 1(a):
#: a thin slice of A100s and a long tail of inference parts.
FLEET_SHARES: Dict[str, float] = {
    "A100-40G": 0.08,
    "V100-32G": 0.27,
    "T4-16G": 0.46,
    "P100-12G": 0.19,
}

#: Mean monthly utilization per type (effective GPU-hours / available
#: GPU-hours), shaped after Fig. 1(b): A100s run hot, the tail idles.
UTILIZATION_MEANS: Dict[str, float] = {
    "A100-40G": 0.87,
    "V100-32G": 0.48,
    "T4-16G": 0.33,
    "P100-12G": 0.21,
}

#: Beta concentration of the per-GPU utilization draw (within-type spread).
_UTILIZATION_CONCENTRATION: float = 20.0


@dataclass(frozen=True)
class FleetStats:
    """Aggregated statistics over a synthetic fleet sample."""

    counts: Dict[str, int]
    utilization: Dict[str, float]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def shares(self) -> Dict[str, float]:
        total = self.total
        return {k: v / total for k, v in self.counts.items()}

    def idle_gpu_hours(
        self, hours_per_month: float = HOURS_PER_MONTH
    ) -> Dict[str, float]:
        """Unused GPU-hours per type per month — the untapped capacity."""
        return {
            k: self.counts[k] * hours_per_month * (1.0 - self.utilization[k])
            for k in self.counts
        }

    def idle_gpu_equivalents(self) -> Dict[str, float]:
        """Average number of *whole idle GPUs* per type.

        ``count * (1 - utilization)`` — the steady-state size of the
        schedulable pool the fleet scheduler carves jobs from.
        """
        return {
            k: self.counts[k] * (1.0 - self.utilization[k])
            for k in self.counts
        }


def _sample_counts(rng: np.random.Generator, n_gpus: int) -> Dict[str, int]:
    """Draw the per-type fleet composition from :data:`FLEET_SHARES`."""
    types = list(FLEET_SHARES)
    probs = np.array([FLEET_SHARES[t] for t in types])
    probs = probs / probs.sum()
    draws = rng.choice(len(types), size=n_gpus, p=probs)
    return {t: int((draws == i).sum()) for i, t in enumerate(types)}


def _sample_utilization(
    rng: np.random.Generator, counts: Dict[str, int]
) -> Dict[str, float]:
    """Mean per-type utilization from per-GPU beta draws.

    Shared by :func:`sample_fleet` and
    :func:`monthly_utilization_series` — one implementation of the
    Fig. 1(b) within-type spread (Beta with the published mean and
    concentration :data:`_UTILIZATION_CONCENTRATION`).
    """
    utilization: Dict[str, float] = {}
    conc = _UTILIZATION_CONCENTRATION
    for t in FLEET_SHARES:
        n = counts.get(t, 0)
        if n == 0:
            utilization[t] = 0.0
            continue
        mean = UTILIZATION_MEANS[t]
        a, b = mean * conc, (1.0 - mean) * conc
        utilization[t] = float(rng.beta(a, b, size=n).mean())
    return utilization


def sample_fleet(n_gpus: int = 10_000, seed: int = 0) -> FleetStats:
    """Draw a synthetic fleet and its monthly utilization.

    Utilization per GPU is Beta-distributed with the per-type mean above
    and concentration 20, giving realistic within-type spread.
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    rng = np.random.default_rng(seed)
    counts = _sample_counts(rng, n_gpus)
    utilization = _sample_utilization(rng, counts)
    return FleetStats(counts=counts, utilization=utilization)


def monthly_utilization_series(
    months: int = 12, n_gpus: int = 10_000, seed: int = 0
) -> Dict[str, List[float]]:
    """Per-type monthly utilization over a year (Fig. 1(b) series)."""
    if months <= 0:
        raise ValueError("months must be positive")
    out: Dict[str, List[float]] = {t: [] for t in FLEET_SHARES}
    for m in range(months):
        stats = sample_fleet(n_gpus=n_gpus, seed=seed + m)
        for t in out:
            out[t].append(stats.utilization[t])
    return out


def schedulable_inventory(
    stats: FleetStats, pool_gpus: int = 32
) -> Dict[str, int]:
    """A concrete mixed GPU pool proportional to the fleet's idle capacity.

    Scales each type's :meth:`FleetStats.idle_gpu_equivalents` down to a
    pool of about ``pool_gpus`` devices (largest-remainder rounding, at
    least one of every type with idle capacity) — the slice of Fig. 1's
    untapped fleet a scheduling experiment actually places jobs on.
    """
    if pool_gpus <= 0:
        raise ValueError("pool_gpus must be positive")
    idle = stats.idle_gpu_equivalents()
    total_idle = sum(idle.values())
    if total_idle <= 0:
        raise ValueError("fleet has no idle capacity to schedule on")
    raw = {t: pool_gpus * v / total_idle for t, v in idle.items() if v > 0}
    floor = {t: int(v) for t, v in raw.items()}
    remainders = sorted(
        raw, key=lambda t: (raw[t] - floor[t], t), reverse=True
    )
    short = pool_gpus - sum(floor.values())
    for t in remainders[:short]:
        floor[t] += 1
    return {t: max(1, n) for t, n in floor.items()}
