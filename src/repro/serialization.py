"""Plan (de)serialization.

The assigner runs offline, once per (model, cluster); production runtimes
load the resulting plan at startup.  Plans therefore need a stable
on-disk format: plain JSON, schema-versioned, round-trip exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .plan import ExecutionPlan, StagePlan

SCHEMA_VERSION = 1


def plan_to_dict(plan: ExecutionPlan) -> Dict[str, Any]:
    """A JSON-safe dict representation of a plan."""
    return {
        "schema_version": SCHEMA_VERSION,
        "model_name": plan.model_name,
        "prefill_microbatch": plan.prefill_microbatch,
        "decode_microbatch": plan.decode_microbatch,
        "bit_kv": plan.bit_kv,
        "stages": [
            {
                "device_ids": list(st.device_ids),
                "gpu_name": st.gpu_name,
                "layer_start": st.layer_start,
                "layer_bits": list(st.layer_bits),
            }
            for st in plan.stages
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> ExecutionPlan:
    """Reconstruct a plan; validates the schema version."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported plan schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    stages = tuple(
        StagePlan(
            device_ids=tuple(int(d) for d in st["device_ids"]),
            gpu_name=str(st["gpu_name"]),
            layer_start=int(st["layer_start"]),
            layer_bits=tuple(int(b) for b in st["layer_bits"]),
        )
        for st in data["stages"]
    )
    return ExecutionPlan(
        model_name=str(data["model_name"]),
        stages=stages,
        prefill_microbatch=int(data["prefill_microbatch"]),
        decode_microbatch=int(data["decode_microbatch"]),
        bit_kv=int(data.get("bit_kv", 16)),
    )


def dumps_plan(plan: ExecutionPlan, indent: int = 2) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent, sort_keys=True)


def loads_plan(text: str) -> ExecutionPlan:
    """Parse a plan from a JSON string."""
    return plan_from_dict(json.loads(text))


def save_plan(plan: ExecutionPlan, path: Union[str, Path]) -> None:
    """Write a plan to ``path`` as JSON."""
    Path(path).write_text(dumps_plan(plan) + "\n")


def load_plan(path: Union[str, Path]) -> ExecutionPlan:
    """Read a plan written by :func:`save_plan`."""
    return loads_plan(Path(path).read_text())
