"""Tests for the phase-aware latency regression (Sec. IV-A)."""

import numpy as np
import pytest

from repro.costmodel import (
    decode_features,
    fit_phase,
    prefill_features,
    relative_errors,
)
from repro.simgpu import LatencySample, Profiler, layer_time


def test_feature_vectors():
    f = prefill_features(4, 128)
    assert np.allclose(f, [1, 4, 128, 512, 65536])
    g = decode_features(4, 600)
    assert np.allclose(g, [1, 4, 2400, 600])


def test_fit_requires_enough_samples():
    samples = [LatencySample("prefill", 16, 1, 64, 0.01)] * 4
    with pytest.raises(ValueError):
        fit_phase(samples, "prefill")


def test_fitted_keys(cost_model_13b, t4, v100):
    keys = cost_model_13b.fitted_keys()
    assert (t4.name, 4, "prefill") in keys
    assert (v100.name, 16, "decode") in keys
    assert len(keys) == 2 * 4 * 2  # gpus x bits x phases


def test_missing_key_raises(cost_model_13b, opt13b, a100):
    with pytest.raises(KeyError, match="no fitted model"):
        cost_model_13b.prefill_time(a100, 16, 4, 128)


def test_in_grid_accuracy(cost_model_13b, opt13b, v100):
    truth = layer_time(v100, opt13b, 16, "prefill", 8, 512)
    pred = cost_model_13b.prefill_time(v100, 16, 8, 512)
    assert abs(pred - truth) / truth < 0.05


def test_off_grid_accuracy(cost_model_13b, opt13b, v100):
    """Workloads never profiled (paper's 50 unseen workloads)."""
    for v, s in ((3, 384), (5, 768), (7, 384)):
        for phase in ("prefill", "decode"):
            truth = layer_time(v100, opt13b, 16, phase, v, s)
            pred = (
                cost_model_13b.prefill_time(v100, 16, v, s)
                if phase == "prefill"
                else cost_model_13b.decode_time(v100, 16, v, s)
            )
            assert abs(pred - truth) / truth < 0.08, (v, s, phase)


def test_relative_errors_under_paper_threshold(cost_model_13b, v100):
    """Fig. 8: mean latency error below 6%."""
    rng = np.random.default_rng(0)
    wl = [(int(rng.choice([3, 5, 7])), int(rng.choice([384, 768])))
          for _ in range(50)]
    prof = Profiler(seed=77)
    for phase in ("prefill", "decode"):
        errs = relative_errors(cost_model_13b, v100, 16, phase, wl, prof)
        assert errs.mean() < 0.06


def test_decode_extrapolates_to_long_context(cost_model_13b, opt13b, v100):
    """Contexts past the grid must stay accurate (LooGLE regime)."""
    truth = layer_time(v100, opt13b, 16, "decode", 4, 40_000)
    pred = cost_model_13b.decode_time(v100, 16, 4, 40_000)
    assert abs(pred - truth) / truth < 0.15


def test_predictions_non_negative(cost_model_13b, v100):
    assert cost_model_13b.prefill_time(v100, 16, 1, 1) >= 0.0
    assert cost_model_13b.decode_time(v100, 16, 1, 1) >= 0.0


def test_prediction_monotone_in_batch(cost_model_13b, v100):
    a = cost_model_13b.prefill_time(v100, 16, 2, 512)
    b = cost_model_13b.prefill_time(v100, 16, 16, 512)
    assert b > a


def test_quantized_decode_predicted_faster(cost_model_13b, v100):
    fp16 = cost_model_13b.decode_time(v100, 16, 8, 512)
    four = cost_model_13b.decode_time(v100, 4, 8, 512)
    assert four < fp16
