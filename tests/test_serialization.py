"""Tests for plan JSON (de)serialization."""

import json

import pytest

from repro.plan import ExecutionPlan, StagePlan
from repro.serialization import (
    SCHEMA_VERSION,
    dumps_plan,
    load_plan,
    loads_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)


@pytest.fixture
def plan():
    return ExecutionPlan(
        model_name="opt-30b",
        stages=(
            StagePlan((0, 1), "T4-16G", 0, (4, 4, 8)),
            StagePlan((2,), "V100-32G", 3, (16,)),
        ),
        prefill_microbatch=8,
        decode_microbatch=16,
        bit_kv=8,
    )


def test_roundtrip_exact(plan):
    assert loads_plan(dumps_plan(plan)) == plan


def test_dict_roundtrip(plan):
    assert plan_from_dict(plan_to_dict(plan)) == plan


def test_json_is_valid_and_versioned(plan):
    data = json.loads(dumps_plan(plan))
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["model_name"] == "opt-30b"
    assert len(data["stages"]) == 2


def test_file_roundtrip(plan, tmp_path):
    path = tmp_path / "plan.json"
    save_plan(plan, path)
    assert load_plan(path) == plan


def test_unknown_schema_rejected(plan):
    data = plan_to_dict(plan)
    data["schema_version"] = 999
    with pytest.raises(ValueError, match="schema version"):
        plan_from_dict(data)


def test_bit_kv_default(plan):
    data = plan_to_dict(plan)
    del data["bit_kv"]
    restored = plan_from_dict(data)
    assert restored.bit_kv == 16


def test_corrupt_plan_rejected(plan):
    data = plan_to_dict(plan)
    data["stages"][1]["layer_start"] = 7  # breaks contiguity
    with pytest.raises(ValueError):
        plan_from_dict(data)


def test_planner_output_serializes(opt13b, small_cluster, cost_model_13b,
                                   small_workload, tmp_path):
    from repro.core import PlannerConfig, SplitQuantPlanner

    cfg = PlannerConfig(group_size=5, max_orderings=2,
                        microbatch_candidates=(4,), time_limit_s=10.0,
                        verify_top_k=1)
    res = SplitQuantPlanner(
        opt13b, small_cluster, cfg, cost_model=cost_model_13b
    ).plan(small_workload)
    path = tmp_path / "p.json"
    save_plan(res.plan, path)
    assert load_plan(path) == res.plan


# ---------------------------------------------------------------------------
# Summary-object round-trips (the ``repro.api.Summary`` dict forms)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def planner_result(opt13b, small_cluster, cost_model_13b, small_workload):
    from repro.core import PlannerConfig, SplitQuantPlanner

    cfg = PlannerConfig(group_size=5, max_orderings=2,
                        microbatch_candidates=(4,), time_limit_s=10.0,
                        verify_top_k=1)
    res = SplitQuantPlanner(
        opt13b, small_cluster, cfg, cost_model=cost_model_13b
    ).plan(small_workload)
    assert res is not None
    return res


def _stable(to_dict, from_dict, obj):
    """to_dict is a fixed point of from_dict(to_dict(.)) and JSON-safe."""
    d = to_dict(obj)
    json.loads(json.dumps(d))
    assert to_dict(from_dict(d)) == d
    return d


def test_planner_result_roundtrip(planner_result):
    from repro.serialization import (
        planner_result_from_dict,
        planner_result_to_dict,
    )

    d = _stable(
        planner_result_to_dict, planner_result_from_dict, planner_result
    )
    assert d["kind"] == "planner"
    restored = planner_result_from_dict(d)
    assert restored.plan == planner_result.plan
    assert restored.candidates_tried == planner_result.candidates_tried
    assert restored.search.enumerated == planner_result.search.enumerated


def test_sim_result_roundtrip(planner_result, opt13b, small_cluster,
                              small_workload):
    from repro.pipeline import simulate_plan
    from repro.serialization import sim_result_from_dict, sim_result_to_dict

    sim = simulate_plan(
        planner_result.plan, small_cluster, opt13b, small_workload
    )
    d = _stable(sim_result_to_dict, sim_result_from_dict, sim)
    assert d["kind"] == "pipeline_sim"
    assert sim_result_from_dict(d).total_tokens == sim.total_tokens


def test_degraded_result_roundtrip():
    from repro.hardware import make_cluster
    from repro.models import get_model
    from repro.pipeline import simulate_degraded
    from repro.plan import uniform_plan
    from repro.runtime import FaultPlan
    from repro.serialization import (
        degraded_result_from_dict,
        degraded_result_to_dict,
    )
    from repro.workloads import BatchWorkload

    spec = get_model("opt-13b")
    cluster = make_cluster("ser-2dev", [("A100-40G", 1), ("V100-32G", 1)])
    plan = uniform_plan(
        model_name=spec.name,
        num_layers=spec.num_layers,
        device_groups=[((0,), "A100-40G"), ((1,), "V100-32G")],
        bits=4,
        prefill_microbatch=8,
        decode_microbatch=8,
    )
    deg = simulate_degraded(
        plan, cluster, spec, BatchWorkload(batch=16, prompt_len=128,
                                           output_len=16),
        FaultPlan.single_kill(stage=1, step=4), check_memory=False,
    )
    d = _stable(degraded_result_to_dict, degraded_result_from_dict, deg)
    assert d["kind"] == "degraded_sim"
    restored = degraded_result_from_dict(d)
    assert restored.replans == deg.replans == 1
    # floats are rounded to the 12-significant-digit golden grain, so
    # compare the non-timing fields exactly and the time approximately
    (a,), (b,) = restored.fault_events, deg.fault_events
    assert (a.kind, a.stage, a.phase, a.step, a.action, a.detail) == (
        b.kind, b.stage, b.phase, b.step, b.action, b.detail
    )
    assert a.time_s == pytest.approx(b.time_s, rel=1e-11)


def test_generation_result_roundtrip():
    import numpy as np

    from repro.plan import ExecutionPlan, StagePlan
    from repro.quality import TinyLM, TinyLMConfig
    from repro.runtime import PipelineEngine
    from repro.serialization import (
        generation_result_from_dict,
        generation_result_to_dict,
    )

    model = TinyLM(TinyLMConfig(vocab=96, layers=4, hidden=48, ffn=128,
                                heads=4, max_seq=64, seed=3))
    plan = ExecutionPlan(
        model_name="tinylm",
        stages=(
            StagePlan((0, 1), "V100-32G", 0, (8, 8)),
            StagePlan((2, 3), "T4-16G", 2, (4, 8)),
        ),
        prefill_microbatch=2,
        decode_microbatch=2,
    )
    rng = np.random.default_rng(11)
    prompts = rng.integers(0, 96, size=(4, 8))
    with PipelineEngine(model, plan) as engine:
        gen = engine.generate(prompts, n_tokens=5)
    d = generation_result_to_dict(gen)
    json.loads(json.dumps(d))
    assert d["kind"] == "generation"
    restored = generation_result_from_dict(d)
    assert np.array_equal(restored.tokens, gen.tokens)
    assert restored.prompt_tokens == gen.prompt_tokens
    assert restored.replans == gen.replans
    assert generation_result_to_dict(restored) == d


def test_fault_record_roundtrip():
    from repro.runtime.faults import FaultRecord
    from repro.serialization import (
        fault_record_from_dict,
        fault_record_to_dict,
    )

    rec = FaultRecord(kind="kill", dead_stages=(1,), dead_devices=(3,),
                      committed_tokens=7, action="degrade",
                      detail="device lost")
    assert fault_record_from_dict(fault_record_to_dict(rec)) == rec


def test_summary_dispatch(planner_result):
    from repro.serialization import summary_to_dict

    assert summary_to_dict(planner_result)["kind"] == "planner"
    with pytest.raises(TypeError):
        summary_to_dict(object())
