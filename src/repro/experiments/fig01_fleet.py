"""Fig. 1: production-fleet GPU distribution, utilization — and recovery.

Beyond the paper's two statistical panels (type shares, per-type monthly
utilization) this experiment now *acts* on the motivation: a slice of
the fleet's idle capacity is handed to the fleet scheduler
(:mod:`repro.fleet`), a seeded queue of offline serving jobs is placed
on it with the beam/lookahead allocator, and the reclaimed idle
GPU-hours are reported against the Fig. 1 baseline.
"""

from __future__ import annotations

from ..hardware.fleet import (
    monthly_utilization_series,
    sample_fleet,
    schedulable_inventory,
)
from .harness import ExperimentResult


def run(
    n_gpus: int = 10_000,
    months: int = 12,
    seed: int = 0,
    schedule: bool = True,
    n_jobs: int = 6,
    pool_gpus: int = 16,
) -> ExperimentResult:
    """Regenerate both panels, then reclaim idle hours by scheduling.

    ``schedule=False`` restores the statistics-only behaviour (no
    planner runs).
    """
    stats = sample_fleet(n_gpus=n_gpus, seed=seed)
    series = monthly_utilization_series(months=months, n_gpus=n_gpus, seed=seed)
    shares = stats.shares()
    idle = stats.idle_gpu_hours()
    rows = []
    for gpu in sorted(shares, key=shares.get, reverse=True):
        util = series[gpu]
        rows.append(
            [
                gpu,
                100.0 * shares[gpu],
                100.0 * stats.utilization[gpu],
                100.0 * min(util),
                100.0 * max(util),
                idle[gpu] / 1e3,
            ]
        )
    a100_util = stats.utilization["A100-40G"]
    tail_util = (
        stats.utilization["T4-16G"]
        + stats.utilization["P100-12G"]
        + stats.utilization["V100-32G"]
    ) / 3.0
    summary = {
        "a100_share": shares["A100-40G"],
        "a100_util": a100_util,
        "tail_util": tail_util,
        "util_gap_x": a100_util / tail_util,
    }
    notes = (
        "Paper's shape: A100s are a small slice yet run hot; the "
        "T4/P100/V100 tail idles — the capacity SplitQuant unlocks."
    )
    if schedule:
        summary.update(
            _schedule_summary(stats, seed=seed, n_jobs=n_jobs,
                              pool_gpus=pool_gpus)
        )
        notes += (
            "  Scheduling a seeded offline job queue onto a pool of "
            f"{pool_gpus} idle GPUs (beam allocator) reclaims "
            f"{summary['reclaimed_gpu_hours'] / 1e3:.0f} kGPUh/mo "
            f"({100 * summary['reclaimed_fraction']:.0f}% of idle)."
        )
    return ExperimentResult(
        name="fig01",
        title="Fleet GPU distribution, utilization and idle recovery",
        headers=[
            "gpu",
            "share_%",
            "util_%",
            "util_min_%",
            "util_max_%",
            "idle_kGPUh/mo",
        ],
        rows=rows,
        summary=summary,
        notes=notes,
    )


def _schedule_summary(stats, seed: int, n_jobs: int, pool_gpus: int):
    """Place a job queue on the idle slice; summarize the recovery."""
    from ..fleet import FleetScheduler, make_job_queue, simulate_schedule

    inventory = schedulable_inventory(stats, pool_gpus=pool_gpus)
    jobs = make_job_queue(n_jobs=n_jobs, seed=seed)
    scheduler = FleetScheduler(inventory, allocator="beam")
    sim = simulate_schedule(scheduler.schedule(jobs))
    recovery = sim.idle_recovery(stats)
    return {
        "jobs_scheduled": float(len(sim.jobs)),
        "fleet_makespan_s": sim.makespan_s,
        "fleet_aggregate_tokens_s": sim.throughput_tokens_s,
        "reclaimed_gpu_hours": recovery["total_reclaimed_gpu_hours"],
        "reclaimed_fraction": recovery["reclaimed_fraction"],
    }
