"""Carving the idle fleet into per-job heterogeneous GPU groups.

Three layers:

* :class:`PlannerPool` — the shared evaluation substrate.  One
  :class:`~repro.costmodel.latency.LatencyCostModel` is fitted per
  (model, KV bitwidth) over *every* GPU type in the inventory and shared
  by all group evaluations (the fleet-level analogue of PR-1's shared
  timing memo), the per-model indicator table is computed once, and
  ``plan()`` outcomes are memoized by (model, group, workload, SLO) so
  repeated proposals are free.  ``evaluate_many`` fans candidate groups
  out over a thread pool with a deterministic submission-order reduction.

* :class:`GreedyAllocator` — the bin-packing baseline: jobs in deadline
  order, each takes the feasible group with the best predicted
  tokens/s *per GPU* that still fits the uncommitted inventory
  (falling back to any group that fits the total pool, i.e. a later
  wave).

* :class:`BeamAllocator` — beam search with lookahead: partial
  assignment states are scored by the fleet makespan a deterministic
  list scheduler predicts (so grabbing a big fast group that starves
  later jobs is visible *before* committing), keeping the best ``width``
  states per job.  Greedy is the ``width=1, top_groups=1`` corner of the
  same search, so beam can only match or beat it on aggregate
  throughput for the objective it scores.
"""

from __future__ import annotations

import heapq
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PlannerConfig, PlannerResult, SplitQuantPlanner
from ..costmodel.energy import PriceBook, default_price_book
from ..costmodel.latency import LatencyCostModel
from ..hardware.cluster import ClusterSpec, make_cluster
from ..models import get_model
from ..obs import metrics, trace
from ..quant.sensitivity import normalized_indicator_table
from .jobs import FleetJob

__all__ = [
    "Assignment",
    "BeamAllocator",
    "GreedyAllocator",
    "GroupSpec",
    "PlannerPool",
    "enumerate_groups",
    "group_rate_usd_hr",
    "list_schedule",
]


def group_rate_usd_hr(group: "GroupSpec", price_book: PriceBook) -> float:
    """Rental rate of a whole group ($/hr at the book's tier prices)."""
    return sum(n * price_book.rate_usd_hr(g) for g, n in group.counts)


@dataclass(frozen=True)
class GroupSpec:
    """A proposed per-job GPU group: sorted ``(gpu_name, count)`` pairs."""

    counts: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("group must contain at least one GPU")
        if any(n <= 0 for _, n in self.counts):
            raise ValueError("group counts must be positive")
        if list(self.counts) != sorted(self.counts):
            raise ValueError("group counts must be sorted by GPU name")

    @property
    def total(self) -> int:
        return sum(n for _, n in self.counts)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)

    def fits(self, inventory: Dict[str, int]) -> bool:
        return all(inventory.get(g, 0) >= n for g, n in self.counts)

    def to_cluster(self, name: str, cross_node_link: str) -> ClusterSpec:
        """Materialize as a cluster (one node per GPU type, as Table III)."""
        return make_cluster(
            name, list(self.counts), cross_node_link=cross_node_link
        )

    def describe(self) -> str:
        return "+".join(f"{n}x{g}" for g, n in self.counts)


def enumerate_groups(
    inventory: Dict[str, int],
    max_gpus: int = 4,
    max_types: int = 2,
) -> Tuple[GroupSpec, ...]:
    """All candidate groups drawable from ``inventory``.

    Combinations of up to ``max_types`` GPU types with up to ``max_gpus``
    devices total, each type's count capped by the inventory.  Ordered
    deterministically (small groups first, then by name) so allocator
    tie-breaks are stable.
    """
    if max_gpus <= 0 or max_types <= 0:
        raise ValueError("max_gpus and max_types must be positive")
    types = sorted(g for g, n in inventory.items() if n > 0)
    seen = set()
    groups: List[GroupSpec] = []
    for k in range(1, min(max_types, len(types)) + 1):
        for combo in itertools.combinations(types, k):
            caps = [min(inventory[g], max_gpus) for g in combo]
            for counts in itertools.product(
                *[range(1, c + 1) for c in caps]
            ):
                if sum(counts) > max_gpus:
                    continue
                spec = GroupSpec(counts=tuple(zip(combo, counts)))
                if spec.counts not in seen:
                    seen.add(spec.counts)
                    groups.append(spec)
    groups.sort(key=lambda g: (g.total, g.counts))
    return tuple(groups)


@dataclass(frozen=True)
class Assignment:
    """One job bound to one group, with its SplitQuant plan.

    ``cluster`` pins the exact cluster the plan's device ids refer to;
    ``None`` means the canonical :meth:`GroupSpec.to_cluster`
    materialization (degraded assignments keep their reduced cluster so
    original device numbering survives a reclaimed GPU).

    ``sim_makespan_s`` is an optional simulated per-batch makespan from
    the batched pipeline evaluator (:meth:`PlannerPool.score_assignments`);
    when present, :attr:`lookahead_duration_s` uses it instead of the
    analytic cost-model prediction.
    """

    job: FleetJob
    group: GroupSpec
    result: PlannerResult
    cluster: Optional[ClusterSpec] = None
    sim_makespan_s: Optional[float] = None

    def materialize_cluster(self, cross_node_link: str) -> ClusterSpec:
        if self.cluster is not None:
            return self.cluster
        return self.group.to_cluster(
            f"fleet-{self.job.job_id}", cross_node_link
        )

    @property
    def batch_makespan_s(self) -> float:
        """Predicted serving latency of one batch."""
        return self.result.predicted_latency_s

    @property
    def duration_s(self) -> float:
        """Predicted runtime of the whole job on its group."""
        return self.job.num_batches * self.batch_makespan_s

    @property
    def lookahead_duration_s(self) -> float:
        """Job runtime using the simulated batch makespan when available."""
        if self.sim_makespan_s is not None:
            return self.job.num_batches * self.sim_makespan_s
        return self.duration_s

    @property
    def tokens_s(self) -> float:
        """Predicted output-token throughput while the job runs."""
        if self.duration_s <= 0:
            return 0.0
        return self.job.total_output_tokens / self.duration_s

    @property
    def tokens_s_per_gpu(self) -> float:
        return self.tokens_s / self.group.total

    def tokens_s_per_usd_hr(self, price_book: PriceBook) -> float:
        """Cost-aware packing metric: output tokens/s per rental $/hr."""
        rate = group_rate_usd_hr(self.group, price_book)
        if rate <= 0:
            return 0.0
        return self.tokens_s / rate

    def describe(self) -> str:
        return (
            f"{self.job.job_id} -> {self.group.describe()} "
            f"({self.tokens_s:.0f} tok/s, {self.duration_s:.0f}s)"
        )


def list_schedule(
    assignments: Sequence[Assignment],
    inventory: Dict[str, int],
    durations: Optional[Sequence[float]] = None,
) -> Tuple[Tuple[float, ...], Tuple[float, ...], float]:
    """Deterministic backfilling list scheduler.

    Jobs are considered in deadline order; at each event time every
    queued job whose group fits the free inventory starts (later jobs
    may backfill past a blocked head-of-line job).  Returns per-
    assignment ``(start_times, end_times, makespan)`` in the order of
    ``assignments``.  ``durations`` overrides the predicted
    :attr:`Assignment.duration_s` (the fleet simulator passes measured
    per-batch makespans).
    """
    if durations is None:
        durations = [a.duration_s for a in assignments]
    if len(durations) != len(assignments):
        raise ValueError("durations must match assignments")
    order = sorted(
        range(len(assignments)),
        key=lambda i: assignments[i].job.sort_key(),
    )
    for i in order:
        if not assignments[i].group.fits(inventory):
            raise ValueError(
                f"job {assignments[i].job.job_id}: group "
                f"{assignments[i].group.describe()} can never fit "
                f"inventory {inventory}"
            )
    free = dict(inventory)
    queued: List[int] = list(order)
    running: List[Tuple[float, int]] = []  # (end_time, index) min-heap
    start = [0.0] * len(assignments)
    end = [0.0] * len(assignments)
    now = 0.0
    while queued or running:
        started = []
        for i in queued:
            if assignments[i].group.fits(free):
                for g, n in assignments[i].group.counts:
                    free[g] -= n
                start[i] = now
                end[i] = now + durations[i]
                heapq.heappush(running, (end[i], i))
                started.append(i)
        queued = [i for i in queued if i not in started]
        if not queued:
            break
        if not running:  # pragma: no cover - guarded by fits() above
            raise RuntimeError("queued jobs but nothing running")
        now, i = heapq.heappop(running)
        for g, n in assignments[i].group.counts:
            free[g] += n
    return tuple(start), tuple(end), max(end) if end else 0.0


#: Distinguishes "persistent cache has no entry" from a cached infeasible
#: (``None``) outcome.
_PMISS = object()


class PlannerPool:
    """Shared, memoized per-group planner evaluation.

    One cost model per (model, KV bitwidth) fitted over all inventory GPU
    types, one indicator table per model, and one memoized ``plan()``
    outcome per (model, group, workload, SLO) — shared across every
    allocator probe in a scheduling run.
    """

    def __init__(
        self,
        inventory: Dict[str, int],
        config: PlannerConfig = PlannerConfig(),
        cross_node_link: str = "eth-800g",
        parallelism: int = 1,
    ) -> None:
        if not inventory or all(n <= 0 for n in inventory.values()):
            raise ValueError("inventory must contain at least one GPU")
        self.inventory = {g: n for g, n in inventory.items() if n > 0}
        self.config = config
        self.cross_node_link = cross_node_link
        self.parallelism = max(1, parallelism)
        # Exact and DP plans for the same (job, group) must never collide
        # in the memo: the full config (tier included) keys every entry.
        from dataclasses import asdict

        self._config_key = tuple(
            (k, repr(v)) for k, v in sorted(asdict(config).items())
        )
        self._cost_models: Dict[Tuple[str, int], LatencyCostModel] = {}
        self._omegas: Dict[str, np.ndarray] = {}
        self._plans: Dict[tuple, Optional[Assignment]] = {}
        self._sim_scores: Dict[tuple, float] = {}
        #: Pool-level observability counters.
        self.evaluations = 0
        self.cache_hits = 0
        self.infeasible = 0
        self.sim_scored = 0

    # -- shared memos --------------------------------------------------

    def _omega(self, model: str) -> np.ndarray:
        if model not in self._omegas:
            self._omegas[model] = normalized_indicator_table(
                get_model(model), self.config.bit_choices
            )
        return self._omegas[model]

    def _cost_model(self, model: str) -> LatencyCostModel:
        """The (model, bit_kv) cost model, fitted over *all* pool types."""
        key = (model, self.config.bit_kv)
        if key not in self._cost_models:
            spec = get_model(model)
            cm = LatencyCostModel(spec, bit_kv=self.config.bit_kv)
            from ..hardware.gpus import get_gpu

            cm.fit(
                [get_gpu(g) for g in sorted(self.inventory)],
                self.config.bit_choices,
            )
            self._cost_models[key] = cm
        return self._cost_models[key]

    def _job_config(self, job: FleetJob, omega: np.ndarray) -> PlannerConfig:
        """The job's planner config (quality SLO -> hard budget)."""
        if job.min_uniform_bits is None:
            return self.config
        bits = job.min_uniform_bits
        if bits not in self.config.bit_choices:
            raise ValueError(
                f"job {job.job_id}: min_uniform_bits={bits} not in "
                f"bit_choices {self.config.bit_choices}"
            )
        k = list(self.config.bit_choices).index(bits)
        from dataclasses import replace

        return replace(
            self.config, quality_budget=float(omega[:, k].sum())
        )

    # -- persistent plan cache -----------------------------------------

    def _persistent_key(self, key: tuple) -> Optional[str]:
        """Content hash for one memo key, or ``None`` when caching is off.

        Covers everything the evaluation depends on beyond the in-memory
        memo key: the planner config, the cross-node link, and the set of
        inventory GPU types (the shared cost model is fitted over all of
        them), plus the code-version salt.
        """
        from ..cache import cache_key, code_version_salt, default_cache
        from dataclasses import asdict

        if default_cache() is None:
            return None
        # The trailing config fingerprint is only for the in-memory memo;
        # the persistent key hashes the full config dict below.
        model, counts, wl, min_bits = key[:4]
        return cache_key(
            {
                "kind": "fleet_plan",
                "salt": code_version_salt(),
                "model": model,
                "group": list(list(c) for c in counts),
                "workload": list(wl),
                "min_uniform_bits": min_bits,
                "config": asdict(self.config),
                "cross_node_link": self.cross_node_link,
                "inventory_types": sorted(self.inventory),
            }
        )

    def _persistent_get(self, key: tuple):
        """Stored :class:`PlannerResult` (or None for infeasible), else
        the miss sentinel ``_PMISS``."""
        from ..cache import MISS, default_cache
        from ..serialization import planner_result_from_dict

        cache = default_cache()
        if cache is None:
            return _PMISS
        pkey = self._persistent_key(key)
        hit = cache.get("fleet_plan", pkey)
        if hit is MISS:
            return _PMISS
        if hit is None or hit.get("result") is None:
            return None
        try:
            result = planner_result_from_dict(hit["result"])
        except (KeyError, ValueError, TypeError):
            cache.evict("fleet_plan", pkey)
            return _PMISS
        # Trace serialization rounds floats to 12 significant digits;
        # allocator decisions must be bit-identical warm or cold, so the
        # exact top-level scores are stored alongside and restored here.
        from dataclasses import replace

        exact = hit.get("exact", {})
        if exact:
            result = replace(
                result,
                predicted_latency_s=float(exact["predicted_latency_s"]),
                predicted_quality=float(exact["predicted_quality"]),
                throughput_tokens_s=float(exact["throughput_tokens_s"]),
                solve_time_s=float(exact["solve_time_s"]),
            )
        return result

    def _persistent_put(self, key: tuple, assignment: Optional[Assignment]) -> None:
        from ..cache import default_cache
        from ..serialization import planner_result_to_dict

        cache = default_cache()
        if cache is None:
            return
        pkey = self._persistent_key(key)
        if assignment is None:
            cache.put("fleet_plan", pkey, {"result": None})
            return
        r = assignment.result
        cache.put(
            "fleet_plan",
            pkey,
            {
                "result": planner_result_to_dict(r),
                "exact": {
                    "predicted_latency_s": r.predicted_latency_s,
                    "predicted_quality": r.predicted_quality,
                    "throughput_tokens_s": r.throughput_tokens_s,
                    "solve_time_s": r.solve_time_s,
                },
            },
        )

    # -- evaluation ----------------------------------------------------

    def evaluate(self, job: FleetJob, group: GroupSpec) -> Optional[Assignment]:
        """Plan ``job`` on ``group``; ``None`` when nothing fits.

        Memoized: two jobs with the same (model, workload, SLO) probing
        the same group composition share one planner run.
        """
        wl = job.workload
        key = (
            job.model,
            group.counts,
            (wl.batch, wl.prompt_len, wl.output_len, wl.chunk_tokens,
             wl.reserve_output_len),
            job.min_uniform_bits,
            self._config_key,
        )
        if key in self._plans:
            self.cache_hits += 1
            if trace.enabled:
                metrics.counter("fleet.plan_cache_hits").inc()
            cached = self._plans[key]
            if cached is None:
                return None
            return Assignment(job=job, group=group, result=cached.result)
        persisted = self._persistent_get(key)
        if persisted is not _PMISS:
            assignment = (
                None
                if persisted is None
                else Assignment(job=job, group=group, result=persisted)
            )
            self._plans[key] = assignment
            self.cache_hits += 1
            if trace.enabled:
                metrics.counter("fleet.plan_cache_hits").inc()
            return assignment
        with trace.span(
            "fleet.plan_group",
            job=job.job_id,
            model=job.model,
            group=group.describe(),
        ):
            assignment = self._evaluate_uncached(job, group)
        self._plans[key] = assignment
        self._persistent_put(key, assignment)
        self.evaluations += 1
        if trace.enabled:
            metrics.counter("fleet.groups_evaluated").inc()
            if assignment is None:
                metrics.counter("fleet.groups_infeasible").inc()
        if assignment is None:
            self.infeasible += 1
        return assignment

    def _evaluate_uncached(
        self, job: FleetJob, group: GroupSpec
    ) -> Optional[Assignment]:
        spec = get_model(job.model)
        omega = self._omega(job.model)
        cluster = group.to_cluster(
            f"fleet-{job.model}-{group.describe()}", self.cross_node_link
        )
        planner = SplitQuantPlanner(
            spec,
            cluster,
            self._job_config(job, omega),
            cost_model=self._cost_model(job.model),
            omega_layers=omega,
        )
        result = planner.plan(job.workload)
        if result is None or result.predicted_latency_s <= 0:
            return None
        return Assignment(job=job, group=group, result=result)

    def evaluate_many(
        self,
        pairs: Sequence[Tuple[FleetJob, GroupSpec]],
        attach_sim: bool = False,
    ) -> List[Optional[Assignment]]:
        """Evaluate candidate (job, group) pairs, possibly in parallel.

        Results come back in submission order regardless of completion
        order, so allocator decisions are deterministic for any
        ``parallelism``.  With ``attach_sim`` the feasible assignments
        are additionally scored through one batched pipeline-simulator
        sweep and returned with :attr:`Assignment.sim_makespan_s` set.
        """
        if self.parallelism == 1 or len(pairs) <= 1:
            results = [self.evaluate(j, g) for j, g in pairs]
        else:
            # Warm the shared memos serially first: cost-model fits and
            # indicator tables are racy to build twice and cheap to prime.
            for model in {j.model for j, _ in pairs}:
                self._cost_model(model)
                self._omega(model)
            with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                futures = [
                    pool.submit(self.evaluate, j, g) for j, g in pairs
                ]
                results = [f.result() for f in futures]
        if attach_sim:
            feas = [i for i, a in enumerate(results) if a is not None]
            scores = self.score_assignments([results[i] for i in feas])
            for i, score in zip(feas, scores):
                if score is not None:
                    results[i] = replace(results[i], sim_makespan_s=score)
        return results

    def _sim_key(self, assignment: Assignment) -> tuple:
        wl = assignment.job.workload
        return (
            assignment.job.model,
            assignment.group.counts,
            (wl.batch, wl.prompt_len, wl.output_len, wl.chunk_tokens,
             wl.reserve_output_len),
            assignment.job.min_uniform_bits,
            assignment.cluster,
            self._config_key,
        )

    def score_assignments(
        self, assignments: Sequence[Assignment]
    ) -> List[Optional[float]]:
        """Simulated per-batch makespans, one batched fastsim sweep.

        Every uncached assignment's plan is stacked into a single
        :func:`repro.pipeline.batchsim.evaluate_plans` call; results are
        memoized alongside the plan memo so beam probes that revisit a
        (job, group) pair are free.  ``None`` marks an assignment the
        batched evaluator could not score (the caller keeps the analytic
        duration).
        """
        out: List[Optional[float]] = [None] * len(assignments)
        pending: List[Tuple[int, tuple, Assignment]] = []
        for i, a in enumerate(assignments):
            key = self._sim_key(a)
            if key in self._sim_scores:
                out[i] = self._sim_scores[key]
            else:
                pending.append((i, key, a))
        if not pending:
            return out
        from ..pipeline.batchsim import PlanCase, evaluate_plans

        cases = [
            PlanCase(
                plan=a.result.plan,
                cluster=a.materialize_cluster(self.cross_node_link),
                spec=get_model(a.job.model),
                workload=a.job.workload,
            )
            for _, _, a in pending
        ]
        try:
            results = evaluate_plans(cases)
        except (ValueError, RuntimeError):  # pragma: no cover - defensive
            return out
        for (i, key, _), res in zip(pending, results):
            self._sim_scores[key] = res.makespan_s
            out[i] = res.makespan_s
        self.sim_scored += len(pending)
        if trace.enabled:
            metrics.counter("fleet.batchsim_scored").inc(len(pending))
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "infeasible": self.infeasible,
            "sim_scored": self.sim_scored,
        }


@dataclass
class _BeamState:
    """One partial allocation in the beam."""

    assignments: List[Assignment] = field(default_factory=list)

    def score(
        self,
        inventory: Dict[str, int],
        price_book: Optional[PriceBook] = None,
    ) -> Tuple[float, ...]:
        """(makespan, -aggregate tokens/s): lexicographically smaller wins.

        With a ``price_book`` (the cost objective) the allocated rental
        dollars slot in between: among equal-makespan states the one
        tying up cheaper GPU-hours wins.
        """
        if not self.assignments:
            return (0.0, 0.0) if price_book is None else (0.0, 0.0, 0.0)
        if any(a.sim_makespan_s is not None for a in self.assignments):
            _, _, makespan = list_schedule(
                self.assignments,
                inventory,
                durations=[a.lookahead_duration_s for a in self.assignments],
            )
        else:
            _, _, makespan = list_schedule(self.assignments, inventory)
        total_tokens = sum(a.job.total_output_tokens for a in self.assignments)
        agg = total_tokens / makespan if makespan > 0 else 0.0
        if price_book is None:
            return (makespan, -agg)
        usd = sum(
            group_rate_usd_hr(a.group, price_book)
            * (a.lookahead_duration_s / 3600.0)
            for a in self.assignments
        )
        return (makespan, usd, -agg)


class GreedyAllocator:
    """Deadline-ordered bin packing, best tokens/s-per-GPU group first.

    ``objective="cost"`` swaps the packing metric for tokens/s per
    rental $/hr (:meth:`Assignment.tokens_s_per_usd_hr`), preferring
    cheap — e.g. spot-priced — GPU types at equal speed.
    """

    name = "greedy"

    def __init__(
        self,
        max_gpus: int = 4,
        max_types: int = 2,
        objective: str = "throughput",
        price_book: Optional[PriceBook] = None,
    ) -> None:
        if objective not in ("throughput", "cost"):
            raise ValueError(
                f"unknown allocator objective {objective!r} "
                "(expected 'throughput' or 'cost')"
            )
        self.max_gpus = max_gpus
        self.max_types = max_types
        self.objective = objective
        self.price_book = (
            default_price_book() if price_book is None else price_book
        )

    def _pick(self, feasible: Sequence[Assignment]) -> Assignment:
        if self.objective == "cost":
            return max(
                feasible,
                key=lambda a: (
                    a.tokens_s_per_usd_hr(self.price_book),
                    -a.group.total,
                ),
            )
        return max(
            feasible,
            key=lambda a: (a.tokens_s_per_gpu, -a.group.total),
        )

    def allocate(
        self, jobs: Sequence[FleetJob], pool: PlannerPool
    ) -> List[Assignment]:
        inventory = dict(pool.inventory)
        groups = enumerate_groups(
            pool.inventory, max_gpus=self.max_gpus, max_types=self.max_types
        )
        out: List[Assignment] = []
        free = dict(inventory)
        for job in sorted(jobs, key=FleetJob.sort_key):
            # Prefer groups that fit the *uncommitted* inventory (this
            # wave); fall back to anything that fits the total pool.
            for budget in (free, inventory):
                candidates = [g for g in groups if g.fits(budget)]
                evaluated = pool.evaluate_many(
                    [(job, g) for g in candidates]
                )
                feasible = [a for a in evaluated if a is not None]
                if feasible:
                    break
            if not feasible:
                continue  # job is unschedulable on this pool
            best = self._pick(feasible)
            if trace.enabled:
                metrics.counter("fleet.alloc.greedy_commits").inc()
            out.append(best)
            if best.group.fits(free):
                for g, n in best.group.counts:
                    free[g] -= n
        return out


class BeamAllocator:
    """Beam search over per-job group choices with makespan lookahead."""

    name = "beam"

    def __init__(
        self,
        width: int = 4,
        top_groups: int = 3,
        max_gpus: int = 4,
        max_types: int = 2,
        sim_lookahead: bool = False,
        objective: str = "throughput",
        price_book: Optional[PriceBook] = None,
    ) -> None:
        if width <= 0 or top_groups <= 0:
            raise ValueError("width and top_groups must be positive")
        if objective not in ("throughput", "cost"):
            raise ValueError(
                f"unknown allocator objective {objective!r} "
                "(expected 'throughput' or 'cost')"
            )
        self.width = width
        self.top_groups = top_groups
        self.max_gpus = max_gpus
        self.max_types = max_types
        #: Score beam states with simulated (batched fastsim) batch
        #: makespans instead of the analytic cost-model prediction.
        self.sim_lookahead = sim_lookahead
        #: ``"cost"`` makes beam states tie-break on allocated rental
        #: dollars and seeds the beam with the cheapest-per-token group.
        self.objective = objective
        self.price_book = (
            default_price_book() if price_book is None else price_book
        )

    @property
    def _score_book(self) -> Optional[PriceBook]:
        return self.price_book if self.objective == "cost" else None

    def _expansions(
        self, job: FleetJob, pool: PlannerPool, groups: Sequence[GroupSpec]
    ) -> List[Assignment]:
        """The job's candidate assignments: top-k by tokens/s + frugal."""
        evaluated = pool.evaluate_many(
            [(job, g) for g in groups], attach_sim=self.sim_lookahead
        )
        feasible = [a for a in evaluated if a is not None]
        if not feasible:
            return []
        by_speed = sorted(
            feasible, key=lambda a: (-a.tokens_s, a.group.total, a.group.counts)
        )
        picks = by_speed[: self.top_groups]
        # Always include the most GPU-frugal feasible group so lookahead
        # can trade per-job speed for fleet-level packing.
        frugal = min(
            feasible, key=lambda a: (a.group.total, -a.tokens_s, a.group.counts)
        )
        if frugal not in picks:
            picks.append(frugal)
        # And the greedy pick, so greedy's trajectory is always in the beam.
        greedy = max(
            feasible, key=lambda a: (a.tokens_s_per_gpu, -a.group.total)
        )
        if greedy not in picks:
            picks.append(greedy)
        if self.objective == "cost":
            thrifty = max(
                feasible,
                key=lambda a: (
                    a.tokens_s_per_usd_hr(self.price_book),
                    -a.group.total,
                ),
            )
            if thrifty not in picks:
                picks.append(thrifty)
        return picks

    def allocate(
        self, jobs: Sequence[FleetJob], pool: PlannerPool
    ) -> List[Assignment]:
        inventory = dict(pool.inventory)
        groups = enumerate_groups(
            pool.inventory, max_gpus=self.max_gpus, max_types=self.max_types
        )
        beam = [_BeamState()]
        for job in sorted(jobs, key=FleetJob.sort_key):
            picks = self._expansions(job, pool, groups)
            if not picks:
                continue  # unschedulable job: every state skips it
            nxt: List[Tuple[Tuple[float, ...], int, _BeamState]] = []
            for state in beam:
                for a in picks:
                    cand = _BeamState(assignments=state.assignments + [a])
                    nxt.append(
                        (cand.score(inventory, self._score_book),
                         len(nxt), cand)
                    )
            nxt.sort(key=lambda t: (t[0], t[1]))
            beam = [s for _, _, s in nxt[: self.width]]
            if trace.enabled:
                metrics.counter("fleet.alloc.beam_expansions").inc(len(nxt))
        # Never regress the baseline: the greedy allocation (evaluated
        # from the same memoized pool, so nearly free) competes as one
        # more final state under the beam's own objective.
        greedy_assignments = GreedyAllocator(
            max_gpus=self.max_gpus,
            max_types=self.max_types,
            objective=self.objective,
            price_book=self.price_book,
        ).allocate(jobs, pool)
        if self.sim_lookahead and greedy_assignments:
            scores = pool.score_assignments(greedy_assignments)
            greedy_assignments = [
                a if s is None else replace(a, sim_makespan_s=s)
                for a, s in zip(greedy_assignments, scores)
            ]
        greedy_state = _BeamState(assignments=greedy_assignments)
        finalists = beam + [greedy_state]
        best = min(
            enumerate(finalists),
            key=lambda t: (t[1].score(inventory, self._score_book), t[0]),
        )[1]
        if trace.enabled:
            metrics.counter("fleet.alloc.beam_commits").inc(
                len(best.assignments)
            )
        return best.assignments
