"""Tests for workload distributions, batch synthesis and specs."""

import numpy as np
import pytest

from repro.models import get_model
from repro.workloads import (
    BatchWorkload,
    WorkloadConfig,
    cnn_dailymail_lengths,
    filter_by_context,
    length_histogram,
    loogle_lengths,
    representative_workload,
    sample_dataset,
    sharegpt_lengths,
    synthesize_batches,
)


def test_batch_workload_chunking():
    wl = BatchWorkload(batch=8, prompt_len=5000, output_len=100,
                       chunk_tokens=2048)
    assert wl.kappa == 3
    assert wl.chunk_len == 1667
    assert wl.context_len == 5100
    assert wl.total_output_tokens == 800


def test_batch_workload_short_prompt_single_chunk():
    wl = BatchWorkload(batch=8, prompt_len=512, output_len=64)
    assert wl.kappa == 1
    assert wl.chunk_len == 512


def test_batch_workload_validation():
    with pytest.raises(ValueError):
        BatchWorkload(batch=0, prompt_len=10, output_len=10)
    with pytest.raises(ValueError):
        BatchWorkload(batch=1, prompt_len=0, output_len=10)
    with pytest.raises(ValueError):
        BatchWorkload(batch=1, prompt_len=10, output_len=10, chunk_tokens=0)


def test_cnn_statistics_match_paper():
    s = cnn_dailymail_lengths(5000, seed=0)
    assert 700 < s.mean_prompt() < 900
    assert 270 < s.mean_output() < 330  # paper: ~299 output tokens


def test_loogle_statistics_match_paper():
    s = loogle_lengths(5000, seed=0)
    assert 80_000 < s.mean_prompt() < 115_000  # paper: avg ~97k
    assert 50 < s.mean_output() < 80  # paper: avg ~63


def test_sharegpt_bucket_shares():
    s = sharegpt_lengths(20_000, seed=0)
    hist = length_histogram(s.prompt_lens)
    assert abs(hist["1-128"] - 0.1420) < 0.02
    assert abs(hist["129-512"] - 0.2052) < 0.02
    assert abs(hist[">2048"] - 0.3651) < 0.02


def test_sample_dataset_dispatch():
    s = sample_dataset("cnn_dailymail", 10, seed=1)
    assert s.n == 10
    with pytest.raises(KeyError):
        sample_dataset("imagenet", 10)


def test_deterministic_sampling():
    a = sample_dataset("loogle", 100, seed=5)
    b = sample_dataset("loogle", 100, seed=5)
    assert np.array_equal(a.prompt_lens, b.prompt_lens)


def test_filter_by_context():
    spec = get_model("opt-13b")  # 2048 context
    s = loogle_lengths(500, seed=0)  # all way beyond 2048
    kept = filter_by_context(s, spec)
    assert kept.n == 0
    c = cnn_dailymail_lengths(500, seed=0)
    kept_c = filter_by_context(c, spec)
    assert 0 < kept_c.n <= 500
    assert np.all(
        kept_c.prompt_lens + kept_c.output_lens <= spec.max_position_embeddings
    )


def test_synthesize_batches_shapes():
    spec = get_model("qwen2.5-7b")
    cfg = WorkloadConfig(dataset="cnn_dailymail", batch_size=64, seed=0)
    batches = synthesize_batches(spec, cfg, n_requests=256)
    assert len(batches) >= 3
    for b in batches:
        assert b.batch <= 64
        assert b.prompt_len >= 16
        assert b.chunk_tokens == 2048


def test_synthesize_raises_when_nothing_fits():
    spec = get_model("opt-13b")
    cfg = WorkloadConfig(dataset="loogle", batch_size=8, seed=0)
    with pytest.raises(ValueError, match="fits"):
        synthesize_batches(spec, cfg, n_requests=64)


def test_representative_workload_is_median_shaped():
    spec = get_model("qwen2.5-7b")
    cfg = WorkloadConfig(dataset="cnn_dailymail", batch_size=32, seed=0)
    wl = representative_workload(spec, cfg, n_requests=512)
    assert wl.batch == 32
    assert 500 < wl.prompt_len < 2048
    assert 100 < wl.output_len < 600


def test_length_histogram_sums_to_one():
    s = sharegpt_lengths(1000, seed=2)
    hist = length_histogram(s.prompt_lens)
    assert sum(hist.values()) == pytest.approx(1.0)
