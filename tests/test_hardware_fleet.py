"""Tests for the synthetic production-fleet statistics (Fig. 1)."""

import pytest

from repro.hardware.fleet import (
    FLEET_SHARES,
    UTILIZATION_MEANS,
    monthly_utilization_series,
    sample_fleet,
)


def test_shares_sum_to_one():
    assert abs(sum(FLEET_SHARES.values()) - 1.0) < 1e-9


def test_sample_counts_match_shares():
    stats = sample_fleet(n_gpus=20_000, seed=0)
    shares = stats.shares()
    for gpu, expected in FLEET_SHARES.items():
        assert abs(shares[gpu] - expected) < 0.02


def test_total_preserved():
    stats = sample_fleet(n_gpus=5_000, seed=1)
    assert stats.total == 5_000


def test_utilization_near_means():
    stats = sample_fleet(n_gpus=20_000, seed=2)
    for gpu, mean in UTILIZATION_MEANS.items():
        assert abs(stats.utilization[gpu] - mean) < 0.05


def test_a100_runs_hotter_than_tail():
    """The Fig. 1(b) observation motivating the paper."""
    stats = sample_fleet(seed=3)
    a100 = stats.utilization["A100-40G"]
    for gpu in ("T4-16G", "P100-12G", "V100-32G"):
        assert a100 > stats.utilization[gpu] + 0.2


def test_idle_hours_dominated_by_tail():
    stats = sample_fleet(seed=4)
    idle = stats.idle_gpu_hours()
    tail = idle["T4-16G"] + idle["P100-12G"] + idle["V100-32G"]
    assert tail > 10 * idle["A100-40G"]


def test_deterministic_for_seed():
    a = sample_fleet(n_gpus=1000, seed=7)
    b = sample_fleet(n_gpus=1000, seed=7)
    assert a.counts == b.counts
    assert a.utilization == b.utilization


def test_monthly_series_shape():
    series = monthly_utilization_series(months=6, n_gpus=2000, seed=0)
    assert set(series) == set(FLEET_SHARES)
    assert all(len(v) == 6 for v in series.values())


def test_invalid_inputs_raise():
    with pytest.raises(ValueError):
        sample_fleet(n_gpus=0)
    with pytest.raises(ValueError):
        monthly_utilization_series(months=0)
