"""The *Het* baseline (Sec. VI-A): heterogeneity-aware, quantization-naive.

Following the heterogeneous-pipeline line of work (Hu et al. [12],
HexGen [46]), Het enumerates parallelism schemes and balances the layer
partition against per-device speed — but it is *phase-unaware* (it
balances on single-pass/prefill cost, as encoder-oriented partitioners do)
and applies one uniform precision, lowered from FP16 until the model fits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..costmodel.latency import LatencyCostModel
from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..pipeline.simulator import check_plan_memory
from ..pipeline.stage import CostModelTiming, MemoizedTiming
from ..plan import ExecutionPlan, StagePlan
from ..simgpu.memory import OutOfMemoryError
from ..workloads.spec import BatchWorkload
from ..core.costs import build_problem
from ..core.enumeration import candidate_orderings
from .uniform import BaselineResult, default_microbatch


def proportional_split(
    num_layers: int, speeds: Sequence[float]
) -> List[int]:
    """Layers per stage proportional to stage speed, all stages non-empty.

    ``speeds`` are per-stage layers-per-second (higher = more layers).
    """
    n = len(speeds)
    if num_layers < n:
        raise ValueError("fewer layers than stages")
    w = np.asarray(speeds, dtype=float)
    w = np.maximum(w, 1e-12)
    raw = w / w.sum() * num_layers
    counts = np.maximum(np.floor(raw).astype(int), 1)
    # Distribute the remainder to the largest fractional parts.
    while counts.sum() < num_layers:
        frac = raw - counts
        counts[int(np.argmax(frac))] += 1
    while counts.sum() > num_layers:
        over = counts - 1
        candidates = np.where(over > 0)[0]
        frac = raw - counts
        idx = candidates[int(np.argmin(frac[candidates]))]
        counts[idx] -= 1
    return counts.tolist()


def repair_partition_for_memory(
    counts: Sequence[int],
    layer_bytes: int,
    capacities: Sequence[float],
    max_iters: int = 512,
) -> Optional[List[int]]:
    """Shift boundary layers off over-capacity stages (HexGen-style repair).

    ``capacities`` are per-stage byte budgets net of non-layer overheads.
    Returns ``None`` when no contiguous assignment can fit.
    """
    counts = list(counts)
    caps = [int(c // layer_bytes) for c in capacities]  # max layers per stage
    if sum(max(c, 0) for c in caps) < sum(counts):
        return None
    for _ in range(max_iters):
        over = [j for j, c in enumerate(counts) if c > caps[j]]
        if not over:
            return counts
        j = over[0]
        # Push one boundary layer toward the side with more slack.
        left_slack = caps[j - 1] - counts[j - 1] if j > 0 else -1
        right_slack = (
            caps[j + 1] - counts[j + 1] if j + 1 < len(counts) else -1
        )
        if left_slack <= 0 and right_slack <= 0:
            # Neighbors full: cascade one layer outward anyway; it will be
            # repaired (or declared impossible) on later iterations.
            if j + 1 < len(counts):
                counts[j] -= 1
                counts[j + 1] += 1
            elif j > 0:
                counts[j] -= 1
                counts[j - 1] += 1
            else:
                return None
        elif right_slack >= left_slack:
            counts[j] -= 1
            counts[j + 1] += 1
        else:
            counts[j] -= 1
            counts[j - 1] += 1
        if min(counts) < 1:
            return None
    return None


def plan_het_baseline(
    spec: ModelSpec,
    cluster: ClusterSpec,
    workload: BatchWorkload,
    cost_model: LatencyCostModel,
    bit_choices: Sequence[int] = (3, 4, 8, 16),
    microbatch: Optional[int] = None,
    max_orderings: int = 12,
    enable_tp: bool = True,
    bit_kv: int = 16,
) -> Optional[BaselineResult]:
    """Best workload-balanced uniform-precision plan across orderings."""
    best: Optional[Tuple[float, ExecutionPlan, int]] = None
    # One timing memo across all orderings: identical (gpu, tp) stage
    # groups recur between orderings, so unit layer costs are shared.
    timing = MemoizedTiming(
        CostModelTiming(cost_model=cost_model, spec=spec)
    )
    omega_zero = np.zeros((spec.num_layers, len(bit_choices)))
    for ordering in candidate_orderings(
        cluster, enable_tp=enable_tp, max_orderings=max_orderings
    ):
        mb = microbatch or default_microbatch(workload.batch, len(ordering))
        # The planning problem carries *every* bitwidth's cost/memory
        # tensors, so it is loop-invariant in `bits`: build it once per
        # ordering instead of once per (ordering, bits).
        problem = build_problem(
            spec,
            cluster,
            ordering,
            workload,
            cost_model,
            omega_layers=omega_zero,
            eta=mb,
            xi=mb,
            bit_choices=tuple(sorted(bit_choices)),
            group_size=1,
            bit_kv=bit_kv,
            timing=timing,
        )
        for bits in sorted(bit_choices, reverse=True):
            k = tuple(sorted(bit_choices)).index(bits)
            # Phase-unaware balancing: split on prefill speed only.
            speeds = [1.0 / max(problem.l_pre[0, j, k], 1e-12) for j in
                      range(problem.n_stages)]
            try:
                counts = proportional_split(spec.num_layers, speeds)
            except ValueError:
                continue
            layer_bytes = problem.mem[0, k]
            repaired = repair_partition_for_memory(
                counts, int(layer_bytes), problem.capacity.tolist()
            )
            if repaired is None:
                continue
            counts = repaired
            stages: List[StagePlan] = []
            start = 0
            for j, (sg, cnt) in enumerate(zip(ordering, counts)):
                stages.append(
                    StagePlan(
                        device_ids=sg.device_ids,
                        gpu_name=sg.gpu.name,
                        layer_start=start,
                        layer_bits=(bits,) * cnt,
                    )
                )
                start += cnt
            plan = ExecutionPlan(
                model_name=spec.name,
                stages=tuple(stages),
                prefill_microbatch=mb,
                decode_microbatch=mb,
                bit_kv=bit_kv,
            )
            try:
                check_plan_memory(plan, cluster, spec, workload)
            except OutOfMemoryError:
                continue
            assign_stage = [j for j, c in enumerate(counts) for _ in range(c)]
            latency = problem.latency_estimate(
                assign_stage, [bits] * spec.num_layers
            )
            if best is None or latency < best[0]:
                best = (latency, plan, bits)
            break  # highest feasible precision found for this ordering
    if best is None:
        return None
    _, plan, bits = best
    return BaselineResult(plan=plan, bits=bits)
