"""The *adabits* baseline (Sec. VI-H): pure adaptive quantization.

Adaptive per-layer bitwidths chosen for quality alone (the simplified ILP
without latency terms), with a default device ordering and framework
micro-batching — no partition / micro-batch co-design.  SplitQuant's gains
over adabits isolate the value of joint optimization (Fig. 12).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..costmodel.latency import LatencyCostModel
from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..plan import ExecutionPlan
from ..quant.sensitivity import normalized_indicator_table
from ..workloads.spec import BatchWorkload
from ..core.costs import StageGroup, build_problem
from ..core.ilp import solve_adabits
from ..core.planner import solution_to_plan
from .uniform import default_microbatch


def plan_adabits_baseline(
    spec: ModelSpec,
    cluster: ClusterSpec,
    workload: BatchWorkload,
    cost_model: LatencyCostModel,
    bit_choices: Sequence[int] = (3, 4, 8, 16),
    quality_budget: Optional[float] = None,
    microbatch: Optional[int] = None,
    group_size: int = 2,
    time_limit_s: float = 60.0,
    bit_kv: int = 16,
) -> Optional[ExecutionPlan]:
    """Quality-optimal bitwidths on the default topology; ``None`` if OOM."""
    mb = microbatch or default_microbatch(workload.batch)
    ordering = tuple(
        StageGroup(device_ids=(d.device_id,), gpu=d.gpu) for d in cluster.devices
    )
    omega = normalized_indicator_table(spec, bit_choices)
    problem = build_problem(
        spec,
        cluster,
        ordering,
        workload,
        cost_model,
        omega,
        eta=mb,
        xi=mb,
        bit_choices=tuple(bit_choices),
        group_size=group_size,
        bit_kv=bit_kv,
    )
    sol = solve_adabits(
        problem, quality_budget=quality_budget, time_limit_s=time_limit_s
    )
    if sol is None:
        return None
    return solution_to_plan(
        spec, ordering, problem.group_sizes, sol, mb, mb, bit_kv
    )
