#!/usr/bin/env python
"""Run a real model through the distributed runtime — not a simulation.

TinyLM is an actual numpy decoder-only transformer.  This demo:

1. builds a mixed-precision pipeline plan by hand (two stages, different
   bitwidths per stage, like a SplitQuant plan would assign),
2. executes generation through the threaded master/worker runtime
   (embedding and LM head on the master, decoder layers on stage workers,
   KV caches held per stage),
3. verifies the pipeline output is bit-exact against single-process
   generation on the same quantized weights,
4. measures the *real* quality cost of the quantization choice.

Run:  python examples/tinylm_pipeline_demo.py
"""

import numpy as np

from repro.plan import ExecutionPlan, StagePlan
from repro.quality import (
    TinyLM,
    TinyLMConfig,
    build_eval_corpora,
)
from repro.runtime import PipelineEngine, reference_generate


def main() -> None:
    model = TinyLM(
        TinyLMConfig(vocab=160, layers=6, hidden=64, ffn=192, heads=4,
                     max_seq=192, seed=0)
    )
    print(f"TinyLM: {model.config.layers} layers, hidden "
          f"{model.config.hidden}, vocab {model.config.vocab}\n")

    # A SplitQuant-style plan: the "small GPU" stage runs 4-bit, the
    # "big GPU" stage keeps FP16 where memory would allow it.
    plan = ExecutionPlan(
        model_name="tinylm",
        stages=(
            StagePlan((0,), "T4-16G", 0, (4, 4, 8)),
            StagePlan((1,), "V100-32G", 3, (16, 16, 16)),
        ),
        prefill_microbatch=2,
        decode_microbatch=2,
    )
    print("plan:", plan.describe(), "\n")

    rng = np.random.default_rng(0)
    prompts = rng.integers(0, model.config.vocab, size=(6, 16))

    with PipelineEngine(model, plan) as engine:
        result = engine.generate(prompts, n_tokens=12)

    print(f"generated {result.tokens.shape[0]} x 12 tokens")
    print(f"  prefill {result.prefill_time_s * 1e3:.1f} ms, "
          f"decode {result.decode_time_s * 1e3:.1f} ms")
    for j, busy in enumerate(result.stage_busy_s):
        print(f"  stage {j} compute time: {busy * 1e3:.1f} ms")

    # Bit-exact check against a single-process reference.
    reference = reference_generate(
        model.quantized(list(plan.bits_per_layer)), prompts, 12
    )
    exact = np.array_equal(result.tokens, reference)
    print(f"\npipeline output == single-process reference: {exact}")
    assert exact

    # What did the quantization cost in quality, measured for real?
    corpora = build_eval_corpora(model, n_seqs=6, seq_len=96)
    ppl_fp16 = model.perplexity(corpora["wikitext2"])
    ppl_plan = model.quantized(list(plan.bits_per_layer)).perplexity(
        corpora["wikitext2"]
    )
    ppl_all3 = model.quantized([3] * 6).perplexity(corpora["wikitext2"])
    print("\nmeasured perplexity (wikitext2-like corpus):")
    print(f"  FP16            : {ppl_fp16:8.2f}")
    print(f"  plan (4/4/8/16s): {ppl_plan:8.2f}")
    print(f"  uniform 3-bit   : {ppl_all3:8.2f}")
    print("\nmixed precision keeps quality near FP16 at a fraction of the "
          "memory — the SplitQuant trade in miniature.")


if __name__ == "__main__":
    main()
