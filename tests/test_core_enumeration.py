"""Tests for device-topology and micro-batch enumeration."""

import pytest

from repro.core import (
    candidate_orderings,
    microbatch_candidates,
    node_tp_groupings,
)
from repro.core.enumeration import _power_of_two_partitions
from repro.hardware import table_iii_cluster


def test_power_of_two_partitions():
    parts = set(_power_of_two_partitions(4))
    assert parts == {(1, 1, 1, 1), (2, 1, 1), (2, 2), (4)if False else (4,)}
    assert set(_power_of_two_partitions(2)) == {(1, 1), (2,)}
    assert set(_power_of_two_partitions(1)) == {(1,)}


def test_node_tp_groupings_respect_node(cluster5):
    t4_node = cluster5.nodes()[0]
    groupings = node_tp_groupings(t4_node, enable_tp=True)
    # 3 T4s: (1,1,1) and (2,1).
    sizes = {tuple(sorted(len(g.device_ids) for g in gr)) for gr in groupings}
    assert sizes == {(1, 1, 1), (1, 2)}


def test_node_tp_disabled(cluster5):
    t4_node = cluster5.nodes()[0]
    groupings = node_tp_groupings(t4_node, enable_tp=False)
    assert len(groupings) == 1
    assert all(g.tp_degree == 1 for g in groupings[0])


def test_tp_groups_are_same_gpu_type():
    cluster = table_iii_cluster(7)
    for ordering in candidate_orderings(cluster, max_orderings=50):
        for sg in ordering:
            assert sg.tp_degree in (1, 2, 4)


def test_orderings_deduped_by_type_sequence():
    cluster = table_iii_cluster(9)  # 4 identical V100s
    orderings = candidate_orderings(cluster, enable_tp=False, max_orderings=100)
    # All devices identical: exactly one distinct PP4 sequence.
    assert len(orderings) == 1


def test_orderings_with_tp_cover_meshes():
    cluster = table_iii_cluster(9)
    orderings = candidate_orderings(cluster, enable_tp=True, max_orderings=100)
    keys = {tuple(sg.key() for sg in o) for o in orderings}
    assert (("V100-32G", 4),) in keys  # TP4
    assert (("V100-32G", 2), ("V100-32G", 2)) in keys  # TP2+PP2
    assert (("V100-32G", 1),) * 4 in keys  # PP4


def test_ordering_cap_respected():
    cluster = table_iii_cluster(7)
    orderings = candidate_orderings(cluster, max_orderings=5)
    assert len(orderings) <= 5


def test_every_ordering_uses_each_device_once():
    cluster = table_iii_cluster(5)
    for ordering in candidate_orderings(cluster, max_orderings=30):
        ids = [d for sg in ordering for d in sg.device_ids]
        assert sorted(ids) == [0, 1, 2, 3]


def test_orderings_prefer_fewer_cross_node_hops():
    cluster = table_iii_cluster(5)
    orderings = candidate_orderings(cluster, enable_tp=False, max_orderings=50)
    node_of = {d.device_id: d.node_id for d in cluster.devices}

    def hops(o):
        return sum(
            node_of[a.device_ids[0]] != node_of[b.device_ids[0]]
            for a, b in zip(o, o[1:])
        )

    assert hops(orderings[0]) <= hops(orderings[-1])


def test_microbatch_candidates_default():
    cands = microbatch_candidates(32)
    assert all(1 <= c <= 32 for c in cands)
    assert 32 in cands
    assert len(cands) <= 4


def test_microbatch_candidates_non_power_of_two_batch():
    cands = microbatch_candidates(24)
    assert 24 in cands
    assert all(c <= 24 for c in cands)


def test_microbatch_candidates_given_filtered():
    cands = microbatch_candidates(16, given=(1, 8, 64))
    assert cands == (1, 8)
    with pytest.raises(ValueError):
        microbatch_candidates(16, given=(64,))


def test_microbatch_candidates_invalid_batch():
    with pytest.raises(ValueError):
        microbatch_candidates(0)
