"""Tests for the discrete-event engine."""

import pytest

from repro.pipeline import EventLoop, Server


def test_events_run_in_time_order():
    loop = EventLoop()
    seen = []
    loop.at(3.0, lambda: seen.append("c"))
    loop.at(1.0, lambda: seen.append("a"))
    loop.at(2.0, lambda: seen.append("b"))
    loop.run()
    assert seen == ["a", "b", "c"]
    assert loop.now == 3.0


def test_ties_run_in_insertion_order():
    loop = EventLoop()
    seen = []
    loop.at(1.0, lambda: seen.append(1))
    loop.at(1.0, lambda: seen.append(2))
    loop.run()
    assert seen == [1, 2]


def test_schedule_relative():
    loop = EventLoop()
    loop.at(5.0, lambda: loop.schedule(2.0, lambda: None))
    loop.run()
    assert loop.now == 7.0


def test_cannot_schedule_in_past():
    loop = EventLoop()
    loop.at(5.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.at(1.0, lambda: None)
    with pytest.raises(ValueError):
        loop.schedule(-1.0, lambda: None)


def test_run_until_stops_early():
    loop = EventLoop()
    seen = []
    loop.at(1.0, lambda: seen.append(1))
    loop.at(10.0, lambda: seen.append(2))
    loop.run(until=5.0)
    assert seen == [1]
    assert loop.pending == 1


def test_cascading_events():
    loop = EventLoop()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 5:
            loop.schedule(1.0, tick)

    loop.schedule(0.0, tick)
    loop.run()
    assert count[0] == 5
    assert loop.now == 4.0


def test_server_serializes_jobs():
    loop = EventLoop()
    srv = Server(loop, "s")
    done = []
    srv.submit(2.0, lambda t: done.append(t))
    srv.submit(3.0, lambda t: done.append(t))
    loop.run()
    assert done == [2.0, 5.0]
    assert srv.busy_time == 5.0
    assert srv.jobs_done == 2


def test_server_not_before_delays_start():
    loop = EventLoop()
    srv = Server(loop, "s")
    done = []
    srv.submit(1.0, lambda t: done.append(t), not_before=10.0)
    loop.run()
    assert done == [11.0]


def test_server_idle_gap():
    loop = EventLoop()
    srv = Server(loop, "s")
    srv.submit(1.0, None)
    srv.submit(1.0, None, not_before=5.0)
    loop.run()
    assert srv.free_at == 6.0
    assert srv.utilization(6.0) == pytest.approx(2.0 / 6.0)


def test_server_rejects_negative_duration():
    loop = EventLoop()
    srv = Server(loop, "s")
    with pytest.raises(ValueError):
        srv.submit(-1.0, None)


def test_two_stage_pipeline_wavefront():
    """Classic result: makespan = sum(stage times) + (M-1)*bottleneck."""
    loop = EventLoop()
    s0, s1 = Server(loop, "s0"), Server(loop, "s1")
    finish = []

    def chain(m):
        s0.submit(1.0, lambda t: s1.submit(2.0, lambda u: finish.append(u),
                                           not_before=t))

    for m in range(4):
        chain(m)
    loop.run()
    assert max(finish) == pytest.approx(1.0 + 2.0 + 3 * 2.0)


def test_processed_counter():
    loop = EventLoop()
    for i in range(5):
        loop.at(float(i), lambda: None)
    assert loop.run() == 5
    assert loop.processed == 5
