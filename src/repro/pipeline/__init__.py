"""Pipeline serving: discrete-event engine, stage timing, simulator."""

from .events import EventLoop, Server
from .simulator import (
    PipelineSimResult,
    check_plan_memory,
    simulate_plan,
    simulate_plan_variable,
)
from .trace import Timeline, render_gantt, trace_plan
from .stage import (
    CostModelTiming,
    RooflineTiming,
    StageExecutionModel,
    TimingSource,
)

__all__ = [
    "EventLoop",
    "Server",
    "PipelineSimResult",
    "check_plan_memory",
    "simulate_plan",
    "simulate_plan_variable",
    "Timeline",
    "render_gantt",
    "trace_plan",
    "CostModelTiming",
    "RooflineTiming",
    "StageExecutionModel",
    "TimingSource",
]
