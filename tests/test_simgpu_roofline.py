"""Tests for the roofline kernel model — the simulated testbed's physics."""

import pytest

from repro.simgpu import (
    effective_bandwidth,
    embedding_time,
    layer_time,
    lm_head_time,
    tp_layer_time,
)
from repro.hardware.interconnect import intra_node_link


def test_prefill_ratio_p100_v100_matches_paper(opt13b, v100, p100):
    """Fig. 3: ~14.53x FP16 prefill gap at v=8, s=512."""
    ratio = layer_time(p100, opt13b, 16, "prefill", 8, 512) / layer_time(
        v100, opt13b, 16, "prefill", 8, 512
    )
    assert 13.0 < ratio < 16.0


def test_decode_ratio_p100_v100_matches_paper(opt13b, v100, p100):
    """Fig. 3: ~7.29x FP16 decode gap at v=8, s=512."""
    ratio = layer_time(p100, opt13b, 16, "decode", 8, 512) / layer_time(
        v100, opt13b, 16, "decode", 8, 512
    )
    assert 6.0 < ratio < 8.5


def test_phase_ratios_differ(opt30b, v100, p100):
    """The core phase-awareness motivation: per-phase device ratios differ."""
    pre = layer_time(p100, opt30b, 16, "prefill", 8, 512) / layer_time(
        v100, opt30b, 16, "prefill", 8, 512
    )
    dec = layer_time(p100, opt30b, 16, "decode", 8, 512) / layer_time(
        v100, opt30b, 16, "decode", 8, 512
    )
    assert pre / dec > 1.5


def test_fp16_beats_low_bits_in_prefill(opt30b, v100):
    """Fig. 5: dequant overhead makes 3/4-bit slower in prefill."""
    fp16 = layer_time(v100, opt30b, 16, "prefill", 8, 512)
    assert layer_time(v100, opt30b, 4, "prefill", 8, 512) >= fp16
    assert layer_time(v100, opt30b, 3, "prefill", 8, 512) >= fp16


def test_low_bits_win_decode(opt30b, v100, t4, a100):
    """Fig. 5: decode is memory-bound; fewer weight bytes win."""
    for gpu in (v100, t4, a100):
        fp16 = layer_time(gpu, opt30b, 16, "decode", 8, 512)
        four = layer_time(gpu, opt30b, 4, "decode", 8, 512)
        assert four < fp16 / 1.5


def test_t4_int8_fast_v100_int8_slow_prefill(opt30b, t4, v100):
    """Sec. II-E: tensor cores make T4 INT8 competitive; V100 not."""
    assert layer_time(t4, opt30b, 8, "prefill", 8, 512) < layer_time(
        t4, opt30b, 16, "prefill", 8, 512
    )
    assert layer_time(v100, opt30b, 8, "prefill", 8, 512) > layer_time(
        v100, opt30b, 16, "prefill", 8, 512
    )


def test_decode_time_grows_with_context(opt30b, v100):
    t1 = layer_time(v100, opt30b, 16, "decode", 8, 256)
    t2 = layer_time(v100, opt30b, 16, "decode", 8, 4096)
    assert t2 > t1


def test_prefill_time_superlinear_in_seq(opt13b, a100):
    t1 = layer_time(a100, opt13b, 16, "prefill", 4, 512)
    t2 = layer_time(a100, opt13b, 16, "prefill", 4, 2048)
    assert t2 > 3.9 * t1


def test_invalid_args(opt13b, v100):
    with pytest.raises(ValueError):
        layer_time(v100, opt13b, 16, "prefill", 0, 128)
    with pytest.raises(ValueError):
        layer_time(v100, opt13b, 16, "train", 1, 128)


def test_effective_bandwidth_saturates(v100):
    small = effective_bandwidth(v100, 1024)
    mid = effective_bandwidth(v100, 8 * 1024 * 1024)
    big = effective_bandwidth(v100, 10 * 1024**3)
    assert small < mid < big <= v100.mem_bw_gbps * 1e9
    assert mid == pytest.approx(v100.mem_bw_decode_gbps * 1e9, rel=0.01)


def test_embedding_and_head_times_positive(opt13b, t4):
    assert embedding_time(t4, opt13b, 1024) > 0
    assert lm_head_time(t4, opt13b, 8) > 0
    # Small token counts are weight-read bound (flat); large counts are
    # compute-bound and grow with the token count.
    assert lm_head_time(t4, opt13b, 4096) > lm_head_time(t4, opt13b, 8)


def test_tp_reduces_prefill_time(opt30b, v100):
    bw = intra_node_link(v100.name).bandwidth_bytes_s
    t1 = tp_layer_time(v100, opt30b, 16, "prefill", 8, 512, 1, bw)
    t2 = tp_layer_time(v100, opt30b, 16, "prefill", 8, 512, 2, bw)
    t4_ = tp_layer_time(v100, opt30b, 16, "prefill", 8, 512, 4, bw)
    assert t2 < t1
    assert t4_ < t2
    # Sub-linear scaling: comm + overheads eat into the ideal 2x.
    assert t2 > t1 / 2


def test_tp1_equals_plain_layer_time(opt30b, v100):
    bw = intra_node_link(v100.name).bandwidth_bytes_s
    assert tp_layer_time(v100, opt30b, 16, "decode", 8, 512, 1, bw) == layer_time(
        v100, opt30b, 16, "decode", 8, 512
    )


def test_tp_invalid_degree(opt30b, v100):
    with pytest.raises(ValueError):
        tp_layer_time(v100, opt30b, 16, "decode", 8, 512, 0, 1e9)


def test_bigger_model_layer_slower(v100, opt13b, opt30b):
    assert layer_time(v100, opt30b, 16, "decode", 8, 512) > layer_time(
        v100, opt13b, 16, "decode", 8, 512
    )
