"""Bench: regenerate Fig. 7 (workload length distributions)."""

from repro.experiments import fig07_workload_dists


def test_fig07_workload_dists(experiment):
    res = experiment(fig07_workload_dists.run)
    s = res.summary
    assert 80_000 < s["loogle_mean_in"] < 115_000  # paper: ~97k
    assert 50 < s["loogle_mean_out"] < 80  # paper: ~63
    assert 270 < s["cnn_dailymail_mean_out"] < 330  # paper: ~299
