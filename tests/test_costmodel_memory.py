"""Tests for the memory cost model (Sec. IV-A)."""

import pytest

from repro.costmodel import (
    MemoryCostModel,
    activation_workspace_bytes,
    embedding_memory_bytes,
    layer_memory_bytes,
)
from repro.models import kv_cache_bytes, weight_storage_bytes


def test_layer_memory_is_weights_plus_kv(opt13b):
    got = layer_memory_bytes(opt13b, 4, batch=8, context=600)
    expect = weight_storage_bytes(opt13b, 4) + kv_cache_bytes(opt13b, 8, 600)
    assert got == expect


def test_layer_memory_monotone_in_bits(opt13b):
    mems = [layer_memory_bytes(opt13b, b, 8, 600) for b in (3, 4, 8, 16)]
    assert mems == sorted(mems)


def test_kv_dominates_at_large_batch_small_bits(opt13b):
    m = layer_memory_bytes(opt13b, 3, batch=256, context=2048)
    kv = kv_cache_bytes(opt13b, 256, 2048)
    assert kv / m > 0.8


def test_negative_inputs_rejected(opt13b):
    with pytest.raises(ValueError):
        layer_memory_bytes(opt13b, 4, batch=-1, context=100)


def test_activation_workspace_scales(opt13b):
    a = activation_workspace_bytes(opt13b, 4, 512)
    b = activation_workspace_bytes(opt13b, 8, 512)
    c = activation_workspace_bytes(opt13b, 4, 1024)
    assert b == 2 * a
    assert c == 2 * a


def test_embedding_memory_includes_logits_workspace(opt13b):
    small = embedding_memory_bytes(opt13b, microbatch=1)
    big = embedding_memory_bytes(opt13b, microbatch=64)
    assert big - small == 63 * opt13b.vocab_size * 2


def test_stage_bytes_sums_layers(opt13b):
    mm = MemoryCostModel(spec=opt13b, batch=8, context=600)
    one = mm.stage_bytes([4], microbatch=4)
    three = mm.stage_bytes([4, 4, 4], microbatch=4)
    assert three - one == 2 * mm.layer_bytes(4)


def test_stage_bytes_embedding_flag(opt13b):
    mm = MemoryCostModel(spec=opt13b, batch=8, context=600)
    plain = mm.stage_bytes([4], microbatch=4, with_embeddings=False)
    emb = mm.stage_bytes([4], microbatch=4, with_embeddings=True)
    assert emb - plain == embedding_memory_bytes(opt13b, 4)


def test_fits_constraint(opt13b):
    mm = MemoryCostModel(spec=opt13b, batch=8, context=600)
    need = mm.stage_bytes([8, 8], microbatch=4)
    assert mm.fits([8, 8], 4, need)
    assert not mm.fits([8, 8], 4, need - 1)


def test_kv_bitwidth_halves_reservation(opt13b):
    full = MemoryCostModel(spec=opt13b, batch=8, context=600, bit_kv=16)
    half = MemoryCostModel(spec=opt13b, batch=8, context=600, bit_kv=8)
    dk = full.layer_bytes(16) - half.layer_bytes(16)
    assert dk == kv_cache_bytes(opt13b, 8, 600, 16) - kv_cache_bytes(
        opt13b, 8, 600, 8
    )
