"""Exhaustive reference solver for tiny planning subproblems.

Enumerates every contiguous partition of layer groups over stages and
every bitwidth combination, evaluating the same objective as the ILP.
Exponential — only for cross-validating the ILP in tests.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from .costs import PlanningProblem
from .ilp import ILPSolution


def _compositions(total: int, parts: int):
    """All ways to write ``total`` as ``parts`` positive integers."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def brute_force_solve(
    problem: PlanningProblem,
    theta: float = 10.0,
    quality_budget: Optional[float] = None,
    max_states: int = 2_000_000,
) -> Optional[ILPSolution]:
    """Optimal solution by enumeration; ``None`` when infeasible."""
    G, N = problem.n_groups, problem.n_stages
    n_states = 0
    best_val = float("inf")
    best: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
    for comp in _compositions(G, N):
        stages = []
        for j, count in enumerate(comp):
            stages.extend([j] * count)
        for bits in itertools.product(problem.bit_choices, repeat=G):
            n_states += 1
            if n_states > max_states:
                raise RuntimeError(
                    f"state space exceeds {max_states}; use the ILP instead"
                )
            if not problem.memory_ok(stages, bits):
                continue
            quality = problem.quality_sum(bits)
            if quality_budget is not None and quality > quality_budget + 1e-12:
                continue
            val = problem.latency_estimate(stages, bits) + theta * quality
            if val < best_val:
                best_val = val
                best = (tuple(stages), tuple(bits))
    if best is None:
        return None
    stages, bits = best
    return ILPSolution(
        assign_stage=stages,
        assign_bits=bits,
        objective=best_val,
        latency_s=problem.latency_estimate(stages, bits),
        quality=problem.quality_sum(bits),
        solve_time_s=0.0,
        status="brute-force",
    )
