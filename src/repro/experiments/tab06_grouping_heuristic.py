"""Table VI: layer grouping and the bitwidth-transfer heuristic.

Three optimizer strategies — exact ILP with group=2, exact ILP with
group=1 (full solution space), and the heuristic — under a 60-second
per-solve time limit, on (OPT-30B, clusters 5/6) and (OPT-66B, cluster 9).
Reported: simulated throughput of the chosen plan and total solve
overhead.  The paper's shape: group=1 is slower to solve and not always
better under the limit; the heuristic is fastest and competitive.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..core import PlannerConfig, SplitQuantPlanner
from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..workloads.spec import BatchWorkload
from .common import cost_model_for, throughput_of
from .harness import ExperimentResult

CASES: Tuple[Tuple[str, int], ...] = (
    ("opt-30b", 5),
    ("opt-30b", 6),
    ("opt-66b", 9),
)

STRATEGIES = ("group=2", "group=1", "heuristic")


def run(
    time_limit_s: float = 60.0,
    max_orderings: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    rows = []
    summary: Dict[str, float] = {}
    for model_name, cluster_idx in CASES:
        spec = get_model(model_name)
        cluster = table_iii_cluster(cluster_idx)
        wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
        cm = cost_model_for(spec, cluster)
        base_cfg = PlannerConfig(
            group_size=2,
            max_orderings=max_orderings,
            microbatch_candidates=(8, 16),
            time_limit_s=time_limit_s,
        )
        tputs = {}
        for strategy in STRATEGIES:
            cfg = base_cfg
            if strategy == "group=1":
                cfg = dataclasses.replace(cfg, group_size=1)
            elif strategy == "heuristic":
                cfg = dataclasses.replace(cfg, use_heuristic=True)
            planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
            res = planner.plan(wl)
            tput = throughput_of(
                res.plan if res else None, cluster, spec, wl
            )
            overhead = res.solve_time_s if res else float("nan")
            tputs[strategy] = tput
            rows.append(
                [model_name, f"cluster-{cluster_idx}", strategy, tput, overhead]
            )
        best = max(tputs.values())
        summary[f"{model_name}_c{cluster_idx}_heuristic_gap"] = (
            (tputs["heuristic"] / best) if best > 0 else 0.0
        )
    return ExperimentResult(
        name="tab06",
        title="Grouping and heuristic under solver time limits",
        headers=["model", "cluster", "strategy", "tokens_per_s", "overhead_s"],
        rows=rows,
        summary=summary,
        notes=(
            "Paper: heuristic is near-best throughput at the smallest "
            "overhead; group=1 explores the full space but costs more."
        ),
    )
