"""Incremental re-solve: equivalence with cold re-plan, and the shims."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ClusterDelta,
    JobDelta,
    PlannerConfig,
    SplitQuantPlanner,
)
from repro.hardware import make_cluster
from repro.models import get_model
from repro.plan import InfeasibleError
from repro.workloads import BatchWorkload

WL = BatchWorkload(batch=8, prompt_len=256, output_len=32)
FAST = PlannerConfig(
    use_heuristic=True, microbatch_candidates=(4,), verify_top_k=1,
    enable_tp=False,
)


def _planner(counts=(("A100-40G", 1), ("V100-32G", 1), ("T4-16G", 1))):
    spec = get_model("opt-13b")
    cluster = make_cluster("inc", [list(c) for c in counts])
    return SplitQuantPlanner(spec, cluster, FAST)


# ---------------------------------------------------------------------------
# ClusterDelta: differential equivalence with the cold re-plan
# ---------------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(kill=st.integers(min_value=0, max_value=2))
def test_kill_one_gpu_matches_cold_replan(kill):
    """After a kill-one-GPU delta, incremental re-solve is feasibility-
    equivalent to a cold re-plan and loses at most half its throughput."""
    planner = _planner()
    prev = planner.plan(WL)
    assert prev is not None
    survivors = [
        d.device_id
        for d in planner.cluster.devices
        if d.device_id != kill
    ]
    cold_fails = False
    try:
        cold = planner.replan_cold(WL, survivors)
    except InfeasibleError:
        cold_fails = True
    inc_fails = False
    try:
        inc = planner.replan(prev, ClusterDelta(removed_device_ids=(kill,)))
    except InfeasibleError:
        inc_fails = True
    assert cold_fails == inc_fails
    if cold_fails:
        return
    assert inc.tier in ("incremental-repair", "incremental-resolve")
    assert inc.throughput_tokens_s >= 0.5 * cold.throughput_tokens_s
    assert inc.plan.num_layers == planner.spec.num_layers
    for st_ in inc.plan.stages:
        assert all(d in survivors for d in st_.device_ids)


def test_incremental_repair_is_much_faster_than_cold():
    import time

    planner = _planner(
        (("A100-40G", 2), ("V100-32G", 2), ("T4-16G", 2))
    )
    prev = planner.plan(WL)
    survivors = [
        d.device_id for d in planner.cluster.devices if d.device_id != 5
    ]
    t0 = time.perf_counter()
    planner.replan_cold(WL, survivors)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    inc = planner.replan(prev, ClusterDelta(removed_device_ids=(5,)))
    inc_s = time.perf_counter() - t0
    assert inc.tier == "incremental-repair"
    # Empirically >1000x; 3x is a conservative floor for noisy CI boxes.
    assert cold_s / inc_s >= 3.0


def test_cluster_delta_needs_workload_provenance():
    planner = _planner()
    prev = planner.plan(WL)
    import dataclasses

    stripped = dataclasses.replace(prev, workload=None)
    with pytest.raises(ValueError, match="workload"):
        planner.replan(stripped, ClusterDelta(removed_device_ids=(0,)))
    # Passing workload= explicitly repairs the provenance gap.
    res = planner.replan(
        stripped, ClusterDelta(removed_device_ids=(0,)), workload=WL
    )
    assert res.tier in ("incremental-repair", "incremental-resolve")


def test_cluster_delta_validation():
    with pytest.raises(ValueError):
        ClusterDelta(removed_device_ids=())
    planner = _planner()
    prev = planner.plan(WL)
    with pytest.raises(TypeError, match="delta must be"):
        planner.replan(prev, object())


# ---------------------------------------------------------------------------
# JobDelta: warm re-solve on the previous ordering
# ---------------------------------------------------------------------------


def test_job_delta_warm_resolves_on_previous_ordering():
    planner = _planner()
    prev = planner.plan(WL)
    new_wl = BatchWorkload(batch=8, prompt_len=512, output_len=16)
    res = planner.replan(prev, JobDelta(workload=new_wl))
    assert res.tier == "incremental-resolve"
    assert res.workload == new_wl
    assert res.plan.num_layers == planner.spec.num_layers
    assert res.throughput_tokens_s > 0
    # The stage topology is inherited from the previous plan.
    assert [st.device_ids for st in res.plan.stages] == [
        st.device_ids for st in prev.plan.stages
    ]


def test_job_delta_quality_close_to_cold():
    planner = _planner()
    prev = planner.plan(WL)
    new_wl = BatchWorkload(batch=16, prompt_len=256, output_len=32)
    warm = planner.replan(prev, JobDelta(workload=new_wl))
    cold = planner.plan(new_wl)
    assert warm.throughput_tokens_s >= 0.5 * cold.throughput_tokens_s


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


def test_legacy_replan_signature_warns_and_works():
    planner = _planner()
    survivors = [1, 2]
    with pytest.warns(DeprecationWarning, match="replan"):
        res = planner.replan(WL, survivors)
    assert res.plan.num_layers == planner.spec.num_layers


def test_plan_naive_shim_warns():
    planner = _planner((("A100-40G", 1), ("V100-32G", 1)))
    with pytest.warns(DeprecationWarning, match="plan_naive"):
        res = planner.plan_naive(WL)
    assert res.plan == planner.plan_reference(WL).plan


def test_reduced_cluster_shim_warns():
    from repro.core.planner import _reduced_cluster, reduced_cluster

    cluster = make_cluster("rc", [["V100-32G", 2]])
    with pytest.warns(DeprecationWarning, match="reduced_cluster"):
        shim = reduced_cluster(cluster, [0])
    assert shim == _reduced_cluster(cluster, [0])


def test_degrade_execution_plan_shim_warns():
    from repro.core.planner import (
        degrade_execution_plan,
        degrade_execution_plan_internal,
    )

    planner = _planner()
    prev = planner.plan(WL)
    survivors = [
        d.device_id for d in planner.cluster.devices if d.device_id != 2
    ]
    with pytest.warns(DeprecationWarning, match="degrade_execution_plan"):
        shim = degrade_execution_plan(
            prev.plan, survivors, planner.cluster, planner.spec, WL
        )
    assert shim == degrade_execution_plan_internal(
        prev.plan, survivors, planner.cluster, planner.spec, WL
    )


# ---------------------------------------------------------------------------
# Session facade & fleet memo keys
# ---------------------------------------------------------------------------


def test_session_replan_passthrough():
    from repro.api import Session

    spec = get_model("opt-13b")
    cluster = make_cluster(
        "sess", [["A100-40G", 1], ["V100-32G", 1], ["T4-16G", 1]]
    )
    with Session(spec, cluster, FAST) as s:
        with pytest.raises(ValueError, match="no previous result"):
            s.replan(ClusterDelta(removed_device_ids=(0,)))
        assert s.plan(WL, tier="auto") is not None
        res = s.replan(ClusterDelta(removed_device_ids=(0,)))
        assert res.tier in ("incremental-repair", "incremental-resolve")
        # The session remembers the re-planned result.
        assert s._last_result is res


def test_planner_pool_memo_keys_include_config():
    """Exact and DP plans for the same (job, group) never collide."""
    from dataclasses import replace as dc_replace

    from repro.fleet import PlannerPool, make_job_queue
    from repro.fleet.allocator import GroupSpec

    inv = {"V100-32G": 2, "T4-16G": 2}
    cfg_exact = dc_replace(FAST, tier="exact")
    cfg_dp = dc_replace(FAST, tier="dp")
    pool_exact = PlannerPool(inv, config=cfg_exact)
    pool_dp = PlannerPool(inv, config=cfg_dp)
    assert pool_exact._config_key != pool_dp._config_key
    job = make_job_queue(n_jobs=1, seed=0)[0]
    group = GroupSpec(counts=(("V100-32G", 2),))
    a = pool_exact.evaluate(job, group)
    b = pool_dp.evaluate(job, group)
    # In-memory memo keys carry the fingerprint.
    for key in pool_exact._plans:
        assert key[-1] == pool_exact._config_key
    if a is not None and b is not None:
        assert a.result.tier == "exact"
        assert b.result.tier == "dp"
