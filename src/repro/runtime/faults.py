"""Deterministic fault injection for the threaded runtime.

SplitQuant targets offline serving on *shared* heterogeneous clusters —
exactly the fleets where GPUs get preempted, slow down, or die mid-batch
(the fragmentation story of Fig. 1).  This module gives the runtime a
first-class, reproducible fault model:

* :class:`FaultSpec` — one fault: kill stage *k* when the job for decode
  step *t* (or prefill micro-batch *m*) arrives, a transient slowdown of
  ``delay_s``, or an in-flight message drop on a stage's outbound channel.
* :class:`FaultPlan` — an immutable, seedable collection of fault specs;
  :meth:`FaultPlan.random` derives a deterministic plan from a seed so
  fuzz-style fault campaigns are exactly replayable.
* :class:`FaultInjector` — the mutable runtime half: tracks which specs
  have fired (a kill fires once, even across pipeline rebuilds) and is
  consulted by :class:`~repro.runtime.worker.StageWorker` before every job
  and by :class:`~repro.runtime.comm.Channel` on every send.

Everything here is plain Python (no numpy) so it can be serialized and
mirrored 1:1 into the discrete-event simulator
(:func:`repro.pipeline.simulator.simulate_degraded`).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

FAULT_KINDS = ("kill", "slow", "drop")
PHASES = ("prefill", "decode")


class InjectedFault(RuntimeError):
    """Raised inside a stage worker when a ``kill`` fault fires."""

    def __init__(self, spec: "FaultSpec") -> None:
        super().__init__(
            f"injected {spec.kind} fault: stage {spec.stage} at "
            f"{spec.phase} step {spec.step}"
        )
        self.spec = spec


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``stage`` indexes the pipeline *at the time the fault fires* (after a
    replan the degraded pipeline is renumbered 0..S'-1).  For ``decode``
    faults ``step`` is the 1-based decode step; for ``prefill`` faults it
    is the 0-based prefill micro-batch id.  ``drop`` faults discard the
    matching message on the stage's outbound channel — the message is lost
    in transit, the worker itself stays healthy.
    """

    kind: str
    stage: int
    phase: str = "decode"
    step: int = 1
    #: Restrict decode faults to one micro-batch id (None = any).
    mb_id: Optional[int] = None
    #: Transient slowdown duration for ``slow`` faults.
    delay_s: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}")
        if self.phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}")
        if self.stage < 0:
            raise ValueError("stage must be non-negative")
        if self.step < 0:
            raise ValueError("step must be non-negative")
        if self.phase == "decode" and self.step < 1:
            raise ValueError("decode steps are 1-based")
        if self.kind == "slow" and self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    def matches(self, stage: int, phase: str, step: int, mb_id: int) -> bool:
        """Does a job with these coordinates trigger this fault?"""
        if stage != self.stage or phase != self.phase:
            return False
        if self.phase == "prefill":
            return mb_id == self.step
        if self.mb_id is not None and mb_id != self.mb_id:
            return False
        return step == self.step


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable schedule of faults."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def single_kill(
        cls, stage: int, step: int, phase: str = "decode"
    ) -> "FaultPlan":
        """The canonical campaign: kill one stage at one step."""
        return cls(specs=(FaultSpec("kill", stage, phase, step),))

    @classmethod
    def random(
        cls,
        seed: int,
        num_stages: int,
        n_tokens: int,
        n_faults: int = 1,
        kinds: Tuple[str, ...] = ("kill",),
        max_delay_s: float = 0.2,
    ) -> "FaultPlan":
        """A deterministic random campaign (same seed -> same plan)."""
        if num_stages <= 0 or n_tokens <= 1:
            raise ValueError("need at least one stage and two tokens")
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for _ in range(n_faults):
            kind = rng.choice(list(kinds))
            specs.append(
                FaultSpec(
                    kind=kind,
                    stage=rng.randrange(num_stages),
                    phase="decode",
                    step=rng.randint(1, n_tokens - 1),
                    delay_s=(
                        rng.uniform(0.01, max_delay_s)
                        if kind == "slow"
                        else 0.0
                    ),
                )
            )
        return cls(specs=tuple(specs), seed=seed)

    def kills(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == "kill")

    def in_order(self) -> Tuple[FaultSpec, ...]:
        """Specs sorted by the moment they fire (prefill first, then by
        step; stable for ties)."""
        return tuple(
            sorted(
                self.specs,
                key=lambda s: (0 if s.phase == "prefill" else 1, s.step),
            )
        )


@dataclass(frozen=True)
class FaultRecord:
    """One recovery action taken by the engine (runtime telemetry)."""

    #: What was observed: "stage-failure" (worker died), "stall" (pipeline
    #: stopped making progress with all workers healthy, e.g. a dropped
    #: message), or "hang" (a worker's heartbeat went stale).
    kind: str
    dead_stages: Tuple[int, ...]
    dead_devices: Tuple[int, ...]
    #: Tokens committed at the master when the fault was detected.
    committed_tokens: int
    #: "replan" (degraded plan on surviving devices) or "rebuild"
    #: (same plan, fresh pipeline).
    action: str
    detail: str = ""


class FaultInjector:
    """Mutable runtime state of a :class:`FaultPlan`.

    Shared by every worker and channel of an engine — and deliberately
    kept across pipeline rebuilds, so a fault that already fired does not
    fire again during checkpoint replay (which re-executes the very steps
    that triggered it).
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._fired: set = set()
        #: Specs that have fired, in firing order (telemetry).
        self.fired: List[FaultSpec] = []

    def _claim(self, idx: int, spec: FaultSpec) -> bool:
        """Atomically mark spec ``idx`` fired; False if already fired."""
        with self._lock:
            if idx in self._fired:
                return False
            self._fired.add(idx)
            self.fired.append(spec)
            return True

    def on_job(
        self,
        stage: int,
        phase: str,
        step: int,
        mb_id: int,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> None:
        """Worker-side hook, called before a job executes.

        May sleep (``slow``) or raise :class:`InjectedFault` (``kill``).
        Sleeps in small slices, ticking ``heartbeat`` so a deliberately
        slow worker is not mistaken for a hung one.
        """
        for idx, spec in enumerate(self.plan.specs):
            if spec.kind == "drop":
                continue
            if not spec.matches(stage, phase, step, mb_id):
                continue
            if not self._claim(idx, spec):
                continue
            if spec.kind == "slow":
                deadline = time.monotonic() + spec.delay_s
                while True:
                    left = deadline - time.monotonic()
                    if left <= 0:
                        break
                    time.sleep(min(left, 0.02))
                    if heartbeat is not None:
                        heartbeat()
            elif spec.kind == "kill":
                raise InjectedFault(spec)

    def drop_hook(
        self, sending_stage: int
    ) -> Callable[[str, int, int], bool]:
        """Channel-side hook for the given stage's outbound channel.

        Returns a predicate ``(phase, step, mb_id) -> drop?`` consulted on
        every send; a matching unfired ``drop`` spec consumes the message.
        """

        def should_drop(phase: str, step: int, mb_id: int) -> bool:
            for idx, spec in enumerate(self.plan.specs):
                if spec.kind != "drop":
                    continue
                if not spec.matches(sending_stage, phase, step, mb_id):
                    continue
                if self._claim(idx, spec):
                    return True
            return False

        return should_drop

    @property
    def exhausted(self) -> bool:
        return len(self._fired) >= len(self.plan.specs)
