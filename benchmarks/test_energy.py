"""Bench: energy/cost accounting parity and the Pareto headline numbers.

Two contracts land in ``benchmarks/BENCH_energy.json``:

* **Cross-backend parity** — joules and dollars are stamped by a pure
  post-pass over fields the engines already agree on, so the event,
  fast and batched backends must agree *bit-for-bit* on every grid
  point (energy participates in result equality, so ``ev == fa``
  covers it).
* **Efficiency headlines** — J/token and $/Mtoken of the
  throughput-optimal plan on the Pareto configuration, plus the
  energy- and cost-objective plans' numbers.  These are deterministic
  cost-model outputs (no wall-clock), so the committed record doubles
  as a drift guard: ``scripts/check_bench_regression.py`` fails when a
  fresh run's J/token or $/Mtoken rises above the committed ceiling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import PlannerConfig, SplitQuantPlanner
from repro.experiments.common import cost_model_for
from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.pipeline import PlanCase, evaluate_plans, simulate_plan
from repro.plan import uniform_plan
from repro.workloads import BatchWorkload

OUT = Path(__file__).resolve().parent / "BENCH_energy.json"

#: The differential grid: (cluster index, bits, workload) cases every
#: backend must score with bit-identical joules and dollars.
GRID = (
    (5, 4, BatchWorkload(batch=32, prompt_len=512, output_len=100)),
    (5, 8, BatchWorkload(batch=16, prompt_len=256, output_len=64,
                         chunk_tokens=512)),
    (7, 4, BatchWorkload(batch=64, prompt_len=512, output_len=128)),
    (7, 3, BatchWorkload(batch=8, prompt_len=128, output_len=32,
                         chunk_tokens=256)),
)


def _grid_case(cluster_idx: int, bits: int, workload: BatchWorkload):
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(cluster_idx)
    plan = uniform_plan(
        spec.name,
        spec.num_layers,
        [((d.device_id,), d.gpu.name) for d in cluster.devices],
        bits=bits,
        prefill_microbatch=16,
        decode_microbatch=8,
    )
    return spec, cluster, plan, workload


def measure_parity() -> dict:
    """Event vs fast vs batched joules/dollars across the grid."""
    points = []
    cases = [_grid_case(*g) for g in GRID]
    batched = evaluate_plans(
        [PlanCase(plan, cluster, spec, wl)
         for spec, cluster, plan, wl in cases],
        check_memory=False,
    )
    all_identical = True
    for (spec, cluster, plan, wl), ba in zip(cases, batched):
        ev = simulate_plan(plan, cluster, spec, wl,
                           check_memory=False, sim_backend="event")
        fa = simulate_plan(plan, cluster, spec, wl,
                           check_memory=False, sim_backend="fast")
        identical = ev == fa == ba and ev.energy_j == fa.energy_j == ba.energy_j
        all_identical &= identical
        points.append(
            {
                "cluster": cluster.name,
                "batch": wl.batch,
                "energy_j": ev.energy_j,
                "cost_usd": ev.cost_usd,
                "identical": identical,
            }
        )
    return {"grid_points": len(points), "all_identical": all_identical,
            "points": points}


def measure_objectives() -> dict:
    """The Pareto anchors: each objective's plan on (OPT-30B, cluster 5)."""
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(5)
    wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
    cfg = PlannerConfig(
        group_size=2,
        max_orderings=2,
        microbatch_candidates=(8, 16),
        time_limit_s=30.0,
    )
    planner = SplitQuantPlanner(
        spec, cluster, cfg, cost_model=cost_model_for(spec, cluster)
    )
    out = {}
    for objective in ("throughput", "energy", "cost"):
        res = planner.plan(wl, objective=objective)
        assert res is not None, f"{objective} objective found no plan"
        assert res.objective == objective
        sim = simulate_plan(res.plan, cluster, spec, wl, check_memory=False)
        out[objective] = {
            "tokens_per_s": round(sim.throughput_tokens_s, 3),
            "j_per_token": round(sim.joules_per_token, 6),
            "usd_per_mtoken": round(sim.usd_per_mtoken, 6),
        }
        if objective != "throughput":
            assert res.predicted_energy_j is not None
            assert res.predicted_cost_usd is not None
    return out


def test_energy_bench():
    parity = measure_parity()
    # Hard contract: one energy model, three backends, zero divergence.
    assert parity["all_identical"], parity

    objectives = measure_objectives()
    # The energy objective can only improve J/token over the default,
    # and the cost objective can only improve $/Mtoken (same frontier,
    # re-ranked by the respective metric).
    assert (
        objectives["energy"]["j_per_token"]
        <= objectives["throughput"]["j_per_token"] + 1e-9
    )
    assert (
        objectives["cost"]["usd_per_mtoken"]
        <= objectives["throughput"]["usd_per_mtoken"] + 1e-9
    )

    record = {
        "bench": "energy",
        "model": "opt-30b",
        "cluster": "cluster-5",
        "workload": {"batch": 32, "prompt_len": 512, "output_len": 100},
        "parity": parity,
        "objectives": objectives,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
