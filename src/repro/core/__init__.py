"""SplitQuant's core: joint quantization / partition / micro-batch planning."""

from .config import PlannerConfig
from .costs import PlanningProblem, StageGroup, build_problem, group_layers
from .enumeration import (
    candidate_orderings,
    microbatch_candidates,
    node_tp_groupings,
)
from .exhaustive import brute_force_solve
from .heuristic import bitwidth_transfer
from .ilp import (
    ILPSolution,
    solve_adabits,
    solve_partition_ilp,
    solve_partition_lp_relaxation,
)
from .planner import (
    CandidateStat,
    PlannerResult,
    SplitQuantPlanner,
    degrade_execution_plan,
    reduced_cluster,
    solution_to_plan,
)
from .search import (
    CandidateSearchEngine,
    SearchOutcome,
    SearchStats,
    analytic_lower_bound,
    mckp_lp_min_cost,
)

__all__ = [
    "PlannerConfig",
    "PlanningProblem",
    "StageGroup",
    "build_problem",
    "group_layers",
    "candidate_orderings",
    "microbatch_candidates",
    "node_tp_groupings",
    "brute_force_solve",
    "bitwidth_transfer",
    "ILPSolution",
    "solve_adabits",
    "solve_partition_ilp",
    "solve_partition_lp_relaxation",
    "CandidateSearchEngine",
    "SearchOutcome",
    "SearchStats",
    "analytic_lower_bound",
    "mckp_lp_min_cost",
    "CandidateStat",
    "PlannerResult",
    "SplitQuantPlanner",
    "solution_to_plan",
]
