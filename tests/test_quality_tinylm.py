"""Tests for the TinyLM numpy transformer."""

import numpy as np
import pytest

from repro.quality import (
    LINEAR_OPS,
    TinyLM,
    TinyLMConfig,
    layer_forward,
)


def test_config_validation():
    with pytest.raises(ValueError):
        TinyLMConfig(hidden=50, heads=4)


def test_logits_shape(tiny_model, rng):
    toks = rng.integers(0, tiny_model.config.vocab, size=(3, 12))
    logits = tiny_model.logits(toks)
    assert logits.shape == (3, 12, tiny_model.config.vocab)
    assert np.all(np.isfinite(logits))


def test_deterministic_given_seed():
    a = TinyLM(TinyLMConfig(seed=5, layers=2, hidden=32, ffn=64, vocab=50,
                            heads=2))
    b = TinyLM(TinyLMConfig(seed=5, layers=2, hidden=32, ffn=64, vocab=50,
                            heads=2))
    toks = np.arange(10).reshape(1, 10) % 50
    assert np.allclose(a.logits(toks), b.logits(toks))


def test_causality(tiny_model, rng):
    """Changing a future token must not change past logits."""
    toks = rng.integers(0, tiny_model.config.vocab, size=(1, 16))
    base = tiny_model.logits(toks)
    mod = toks.copy()
    mod[0, 10] = (mod[0, 10] + 1) % tiny_model.config.vocab
    out = tiny_model.logits(mod)
    assert np.allclose(base[0, :10], out[0, :10])
    assert not np.allclose(base[0, 10:], out[0, 10:])


def test_kv_cache_matches_teacher_forcing(tiny_model, rng):
    toks = rng.integers(0, tiny_model.config.vocab, size=(2, 20))
    full = tiny_model.logits(toks)
    logits, cache = tiny_model.prefill(toks[:, :8])
    assert np.allclose(full[:, 7], logits, atol=1e-10)
    for t in range(8, 20):
        logits, cache = tiny_model.decode_step(toks[:, t], cache)
        assert np.allclose(full[:, t], logits, atol=1e-9)


def test_cache_length_tracks_tokens(tiny_model, rng):
    toks = rng.integers(0, tiny_model.config.vocab, size=(1, 6))
    _, cache = tiny_model.prefill(toks)
    assert cache.length == 6
    _, cache = tiny_model.decode_step(np.array([1]), cache)
    assert cache.length == 7


def test_max_seq_enforced(tiny_model):
    toks = np.zeros((1, tiny_model.config.max_seq + 1), dtype=int)
    with pytest.raises(ValueError, match="max_seq"):
        tiny_model.logits(toks)


def test_sample_shapes_and_range(tiny_model):
    out = tiny_model.sample(batch=3, length=20, seed=0)
    assert out.shape == (3, 20)
    assert out.min() >= 0 and out.max() < tiny_model.config.vocab


def test_sample_deterministic_per_seed(tiny_model):
    a = tiny_model.sample(2, 15, seed=9)
    b = tiny_model.sample(2, 15, seed=9)
    assert np.array_equal(a, b)


def test_perplexity_positive_and_below_vocab(tiny_model, tiny_corpora):
    ppl = tiny_model.perplexity(tiny_corpora["wikitext2"])
    assert 1.0 < ppl < tiny_model.config.vocab


def test_model_beats_uniform_on_own_samples(tiny_model, tiny_corpora):
    """Self-generated text has below-uniform perplexity — the property
    that makes quantization damage measurable."""
    ppl = tiny_model.perplexity(tiny_corpora["wikitext2"])
    assert ppl < 0.95 * tiny_model.config.vocab


def test_quantization_degrades_ppl_monotonically(tiny_model, tiny_corpora):
    corpus = tiny_corpora["c4"]
    ppl16 = tiny_model.perplexity(corpus)
    ppls = {
        b: tiny_model.quantized([b] * tiny_model.config.layers).perplexity(corpus)
        for b in (8, 4, 3)
    }
    assert ppl16 <= ppls[8] * 1.001
    assert ppls[8] < ppls[4] < ppls[3]


def test_quantized_needs_bits_per_layer(tiny_model):
    with pytest.raises(ValueError):
        tiny_model.quantized([4, 4])  # wrong length
    with pytest.raises(ValueError):
        tiny_model.quantized([4] * tiny_model.config.layers, method="awq")


def test_fp16_layers_shared_not_copied(tiny_model):
    q = tiny_model.quantized([16] * tiny_model.config.layers)
    assert q.layers[0] is tiny_model.layers[0]


def test_gptq_requires_calibration(tiny_model):
    with pytest.raises(ValueError, match="calib"):
        tiny_model.quantized([4] * tiny_model.config.layers, method="gptq")


def test_capture_layer_inputs_shapes(tiny_model, rng):
    toks = rng.integers(0, tiny_model.config.vocab, size=(2, 24))
    caps = tiny_model.capture_layer_inputs(toks, max_samples=40)
    assert len(caps) == tiny_model.config.layers
    for cap in caps:
        assert "wq" in cap and "w1" in cap and "w2" in cap
        assert cap["wq"].shape[0] == tiny_model.config.hidden
        assert cap["wq"].shape[1] <= 40
        assert cap["w2"].shape[0] == tiny_model.config.ffn


def test_layer_operator_stats(tiny_model, rng):
    toks = rng.integers(0, tiny_model.config.vocab, size=(2, 24))
    stats = tiny_model.layer_operator_stats(toks)
    assert len(stats) == tiny_model.config.layers
    for ops in stats:
        assert all(op.omega(4) > 0 for op in ops)
        assert all(op.omega(16) == 0 for op in ops)


def test_layer_forward_free_function_matches_model(tiny_model, rng):
    toks = rng.integers(0, tiny_model.config.vocab, size=(1, 10))
    x = tiny_model.embed_tokens(toks)
    via_fn = x
    for lw in tiny_model.layers:
        via_fn, _ = layer_forward(tiny_model.config, lw, via_fn)
    assert np.allclose(tiny_model.lm_head(via_fn), tiny_model.logits(toks))


def test_linear_ops_constant():
    assert LINEAR_OPS == ("wq", "wk", "wv", "wo", "w1", "w2")
