#!/usr/bin/env python
"""Online serving on a heterogeneous pipeline: arrivals, continuous
batching, and SLO-aware admission.

The offline simulator answers "how fast does one closed batch finish?".
This demo drives the *online* driver built on the same event core:

1. **The contract.**  With every request arriving at t=0 and admission
   disabled, ``Session.serve_online`` must reproduce the offline
   ``simulate_plan`` bit-for-bit — same makespan, busy time, memory and
   event count.  The demo checks this first (the differential grid in
   ``tests/test_online_sim.py`` pins it permanently).
2. **Steady serving.**  A seeded Poisson stream at 150k requests/day
   (ShareGPT-sampled lengths) flows through the request queue, KV-aware
   admission and continuous micro-batch refill; per-request TTFT/TPOT
   p50/p95/p99 come out the other side.
3. **Overload + load shedding.**  The same group offered 2M requests/day
   with a 2s TTFT SLO: queued requests that blow the SLO are shed at the
   next scheduling point instead of dragging everyone else down.

Set ``SPLITQUANT_TRACE=trace.jsonl`` to capture the span timeline (the
normalized form is a golden fixture: ``tests/data/online_demo_trace
.norm.jsonl``).

Run:  PYTHONPATH=src python examples/online_serving_demo.py
"""

from repro import Session
from repro.hardware import make_cluster
from repro.pipeline import OnlineConfig
from repro.workloads import (
    BatchWorkload,
    closed_batch_trace,
    poisson_trace,
    rate_for_daily,
)


def report(title, res):
    print(f"\n{title}")
    print(f"  arrived/completed   : {res.arrived} / {res.completed}")
    print(f"  rejected (q/slo/oom): {res.rejected_queue} / "
          f"{res.rejected_slo} / {res.rejected_oom}")
    print(f"  groups formed       : {res.groups_formed}")
    print(f"  makespan            : {res.makespan_s:8.2f} s")
    print(f"  throughput          : {res.throughput_tokens_s:8.1f} tok/s")
    print(f"  mean concurrency    : {res.mean_concurrency:8.1f} requests")
    for name, vals in (("TTFT", res.ttft_percentile),
                       ("TPOT", res.tpot_percentile),
                       ("latency", res.latency_percentile)):
        print(f"  {name:<8}p50/p95/p99 : {vals(50):7.3f} / "
              f"{vals(95):7.3f} / {vals(99):7.3f} s")
    if res.ttft_slo_attainment is not None:
        print(f"  TTFT SLO attainment : {100 * res.ttft_slo_attainment:.1f}%"
              f" (SLO {res.ttft_slo_s:.1f} s)")


def main() -> None:
    cluster = make_cluster("demo", [("A100-40G", 1), ("V100-32G", 1)])
    sess = Session("opt-13b", cluster)
    wl = BatchWorkload(batch=16, prompt_len=512, output_len=32,
                       chunk_tokens=512)
    sess.plan(wl)

    # ------------------------------------------------------------------
    # 1. Degenerate online == offline, bit for bit.
    # ------------------------------------------------------------------
    offline = sess.simulate(sim_backend="event")
    degenerate = sess.serve_online(
        closed_batch_trace(wl),
        config=OnlineConfig(chunk_tokens=512, admission="none"),
    )
    assert offline.makespan_s == degenerate.makespan_s
    assert offline.stage_busy_s == degenerate.stage_busy_s
    assert offline.stage_memory_bytes == degenerate.stage_memory_bytes
    assert offline.events_processed == degenerate.events_processed
    print("contract: degenerate online run is bit-identical to the "
          "offline simulator")
    print(f"  makespan {offline.makespan_s:.4f} s, "
          f"{offline.events_processed} events either way")

    # ------------------------------------------------------------------
    # 2. Steady state: 150k requests/day on this two-GPU group.
    # ------------------------------------------------------------------
    steady = poisson_trace(
        rate_per_s=rate_for_daily(150_000), duration_s=60.0, seed=42,
        max_prompt_len=512, max_output_len=32,
    )
    print(f"\narrivals: {steady.describe()}")
    res = sess.serve_online(steady, config=OnlineConfig(chunk_tokens=512))
    report("steady serving (KV admission, no SLO)", res)

    # ------------------------------------------------------------------
    # 3. Overload: 2M requests/day with a 2-second TTFT SLO.
    # ------------------------------------------------------------------
    hot = poisson_trace(
        rate_per_s=rate_for_daily(2_000_000), duration_s=30.0, seed=7,
        max_prompt_len=512, max_output_len=32,
    )
    print(f"\narrivals: {hot.describe()}")
    shed = sess.serve_online(
        hot, config=OnlineConfig(chunk_tokens=512, ttft_slo_s=2.0),
    )
    report("overload with SLO-aware admission (TTFT SLO = 2 s)", shed)
    unshed = sess.serve_online(hot, config=OnlineConfig(chunk_tokens=512))
    print(f"\nwithout shedding the same stream takes "
          f"{unshed.makespan_s:.1f} s (vs {shed.makespan_s:.1f} s) and "
          f"TTFT p95 reaches {unshed.ttft_percentile(95):.1f} s "
          f"(vs {shed.ttft_percentile(95):.1f} s)")


if __name__ == "__main__":
    main()
