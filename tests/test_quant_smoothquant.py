"""Tests for SmoothQuant-style activation smoothing."""

import numpy as np
import pytest

from repro.quant import (
    smooth_linear,
    smoothing_scales,
    w8a8_matmul_error,
)


@pytest.fixture(scope="module")
def outlier_case():
    rng = np.random.default_rng(0)
    w = rng.standard_normal((32, 64)) * 0.1
    x = rng.standard_normal((64, 256))
    x[5] *= 40.0  # one outlier input channel, the SmoothQuant motif
    return w, x


def test_smoothing_is_mathematically_identity(outlier_case):
    w, x = outlier_case
    sm = smooth_linear(w, np.abs(x).max(axis=1))
    out_ref = w @ x
    out_sm = sm.weight @ (x / sm.smoothing[:, None])
    assert np.allclose(out_ref, out_sm)


def test_smoothing_reduces_w8a8_error(outlier_case):
    w, x = outlier_case
    plain = w8a8_matmul_error(w, x, use_smoothing=False)
    smooth = w8a8_matmul_error(w, x, use_smoothing=True)
    assert smooth < plain * 0.6


def test_error_small_without_outliers():
    rng = np.random.default_rng(1)
    w = rng.standard_normal((32, 64)) * 0.1
    x = rng.standard_normal((64, 256))
    assert w8a8_matmul_error(w, x, use_smoothing=True) < 0.02


def test_alpha_bounds():
    rng = np.random.default_rng(2)
    w = rng.standard_normal((4, 8))
    with pytest.raises(ValueError):
        smoothing_scales(np.ones(8), w, alpha=1.5)


def test_alpha_zero_and_one_extremes(outlier_case):
    w, x = outlier_case
    amax = np.abs(x).max(axis=1)
    s0 = smoothing_scales(amax, w, alpha=0.0)
    s1 = smoothing_scales(amax, w, alpha=1.0)
    # alpha=1: scales proportional to activation ranges.
    assert s1[5] / s1[0] == pytest.approx(amax[5] / amax[0], rel=1e-6)
    # alpha=0: scales ignore activations entirely.
    assert not np.allclose(s0[5] / s0[0], amax[5] / amax[0])


def test_scales_positive(outlier_case):
    w, x = outlier_case
    s = smoothing_scales(np.abs(x).max(axis=1), w)
    assert np.all(s > 0)
