"""Fig. 5: prefill/decode kernel latency vs precision and batch size.

One OPT-30B decoder layer at prompt length 512 on T4 / V100 / A100 across
batch sizes {1, 8, 32} and precisions {16, 8, 4, 3}.  The paper's
phenomena: FP16 retains the prefill advantage over 3/4-bit (dequant
overhead in the compute-bound phase), low bits win decode (memory-bound),
tensor-core INT8 is fast on T4/A100 but shape-dependent on V100.
"""

from __future__ import annotations

from ..hardware.gpus import get_gpu
from ..models.architectures import get_model
from ..simgpu.roofline import layer_time
from .harness import ExperimentResult

DEVICES = ("T4-16G", "V100-32G", "A100-40G")
BATCHES = (1, 8, 32)
PRECISIONS = (16, 8, 4, 3)


def run(model_name: str = "opt-30b", prompt: int = 512) -> ExperimentResult:
    spec = get_model(model_name)
    rows = []
    for device in DEVICES:
        gpu = get_gpu(device)
        for phase in ("prefill", "decode"):
            for batch in BATCHES:
                times = {
                    b: layer_time(gpu, spec, b, phase, batch, prompt)
                    for b in PRECISIONS
                }
                rows.append(
                    [device, phase, batch]
                    + [times[b] * 1e3 for b in PRECISIONS]
                )
    v100 = get_gpu("V100-32G")
    t4 = get_gpu("T4-16G")
    summary = {
        # Weight-only low bits pay dequant in prefill:
        "v100_prefill_fp16_over_4bit": layer_time(v100, spec, 16, "prefill", 8, prompt)
        / layer_time(v100, spec, 4, "prefill", 8, prompt),
        # ...but win the memory-bound decode phase:
        "v100_decode_fp16_over_4bit": layer_time(v100, spec, 16, "decode", 8, prompt)
        / layer_time(v100, spec, 4, "decode", 8, prompt),
        # T4 tensor cores make INT8 prefill faster than FP16:
        "t4_prefill_fp16_over_int8": layer_time(t4, spec, 16, "prefill", 8, prompt)
        / layer_time(t4, spec, 8, "prefill", 8, prompt),
        # V100 INT8 lacks tensor cores; prefill INT8 is slower than FP16:
        "v100_prefill_fp16_over_int8": layer_time(v100, spec, 16, "prefill", 8, prompt)
        / layer_time(v100, spec, 8, "prefill", 8, prompt),
    }
    return ExperimentResult(
        name="fig05",
        title="Single-layer latency vs precision and batch (OPT-30B, s=512)",
        headers=["device", "phase", "batch", "fp16_ms", "int8_ms", "4bit_ms",
                 "3bit_ms"],
        rows=rows,
        summary=summary,
        notes=(
            "Expected shape: fp16 <= 4/3-bit in prefill; 4/3-bit < fp16 in "
            "decode; T4/A100 int8 < fp16 in prefill, V100 int8 > fp16."
        ),
    )
