"""The master engine: plan-driven pipelined generation over TinyLM.

The master performs centralized pre/post-processing — token embedding on
the way in, final norm + logit projection and sampling on the way out —
while stage workers hold the quantized decoder layers (Fig. 6's runtime).
Prefill micro-batches are pushed through the pipeline back-to-back; decode
steps iterate with the autoregressive feedback at the master.

Generation is greedy and bit-exact against a single-process reference on
the same quantized weights, which the test suite asserts.

Fault tolerance (offline serving on shared clusters means GPUs die
mid-batch): the master checkpoints every fully-committed token.  When a
stage worker fails — injected via :mod:`repro.runtime.faults` or for real
— the engine classifies the break (worker death, hang, or a stalled
pipeline with healthy workers), removes the dead stage's devices, asks
the planner for a degraded plan over the survivors
(:func:`repro.plan.degrade_plan` by default: same per-layer bitwidths,
re-partitioned under the memory caps), rebuilds the thread pipeline, and
*replays* the committed prefix before continuing.  Replay re-executes the
exact reference computation (prefill, then decode steps feeding the
committed tokens), so degraded generation stays bit-identical to the
fault-free single-process reference.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs import metrics, trace
from ..plan import ExecutionPlan, degrade_plan
from ..quality.tinylm import TinyLM, TinyLMConfig
from .comm import Channel, ChannelClosed, StageFailure
from .faults import FaultInjector, FaultPlan, FaultRecord
from .worker import RegroupMessage, StageMessage, StageWorker

#: Bytes per float64 parameter (TinyLM runs in numpy float64).
_F64 = 8


def tinylm_layer_bytes(config: TinyLMConfig, bits: int) -> int:
    """Resident bytes of one TinyLM decoder layer quantized at ``bits``.

    The runtime's analogue of the paper's per-layer weight term: linear
    weights at the layer's bitwidth plus the FP layer norms.  Used as the
    ``layer_cost`` for memory-capped degraded replanning.
    """
    h, f = config.hidden, config.ffn
    linear = 4 * h * h + 2 * h * f
    norms = 4 * h
    return int(linear * bits / 8) + norms * _F64


@dataclass(frozen=True)
class GenerationResult:
    """Tokens plus runtime telemetry.

    Implements the :class:`repro.api.Summary` protocol —
    :meth:`to_dict` and :attr:`throughput_tokens_s` are uniform across
    planner, simulator and runtime results.
    """

    tokens: np.ndarray  # (B, prompt + generated)
    prefill_time_s: float
    decode_time_s: float
    stage_busy_s: Tuple[float, ...]
    microbatch: int
    #: Recovery attempts performed during this generation.
    replans: int = 0
    #: One record per recovery action, in order.
    fault_events: Tuple[FaultRecord, ...] = ()
    #: The plan the final (successful) attempt executed under.
    plan: Optional[ExecutionPlan] = None
    #: Prompt length folded into :attr:`tokens` (columns before column
    #: ``prompt_tokens`` were inputs, not generated output).
    prompt_tokens: int = 0

    @property
    def duration_s(self) -> float:
        """Measured wall-clock (the Summary-protocol duration)."""
        return self.prefill_time_s + self.decode_time_s

    @property
    def total_time_s(self) -> float:
        """Deprecated alias of :attr:`duration_s`."""
        warnings.warn(
            "GenerationResult.total_time_s is deprecated; use "
            "GenerationResult.duration_s",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.duration_s

    @property
    def generated_tokens(self) -> int:
        """Output tokens per request (sequence length minus the prompt)."""
        return int(self.tokens.shape[1]) - self.prompt_tokens

    @property
    def throughput_tokens_s(self) -> float:
        """Measured output-token throughput across the batch."""
        if self.duration_s <= 0:
            return 0.0
        return self.tokens.shape[0] * self.generated_tokens / self.duration_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict via :mod:`repro.serialization` (round-trip)."""
        from ..serialization import generation_result_to_dict

        return generation_result_to_dict(self)


def reference_generate(
    model: TinyLM, prompts: np.ndarray, n_tokens: int
) -> np.ndarray:
    """Single-process greedy generation (the correctness oracle)."""
    prompts = np.asarray(prompts)
    logits, cache = model.prefill(prompts)
    out = [prompts]
    cur = logits.argmax(axis=-1)
    out.append(cur[:, None])
    for _ in range(n_tokens - 1):
        logits, cache = model.decode_step(cur, cache)
        cur = logits.argmax(axis=-1)
        out.append(cur[:, None])
    return np.concatenate(out, axis=1)


@dataclass
class _Checkpoint:
    """Master-side committed state: one (B,) token array per step."""

    committed: List[np.ndarray] = field(default_factory=list)

    def commit(self, tokens: np.ndarray) -> None:
        self.committed.append(tokens)

    @property
    def steps(self) -> int:
        return len(self.committed)


class PipelineEngine:
    """Distributed (threaded) inference runtime for one execution plan."""

    def __init__(
        self,
        model: TinyLM,
        plan: ExecutionPlan,
        fault_plan: Optional[FaultPlan] = None,
        replan: Optional[
            Callable[[ExecutionPlan, Tuple[int, ...]], ExecutionPlan]
        ] = None,
        device_capacity_bytes: Optional[Dict[int, int]] = None,
        max_replans: int = 2,
        recv_timeout_s: float = 30.0,
        stall_timeout_s: float = 1.0,
        worker_poll_s: float = 0.05,
    ) -> None:
        if plan.num_layers != model.config.layers:
            raise ValueError(
                f"plan has {plan.num_layers} layers, model has "
                f"{model.config.layers}"
            )
        self.plan = plan
        #: The quantized model (kept for reference checks and the LM head).
        self.model = model.quantized(list(plan.bits_per_layer))
        self.config = model.config
        self.injector = FaultInjector(fault_plan)
        self.device_capacity_bytes = device_capacity_bytes
        self.max_replans = max_replans
        self.recv_timeout_s = recv_timeout_s
        self.stall_timeout_s = stall_timeout_s
        self.worker_poll_s = worker_poll_s
        self._replan_fn = replan or self._default_replan
        #: Every plan this engine has executed under, initial plan first.
        self.plan_history: List[ExecutionPlan] = [plan]
        #: Every recovery action ever taken (across generate() calls).
        self.fault_records: List[FaultRecord] = []
        #: Busy seconds of workers retired by rebuilds.
        self.retired_busy_s: float = 0.0
        self._expected_bits = plan.bits_per_layer
        self._dead_devices: set = set()
        self._channels: List[Channel] = []
        self._workers: List[StageWorker] = []
        self._build_pipeline(plan)
        self._started = False

    # ------------------------------------------------------------------
    # Pipeline construction / teardown
    # ------------------------------------------------------------------

    def _build_pipeline(self, plan: ExecutionPlan) -> None:
        self._channels = []
        self._workers = []
        prev = Channel("master->stage0")
        self._channels.append(prev)
        for j, st in enumerate(plan.stages):
            nxt = Channel(
                f"stage{j}->"
                + ("master" if j == plan.num_stages - 1 else f"stage{j + 1}")
            )
            worker = StageWorker(
                stage_index=j,
                config=self.config,
                layers=self.model.layers[st.layer_start : st.layer_end],
                in_ch=prev,
                out_ch=nxt,
                injector=self.injector,
                poll_s=self.worker_poll_s,
            )
            # The receiving end of `nxt` can now tell a clean close from
            # this worker dying — and drop faults intercept its sends.
            nxt.bind_sender(
                j,
                (lambda w=worker: w.error),
                fault_hook=self.injector.drop_hook(j),
            )
            self._channels.append(nxt)
            self._workers.append(worker)
            prev = nxt
        self._in = self._channels[0]
        self._out = self._channels[-1]

    def _teardown_pipeline(self) -> None:
        self._in.close()
        for w in self._workers:
            w.join(timeout=2.0)
            self.retired_busy_s += w.busy_time
        self._workers = []

    @property
    def current_plan(self) -> ExecutionPlan:
        """The plan the pipeline is currently built for."""
        return self.plan_history[-1]

    def start(self) -> None:
        if not self._started:
            for w in self._workers:
                w.start()
            self._started = True

    def shutdown(self) -> None:
        if self._started:
            self._teardown_pipeline()
            self._started = False

    def __enter__(self) -> "PipelineEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Failure detection and recovery
    # ------------------------------------------------------------------

    def _check_workers(self) -> None:
        for w in self._workers:
            if w.error is not None:
                raise StageFailure(
                    f"{w.name} failed: {w.error!r}", stage=w.stage_index
                ) from w.error

    def _dead_stage_indices(self) -> Tuple[List[int], str]:
        """Classify the break: which stages are gone, and why."""
        dead = [
            w.stage_index for w in self._workers if w.error is not None
        ]
        if dead:
            return dead, "stage-failure"
        now = time.monotonic()
        hung = [
            w.stage_index
            for w in self._workers
            if w.is_alive()
            and now - w.last_heartbeat > self.stall_timeout_s
        ]
        if trace.enabled and self._workers:
            metrics.gauge("runtime.heartbeat_age_s").set(
                max(now - w.last_heartbeat for w in self._workers)
            )
        if hung:
            return hung, "hang"
        # All workers healthy and responsive yet the pipeline made no
        # progress: a message was lost in transit.
        return [], "stall"

    def _default_replan(
        self, plan: ExecutionPlan, surviving: Tuple[int, ...]
    ) -> ExecutionPlan:
        layer_cost = None
        if self.device_capacity_bytes is not None:
            cfg = self.config
            layer_cost = lambda i, b: tinylm_layer_bytes(cfg, b)  # noqa: E731
        return degrade_plan(
            plan,
            surviving,
            capacity_bytes=self.device_capacity_bytes,
            layer_cost=layer_cost,
        )

    def _recover(self, ckpt: _Checkpoint) -> FaultRecord:
        """Degrade-and-replan (or rebuild) after a pipeline break."""
        with trace.span("runtime.recover", committed=ckpt.steps) as sp:
            record = self._recover_inner(ckpt)
            sp.set(
                kind=record.kind,
                action=record.action,
                dead_stages=len(record.dead_stages),
            )
            if trace.enabled:
                metrics.counter("runtime.recoveries").inc()
                metrics.counter(f"runtime.recoveries_{record.action}").inc()
            return record

    def _recover_inner(self, ckpt: _Checkpoint) -> FaultRecord:
        dead_stages, kind = self._dead_stage_indices()
        plan = self.plan_history[-1]
        dead_devices = tuple(
            d for j in dead_stages for d in plan.stages[j].device_ids
        )
        self._dead_devices.update(dead_devices)
        detail = "; ".join(
            f"stage-{j}: {self._workers[j].error!r}"
            for j in dead_stages
            if self._workers[j].error is not None
        )
        self._teardown_pipeline()
        if dead_devices:
            surviving = tuple(
                d
                for st in plan.stages
                for d in st.device_ids
                if d not in self._dead_devices
            )
            with trace.span("runtime.replan", survivors=len(surviving)):
                new_plan = self._replan_fn(plan, surviving)
            if new_plan.bits_per_layer != self._expected_bits:
                raise RuntimeError(
                    "degraded replan changed per-layer bitwidths; the "
                    "quantized weights are fixed at runtime"
                )
            action = "replan"
        else:
            new_plan = plan  # lost message: same devices, fresh pipeline
            action = "rebuild"
        record = FaultRecord(
            kind=kind,
            dead_stages=tuple(dead_stages),
            dead_devices=dead_devices,
            committed_tokens=ckpt.steps,
            action=action,
            detail=detail,
        )
        self.fault_records.append(record)
        self.plan_history.append(new_plan)
        self._build_pipeline(new_plan)
        for w in self._workers:
            w.start()
        return record

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def _round_trip(
        self, jobs: List[StageMessage]
    ) -> Dict[int, np.ndarray]:
        """Push jobs through the pipeline; collect outputs by micro-batch."""
        for msg in jobs:
            self._in.send(msg)
        results: Dict[int, np.ndarray] = {}
        for _ in jobs:
            out = self._out.recv(timeout=self.recv_timeout_s)
            results[out.mb_id] = out.hidden
        return results

    @staticmethod
    def _slices(batch: int, mb: int) -> List[slice]:
        return [slice(s, min(s + mb, batch)) for s in range(0, batch, mb)]

    def _switch_phase(
        self, pre_slices: List[slice], dec_slices: List[slice]
    ) -> None:
        """Regroup the workers' KV caches from eta- to xi-micro-batches."""
        groups = []
        for d in dec_slices:
            parts = []
            for p_idx, p in enumerate(pre_slices):
                lo = max(d.start, p.start)
                hi = min(d.stop, p.stop)
                if lo < hi:
                    parts.append((p_idx, lo - p.start, hi - p.start))
            groups.append(tuple(parts))
        self._in.send(RegroupMessage(groups=tuple(groups)))
        echoed = self._out.recv(timeout=self.recv_timeout_s)
        if not isinstance(echoed, RegroupMessage):
            raise RuntimeError("phase switch desynchronized the pipeline")

    def _generate_attempt(
        self,
        prompts: np.ndarray,
        n_tokens: int,
        ckpt: _Checkpoint,
        forced_mb: Optional[int],
    ) -> Tuple[float, float, int]:
        """One pipeline pass: replay the committed prefix, then continue.

        Returns (prefill_time, decode_time, xi).  Raises StageFailure /
        ChannelClosed / TimeoutError on a pipeline break; ``ckpt`` keeps
        everything committed so far.
        """
        with trace.span(
            "runtime.attempt",
            stages=self.plan_history[-1].num_stages,
            replay_steps=ckpt.steps,
        ):
            return self._attempt_inner(prompts, n_tokens, ckpt, forced_mb)

    @staticmethod
    def _note_commit(step: int) -> None:
        """Zero-length marker span + counter for a committed token step."""
        if trace.enabled:
            with trace.span("runtime.commit", step=step):
                pass
            metrics.counter("runtime.committed_tokens").inc()

    def _attempt_inner(
        self,
        prompts: np.ndarray,
        n_tokens: int,
        ckpt: _Checkpoint,
        forced_mb: Optional[int],
    ) -> Tuple[float, float, int]:
        plan = self.plan_history[-1]
        B, T = prompts.shape
        eta = forced_mb or min(plan.prefill_microbatch, B)
        xi = forced_mb or min(plan.decode_microbatch, B)
        pre_slices = self._slices(B, eta)
        dec_slices = self._slices(B, xi)
        for w in self._workers:
            w.reset_caches()

        # Prefill: all micro-batches in flight back-to-back.
        t0 = time.perf_counter()
        with trace.span("runtime.prefill", microbatches=len(pre_slices)):
            jobs = [
                StageMessage(
                    phase="prefill",
                    mb_id=i,
                    hidden=self.model.embed_tokens(prompts[sl]),
                )
                for i, sl in enumerate(pre_slices)
            ]
            hiddens = self._round_trip(jobs)
            cur = np.empty(B, dtype=np.int64)
            for i, sl in enumerate(pre_slices):
                logits = self.model.lm_head(hiddens[i][:, -1:, :])[:, 0, :]
                cur[sl] = logits.argmax(axis=-1)
            if pre_slices != dec_slices:
                self._switch_phase(pre_slices, dec_slices)
        prefill_time = time.perf_counter() - t0
        if ckpt.steps == 0:
            ckpt.commit(cur.copy())
            self._note_commit(0)
        elif not np.array_equal(cur, ckpt.committed[0]):
            raise RuntimeError("replay diverged from the committed prefix")

        # Decode: per-step feedback at the master, micro-batches pipelined.
        # Steps <= the committed prefix are *replays* feeding the committed
        # tokens (deterministic KV reconstruction after a rebuild).
        t1 = time.perf_counter()
        with trace.span(
            "runtime.decode",
            steps=n_tokens - 1,
            microbatches=len(dec_slices),
        ):
            for step in range(1, n_tokens):
                pos = T + step - 1
                feed = ckpt.committed[step - 1]
                jobs = [
                    StageMessage(
                        phase="decode",
                        mb_id=i,
                        hidden=self.model.embed_tokens(
                            feed[sl].reshape(-1, 1), start_pos=pos
                        ),
                        step=step,
                    )
                    for i, sl in enumerate(dec_slices)
                ]
                hiddens = self._round_trip(jobs)
                nxt = np.empty(B, dtype=np.int64)
                for i, sl in enumerate(dec_slices):
                    logits = self.model.lm_head(hiddens[i][:, -1:, :])[:, 0, :]
                    nxt[sl] = logits.argmax(axis=-1)
                if step >= ckpt.steps:
                    ckpt.commit(nxt.copy())
                    self._note_commit(step)
                elif not np.array_equal(nxt, ckpt.committed[step]):
                    raise RuntimeError(
                        "replay diverged from the committed prefix"
                    )
        decode_time = time.perf_counter() - t1
        self._check_workers()
        return prefill_time, decode_time, xi

    def generate(
        self,
        prompts: np.ndarray,
        n_tokens: int,
        microbatch: Optional[int] = None,
    ) -> GenerationResult:
        """Greedy generation of ``n_tokens`` per request.

        Prefill runs at the plan's eta and decode at its xi; between the
        phases the master regroups the stage KV caches (the dynamic
        micro-batch adaptation of Fig. 6).  Passing ``microbatch`` forces
        one size for both phases.

        Survives up to ``max_replans`` pipeline breaks per call by
        degrading onto the surviving devices and replaying the committed
        token prefix; the output is bit-identical to the fault-free
        single-process reference either way.
        """
        if not self._started:
            raise RuntimeError("engine not started; use `with engine:`")
        prompts = np.asarray(prompts)
        with trace.span(
            "runtime.generate",
            batch=int(prompts.shape[0]),
            n_tokens=n_tokens,
        ) as sp:
            ckpt = _Checkpoint()
            events: List[FaultRecord] = []
            prefill_total = 0.0
            decode_total = 0.0
            attempts = 0
            while True:
                try:
                    prefill_t, decode_t, xi = self._generate_attempt(
                        prompts, n_tokens, ckpt, microbatch
                    )
                    prefill_total += prefill_t
                    decode_total += decode_t
                    break
                except (StageFailure, ChannelClosed, TimeoutError) as exc:
                    if attempts >= self.max_replans:
                        self._started = False  # pipeline already torn
                        raise
                    attempts += 1
                    record = self._recover(ckpt)  # may raise InfeasibleError
                    events.append(record)
                    del exc
            tokens = np.concatenate(
                [prompts] + [c[:, None] for c in ckpt.committed], axis=1
            )
            sp.set(replans=attempts)
            if trace.enabled:
                metrics.counter("runtime.generations").inc()
                metrics.counter("runtime.replans").inc(attempts)
            return GenerationResult(
                tokens=tokens,
                prefill_time_s=prefill_total,
                decode_time_s=decode_total,
                stage_busy_s=tuple(w.busy_time for w in self._workers),
                microbatch=xi,
                replans=attempts,
                fault_events=tuple(events),
                plan=self.plan_history[-1],
                prompt_tokens=int(prompts.shape[1]),
            )
