"""SplitQuantPlanner: the offline assigner (Fig. 6, step 2).

Ties the whole pipeline together: fit cost models from calibration
payloads, build the variance-indicator table, enumerate pruned device
topologies and (prefill, decode) micro-batch pairs, solve the joint
partition/bitwidth problem for each candidate (exact ILP or the
bitwidth-transfer heuristic), and emit the best
:class:`~repro.plan.ExecutionPlan`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..costmodel.latency import LatencyCostModel
from ..costmodel.memory import (
    MemoryCostModel,
    activation_workspace_bytes,
    embedding_memory_bytes,
)
from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..models import layers as _L
from ..obs import metrics, trace
from ..plan import ExecutionPlan, InfeasibleError, StagePlan, degrade_plan
from ..quant.sensitivity import normalized_indicator_table
from ..workloads.spec import BatchWorkload
from .config import PlannerConfig
from .costs import PlanningProblem, StageGroup, build_problem
from .enumeration import candidate_orderings, microbatch_candidates
from .heuristic import bitwidth_transfer
from .ilp import ILPSolution, solve_adabits, solve_partition_ilp
from .search import CandidateSearchEngine, CandidateStat, SearchStats

#: How deep into the ranked candidate frontier the objective re-rank
#: looks (at least ``config.verify_top_k``): every scored candidate gets
#: a full energy/cost-stamped simulation, so this bounds the sweep.
OBJECTIVE_FRONTIER_K = 16

__all__ = [
    "CandidateStat",
    "OBJECTIVE_FRONTIER_K",
    "PlannerResult",
    "SplitQuantPlanner",
    "degrade_execution_plan",
    "reduced_cluster",
    "solution_to_plan",
]


def reduced_cluster(
    cluster: ClusterSpec, surviving_device_ids: Sequence[int]
) -> ClusterSpec:
    """Deprecated shim: use :meth:`SplitQuantPlanner.replan` with a
    :class:`~repro.core.replan.ClusterDelta` (or :func:`_reduced_cluster`
    internally)."""
    warnings.warn(
        "repro.core.planner.reduced_cluster is deprecated; use "
        "SplitQuantPlanner.replan(prev, ClusterDelta(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _reduced_cluster(cluster, surviving_device_ids)


def _reduced_cluster(
    cluster: ClusterSpec, surviving_device_ids: Sequence[int]
) -> ClusterSpec:
    """The cluster restricted to the surviving devices.

    The degrade-and-replan path plans against this after GPU failures.
    Raises :class:`InfeasibleError` when nothing survives.
    """
    surviving = set(surviving_device_ids)
    devices = tuple(d for d in cluster.devices if d.device_id in surviving)
    if not devices:
        raise InfeasibleError(
            f"cluster {cluster.name!r}: no surviving devices"
        )
    return ClusterSpec(
        name=f"{cluster.name}-degraded",
        devices=devices,
        cross_node_link=cluster.cross_node_link,
    )


def degrade_execution_plan(
    plan: ExecutionPlan,
    surviving_device_ids: Sequence[int],
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
) -> ExecutionPlan:
    """Deprecated shim: use :meth:`SplitQuantPlanner.replan` with a
    :class:`~repro.core.replan.ClusterDelta` (the incremental repair path
    runs this plan-level degrade as its first candidate)."""
    warnings.warn(
        "repro.core.planner.degrade_execution_plan is deprecated; use "
        "SplitQuantPlanner.replan(prev, ClusterDelta(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return degrade_execution_plan_internal(
        plan, surviving_device_ids, cluster, spec, workload
    )


def degrade_execution_plan_internal(
    plan: ExecutionPlan,
    surviving_device_ids: Sequence[int],
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
) -> ExecutionPlan:
    """Re-partition a plan over the surviving devices, memory-checked.

    Keeps the per-layer bitwidths fixed (the quantized weights already
    exist; re-quantization is offline work) and re-partitions under the
    paper's memory cost model: per-layer cost is weights + KV reservation
    at the plan's ``bit_kv``, and each group's capacity is its usable
    HBM minus the activation workspace and (for the first/last group) the
    embedding / LM-head residency — matching
    :func:`repro.pipeline.simulator.check_plan_memory`, which the result
    is validated against.  Raises :class:`InfeasibleError` when no
    memory-respecting contiguous partition exists.
    """
    with trace.span(
        "planner.degrade",
        survivors=len(tuple(surviving_device_ids)),
        stages=len(plan.stages),
    ):
        return _degrade_execution_plan(
            plan, surviving_device_ids, cluster, spec, workload
        )


def _degrade_execution_plan(
    plan: ExecutionPlan,
    surviving_device_ids: Sequence[int],
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
) -> ExecutionPlan:
    from ..pipeline.simulator import check_plan_memory
    from ..simgpu.memory import OutOfMemoryError

    mem = MemoryCostModel(
        spec=spec,
        batch=workload.batch,
        context=workload.context_len,
        bit_kv=plan.bit_kv,
        chunk_tokens=workload.chunk_len,
    )
    by_id = {d.device_id: d for d in cluster.devices}
    surviving = [d for d in surviving_device_ids if d in by_id]
    groups = [
        st
        for st in plan.stages
        if all(d in surviving for d in st.device_ids)
    ]
    if not groups:
        raise InfeasibleError(
            f"no surviving stage groups (survivors={sorted(surviving)})"
        )
    overhead = activation_workspace_bytes(
        spec, plan.prefill_microbatch, min(workload.chunk_len, workload.context_len)
    )
    capacity: Dict[int, int] = {}
    for g_idx, g in enumerate(groups):
        group_cap = sum(by_id[d].gpu.usable_mem_bytes for d in g.device_ids)
        group_cap -= overhead
        if g_idx == 0:
            group_cap -= embedding_memory_bytes(
                spec, plan.prefill_microbatch
            )
        if g_idx == len(groups) - 1 and len(groups) > 1:
            group_cap -= spec.lm_head_elements * _L.FP16_BYTES
        # Spread the group's effective capacity over its devices so
        # degrade_plan's per-group sums reproduce it.
        per_dev, rem = divmod(max(group_cap, 0), len(g.device_ids))
        for k, d in enumerate(g.device_ids):
            capacity[d] = per_dev + (rem if k == 0 else 0)
    new_plan = degrade_plan(
        plan,
        surviving,
        capacity_bytes=capacity,
        layer_cost=lambda i, b: mem.layer_bytes(b),
    )
    try:
        check_plan_memory(new_plan, cluster, spec, workload)
    except OutOfMemoryError as exc:
        raise InfeasibleError(
            f"degraded plan fails the memory model: {exc}"
        ) from exc
    return new_plan


@dataclass(frozen=True)
class PlannerResult:
    """The assigner's output.

    Implements the :class:`repro.api.Summary` protocol —
    :meth:`to_dict` and :attr:`throughput_tokens_s` are uniform across
    planner, simulator and runtime results.
    """

    plan: ExecutionPlan
    predicted_latency_s: float
    predicted_quality: float
    #: Predicted output-token throughput (the paper's headline metric).
    throughput_tokens_s: float
    solve_time_s: float
    candidates_tried: int
    stats: Tuple[CandidateStat, ...]
    #: Search-engine observability (``None`` for the naive reference path).
    search: Optional[SearchStats] = None
    #: Provenance: which planning tier produced this result ("exact",
    #: "dp", "incremental-repair", "incremental-resolve", ...), mirroring
    #: the simulator's ``sim_backend`` / ``backend_reason`` pattern.
    tier: str = field(default="exact", compare=False)
    tier_reason: str = field(default="", compare=False)
    #: DP tier only: certified score / lower-bound ratio (>= 1) over the
    #: enumerated candidate set; ``None`` on the exact tier.
    gap_bound: Optional[float] = field(default=None, compare=False)
    #: The workload this result planned (incremental re-solve warm-starts
    #: from it); ``None`` on results restored from older caches.
    workload: Optional[BatchWorkload] = field(default=None, compare=False)
    #: Provenance: the objective this plan optimized (``"throughput"``,
    #: ``"energy"`` or ``"cost"``) and its optional budget ceiling
    #: (J/token under ``"energy"``, $/Mtoken under ``"cost"``).
    objective: str = field(default="throughput", compare=False)
    budget: Optional[float] = field(default=None, compare=False)
    #: Joules / dollars the chosen plan is predicted to draw on the
    #: planning workload (from the objective re-rank's simulation sweep);
    #: ``None`` on the default throughput path, which skips that sweep.
    predicted_energy_j: Optional[float] = field(default=None, compare=False)
    predicted_cost_usd: Optional[float] = field(default=None, compare=False)

    @property
    def predicted_throughput(self) -> float:
        """Deprecated alias of :attr:`throughput_tokens_s`."""
        warnings.warn(
            "PlannerResult.predicted_throughput is deprecated; use "
            "PlannerResult.throughput_tokens_s",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.throughput_tokens_s

    @property
    def duration_s(self) -> float:
        """Planning wall-clock (the Summary-protocol duration)."""
        return self.solve_time_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict via :mod:`repro.serialization` (round-trip)."""
        from ..serialization import planner_result_to_dict

        return planner_result_to_dict(self)


def solution_to_plan(
    spec: ModelSpec,
    ordering: Sequence[StageGroup],
    group_sizes: Sequence[int],
    solution: ILPSolution,
    eta: int,
    xi: int,
    bit_kv: int,
) -> ExecutionPlan:
    """Expand a grouped ILP solution into a concrete execution plan."""
    layer_bits: List[int] = []
    layer_stage: List[int] = []
    for g, size in enumerate(group_sizes):
        layer_bits.extend([solution.assign_bits[g]] * size)
        layer_stage.extend([solution.assign_stage[g]] * size)
    stages: List[StagePlan] = []
    start = 0
    for j, sg in enumerate(ordering):
        bits = tuple(
            b for b, s in zip(layer_bits, layer_stage) if s == j
        )
        if not bits:
            raise ValueError(f"stage {j} received no layers")
        stages.append(
            StagePlan(
                device_ids=sg.device_ids,
                gpu_name=sg.gpu.name,
                layer_start=start,
                layer_bits=bits,
            )
        )
        start += len(bits)
    return ExecutionPlan(
        model_name=spec.name,
        stages=tuple(stages),
        prefill_microbatch=eta,
        decode_microbatch=xi,
        bit_kv=bit_kv,
    )


class SplitQuantPlanner:
    """Joint optimizer of quantization, partition and micro-batching."""

    def __init__(
        self,
        spec: ModelSpec,
        cluster: ClusterSpec,
        config: PlannerConfig = PlannerConfig(),
        cost_model: Optional[LatencyCostModel] = None,
        omega_layers: Optional[np.ndarray] = None,
    ) -> None:
        self.spec = spec
        self.cluster = cluster
        self.config = config
        if cost_model is None:
            cost_model = LatencyCostModel(spec, bit_kv=config.bit_kv)
            gpus = {d.gpu.name: d.gpu for d in cluster.devices}
            cost_model.fit(gpus.values(), config.bit_choices)
        self.cost_model = cost_model
        if omega_layers is None:
            omega_layers = normalized_indicator_table(spec, config.bit_choices)
        if omega_layers.shape != (spec.num_layers, len(config.bit_choices)):
            raise ValueError(
                "omega_layers must be (num_layers x len(bit_choices))"
            )
        self.omega_layers = omega_layers
        self._kv_cost_models = {config.bit_kv: self.cost_model}

    def cost_model_for_kv(self, bit_kv: int) -> LatencyCostModel:
        """Cost model fitted at the given KV-cache bitwidth (lazy)."""
        if bit_kv not in self._kv_cost_models:
            cm = LatencyCostModel(self.spec, bit_kv=bit_kv)
            gpus = {d.gpu.name: d.gpu for d in self.cluster.devices}
            cm.fit(gpus.values(), self.config.bit_choices)
            self._kv_cost_models[bit_kv] = cm
        return self._kv_cost_models[bit_kv]

    def uniform_quality(self, bits: int) -> float:
        """Summed indicator of uniform quantization at ``bits``.

        The Sec. VI-C quality budget: SplitQuant plans are constrained to
        at most the Uniform baseline's indicator sum.
        """
        k = list(self.config.bit_choices).index(bits)
        return float(self.omega_layers[:, k].sum())

    def _solve_one(
        self,
        problem: PlanningProblem,
        warm_start: Optional[ILPSolution] = None,
    ) -> Optional[ILPSolution]:
        cfg = self.config
        # In hard-budget mode (Sec. VI-C) quality is a constraint, not an
        # objective term — theta would otherwise bias the solve away from
        # the latency optimum the budget already safeguards.
        theta = 0.0 if cfg.quality_budget is not None else cfg.theta
        if cfg.use_heuristic:
            return bitwidth_transfer(
                problem,
                theta=theta,
                quality_budget=cfg.quality_budget,
                time_limit_s=cfg.time_limit_s,
                start=warm_start,
            )
        return solve_partition_ilp(
            problem,
            theta=theta,
            quality_budget=cfg.quality_budget,
            time_limit_s=cfg.time_limit_s,
        )

    def _verify_candidates(
        self, top, workload: BatchWorkload
    ) -> Tuple[Any, int, int]:
        """Dry-run the leading candidates through the simulator, batched.

        Timing comes from the fitted cost model (never the testbed truth),
        so this is a pure refinement of the analytic pipeline formula —
        it captures bubble/feedback effects the closed form approximates.
        The whole top-k frontier is scored in one batched fastsim sweep
        (bit-identical to per-plan simulation); the discrete-event engine
        then re-simulates the winner as the bit-exactness oracle, falling
        back to per-candidate event selection if the check ever fails.
        Returns ``(winner, plans_scored, batches)``.
        """
        from ..pipeline.batchsim import PlanCase, evaluate_plans
        from ..pipeline.simulator import simulate_plan
        from ..pipeline.stage import CostModelTiming

        with trace.span("planner.verify", k=len(top)):
            cases: List[Tuple[Any, "PlanCase"]] = []
            for cand in top:
                _, sol, ordering, group_sizes, eta, xi, bit_kv = cand
                timing = CostModelTiming(
                    cost_model=self.cost_model_for_kv(bit_kv), spec=self.spec
                )
                try:
                    plan = solution_to_plan(
                        self.spec, ordering, group_sizes, sol, eta, xi, bit_kv
                    )
                except (ValueError, RuntimeError):
                    continue
                cases.append(
                    (cand, PlanCase(plan, self.cluster, self.spec,
                                    workload, timing))
                )
            if not cases:
                return top[0], 0, 0
            try:
                results = evaluate_plans([pc for _, pc in cases])
            except (ValueError, RuntimeError):
                best = self._verify_candidates_inner(
                    top, workload, simulate_plan, CostModelTiming
                )
                return best, 0, 0
            best = None
            best_makespan = float("inf")
            best_pc = best_res = None
            for (cand, pc), res in zip(cases, results):
                sol = cand[1]
                penalty = (
                    0.0
                    if self.config.quality_budget is not None
                    else self.config.theta * sol.quality
                )
                if res.makespan_s + penalty < best_makespan:
                    best_makespan = res.makespan_s + penalty
                    best, best_pc, best_res = cand, pc, res
            if best is None:
                return top[0], len(cases), 1
            # Differential oracle: the event engine re-simulates the
            # winner; any disagreement with the batched score falls back
            # to the per-candidate event path (and is counted).
            oracle = simulate_plan(
                best_pc.plan, self.cluster, self.spec, workload,
                timing=best_pc.timing, check_memory=False,
                sim_backend="event",
            )
            if oracle != best_res:  # pragma: no cover - exactness guard
                if trace.enabled:
                    metrics.counter("planner.verify_oracle_mismatch").inc()
                best = self._verify_candidates_inner(
                    top, workload, simulate_plan, CostModelTiming
                )
            return best, len(cases), 1

    def _verify_candidates_inner(
        self, top, workload, simulate_plan, CostModelTiming
    ):
        best = None
        best_makespan = float("inf")
        for cand in top:
            _, sol, ordering, group_sizes, eta, xi, bit_kv = cand
            timing = CostModelTiming(
                cost_model=self.cost_model_for_kv(bit_kv), spec=self.spec
            )
            try:
                plan = solution_to_plan(
                    self.spec, ordering, group_sizes, sol, eta, xi, bit_kv
                )
                res = simulate_plan(
                    plan, self.cluster, self.spec, workload,
                    timing=timing, check_memory=False,
                )
            except (ValueError, RuntimeError):
                continue
            penalty = (
                0.0
                if self.config.quality_budget is not None
                else self.config.theta * sol.quality
            )
            if res.makespan_s + penalty < best_makespan:
                best_makespan = res.makespan_s + penalty
                best = cand
        return best if best is not None else top[0]

    def resolve_tier(self, tier: Optional[str] = None) -> Tuple[str, str]:
        """Resolve a requested tier to a concrete one, with a reason.

        ``None`` defers to ``config.tier``; ``"auto"`` routes by instance
        size: the exact tier up to ``config.auto_exact_max_devices``
        devices, the scalable DP tier beyond.
        """
        requested = tier if tier is not None else self.config.tier
        if requested not in ("auto", "exact", "dp"):
            raise ValueError(
                f"unknown planner tier {requested!r} "
                "(expected 'auto', 'exact' or 'dp')"
            )
        if requested != "auto":
            return requested, "requested"
        n = len(self.cluster.devices)
        limit = self.config.auto_exact_max_devices
        if n <= limit:
            return "exact", f"auto: {n} devices <= {limit}"
        return "dp", f"auto: {n} devices > {limit}"

    def plan(
        self,
        workload: BatchWorkload,
        *,
        tier: Optional[str] = None,
        objective: Optional[str] = None,
        budget: Optional[float] = None,
    ) -> Optional[PlannerResult]:
        """Plan serving of ``workload``; ``None`` when nothing fits.

        ``tier`` overrides ``config.tier`` for this call: ``"exact"``
        routes through the
        :class:`~repro.core.search.CandidateSearchEngine` (memoized
        costs, admissible bound pruning, optional parallel solving;
        bit-identical to the naive reference), ``"dp"`` through the
        scalable segment-DP planner (:mod:`repro.core.dp`), ``"auto"``
        picks by instance size.  :attr:`PlannerResult.tier` records the
        resolved tier.

        ``objective`` / ``budget`` override ``config.objective`` /
        ``config.budget`` for this call.  ``"energy"`` and ``"cost"``
        re-rank the ranked candidate frontier through the energy model
        (:mod:`repro.costmodel.energy`): with no budget they minimize
        J/token (resp. $/Mtoken); with a budget they maximize throughput
        subject to that ceiling, raising :class:`InfeasibleError` when
        no candidate fits under it.  The default ``"throughput"``
        objective with no budget leaves the search untouched — the
        chosen plan is bit-identical to pre-energy planning.
        """
        resolved, reason = self.resolve_tier(tier)
        if resolved == "dp":
            return self._plan_dp(
                workload, reason, objective=objective, budget=budget
            )
        t0 = time.perf_counter()
        with trace.span(
            "planner.plan",
            model=self.spec.name,
            cluster=self.cluster.name,
            batch=workload.batch,
            output_len=workload.output_len,
        ) as sp:
            engine = CandidateSearchEngine(
                self.spec,
                self.cluster,
                self.config,
                self.omega_layers,
                self.cost_model_for_kv,
                self._solve_one,
            )
            outcome = engine.search(workload)
            result = self._finish(
                outcome.ranked,
                outcome.stats,
                workload,
                t0,
                search=outcome.search,
                objective=objective,
                budget=budget,
            )
            if result is not None:
                result = replace(result, tier="exact", tier_reason=reason)
            sp.set(feasible=result is not None)
            if trace.enabled:
                metrics.counter("planner.plans").inc()
                metrics.histogram("planner.plan_wall_s").observe(
                    time.perf_counter() - t0
                )
                if result is None:
                    metrics.counter("planner.plans_infeasible").inc()
            return result

    def _plan_dp(
        self,
        workload: BatchWorkload,
        reason: str,
        objective: Optional[str] = None,
        budget: Optional[float] = None,
    ) -> Optional[PlannerResult]:
        """The scalable tier: segment DP + flow relaxation, no MILP."""
        from .dp import dp_search

        t0 = time.perf_counter()
        with trace.span(
            "planner.plan_dp",
            model=self.spec.name,
            cluster=self.cluster.name,
            batch=workload.batch,
            output_len=workload.output_len,
        ) as sp:
            outcome = dp_search(
                self.spec,
                self.cluster,
                self.config,
                self.omega_layers,
                self.cost_model_for_kv,
                workload,
            )
            result = self._finish(
                outcome.ranked,
                outcome.stats,
                workload,
                t0,
                search=outcome.search,
                objective=objective,
                budget=budget,
            )
            if result is not None:
                result = replace(
                    result,
                    tier="dp",
                    tier_reason=reason,
                    gap_bound=outcome.gap_bound,
                )
            sp.set(feasible=result is not None)
            if trace.enabled:
                metrics.counter("planner.plans").inc()
                metrics.counter("planner.dp_plans").inc()
                if result is None:
                    metrics.counter("planner.plans_infeasible").inc()
            return result

    def replan(
        self,
        prev: Union[PlannerResult, BatchWorkload],
        delta: Any = None,
        *,
        workload: Optional[BatchWorkload] = None,
    ) -> PlannerResult:
        """Re-solve after a cluster or job change, warm-starting from
        ``prev``.

        The unified re-planning surface: ``prev`` is the previous
        :class:`PlannerResult` and ``delta`` a
        :class:`~repro.core.replan.ClusterDelta` (GPUs died) or
        :class:`~repro.core.replan.JobDelta` (the workload changed).
        Incremental repair candidates (plan-level degrade, warm-started
        segment re-solve) are scored through one batched fastsim sweep;
        a cold re-plan runs only when every repair fails, so the result
        is feasibility-equivalent to planning from scratch.  ``workload``
        overrides ``prev.workload`` when the previous result predates
        workload provenance.  Raises :class:`InfeasibleError` when
        nothing fits.

        The legacy form ``replan(workload, surviving_device_ids)`` is
        deprecated and runs the old cold re-plan on the reduced cluster.
        """
        if isinstance(prev, BatchWorkload):
            warnings.warn(
                "SplitQuantPlanner.replan(workload, surviving_device_ids) "
                "is deprecated; use replan(prev_result, "
                "ClusterDelta(removed_device_ids=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if delta is None:
                raise TypeError(
                    "legacy replan(workload, surviving_device_ids) needs "
                    "the surviving device ids"
                )
            return self.replan_cold(prev, delta)
        from .replan import replan_incremental

        return replan_incremental(self, prev, delta, workload=workload)

    def replan_cold(
        self,
        workload: BatchWorkload,
        surviving_device_ids: Sequence[int],
    ) -> PlannerResult:
        """Full re-plan from scratch on the reduced cluster of survivors.

        Unlike the plan-level degrade (which keeps per-layer bitwidths
        fixed so an in-flight generation stays bit-exact), this runs the
        complete joint optimization over the survivors — bitwidths,
        partition and micro-batching may all change.  The incremental
        path (:meth:`replan`) falls back to this when no repair fits.
        Raises :class:`InfeasibleError` when no plan fits.
        """
        with trace.span(
            "planner.replan",
            survivors=len(tuple(surviving_device_ids)),
        ):
            reduced = _reduced_cluster(self.cluster, surviving_device_ids)
            planner = SplitQuantPlanner(
                self.spec,
                reduced,
                self.config,
                cost_model=self.cost_model,
                omega_layers=self.omega_layers,
            )
            result = planner.plan(workload)
            if result is None:
                raise InfeasibleError(
                    "no feasible plan on surviving devices "
                    f"{sorted(surviving_device_ids)}"
                )
            if trace.enabled:
                metrics.counter("planner.replans").inc()
            return result

    def plan_naive(self, workload: BatchWorkload) -> Optional[PlannerResult]:
        """Deprecated shim over the exhaustive serial reference search.

        Use :meth:`plan` (bit-identical via the engine) or, for the
        ground-truth oracle in benches and determinism tests,
        :meth:`plan_reference`.
        """
        warnings.warn(
            "SplitQuantPlanner.plan_naive is deprecated; use plan() "
            "(bit-identical) or plan_reference() for the oracle path",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.plan_reference(workload)

    def plan_reference(
        self, workload: BatchWorkload
    ) -> Optional[PlannerResult]:
        """The exhaustive serial reference search (no memo, bounds or pool).

        Kept as the ground truth for determinism regression tests and the
        scaling benchmark: :meth:`plan` must return an identical plan.
        """
        with trace.span(
            "planner.plan_naive",
            model=self.spec.name,
            batch=workload.batch,
        ):
            return self._plan_naive(workload)

    def _plan_naive(self, workload: BatchWorkload) -> Optional[PlannerResult]:
        cfg = self.config
        t0 = time.perf_counter()
        orderings = candidate_orderings(
            self.cluster, enable_tp=cfg.enable_tp, max_orderings=cfg.max_orderings
        )
        mbs = microbatch_candidates(workload.batch, cfg.microbatch_candidates)
        kv_choices = cfg.kv_bit_choices or (cfg.bit_kv,)
        stats: List[CandidateStat] = []
        candidates: List[
            Tuple[
                float,
                ILPSolution,
                Tuple[StageGroup, ...],
                Tuple[int, ...],
                int,
                int,
                int,
            ]
        ] = []
        # Loop-invariant feasibility floor: even all-min-bits weights must
        # fit in a candidate ordering's total capacity.
        from ..models.layers import weight_storage_bytes

        min_weights = self.spec.num_layers * weight_storage_bytes(
            self.spec, min(cfg.bit_choices)
        )

        for bit_kv in kv_choices:
            cost_model = self.cost_model_for_kv(bit_kv)
            for ordering in orderings:
                if min_weights > sum(sg.capacity_bytes for sg in ordering):
                    continue
                adabits_start: Optional[ILPSolution] = None
                for eta in mbs:
                    for xi in mbs:
                        if cfg.tie_microbatches and xi != eta:
                            continue
                        problem = build_problem(
                            self.spec,
                            self.cluster,
                            ordering,
                            workload,
                            cost_model,
                            self.omega_layers,
                            eta,
                            xi,
                            cfg.bit_choices,
                            group_size=cfg.group_size,
                            bit_kv=bit_kv,
                            phase_blind=cfg.phase_blind,
                        )
                        if cfg.use_heuristic and adabits_start is None:
                            adabits_start = solve_adabits(
                                problem,
                                quality_budget=cfg.quality_budget,
                                time_limit_s=cfg.time_limit_s,
                            )
                        sol = self._solve_one(problem, warm_start=adabits_start)
                        key = tuple(sg.key() for sg in ordering)
                        if sol is None:
                            stats.append(
                                CandidateStat(
                                    key, eta, xi, "infeasible", 0.0, 0.0, 0.0
                                )
                            )
                            continue
                        stats.append(
                            CandidateStat(
                                key,
                                eta,
                                xi,
                                sol.status,
                                sol.latency_s,
                                sol.quality,
                                sol.solve_time_s,
                            )
                        )
                        score = sol.latency_s + cfg.theta * sol.quality
                        if cfg.quality_budget is not None:
                            score = sol.latency_s
                        candidates.append(
                            (score, sol, ordering, problem.group_sizes,
                             eta, xi, bit_kv)
                        )

        candidates.sort(key=lambda c: c[0])  # stable: ties keep loop order
        return self._finish(candidates, stats, workload, t0, search=None)

    def _finish(
        self,
        ranked,
        stats: Sequence[CandidateStat],
        workload: BatchWorkload,
        t0: float,
        search: Optional[SearchStats] = None,
        objective: Optional[str] = None,
        budget: Optional[float] = None,
    ) -> Optional[PlannerResult]:
        """Shared tail of both search paths: verify, expand, report."""
        cfg = self.config
        objective = cfg.objective if objective is None else objective
        budget = cfg.budget if budget is None else budget
        if objective not in ("throughput", "energy", "cost"):
            raise ValueError(
                f"unknown objective {objective!r} "
                "(expected 'throughput', 'energy' or 'cost')"
            )
        if objective == "throughput" and budget is not None:
            raise ValueError(
                "budget requires objective='energy' or objective='cost'"
            )
        if not ranked:
            return None
        predicted_energy: Optional[float] = None
        predicted_cost: Optional[float] = None
        if objective != "throughput":
            best, predicted_energy, predicted_cost = (
                self._select_by_objective(ranked, workload, objective, budget)
            )
        else:
            best = ranked[0]
            if cfg.verify_top_k > 1 and len(ranked) > 1:
                best, verify_plans, verify_batches = self._verify_candidates(
                    ranked[: cfg.verify_top_k], workload
                )
                if search is not None and verify_batches:
                    search = replace(
                        search,
                        batches=search.batches + verify_batches,
                        batched_plans_scored=(
                            search.batched_plans_scored + verify_plans
                        ),
                    )
        _, sol, ordering, group_sizes, eta, xi, bit_kv = best
        plan = solution_to_plan(
            self.spec, ordering, group_sizes, sol, eta, xi, bit_kv
        )
        n_tokens = workload.batch * workload.output_len
        return PlannerResult(
            plan=plan,
            predicted_latency_s=sol.latency_s,
            predicted_quality=sol.quality,
            throughput_tokens_s=(
                n_tokens / sol.latency_s if sol.latency_s > 0 else 0.0
            ),
            solve_time_s=time.perf_counter() - t0,
            candidates_tried=len(stats),
            stats=tuple(stats),
            search=search,
            workload=workload,
            objective=objective,
            budget=budget,
            predicted_energy_j=predicted_energy,
            predicted_cost_usd=predicted_cost,
        )

    def _select_by_objective(
        self,
        ranked,
        workload: BatchWorkload,
        objective: str,
        budget: Optional[float],
    ) -> Tuple[Any, float, float]:
        """Re-rank the candidate frontier through the energy model.

        Every leading candidate is expanded and scored in one batched
        fastsim sweep, which stamps joules and dollars on each result
        (:func:`repro.pipeline.simulator.attach_energy`).  With no
        budget the minimum-metric candidate wins (J/token under
        ``"energy"``, $/Mtoken under ``"cost"``); with a budget the
        fastest candidate under the ceiling wins.  Ties keep the search
        ranking's order.  Returns ``(candidate, energy_j, cost_usd)``.
        """
        from ..pipeline.batchsim import PlanCase, evaluate_plans
        from ..pipeline.simulator import simulate_plan
        from ..pipeline.stage import CostModelTiming

        top = ranked[: max(self.config.verify_top_k, OBJECTIVE_FRONTIER_K)]
        with trace.span(
            "planner.objective_rerank", objective=objective, k=len(top)
        ):
            cases: List[Tuple[Any, Any]] = []
            for cand in top:
                _, sol, ordering, group_sizes, eta, xi, bit_kv = cand
                timing = CostModelTiming(
                    cost_model=self.cost_model_for_kv(bit_kv), spec=self.spec
                )
                try:
                    plan = solution_to_plan(
                        self.spec, ordering, group_sizes, sol, eta, xi, bit_kv
                    )
                except (ValueError, RuntimeError):
                    continue
                cases.append(
                    (cand, PlanCase(plan, self.cluster, self.spec,
                                    workload, timing))
                )
            if not cases:
                raise InfeasibleError(
                    f"objective={objective!r}: no expandable candidates"
                )
            try:
                results = evaluate_plans([pc for _, pc in cases])
            except (ValueError, RuntimeError):
                results = [
                    simulate_plan(
                        pc.plan, self.cluster, self.spec, workload,
                        timing=pc.timing, check_memory=False,
                    )
                    for _, pc in cases
                ]
            scored = [
                (
                    cand,
                    res,
                    res.joules_per_token
                    if objective == "energy"
                    else res.usd_per_mtoken,
                )
                for (cand, _), res in zip(cases, results)
            ]
            pool = scored
            if budget is not None:
                pool = [s for s in scored if s[2] <= budget]
                if not pool:
                    unit = "J/token" if objective == "energy" else "$/Mtoken"
                    raise InfeasibleError(
                        f"no candidate within the {objective} budget "
                        f"{budget:g} {unit} "
                        f"(best achievable: {min(s[2] for s in scored):g})"
                    )
                chosen = min(pool, key=lambda s: s[1].makespan_s)
            else:
                chosen = min(pool, key=lambda s: s[2])
            cand, res, _ = chosen
            assert res.energy_j is not None and res.cost_usd is not None
            return cand, res.energy_j, res.cost_usd
