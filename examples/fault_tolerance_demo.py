#!/usr/bin/env python
"""Kill a GPU mid-decode and watch the runtime recover — bit-exactly.

Offline serving on shared heterogeneous clusters means workers get
preempted and GPUs die mid-batch.  This demo:

1. runs a real (TinyLM) model through the threaded pipeline runtime with
   a deterministic fault plan that KILLS the second stage's GPU at
   decode step 4,
2. lets the engine detect the failure, drop the dead device, re-partition
   the same quantized layers over the survivor
   (:func:`repro.plan.degrade_plan` — bitwidths stay fixed), replay the
   committed token prefix, and finish the batch,
3. verifies the degraded output is BIT-IDENTICAL to the fault-free
   single-process reference on the same quantized weights,
4. mirrors the same fault campaign in the discrete-event simulator
   (through :meth:`repro.api.Session.simulate` with a fault plan) to show
   the planned-side view of the recovery.

Set ``SPLITQUANT_TRACE=trace.jsonl`` to capture the full span timeline —
worker step spans, the fault, detection, replan and replay — and render
it with ``python scripts/trace_report.py trace.jsonl``.

Run:  PYTHONPATH=src python examples/fault_tolerance_demo.py
"""

import numpy as np

from repro import Session
from repro.hardware import make_cluster
from repro.models import get_model
from repro.plan import ExecutionPlan, StagePlan, uniform_plan
from repro.quality import TinyLM, TinyLMConfig
from repro.runtime import FaultPlan, PipelineEngine, reference_generate
from repro.workloads import BatchWorkload


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A two-stage pipeline over two "GPUs" (threads).
    # ------------------------------------------------------------------
    model = TinyLM(
        TinyLMConfig(vocab=160, layers=6, hidden=64, ffn=192, heads=4,
                     max_seq=192, seed=0)
    )
    plan = ExecutionPlan(
        model_name="tinylm",
        stages=(
            StagePlan((0,), "V100-32G", 0, (8, 8, 8)),
            StagePlan((1,), "T4-16G", 3, (4, 4, 8)),
        ),
        prefill_microbatch=2,
        decode_microbatch=2,
    )
    print("initial plan :", plan.describe())

    # Deterministic campaign: stage 1's GPU dies when the job for decode
    # step 4 reaches it.
    faults = FaultPlan.single_kill(stage=1, step=4)
    print("fault plan   : kill stage 1 at decode step 4\n")

    rng = np.random.default_rng(7)
    prompts = rng.integers(0, model.config.vocab, size=(4, 12))
    n_tokens = 10

    # ------------------------------------------------------------------
    # 2. Generate through the failure.
    # ------------------------------------------------------------------
    with PipelineEngine(model, plan, fault_plan=faults,
                        recv_timeout_s=5.0, stall_timeout_s=0.3) as engine:
        result = engine.generate(prompts, n_tokens=n_tokens)

    for rec in result.fault_events:
        print(f"recovery     : {rec.kind} at stage(s) {rec.dead_stages}, "
              f"devices {rec.dead_devices} removed, "
              f"{rec.committed_tokens} tokens already committed "
              f"-> {rec.action}")
    print("degraded plan:", engine.plan_history[-1].describe())
    print(f"replans      : {result.replans}")

    # ------------------------------------------------------------------
    # 3. Bit-exactness against the fault-free reference.
    # ------------------------------------------------------------------
    reference = reference_generate(
        model.quantized(list(plan.bits_per_layer)), prompts, n_tokens
    )
    assert np.array_equal(result.tokens, reference), (
        "degraded generation diverged from the fault-free reference"
    )
    print("\ndegraded output is bit-identical to the fault-free reference")
    print("tokens[0]    :", result.tokens[0].tolist())

    # ------------------------------------------------------------------
    # 4. The same campaign, mirrored in discrete-event time.
    # ------------------------------------------------------------------
    spec = get_model("opt-13b")
    cluster = make_cluster("demo", [("A100-40G", 1), ("V100-32G", 1)])
    sim_plan = uniform_plan(
        model_name=spec.name,
        num_layers=spec.num_layers,
        device_groups=[((0,), "A100-40G"), ((1,), "V100-32G")],
        bits=4,
        prefill_microbatch=8,
        decode_microbatch=8,
    )
    wl = BatchWorkload(batch=16, prompt_len=512, output_len=32)
    sess = Session(spec, cluster)
    clean = sess.simulate(plan=sim_plan, workload=wl, check_memory=False)
    degraded = sess.simulate(
        plan=sim_plan, workload=wl,
        fault_plan=FaultPlan.single_kill(stage=1, step=10),
        check_memory=False, detection_overhead_s=0.5,
    )
    print("\nplanned-side mirror (opt-13b on A100+V100, kill at step 10):")
    print(f"  fault-free makespan : {clean.makespan_s:8.2f} s")
    print(f"  degraded makespan   : {degraded.makespan_s:8.2f} s "
          f"({degraded.replans} replan)")
    print(f"  degradation overhead: {degraded.degradation_overhead_s:8.2f} s")
    for ev in degraded.fault_events:
        print(f"  event: {ev.kind} stage {ev.stage} at {ev.phase} "
              f"step {ev.step} (t={ev.time_s:.2f}s) -> {ev.action}")


if __name__ == "__main__":
    main()
