#!/usr/bin/env python
"""CI guard: fresh benchmark numbers vs the committed baselines.

Re-measures the two benchmark headlines on the current checkout and
compares them against the records committed under ``benchmarks/``:

* ``BENCH_planner.json`` — the search engine's speedup over the naive
  serial planner on the Table-VI configuration.  The guard compares the
  *ratio* (engine vs naive on the same machine, same process), which is
  robust to runner hardware, and fails when the fresh ratio falls more
  than ``--tolerance`` (default 25%) below the committed one.
* ``BENCH_obs.json`` — the observability layer's disabled-mode
  overhead.  The committed contract is a *budget* (< 2% of planning
  wall); the guard fails when the fresh estimate breaks the budget.
  The drift vs the committed fraction is reported but not gated: the
  absolute numbers are nanoseconds and CI-noise dominated.
* ``BENCH_sim.json`` — the closed-form fast simulator's speedup over
  the discrete-event engine on the fleet-scale configuration.  Like the
  planner guard it compares the same-machine ratio, with a hard floor
  of 5x and bit-identical results as a structural invariant.
* ``BENCH_batchsim.json`` — the batched frontier evaluator's
  plans-per-second speedup over the per-plan fast path, on both the
  Table-VI planner frontier and the 25-GPU fleet probe frontier.  Same
  same-machine ratio comparison, with a hard floor of 10x per frontier
  and bit-identical results as a structural invariant.
* ``BENCH_online.json`` — the online serving simulator's
  epoch-vectorized fast backend vs the discrete-event engine, on the
  steady (150k req/day) and overload (2M req/day, SLO shedding)
  streams.  Same same-machine ratio comparison, with a hard floor of
  5x on the overload stream and bit-identical results as a structural
  invariant.
* ``BENCH_energy.json`` — the energy/cost accounting layer.  The
  numbers are deterministic cost-model outputs (no wall-clock), so the
  guard enforces hard ceilings: the fresh throughput-optimal plan's
  J/token and $/Mtoken must stay within ``--tolerance`` of the
  committed record, the energy/cost objectives must still improve (or
  match) their respective metrics, and the event/fast/batched backends
  must agree on joules and dollars bit-for-bit (structural, not noise).
* ``BENCH_planner_scale.json`` — the scalable planning tier.  The guard
  re-measures the cheap sections (the 1000-GPU DP plan and the
  incremental-vs-cold re-solve; the 100-job fleet schedule is
  nightly-only) and enforces the hard contracts: auto routing lands on
  the DP tier, the certified gap bound stays inside ``[1, 25)`` and
  within tolerance of the committed bound, and the incremental re-solve
  beats a cold re-plan by >= 3x while keeping >= half its throughput.
  The raw incremental speedup (~1000x) is reported, not gated — the
  numerator is milliseconds and CI-noise dominated.

Structural invariants (plan parity between the two search paths, the
pruner actually pruning, the memo actually hitting) fail the guard
outright — those are correctness, not noise.

Writes the fresh measurements as JSON (``--out``) for artifact upload.

Run:  PYTHONPATH=src python scripts/check_bench_regression.py
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"

sys.path.insert(0, str(REPO / "src"))

from repro.core import PlannerConfig, SplitQuantPlanner  # noqa: E402
from repro.hardware import table_iii_cluster  # noqa: E402
from repro.models import get_model  # noqa: E402
from repro.obs import NOOP_SPAN, trace  # noqa: E402
from repro.workloads import BatchWorkload  # noqa: E402

#: Guarded metric updates budgeted per span site (see BENCH_obs.json).
HOOKS_PER_SPAN = 3


def _table_vi_planner() -> tuple[SplitQuantPlanner, BatchWorkload]:
    """The Table-VI configuration both committed benches measure."""
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(5)
    workload = BatchWorkload(batch=64, prompt_len=512, output_len=128)
    base = PlannerConfig(
        group_size=3,
        max_orderings=6,
        microbatch_candidates=(8, 16, 32),
        verify_top_k=1,
        time_limit_s=30.0,
    )
    seed = SplitQuantPlanner(spec, cluster, base)
    cfg = dataclasses.replace(base, quality_budget=seed.uniform_quality(4))
    planner = SplitQuantPlanner(
        spec,
        cluster,
        cfg,
        cost_model=seed.cost_model,
        omega_layers=seed.omega_layers,
    )
    return planner, workload


def measure_planner() -> dict:
    """Fresh engine-vs-naive speedup on the Table-VI configuration."""
    planner, workload = _table_vi_planner()
    t0 = time.perf_counter()
    fast = planner.plan(workload)
    engine_wall_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    naive = planner.plan_reference(workload)
    naive_wall_s = time.perf_counter() - t0
    assert fast is not None and naive is not None
    s = fast.search
    return {
        "bench": "planner_scaling",
        "naive_wall_s": round(naive_wall_s, 4),
        "engine_wall_s": round(engine_wall_s, 4),
        "speedup": round(naive_wall_s / engine_wall_s, 3),
        "plan_identical": fast.plan == naive.plan,
        "pruned": s.pruned,
        "cache_hits": s.cache_hits,
    }


def measure_sim() -> dict:
    """Fresh fast-vs-event simulator speedup on the fleet-scale config."""
    from repro.pipeline import simulate_plan
    from repro.plan import uniform_plan

    spec = get_model("opt-30b")
    cluster = table_iii_cluster(7)
    plan = uniform_plan(
        spec.name,
        spec.num_layers,
        [((d.device_id,), d.gpu.name) for d in cluster.devices],
        bits=4,
        prefill_microbatch=16,
        decode_microbatch=8,
    )
    workload = BatchWorkload(
        batch=64, prompt_len=512, output_len=256, chunk_tokens=512
    )

    def wall(backend: str, rounds: int = 5) -> tuple[float, object]:
        best, res = float("inf"), None
        for _ in range(rounds):
            t0 = time.perf_counter()
            res = simulate_plan(
                plan, cluster, spec, workload,
                check_memory=False, sim_backend=backend,
            )
            best = min(best, time.perf_counter() - t0)
        return best, res

    event_wall_s, ev = wall("event")
    fast_wall_s, fa = wall("fast")
    return {
        "bench": "sim_scaling",
        "event_wall_s": round(event_wall_s, 5),
        "fast_wall_s": round(fast_wall_s, 5),
        "speedup": round(event_wall_s / fast_wall_s, 2),
        "results_identical": ev == fa,
        "events_per_run": ev.events_processed,
    }


def measure_batchsim() -> dict:
    """Fresh batched-vs-per-plan frontier throughput on both frontiers."""
    sys.path.insert(0, str(REPO))
    from benchmarks.test_batchsim_scaling import (  # noqa: E402
        _fleet_frontier,
        _measure,
        _planner_frontier,
    )

    out: dict = {"bench": "batchsim_scaling"}
    for name, cases in (
        ("planner_frontier", _planner_frontier()),
        ("fleet_frontier", _fleet_frontier()),
    ):
        loop_wall, batch_wall, loop_res, batch_res = _measure(cases)
        out[name] = {
            "plans": len(cases),
            "per_plan_wall_s": round(loop_wall, 5),
            "batched_wall_s": round(batch_wall, 5),
            "speedup": round(loop_wall / batch_wall, 2),
            "results_identical": batch_res == loop_res,
        }
    return out


def measure_online() -> dict:
    """Fresh fast-vs-event online serving speedup on both streams."""
    sys.path.insert(0, str(REPO))
    from benchmarks.test_online_scaling import (  # noqa: E402
        _bench_cases,
        _measure_case,
    )

    out: dict = {"bench": "online_scaling"}
    for name, plan, cluster, spec, arrivals, config in _bench_cases():
        event_wall, fast_wall, event_res, fast_res = _measure_case(
            plan, cluster, spec, arrivals, config
        )
        out[name] = {
            "requests": arrivals.n_requests,
            "event_wall_s": round(event_wall, 5),
            "fast_wall_s": round(fast_wall, 5),
            "speedup": round(event_wall / fast_wall, 2),
            "results_identical": fast_res == event_res,
        }
    return out


def measure_energy() -> dict:
    """Fresh energy parity + objective headlines from the energy bench."""
    sys.path.insert(0, str(REPO))
    from benchmarks.test_energy import (  # noqa: E402
        measure_objectives,
        measure_parity,
    )

    return {
        "bench": "energy",
        "parity": measure_parity(),
        "objectives": measure_objectives(),
    }


def measure_planner_scale() -> dict:
    """Fresh DP-tier gap + incremental-vs-cold from the scale bench.

    Reuses the bench's own section helpers, so their hard floors
    (incremental >= 3x cold at >= half the throughput, gap bound inside
    ``[1, 25)``, DP plan under its wall budget) fail the guard outright
    via ``AssertionError``.
    """
    sys.path.insert(0, str(REPO))
    from benchmarks.test_planner_scale import (  # noqa: E402
        _dp_large_cluster,
        _incremental_vs_cold,
    )

    return {
        "bench": "planner_scale",
        "dp_large_cluster": _dp_large_cluster(),
        "incremental_vs_cold": _incremental_vs_cold(),
    }


def _per_op_s(fn, n: int = 50_000) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def measure_obs() -> dict:
    """Fresh disabled-mode tracing overhead estimate."""
    from repro.obs import Tracer, current_tracer, use_tracer

    assert current_tracer() is None, "guard requires tracing disabled"
    planner, workload = _table_vi_planner()
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        enabled_result = planner.plan(workload)
    spans = tracer.spans_started
    assert enabled_result is not None and spans > 0

    def noop_roundtrip() -> None:
        with trace.span("bench.noop", a=1, b=2):
            pass

    def enabled_check() -> None:
        if trace.enabled:  # pragma: no cover
            raise AssertionError

    assert trace.span("bench.check") is NOOP_SPAN
    span_cost_s = _per_op_s(noop_roundtrip)
    check_cost_s = _per_op_s(enabled_check)

    planner2, _ = _table_vi_planner()
    t0 = time.perf_counter()
    disabled_result = planner2.plan(workload)
    disabled_wall_s = time.perf_counter() - t0
    assert disabled_result is not None
    assert disabled_result.plan == enabled_result.plan

    estimated = spans * (span_cost_s + HOOKS_PER_SPAN * check_cost_s)
    return {
        "bench": "obs_disabled_overhead",
        "spans_opened": spans,
        "noop_span_cost_ns": round(span_cost_s * 1e9, 1),
        "enabled_check_cost_ns": round(check_cost_s * 1e9, 1),
        "disabled_wall_s": round(disabled_wall_s, 4),
        "overhead_fraction": round(estimated / disabled_wall_s, 7),
    }


def _load_baseline(name: str) -> dict:
    """A committed BENCH baseline, or a hard, explicit failure.

    A missing baseline must never silently skip its guard — that would
    read as "no regression" when nothing was checked.
    """
    path = BENCH_DIR / name
    if not path.exists():
        raise SystemExit(
            f"ERROR: committed baseline benchmarks/{name} is missing — "
            "the regression guard cannot run without it.  Regenerate it "
            "with `PYTHONPATH=src python -m pytest benchmarks/ -q` and "
            "commit the refreshed file."
        )
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"ERROR: committed baseline benchmarks/{name} is not valid "
            f"JSON ({exc}); regenerate and commit it."
        ) from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("bench_measured.json"),
        help="where to write the fresh measurements",
    )
    args = parser.parse_args(argv)

    baseline_planner = _load_baseline("BENCH_planner.json")
    baseline_obs = _load_baseline("BENCH_obs.json")
    baseline_sim = _load_baseline("BENCH_sim.json")
    baseline_batchsim = _load_baseline("BENCH_batchsim.json")
    baseline_scale = _load_baseline("BENCH_planner_scale.json")
    baseline_energy = _load_baseline("BENCH_energy.json")
    baseline_online = _load_baseline("BENCH_online.json")

    failures: list[str] = []

    fresh_planner = measure_planner()
    floor = baseline_planner["speedup"] * (1.0 - args.tolerance)
    print(
        f"planner speedup: fresh {fresh_planner['speedup']:.2f}x vs "
        f"baseline {baseline_planner['speedup']:.2f}x "
        f"(floor {floor:.2f}x at tolerance {args.tolerance:.0%})"
    )
    if not fresh_planner["plan_identical"]:
        failures.append("engine plan diverged from naive plan")
    if fresh_planner["pruned"] <= 0:
        failures.append("bound pruner pruned nothing")
    if fresh_planner["cache_hits"] <= 0:
        failures.append("timing memo never hit")
    if fresh_planner["speedup"] < floor:
        failures.append(
            f"planner speedup regressed: {fresh_planner['speedup']:.2f}x "
            f"< floor {floor:.2f}x (baseline "
            f"{baseline_planner['speedup']:.2f}x)"
        )

    fresh_obs = measure_obs()
    budget = baseline_obs["budget_fraction"]
    print(
        f"obs disabled overhead: fresh "
        f"{fresh_obs['overhead_fraction']:.2e} vs committed "
        f"{baseline_obs['overhead_fraction']:.2e} "
        f"(budget {budget:.0%})"
    )
    if fresh_obs["overhead_fraction"] >= budget:
        failures.append(
            f"obs disabled overhead {fresh_obs['overhead_fraction']:.2e} "
            f"breaks the {budget:.0%} budget"
        )

    fresh_sim = measure_sim()
    sim_floor = max(
        baseline_sim["speedup"] * (1.0 - args.tolerance), 5.0
    )
    print(
        f"sim fast-path speedup: fresh {fresh_sim['speedup']:.2f}x vs "
        f"baseline {baseline_sim['speedup']:.2f}x "
        f"(floor {sim_floor:.2f}x)"
    )
    if not fresh_sim["results_identical"]:
        failures.append("fast simulator diverged from event simulator")
    if fresh_sim["speedup"] < sim_floor:
        failures.append(
            f"sim fast-path speedup regressed: {fresh_sim['speedup']:.2f}x "
            f"< floor {sim_floor:.2f}x (baseline "
            f"{baseline_sim['speedup']:.2f}x)"
        )

    fresh_batchsim = measure_batchsim()
    for frontier in ("planner_frontier", "fleet_frontier"):
        fresh = fresh_batchsim[frontier]
        base = baseline_batchsim[frontier]
        batch_floor = max(base["speedup"] * (1.0 - args.tolerance), 10.0)
        print(
            f"batchsim {frontier} speedup: fresh {fresh['speedup']:.2f}x "
            f"vs baseline {base['speedup']:.2f}x (floor {batch_floor:.2f}x)"
        )
        if not fresh["results_identical"]:
            failures.append(
                f"batched evaluator diverged from per-plan fastsim "
                f"on the {frontier}"
            )
        if fresh["speedup"] < batch_floor:
            failures.append(
                f"batchsim {frontier} speedup regressed: "
                f"{fresh['speedup']:.2f}x < floor {batch_floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x)"
            )

    fresh_online = measure_online()
    for stream in ("steady", "overload"):
        fresh = fresh_online[stream]
        base = baseline_online[stream]
        ratio_floor = base["speedup"] * (1.0 - args.tolerance)
        online_floor = (
            max(ratio_floor, 5.0) if stream == "overload" else ratio_floor
        )
        print(
            f"online {stream} fast-path speedup: fresh "
            f"{fresh['speedup']:.2f}x vs baseline {base['speedup']:.2f}x "
            f"(floor {online_floor:.2f}x)"
        )
        if not fresh["results_identical"]:
            failures.append(
                f"online fast backend diverged from the event engine "
                f"on the {stream} stream"
            )
        if fresh["speedup"] < online_floor:
            failures.append(
                f"online {stream} fast-path speedup regressed: "
                f"{fresh['speedup']:.2f}x < floor {online_floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x)"
            )

    fresh_scale = measure_planner_scale()
    fresh_dp = fresh_scale["dp_large_cluster"]
    fresh_inc = fresh_scale["incremental_vs_cold"]
    base_dp = baseline_scale["dp_large_cluster"]
    base_inc = baseline_scale["incremental_vs_cold"]
    gap_ceiling = base_dp["gap_bound"] * (1.0 + args.tolerance)
    print(
        f"planner-scale DP gap bound: fresh {fresh_dp['gap_bound']:.3f} "
        f"vs baseline {base_dp['gap_bound']:.3f} "
        f"(ceiling {gap_ceiling:.3f})"
    )
    print(
        f"planner-scale incremental speedup: fresh "
        f"{fresh_inc['speedup']:.0f}x vs baseline "
        f"{base_inc['speedup']:.0f}x (hard floor 3x; drift not gated)"
    )
    if fresh_dp["tier"] != "dp":
        failures.append(
            f"auto routing sent the 1000-GPU plan to the "
            f"{fresh_dp['tier']!r} tier, not 'dp'"
        )
    if fresh_dp["gap_bound"] > gap_ceiling:
        failures.append(
            f"DP gap bound loosened: {fresh_dp['gap_bound']:.3f} > "
            f"ceiling {gap_ceiling:.3f} (baseline "
            f"{base_dp['gap_bound']:.3f})"
        )
    if baseline_scale["fleet_schedule"]["unscheduled"] != 0:
        failures.append(
            "committed planner-scale baseline left fleet jobs unscheduled"
        )

    fresh_energy = measure_energy()
    base_obj = baseline_energy["objectives"]
    fresh_obj = fresh_energy["objectives"]
    jpt_ceiling = base_obj["throughput"]["j_per_token"] * (
        1.0 + args.tolerance
    )
    upm_ceiling = base_obj["throughput"]["usd_per_mtoken"] * (
        1.0 + args.tolerance
    )
    print(
        f"energy: fresh {fresh_obj['throughput']['j_per_token']:.4f} "
        f"J/token vs baseline "
        f"{base_obj['throughput']['j_per_token']:.4f} "
        f"(ceiling {jpt_ceiling:.4f}); "
        f"{fresh_obj['throughput']['usd_per_mtoken']:.4f} $/Mtoken "
        f"(ceiling {upm_ceiling:.4f})"
    )
    if not fresh_energy["parity"]["all_identical"]:
        failures.append(
            "energy accounting diverged across event/fast/batched backends"
        )
    if fresh_obj["throughput"]["j_per_token"] > jpt_ceiling:
        failures.append(
            f"J/token regressed: "
            f"{fresh_obj['throughput']['j_per_token']:.4f} > "
            f"ceiling {jpt_ceiling:.4f} (baseline "
            f"{base_obj['throughput']['j_per_token']:.4f})"
        )
    if fresh_obj["throughput"]["usd_per_mtoken"] > upm_ceiling:
        failures.append(
            f"$/Mtoken regressed: "
            f"{fresh_obj['throughput']['usd_per_mtoken']:.4f} > "
            f"ceiling {upm_ceiling:.4f} (baseline "
            f"{base_obj['throughput']['usd_per_mtoken']:.4f})"
        )
    if (
        fresh_obj["energy"]["j_per_token"]
        > fresh_obj["throughput"]["j_per_token"] + 1e-9
    ):
        failures.append(
            "energy objective no longer improves J/token over throughput"
        )
    if (
        fresh_obj["cost"]["usd_per_mtoken"]
        > fresh_obj["throughput"]["usd_per_mtoken"] + 1e-9
    ):
        failures.append(
            "cost objective no longer improves $/Mtoken over throughput"
        )

    record = {
        "tolerance": args.tolerance,
        "planner": fresh_planner,
        "planner_baseline_speedup": baseline_planner["speedup"],
        "obs": fresh_obs,
        "obs_budget_fraction": budget,
        "sim": fresh_sim,
        "sim_baseline_speedup": baseline_sim["speedup"],
        "batchsim": fresh_batchsim,
        "batchsim_baseline_speedups": {
            f: baseline_batchsim[f]["speedup"]
            for f in ("planner_frontier", "fleet_frontier")
        },
        "online": fresh_online,
        "online_baseline_speedups": {
            s: baseline_online[s]["speedup"]
            for s in ("steady", "overload")
        },
        "planner_scale": fresh_scale,
        "planner_scale_baseline": {
            "gap_bound": base_dp["gap_bound"],
            "incremental_speedup": base_inc["speedup"],
        },
        "energy": fresh_energy,
        "energy_baseline": {
            "j_per_token": base_obj["throughput"]["j_per_token"],
            "usd_per_mtoken": base_obj["throughput"]["usd_per_mtoken"],
        },
        "failures": failures,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        return 1
    print("bench regression guard OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
