"""Golden-trace regression tests for the degraded pipeline simulator.

Each fixture in ``tests/data/`` is the canonical JSON rendering of one
deterministic degraded simulation (pure-arithmetic roofline timing,
floats rounded to 12 significant digits).  The comparison is *exact*: a
mismatch means the simulator's observable behaviour changed — review it,
and if intentional regenerate with ``scripts/regen_golden_traces.py``.
"""

import json

import pytest

from tests.golden_utils import GOLDEN_SCENARIOS, fixture_path

REGEN_HINT = (
    "golden trace changed; if intentional run "
    "`PYTHONPATH=src python scripts/regen_golden_traces.py` and review "
    "the fixture diff"
)


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_golden_trace_exact(name):
    path = fixture_path(name)
    assert path.exists(), f"missing fixture {path}; run the regen script"
    expected = path.read_text()
    actual = GOLDEN_SCENARIOS[name]()
    assert actual == expected, REGEN_HINT


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_golden_trace_fixture_is_canonical_json(name):
    """Fixtures are valid, sorted-key, newline-terminated JSON."""
    text = fixture_path(name).read_text()
    data = json.loads(text)
    assert text.endswith("\n")
    assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"
    assert data["schema_version"] == 1
    assert data["replans"] == len(data["plans"]) - 1


def test_golden_traces_are_deterministic():
    """Two in-process builds of the same scenario are byte-identical."""
    name = "degraded_kill_mid_decode"
    assert GOLDEN_SCENARIOS[name]() == GOLDEN_SCENARIOS[name]()
