"""Tests for synthetic big-model sensitivity profiles."""

import numpy as np
import pytest

from repro.models import get_model
from repro.quant import (
    model_indicator_table,
    normalized_indicator_table,
    synthesize_layer_stats,
)

BITS = (3, 4, 8, 16)


def test_stats_shape_matches_architecture(opt13b):
    stats = synthesize_layer_stats(opt13b)
    assert len(stats) == opt13b.num_layers
    assert all(len(ops) == len(opt13b.linear_shapes) for ops in stats)


def test_deterministic_per_model(opt13b):
    a = model_indicator_table(opt13b, BITS)
    b = model_indicator_table(opt13b, BITS)
    assert np.array_equal(a, b)


def test_different_models_different_profiles(opt13b, opt30b):
    a = model_indicator_table(opt13b, BITS)
    b = model_indicator_table(opt30b, BITS)
    assert a.shape != b.shape or not np.allclose(a, b)


def test_depth_trend_matches_table_i(opt30b):
    """Table I: later layers are more quantization-sensitive."""
    table = model_indicator_table(opt30b, BITS)
    L = opt30b.num_layers
    early = table[: L // 3, 1].mean()
    late = table[-L // 3 :, 1].mean()
    assert late > early


def test_bit_monotonicity(opt30b):
    table = model_indicator_table(opt30b, BITS)
    assert np.all(table[:, 0] > table[:, 1])
    assert np.all(table[:, 1] > table[:, 2])
    assert np.all(table[:, 2] > table[:, 3])
    assert np.all(table[:, 3] == 0)


def test_normalization_uniform4_sums_to_layers(opt30b):
    table = normalized_indicator_table(opt30b, BITS)
    assert table[:, 1].sum() == pytest.approx(opt30b.num_layers)


def test_normalized_preserves_ratios(opt30b):
    raw = model_indicator_table(opt30b, BITS)
    norm = normalized_indicator_table(opt30b, BITS)
    r_raw = raw[3, 0] / raw[7, 1]
    r_norm = norm[3, 0] / norm[7, 1]
    assert r_raw == pytest.approx(r_norm)


def test_seed_override_changes_profile(opt13b):
    a = model_indicator_table(opt13b, BITS, seed=1)
    b = model_indicator_table(opt13b, BITS, seed=2)
    assert not np.allclose(a, b)


def test_gqa_model_operator_widths():
    qwen = get_model("qwen2.5-7b")
    stats = synthesize_layer_stats(qwen)
    widths = {op.d_w for op in stats[0]}
    # q/k/v take hidden; down takes ffn.
    assert qwen.hidden in widths
    assert qwen.ffn in widths
