"""Tests for cluster topology and the Table III registry."""

import pytest

from repro.hardware import (
    all_table_iii_clusters,
    get_link,
    make_cluster,
    table_iii_cluster,
)


def test_all_ten_clusters_build():
    clusters = all_table_iii_clusters()
    assert sorted(clusters) == list(range(1, 11))


@pytest.mark.parametrize(
    "idx,expected",
    [
        (1, {"V100-32G": 1}),
        (2, {"V100-32G": 2, "A100-40G": 1}),
        (3, {"V100-32G": 1, "A100-40G": 1}),
        (4, {"V100-32G": 3, "A100-40G": 1}),
        (5, {"T4-16G": 3, "V100-32G": 1}),
        (6, {"P100-12G": 3, "V100-32G": 1}),
        (7, {"T4-16G": 4, "V100-32G": 2}),
        (8, {"T4-16G": 4}),
        (9, {"V100-32G": 4}),
        (10, {"A100-40G": 4}),
    ],
)
def test_table_iii_compositions(idx, expected):
    assert table_iii_cluster(idx).gpu_counts() == expected


def test_cluster_6_and_8_use_100g_ethernet():
    assert table_iii_cluster(6).cross_node_link.name == "eth-100g"
    assert table_iii_cluster(8).cross_node_link.name == "eth-100g"
    assert table_iii_cluster(5).cross_node_link.name == "eth-800g"


def test_single_node_clusters():
    for idx in (1, 8, 9, 10):
        assert table_iii_cluster(idx).num_nodes == 1
    for idx in (2, 3, 4, 5, 6, 7):
        assert table_iii_cluster(idx).num_nodes == 2


def test_homogeneity_flags():
    assert table_iii_cluster(9).is_homogeneous
    assert table_iii_cluster(10).is_homogeneous
    assert not table_iii_cluster(5).is_homogeneous


def test_invalid_index_raises():
    with pytest.raises(KeyError):
        table_iii_cluster(11)
    with pytest.raises(KeyError):
        table_iii_cluster(0)


def test_same_type_gpus_share_node():
    c = table_iii_cluster(7)
    nodes = c.nodes()
    for devices in nodes.values():
        assert len({d.gpu.name for d in devices}) == 1


def test_link_between_intra_vs_cross_node():
    c = table_iii_cluster(5)  # T4 node + V100 node
    t4s = [d for d in c.devices if d.gpu.name == "T4-16G"]
    v100 = [d for d in c.devices if d.gpu.name == "V100-32G"][0]
    intra = c.link_between(t4s[0], t4s[1])
    cross = c.link_between(t4s[0], v100)
    assert intra.name == "pcie3"  # T4 boxes lack NVLink
    assert cross.name == "eth-800g"


def test_v100_intra_node_is_nvlink():
    c = table_iii_cluster(9)
    a, b = c.devices[0], c.devices[1]
    assert c.link_between(a, b).name == "nvlink"


def test_self_link_raises():
    c = table_iii_cluster(9)
    with pytest.raises(ValueError):
        c.link_between(c.devices[0], c.devices[0])


def test_total_and_usable_memory():
    c = table_iii_cluster(8)  # 4x T4
    assert c.total_memory_bytes() == 4 * c.devices[0].gpu.mem_bytes
    assert c.usable_memory_bytes() < c.total_memory_bytes()


def test_make_cluster_rejects_empty_group():
    with pytest.raises(ValueError):
        make_cluster("bad", [("T4-16G", 0)])


def test_describe_mentions_composition():
    desc = table_iii_cluster(5).describe()
    assert "3xT4-16G" in desc and "1xV100-32G" in desc


def test_unique_device_ids():
    c = table_iii_cluster(7)
    ids = [d.device_id for d in c.devices]
    assert len(set(ids)) == len(ids) == 6


def test_link_transfer_time_monotone():
    link = get_link("eth-100g")
    assert link.transfer_time(2_000_000) > link.transfer_time(1_000_000)
    assert link.transfer_time(0) == 0.0


def test_nvlink_faster_than_pcie_and_ethernet_latency_sane():
    nv, pcie = get_link("nvlink"), get_link("pcie3")
    assert nv.bandwidth_bytes_s > pcie.bandwidth_bytes_s
    e100, e800 = get_link("eth-100g"), get_link("eth-800g")
    assert e800.bandwidth_bytes_s > e100.bandwidth_bytes_s
