#!/usr/bin/env python
"""Render a text flame summary of a JSONL span trace.

Usage::

    PYTHONPATH=src python scripts/trace_report.py trace.jsonl
    PYTHONPATH=src python scripts/trace_report.py trace.jsonl --max-depth 4
    PYTHONPATH=src python scripts/trace_report.py trace.jsonl --metrics

Traces come from ``SPLITQUANT_TRACE=trace.jsonl`` (any entry point),
``repro.api.Session(trace_path=...)`` or ``Tracer.write``.  ``--metrics``
additionally prints the ``<trace>.metrics.json`` snapshot written next
to the trace, when present.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Text flame summary of a repro.obs JSONL trace."
    )
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument(
        "--max-depth",
        type=int,
        default=8,
        help="deepest span-path level to print (default: 8)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="also print the <trace>.metrics.json snapshot if present",
    )
    args = parser.parse_args(argv)

    from repro.obs import flame_summary

    path = Path(args.trace)
    if not path.exists():
        print(f"error: no such trace: {path}", file=sys.stderr)
        return 2
    sys.stdout.write(flame_summary(str(path), max_depth=args.max_depth))

    if args.metrics:
        mpath = Path(str(path) + ".metrics.json")
        if mpath.exists():
            snapshot = json.loads(mpath.read_text())
            print(f"\nmetrics ({len(snapshot)} instruments):")
            for name, inst in sorted(snapshot.items()):
                kind = inst.get("type", "?")
                if kind == "histogram":
                    print(
                        f"  {name:<40} histogram  count={inst['count']} "
                        f"sum={inst['sum']:.6g}"
                    )
                else:
                    print(f"  {name:<40} {kind:<9}  {inst['value']:.6g}")
        else:
            print(f"\n(no metrics snapshot at {mpath})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
