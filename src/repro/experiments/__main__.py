"""Command-line experiment runner.

Regenerate any paper table/figure::

    python -m repro.experiments fig10
    python -m repro.experiments all
    python -m repro.experiments all --jobs 4
    python -m repro.experiments --list

``--jobs N`` fans experiments out over a process pool.  Output stays
**byte-identical** to a serial run: each experiment's text is captured in
its worker and printed by the parent in the canonical (requested) order,
while timing/progress lines go to stderr.  Failures no longer abort the
run — every remaining experiment still executes, the tracebacks are
collected, and the exit status is non-zero with a summary at the end.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
import sys
import time
import traceback
from typing import Optional, Tuple

from . import ALL_EXPERIMENTS

#: Environment variables a worker must not inherit: a forked/spawned
#: child with SPLITQUANT_TRACE set would install its own tracer and race
#: the parent for the output file.
_SCRUB_ENV = ("SPLITQUANT_TRACE",)


def _run_one(name: str) -> Tuple[str, str, float, Optional[str]]:
    """Execute one experiment; never raises.

    Returns ``(name, text, elapsed_s, traceback_or_None)``.  Anything the
    experiment prints is captured ahead of its ``to_text()`` block so
    stdout is identical whether this runs in-process or in a worker.
    """
    t0 = time.perf_counter()
    buf = io.StringIO()
    err: Optional[str] = None
    try:
        with contextlib.redirect_stdout(buf):
            result = ALL_EXPERIMENTS[name].run()
            text = buf.getvalue() + result.to_text()
    except Exception:
        err = traceback.format_exc()
        text = buf.getvalue()
    return name, text, time.perf_counter() - t0, err


def _emit(name: str, text: str, elapsed: float, err: Optional[str]) -> None:
    """Print one experiment's canonical stdout block + stderr progress."""
    if err is None:
        print(text)
        print()
        print(f"[{name} regenerated in {elapsed:.1f}s]", file=sys.stderr)
    else:
        if text:
            print(text, end="" if text.endswith("\n") else "\n", file=sys.stderr)
        print(f"[{name} FAILED after {elapsed:.1f}s]", file=sys.stderr)
        print(err, file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate SplitQuant paper tables/figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig09 tab05), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, module in sorted(ALL_EXPERIMENTS.items()):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<6} {doc}")
        return 0

    names = (
        sorted(ALL_EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    failures = []
    if args.jobs == 1 or len(names) <= 1:
        for name in names:
            _, text, elapsed, err = _run_one(name)
            _emit(name, text, elapsed, err)
            if err is not None:
                failures.append(name)
    else:
        from concurrent.futures import ProcessPoolExecutor

        # Workers must not inherit tracing config (they would fight over
        # the parent's trace file); the persistent result cache env *is*
        # inherited on purpose — parallel runs warm it for everyone.
        saved = {k: os.environ.pop(k) for k in _SCRUB_ENV if k in os.environ}
        try:
            with ProcessPoolExecutor(max_workers=args.jobs) as pool:
                futures = {n: pool.submit(_run_one, n) for n in names}
                # Emit strictly in request order regardless of completion
                # order: stdout is byte-identical to the serial run.
                for name in names:
                    _, text, elapsed, err = futures[name].result()
                    _emit(name, text, elapsed, err)
                    if err is not None:
                        failures.append(name)
        finally:
            os.environ.update(saved)

    if failures:
        print(
            f"{len(failures)}/{len(names)} experiments failed: "
            f"{' '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
