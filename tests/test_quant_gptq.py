"""Tests for the GPTQ implementation."""

import numpy as np
import pytest

from repro.quant import QuantConfig, gptq_quantize, hessian_from_inputs
from repro.quant.schemes import quantize_dequantize


@pytest.fixture(scope="module")
def wx():
    rng = np.random.default_rng(0)
    w = rng.standard_normal((48, 64)) * 0.1
    x = rng.standard_normal((64, 256))
    return w, x


def test_gptq_beats_rtn_on_layer_loss(wx):
    w, x = wx
    for bits in (3, 4):
        cfg = QuantConfig(bits=bits, granularity="group", group_size=32)
        res = gptq_quantize(w, x, cfg)
        rtn = quantize_dequantize(w, cfg)
        rtn_loss = float(np.sum(((w - rtn) @ x) ** 2) / x.shape[1])
        assert res.loss < rtn_loss, f"{bits}-bit"


def test_gptq_loss_decreases_with_bits(wx):
    w, x = wx
    losses = {}
    for bits in (3, 4, 8):
        cfg = QuantConfig(bits=bits, granularity="group", group_size=32)
        losses[bits] = gptq_quantize(w, x, cfg).loss
    assert losses[8] < losses[4] < losses[3]


def test_codes_within_range(wx):
    w, x = wx
    cfg = QuantConfig(bits=3, granularity="group", group_size=32)
    res = gptq_quantize(w, x, cfg)
    assert res.quantized.q.min() >= cfg.qmin
    assert res.quantized.q.max() <= cfg.qmax


def test_correlated_inputs_amplify_gptq_advantage(wx):
    """Error compensation matters most when input dims correlate."""
    rng = np.random.default_rng(1)
    w, _ = wx
    base = rng.standard_normal((8, 256))
    mix = rng.standard_normal((64, 8))
    x_corr = mix @ base + 0.05 * rng.standard_normal((64, 256))
    cfg = QuantConfig(bits=3, granularity="group", group_size=32)
    res = gptq_quantize(w, x_corr, cfg)
    assert res.loss < res.rtn_loss * 0.9


def test_hessian_is_spd(wx):
    _, x = wx
    h = hessian_from_inputs(x)
    assert np.allclose(h, h.T)
    eigvals = np.linalg.eigvalsh(h)
    assert eigvals.min() > 0


def test_input_validation(wx):
    w, x = wx
    cfg = QuantConfig(bits=4)
    with pytest.raises(ValueError):
        gptq_quantize(w[0], x, cfg)  # 1-D weight
    with pytest.raises(ValueError):
        gptq_quantize(w, x[:10], cfg)  # misaligned calibration


def test_gptq_dequantized_close_to_original(wx):
    w, x = wx
    cfg = QuantConfig(bits=8, granularity="group", group_size=32)
    res = gptq_quantize(w, x, cfg)
    rel = np.linalg.norm(res.quantized.dequantize() - w) / np.linalg.norm(w)
    assert rel < 0.02


def test_deterministic(wx):
    w, x = wx
    cfg = QuantConfig(bits=4, granularity="group", group_size=32)
    a = gptq_quantize(w, x, cfg)
    b = gptq_quantize(w, x, cfg)
    assert np.array_equal(a.quantized.q, b.quantized.q)
