"""Analytic quality model for paper-scale models.

Real 30B+ checkpoints cannot be evaluated here, so large-model experiments
use a calibrated analytic mapping from a per-layer bitwidth assignment to
perplexity/accuracy.  Ground truth is a hidden per-layer sensitivity table:
the variance-indicator profile perturbed by seeded layer-level noise.  The
planner never sees the truth — it optimizes its own indicator estimate —
so indicator-quality experiments (Table V) remain non-trivial: a better
indicator correlates better with the hidden truth and yields lower PPL.

Calibration: uniform INT8 costs ~0.03% PPL, uniform 4-bit ~3%, uniform
3-bit ~16% — matching the orderings in the paper's Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..models.architectures import ModelSpec
from ..quant.sensitivity import _model_seed, normalized_indicator_table

#: FP16 average perplexity (WikiText2/PTB/C4 mean) per model, set from the
#: published numbers for the real checkpoints.
BASE_PPL: Dict[str, float] = {
    "opt-125m": 27.6,
    "opt-350m": 22.0,
    "opt-1.3b": 14.62,
    "opt-13b": 10.13,
    "opt-30b": 10.70,
    "opt-66b": 10.28,
    "opt-175b": 9.00,
    "bloom-560m": 22.40,
    "bloom-1b7": 17.50,
    "bloom-3b": 16.00,
    "bloom-176b": 9.50,
    "qwen2.5-7b": 8.50,
    "qwen2.5-14b": 7.50,
    "qwen2.5-32b": 6.80,
    "llama-3.3-70b": 5.90,
}

#: FP16 zero-shot accuracy (LAMBADA/ARC/PIQA mean, %) per model.
BASE_ACC: Dict[str, float] = {
    "opt-125m": 48.0,
    "opt-350m": 52.0,
    "opt-1.3b": 63.5,
    "opt-13b": 68.0,
    "opt-30b": 70.0,
    "opt-66b": 71.5,
    "opt-175b": 73.0,
    "bloom-560m": 49.0,
    "bloom-1b7": 55.0,
    "bloom-3b": 61.3,
    "bloom-176b": 72.0,
    "qwen2.5-7b": 72.0,
    "qwen2.5-14b": 74.0,
    "qwen2.5-32b": 76.0,
    "llama-3.3-70b": 78.0,
}

#: Relative PPL increase per unit of normalized sensitivity (per layer).
PPL_KAPPA = 0.03
#: Accuracy points lost per unit of normalized sensitivity (per layer).
ACC_KAPPA = 2.0

#: Per-corpus difficulty multipliers around the average.
DATASET_MULTIPLIERS: Dict[str, float] = {
    "wikitext2": 0.90,
    "ptb": 1.12,
    "c4": 0.98,
}


@dataclass(frozen=True)
class AnalyticQualityModel:
    """Maps bitwidth assignments to PPL / accuracy for one model."""

    spec: ModelSpec
    bit_choices: Tuple[int, ...]
    #: Hidden ground-truth sensitivity, (layers x bit_choices).
    true_sens: np.ndarray
    base_ppl: float
    base_acc: float

    @classmethod
    def for_model(
        cls,
        spec: ModelSpec,
        bit_choices: Sequence[int] = (3, 4, 8, 16),
        truth_noise: float = 0.2,
        seed: int | None = None,
    ) -> "AnalyticQualityModel":
        omega = normalized_indicator_table(spec, bit_choices)
        rng = np.random.default_rng(
            (_model_seed(spec.name) ^ 0x5EED) if seed is None else seed
        )
        # One multiplier per layer keeps the within-layer bit ordering exact
        # while decorrelating the cross-layer ranking from the indicator.
        layer_noise = rng.lognormal(0.0, truth_noise, size=omega.shape[0])
        true = omega * layer_noise[:, None]
        return cls(
            spec=spec,
            bit_choices=tuple(bit_choices),
            true_sens=true,
            base_ppl=BASE_PPL.get(spec.name, 12.0),
            base_acc=BASE_ACC.get(spec.name, 60.0),
        )

    def _sens_sum(self, bits_per_layer: Sequence[int]) -> float:
        if len(bits_per_layer) != self.spec.num_layers:
            raise ValueError(
                f"expected {self.spec.num_layers} bitwidths, got "
                f"{len(bits_per_layer)}"
            )
        idx = {b: k for k, b in enumerate(self.bit_choices)}
        total = 0.0
        for i, b in enumerate(bits_per_layer):
            try:
                total += float(self.true_sens[i, idx[int(b)]])
            except KeyError:
                raise ValueError(f"bitwidth {b} not in {self.bit_choices}") from None
        return total

    def avg_ppl(self, bits_per_layer: Sequence[int]) -> float:
        """Average perplexity over the three corpora."""
        degr = PPL_KAPPA * self._sens_sum(bits_per_layer) / self.spec.num_layers
        return self.base_ppl * (1.0 + degr)

    def per_dataset_ppl(self, bits_per_layer: Sequence[int]) -> Dict[str, float]:
        avg = self.avg_ppl(bits_per_layer)
        return {name: avg * m for name, m in DATASET_MULTIPLIERS.items()}

    def accuracy(self, bits_per_layer: Sequence[int]) -> float:
        """Zero-shot accuracy (%) under the assignment."""
        degr = ACC_KAPPA * self._sens_sum(bits_per_layer) / self.spec.num_layers
        return max(self.base_acc - degr, 0.0)

    def uniform_ppl(self, bits: int) -> float:
        return self.avg_ppl([bits] * self.spec.num_layers)
