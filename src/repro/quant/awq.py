"""AWQ: activation-aware weight quantization (Lin et al.).

The third quantization scheme the paper integrates (Sec. V).  AWQ's
observation: a small fraction of weight channels matters far more than
the rest because their *inputs* are large.  Instead of keeping salient
channels in FP16 (mixed storage), AWQ scales them up before quantization
— ``W' = W * diag(s)``, ``X' = X / s`` with ``s_j = amax_j^alpha`` —
shrinking their relative rounding error, and folds the inverse scale into
the previous operator at runtime.

We implement the per-channel scaling with a small grid search over
``alpha`` minimizing the layerwise output error, as the reference
implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .schemes import QuantConfig, quantize_dequantize


@dataclass(frozen=True)
class AWQResult:
    """Outcome of AWQ on one linear operator."""

    #: Dequantized effective weight (scales already un-folded), ready to
    #: use against the *original* activations.
    weight: np.ndarray
    #: Chosen per-input-channel scaling.
    scales: np.ndarray
    alpha: float
    #: Layerwise output MSE of the scaled quantization.
    loss: float
    #: The same loss for plain RTN (alpha = 0), for comparison.
    rtn_loss: float


def _output_mse(w_eff: np.ndarray, w: np.ndarray, x: np.ndarray) -> float:
    err = (w_eff - w) @ x
    return float(np.sum(err**2) / x.shape[1])


def awq_quantize(
    w: np.ndarray,
    x: np.ndarray,
    cfg: Optional[QuantConfig] = None,
    alpha_grid: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> AWQResult:
    """Activation-aware quantization of ``w`` (out x in) on inputs ``x``.

    ``x`` is (in_features, n_samples) calibration data.  Searches
    ``alpha_grid`` for the scaling exponent minimizing layer output error.
    """
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if w.ndim != 2 or x.ndim != 2 or x.shape[0] != w.shape[1]:
        raise ValueError("w must be (out x in); x must be (in x samples)")
    cfg = cfg or QuantConfig(bits=4, granularity="group", group_size=128)

    amax = np.maximum(np.abs(x).max(axis=1), 1e-8)
    best: Optional[Tuple[float, np.ndarray, np.ndarray, float]] = None
    rtn_loss = None
    for alpha in alpha_grid:
        s = amax**alpha
        s = s / np.exp(np.mean(np.log(s)))  # normalize geometric mean to 1
        wq = quantize_dequantize(w * s[None, :], cfg) / s[None, :]
        loss = _output_mse(wq, w, x)
        if alpha == 0.0:
            rtn_loss = loss
        if best is None or loss < best[0]:
            best = (loss, wq, s, alpha)
    assert best is not None
    loss, wq, s, alpha = best
    if rtn_loss is None:
        s0 = np.ones_like(amax)
        rtn_loss = _output_mse(quantize_dequantize(w, cfg), w, x)
    return AWQResult(
        weight=wq, scales=s, alpha=float(alpha), loss=loss, rtn_loss=rtn_loss
    )
