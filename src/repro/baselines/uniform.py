"""The *Uniform* baseline (Sec. VI-A).

What stock frameworks do: evenly partition decoder layers across pipeline
stages and quantize every layer to the same precision, starting at FP16
and lowering (16 -> 8 -> 4 -> 3) until the model fits on every device —
or declaring OOM when nothing fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..pipeline.simulator import check_plan_memory
from ..plan import ExecutionPlan, uniform_plan
from ..simgpu.memory import OutOfMemoryError
from ..workloads.spec import BatchWorkload


@dataclass(frozen=True)
class BaselineResult:
    """A baseline plan plus the uniform precision it settled on."""

    plan: ExecutionPlan
    bits: int


def default_stage_groups(
    cluster: ClusterSpec, tp_degree: int = 1
) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
    """Stages in device-id order, optionally TP-grouping within nodes."""
    groups = []
    for node_devices in cluster.nodes().values():
        ids = [d.device_id for d in node_devices]
        gpu = node_devices[0].gpu.name
        step = tp_degree if tp_degree > 1 else 1
        if len(ids) % step:
            raise ValueError(
                f"node with {len(ids)} GPUs cannot form TP{tp_degree} groups"
            )
        for i in range(0, len(ids), step):
            groups.append((tuple(ids[i : i + step]), gpu))
    return tuple(groups)


def default_microbatch(batch: int, n_stages: int = 1) -> int:
    """The framework-default micro-batch size baselines run with.

    Pipeline-filling default: the full running batch divided across the
    pipeline depth (vLLM decodes all running sequences together on a
    single stage; PP engines split them to keep stages busy).
    """
    return max(batch // max(n_stages, 1), 1)


def plan_uniform_baseline(
    spec: ModelSpec,
    cluster: ClusterSpec,
    workload: BatchWorkload,
    bit_choices: Sequence[int] = (3, 4, 8, 16),
    stage_groups: Optional[Sequence[Tuple[Tuple[int, ...], str]]] = None,
    microbatch: Optional[int] = None,
    bit_kv: int = 16,
) -> Optional[BaselineResult]:
    """Uniform partition + highest uniform precision that fits.

    Returns ``None`` when even the lowest precision OOMs (the paper's
    "0 indicates OOM" cases in Fig. 10).
    """
    groups = tuple(stage_groups) if stage_groups else default_stage_groups(cluster)
    mb = microbatch or default_microbatch(workload.batch, len(groups))
    for bits in sorted(bit_choices, reverse=True):
        plan = uniform_plan(
            spec.name, spec.num_layers, groups, bits, mb, mb, bit_kv=bit_kv
        )
        try:
            check_plan_memory(plan, cluster, spec, workload)
        except OutOfMemoryError:
            continue
        return BaselineResult(plan=plan, bits=bits)
    return None
