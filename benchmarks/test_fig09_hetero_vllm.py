"""Bench: regenerate Fig. 9 (heterogeneous clusters, vLLM-style backend)."""

from repro.experiments import fig09_hetero_vllm


def test_fig09_hetero_vllm(experiment):
    res = experiment(fig09_hetero_vllm.run)
    # Paper: 1.37x average over Uniform (we exceed it slightly); gains on
    # both workloads; SplitQuant never falls behind by more than noise.
    assert res.summary["mean_speedup_vs_uniform"] > 1.2
    for row in res.rows:
        uniform, splitquant = row[4], row[6]
        assert splitquant >= uniform * 0.95 or uniform == 0
