"""Device-topology and micro-batch enumeration (Sec. IV-C).

Candidate pipeline configurations are built by partitioning each node's
GPUs into intra-node tensor-parallel groups (valid 2D meshes: TP sizes are
powers of two and never cross node boundaries), then permuting the groups
into a stage order.  Orderings are deduplicated on the (gpu model, TP
degree) sequence — same-type devices are interchangeable — and ranked by
a pruning score (fewer cross-node boundaries, roomiest device first for
the embedding stage) before the cap is applied.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from ..hardware.cluster import ClusterSpec, Device
from .costs import StageGroup

_TP_SIZES = (8, 4, 2, 1)


def _power_of_two_partitions(n: int) -> List[Tuple[int, ...]]:
    """All multisets of powers of two summing to ``n`` (descending)."""
    out: List[Tuple[int, ...]] = []

    def rec(remaining: int, max_part: int, acc: List[int]) -> None:
        if remaining == 0:
            out.append(tuple(acc))
            return
        for p in _TP_SIZES:
            if p <= max_part and p <= remaining:
                acc.append(p)
                rec(remaining - p, p, acc)
                acc.pop()

    rec(n, _TP_SIZES[0], [])
    return out


def node_tp_groupings(
    devices: Sequence[Device], enable_tp: bool = True
) -> List[List[StageGroup]]:
    """Ways to split one node's same-type GPUs into TP stage groups."""
    n = len(devices)
    gpu = devices[0].gpu
    ids = [d.device_id for d in devices]
    partitions = _power_of_two_partitions(n) if enable_tp else [(1,) * n]
    groupings: List[List[StageGroup]] = []
    for part in partitions:
        groups: List[StageGroup] = []
        cursor = 0
        for size in part:
            groups.append(
                StageGroup(device_ids=tuple(ids[cursor : cursor + size]), gpu=gpu)
            )
            cursor += size
        groupings.append(groups)
    return groupings


def _ordering_score(
    ordering: Sequence[StageGroup], node_of: Dict[int, int]
) -> Tuple[int, float]:
    """Pruning rank: (cross-node hops, -first-stage capacity)."""
    hops = 0
    for a, b in zip(ordering, ordering[1:]):
        if node_of[a.device_ids[0]] != node_of[b.device_ids[0]]:
            hops += 1
    return (hops, -float(ordering[0].capacity_bytes))


def candidate_orderings(
    cluster: ClusterSpec,
    enable_tp: bool = True,
    max_orderings: int = 24,
) -> List[Tuple[StageGroup, ...]]:
    """Pruned, deduplicated stage orderings for a cluster."""
    per_node = [
        node_tp_groupings(devs, enable_tp) for devs in cluster.nodes().values()
    ]
    node_of = {d.device_id: d.node_id for d in cluster.devices}
    seen: set = set()
    scored: List[Tuple[Tuple[int, float], Tuple[StageGroup, ...]]] = []
    for combo in itertools.product(*per_node):
        groups: List[StageGroup] = [g for node_groups in combo for g in node_groups]
        for perm in itertools.permutations(range(len(groups))):
            ordering = tuple(groups[i] for i in perm)
            key = tuple(sg.key() for sg in ordering)
            if key in seen:
                continue
            seen.add(key)
            scored.append((_ordering_score(ordering, node_of), ordering))
    scored.sort(key=lambda t: t[0])
    return [o for _, o in scored[:max_orderings]]


def _greedy_tp_partition(n: int) -> Tuple[int, ...]:
    """Largest-first power-of-two partition of ``n`` (one partition only)."""
    out: List[int] = []
    remaining = n
    for p in _TP_SIZES:
        while p <= remaining:
            out.append(p)
            remaining -= p
    return tuple(out)


def _node_groups(
    devices: Sequence[Device], tp: bool
) -> List[StageGroup]:
    """One grouping of a node's devices: solo GPUs or greedy max-TP."""
    gpu = devices[0].gpu
    ids = [d.device_id for d in devices]
    part = _greedy_tp_partition(len(devices)) if tp else (1,) * len(devices)
    groups: List[StageGroup] = []
    cursor = 0
    for size in part:
        groups.append(
            StageGroup(device_ids=tuple(ids[cursor : cursor + size]), gpu=gpu)
        )
        cursor += size
    return groups


def scalable_orderings(
    cluster: ClusterSpec,
    enable_tp: bool = True,
    max_orderings: int = 24,
) -> List[Tuple[StageGroup, ...]]:
    """Heuristic stage orderings without permutation enumeration.

    :func:`candidate_orderings` takes the product of per-node TP
    groupings and then permutes the groups — exponential in the group
    count, hopeless beyond ~8 stage groups.  This constructor builds a
    handful of orderings in ``O(D log D)``: per node either solo GPUs or
    one greedy max-TP grouping, node blocks kept contiguous (zero extra
    cross-node hops) and sorted by a per-variant heuristic — roomiest
    node first (embedding residency), fastest node first (bottleneck
    stage), or memory-per-compute first.  The DP tier consumes prefixes
    of these orderings, so putting the strongest groups first matters
    more than the exact tail order.
    """
    per_node = list(cluster.nodes().values())

    def node_key_capacity(devs: Sequence[Device]) -> float:
        return -float(sum(d.gpu.usable_mem_bytes for d in devs))

    def node_key_compute(devs: Sequence[Device]) -> float:
        return -float(sum(d.gpu.compute_tflops(16) for d in devs))

    def node_key_balance(devs: Sequence[Device]) -> float:
        return -float(devs[0].gpu.flops_per_byte)

    variants = [node_key_capacity, node_key_compute, node_key_balance]
    tp_options = [False, True] if enable_tp else [False]
    seen: set = set()
    out: List[Tuple[StageGroup, ...]] = []
    for tp in tp_options:
        for key in variants:
            nodes = sorted(per_node, key=key)
            ordering = tuple(
                g for devs in nodes for g in _node_groups(devs, tp)
            )
            dedup = tuple(sg.key() for sg in ordering)
            if dedup in seen:
                continue
            seen.add(dedup)
            out.append(ordering)
            if len(out) >= max_orderings:
                return out
    return out


def microbatch_candidates(
    batch: int, given: Iterable[int] | None = None, max_candidates: int = 4
) -> Tuple[int, ...]:
    """Pruned micro-batch size set (powers of two dividing into B)."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    if given is not None:
        vals = sorted({int(v) for v in given if 1 <= v <= batch})
        if not vals:
            raise ValueError("no valid micro-batch candidate")
        # The cap applies to user-given sets too: enumeration cost is
        # quadratic in this list, so an oversized `given` must be pruned
        # the same way the derived power-of-two set is (largest first).
        return tuple(vals[-max_candidates:])
    cands: List[int] = []
    v = 1
    while v <= batch:
        cands.append(v)
        v *= 2
    if cands[-1] != batch:
        cands.append(batch)
    # Keep the largest few: tiny micro-batches waste kernel efficiency in
    # offline serving, and the set is pruned to bound enumeration.
    return tuple(cands[-max_candidates:])
