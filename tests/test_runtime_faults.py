"""Differential tests for the fault-tolerant runtime.

Every scenario here runs the threaded pipeline under an injected
:class:`~repro.runtime.faults.FaultPlan` and asserts the generated tokens
are *bit-identical* to the fault-free single-process reference on the
same quantized weights — the core guarantee of the degrade-and-replan
recovery path.
"""

import time

import numpy as np
import pytest

from repro.plan import ExecutionPlan, InfeasibleError, StagePlan, degrade_plan
from repro.runtime import (
    Channel,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    PipelineEngine,
    StageFailure,
    StageMessage,
    StageWorker,
    reference_generate,
    tinylm_layer_bytes,
)
from repro.serialization import (
    dumps_fault_plan,
    fault_plan_from_dict,
    fault_plan_to_dict,
    loads_fault_plan,
)


def tiny_plan(layers_per_stage, bits=8, mb=2, gpu="T4-16G"):
    stages = []
    start = 0
    dev = 0
    for n in layers_per_stage:
        stages.append(StagePlan((dev,), gpu, start, (bits,) * n))
        start += n
        dev += 1
    return ExecutionPlan(
        model_name="tiny", stages=tuple(stages),
        prefill_microbatch=mb, decode_microbatch=mb,
    )


def run_engine(tiny_model, plan, prompts, n_tokens, fault_plan=None, **kw):
    kw.setdefault("recv_timeout_s", 5.0)
    kw.setdefault("stall_timeout_s", 0.3)
    with PipelineEngine(tiny_model, plan, fault_plan=fault_plan, **kw) as eng:
        res = eng.generate(prompts, n_tokens=n_tokens)
    return res, eng


# ---------------------------------------------------------------------------
# FaultPlan / FaultSpec semantics
# ---------------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec("explode", 0)
    with pytest.raises(ValueError, match="phase"):
        FaultSpec("kill", 0, phase="warmup")
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec("kill", 0, phase="decode", step=0)
    with pytest.raises(ValueError, match="delay_s"):
        FaultSpec("slow", 0, delay_s=-1.0)


def test_fault_plan_random_is_deterministic():
    a = FaultPlan.random(seed=9, num_stages=3, n_tokens=12, n_faults=4,
                         kinds=("kill", "slow", "drop"))
    b = FaultPlan.random(seed=9, num_stages=3, n_tokens=12, n_faults=4,
                         kinds=("kill", "slow", "drop"))
    assert a == b
    c = FaultPlan.random(seed=10, num_stages=3, n_tokens=12, n_faults=4,
                         kinds=("kill", "slow", "drop"))
    assert a != c


def test_fault_plan_round_trip_serialization():
    fp = FaultPlan(
        specs=(
            FaultSpec("kill", 1, "decode", 3),
            FaultSpec("slow", 0, "decode", 2, delay_s=0.25),
            FaultSpec("drop", 0, "prefill", 1, mb_id=None),
        ),
        seed=42,
    )
    assert fault_plan_from_dict(fault_plan_to_dict(fp)) == fp
    assert loads_fault_plan(dumps_fault_plan(fp)) == fp


def test_injector_fires_each_spec_once():
    inj = FaultInjector(FaultPlan.single_kill(stage=0, step=2))
    inj.on_job(0, "decode", 1, 0)  # no match
    with pytest.raises(InjectedFault):
        inj.on_job(0, "decode", 2, 0)
    # Replay of the same step after a rebuild must NOT refire.
    inj.on_job(0, "decode", 2, 0)
    assert inj.exhausted
    assert [s.kind for s in inj.fired] == ["kill"]


# ---------------------------------------------------------------------------
# Channel failure semantics (satellite bugfix coverage)
# ---------------------------------------------------------------------------


def test_recv_from_dead_sender_raises_real_error_fast():
    ch = Channel("w->m")
    boom = RuntimeError("cuda ate my tensor")
    ch.bind_sender(3, lambda: boom)
    t0 = time.monotonic()
    with pytest.raises(StageFailure) as ei:
        ch.recv(timeout=30.0)
    elapsed = time.monotonic() - t0
    assert elapsed < 1.0, "dead sender must surface well before the timeout"
    assert ei.value.stage == 3
    assert "stage-3" in str(ei.value)
    assert ei.value.__cause__ is boom


def test_recv_close_from_dying_sender_surfaces_error():
    ch = Channel("w->m")
    boom = ValueError("nan in layer 2")
    ch.bind_sender(1, lambda: boom)
    ch.close()  # what a dying worker does after capturing its error
    with pytest.raises(StageFailure) as ei:
        ch.recv(timeout=1.0)
    assert ei.value.__cause__ is boom


def test_recv_healthy_sender_times_out_plainly():
    ch = Channel("w->m")
    ch.bind_sender(0, lambda: None)
    with pytest.raises(TimeoutError):
        ch.recv(timeout=0.05)
    assert ch.recv_retries > 0


def test_channel_drop_hook_discards_matching_send():
    inj = FaultInjector(
        FaultPlan(specs=(FaultSpec("drop", 0, "decode", 2),))
    )
    ch = Channel("s0->s1")
    ch.bind_sender(0, lambda: None, fault_hook=inj.drop_hook(0))
    ch.send(StageMessage("decode", 0, np.zeros((1, 1, 2)), step=1))
    ch.send(StageMessage("decode", 0, np.zeros((1, 1, 2)), step=2))  # dropped
    ch.send(StageMessage("decode", 0, np.zeros((1, 1, 2)), step=2))  # fires once
    assert ch.dropped == 1
    assert ch.pending == 2


def test_worker_busy_time_charged_on_injected_kill(tiny_model):
    """busy_time accounting survives the job that kills the worker."""
    inj = FaultInjector(FaultPlan.single_kill(stage=0, step=1))
    in_ch, out_ch = Channel("in"), Channel("out")
    w = StageWorker(0, tiny_model.config, tiny_model.layers[:2],
                    in_ch, out_ch, injector=inj, poll_s=0.02)
    w.start()
    x = np.zeros((1, 4, tiny_model.config.hidden))
    in_ch.send(StageMessage("prefill", 0, x))
    in_ch.send(StageMessage("decode", 0, x[:, :1], step=1))
    w.join(timeout=5.0)
    assert not w.is_alive()
    assert isinstance(w.error, InjectedFault)
    assert w.busy_time > 0.0  # prefill work was charged before the kill
    assert w.jobs == 1  # the killed decode job never completed


# ---------------------------------------------------------------------------
# Differential grid: faulty pipeline == fault-free reference, bit for bit
# ---------------------------------------------------------------------------


GRID = [
    # (layers_per_stage, bits, fault specs, expected replans)
    ([2, 2], 8, [("kill", 1, "decode", 3)], 1),
    ([2, 2], 8, [("kill", 0, "decode", 2)], 1),
    ([1, 2, 1], 8, [("kill", 1, "decode", 4)], 1),
    ([1, 2, 1], 8, [("kill", 2, "prefill", 0)], 1),
    ([2, 2], 8, [("drop", 0, "decode", 3)], 1),
    ([2, 2], 8, [("slow", 1, "decode", 2)], 0),
    ([1, 2, 1], 8, [("kill", 2, "decode", 2), ("kill", 1, "decode", 4)], 2),
    ([2, 2], 8, [("slow", 0, "decode", 2), ("kill", 1, "decode", 4)], 1),
]


@pytest.mark.parametrize("layers_per_stage,bits,specs,expected_replans", GRID)
def test_faulty_generation_bit_exact(
    tiny_model, rng, layers_per_stage, bits, specs, expected_replans
):
    plan = tiny_plan(layers_per_stage, bits=bits)
    fp = FaultPlan(
        specs=tuple(
            FaultSpec(kind, stage, phase, step,
                      delay_s=0.15 if kind == "slow" else 0.0)
            for kind, stage, phase, step in specs
        )
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(4, 8))
    n_tokens = 6
    res, eng = run_engine(tiny_model, plan, prompts, n_tokens,
                          fault_plan=fp, max_replans=3)
    ref = reference_generate(
        tiny_model.quantized(list(plan.bits_per_layer)), prompts, n_tokens
    )
    assert np.array_equal(res.tokens, ref), "degraded output diverged"
    assert res.replans == expected_replans
    assert len(res.fault_events) == expected_replans
    # Bitwidths are frozen across every recovery.
    for p in eng.plan_history:
        assert p.bits_per_layer == plan.bits_per_layer


def test_kill_records_dead_devices_and_degraded_plan(tiny_model, rng):
    plan = tiny_plan([2, 2])
    fp = FaultPlan.single_kill(stage=1, step=3)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(4, 8))
    res, eng = run_engine(tiny_model, plan, prompts, 6, fault_plan=fp)
    assert res.replans == 1
    rec = res.fault_events[0]
    assert rec.kind == "stage-failure"
    assert rec.dead_stages == (1,)
    assert rec.dead_devices == (1,)
    assert rec.action == "replan"
    assert rec.committed_tokens >= 0
    final = eng.plan_history[-1]
    assert final.num_stages == 1
    assert final.stages[0].device_ids == (0,)
    assert final.num_layers == plan.num_layers


def test_drop_fault_classified_as_stall_rebuild(tiny_model, rng):
    plan = tiny_plan([2, 2])
    fp = FaultPlan(specs=(FaultSpec("drop", 0, "decode", 2),))
    prompts = rng.integers(0, tiny_model.config.vocab, size=(3, 7))
    res, eng = run_engine(tiny_model, plan, prompts, 5, fault_plan=fp,
                          recv_timeout_s=1.0)
    assert res.replans == 1
    rec = res.fault_events[0]
    assert rec.kind == "stall"
    assert rec.action == "rebuild"
    assert rec.dead_devices == ()
    # A rebuild keeps the same plan.
    assert eng.plan_history[-1] == plan
    ref = reference_generate(tiny_model.quantized([8] * 4), prompts, 5)
    assert np.array_equal(res.tokens, ref)


def test_slow_fault_absorbed_without_replan(tiny_model, rng):
    plan = tiny_plan([2, 2])
    fp = FaultPlan(specs=(FaultSpec("slow", 1, "decode", 2, delay_s=0.2),))
    prompts = rng.integers(0, tiny_model.config.vocab, size=(2, 6))
    res, eng = run_engine(tiny_model, plan, prompts, 4, fault_plan=fp)
    assert res.replans == 0
    assert res.fault_events == ()
    ref = reference_generate(tiny_model.quantized([8] * 4), prompts, 4)
    assert np.array_equal(res.tokens, ref)


def test_memory_capped_replan_respects_caps(tiny_model, rng):
    """With explicit device capacities the degraded plan must fit them."""
    plan = tiny_plan([1, 2, 1])
    cfg = tiny_model.config
    per_layer = tinylm_layer_bytes(cfg, 8)
    # Caps sized so survivors 0 and 1 can hold 1 and 3 layers respectively.
    caps = {0: per_layer, 1: 3 * per_layer, 2: per_layer}
    fp = FaultPlan.single_kill(stage=2, step=2)
    prompts = rng.integers(0, cfg.vocab, size=(3, 6))
    res, eng = run_engine(tiny_model, plan, prompts, 5, fault_plan=fp,
                          device_capacity_bytes=caps)
    ref = reference_generate(tiny_model.quantized([8] * 4), prompts, 5)
    assert np.array_equal(res.tokens, ref)
    final = eng.plan_history[-1]
    for st in final.stages:
        used = sum(tinylm_layer_bytes(cfg, b) for b in st.layer_bits)
        cap = sum(caps[d] for d in st.device_ids)
        assert used <= cap, f"stage {st.device_ids} exceeds its cap"


def test_exhausted_replan_budget_reraises(tiny_model, rng):
    plan = tiny_plan([2, 2])
    fp = FaultPlan.single_kill(stage=1, step=2)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(2, 6))
    eng = PipelineEngine(tiny_model, plan, fault_plan=fp, max_replans=0,
                         recv_timeout_s=5.0, stall_timeout_s=0.3)
    with eng:
        with pytest.raises((StageFailure, TimeoutError)):
            eng.generate(prompts, n_tokens=5)


def test_all_stages_killed_is_infeasible(tiny_model, rng):
    # Stage indices are relative to the pipeline at fire time: after the
    # first kill the degraded pipeline is renumbered, so the second spec
    # targets the (only) surviving stage 0 at a later replayed step.
    plan = tiny_plan([2, 2])
    fp = FaultPlan(
        specs=(
            FaultSpec("kill", 0, "decode", 2),
            FaultSpec("kill", 0, "decode", 3),
        )
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(2, 6))
    eng = PipelineEngine(tiny_model, plan, fault_plan=fp, max_replans=3,
                         recv_timeout_s=5.0, stall_timeout_s=0.3)
    with pytest.raises(InfeasibleError):
        with eng:
            eng.generate(prompts, n_tokens=5)


def test_engine_survives_fault_then_reuses_degraded_pipeline(tiny_model, rng):
    """After a recovery, the same engine serves the next batch correctly."""
    plan = tiny_plan([2, 2])
    fp = FaultPlan.single_kill(stage=1, step=2)
    p1 = rng.integers(0, tiny_model.config.vocab, size=(2, 6))
    p2 = rng.integers(0, tiny_model.config.vocab, size=(3, 8))
    with PipelineEngine(tiny_model, plan, fault_plan=fp,
                        recv_timeout_s=5.0, stall_timeout_s=0.3) as eng:
        r1 = eng.generate(p1, n_tokens=4)
        r2 = eng.generate(p2, n_tokens=5)
    q = tiny_model.quantized([8] * 4)
    assert np.array_equal(r1.tokens, reference_generate(q, p1, 4))
    assert np.array_equal(r2.tokens, reference_generate(q, p2, 5))
    assert r1.replans == 1
    assert r2.replans == 0  # the fault fired once, ever


def test_retired_busy_time_accounted_once(tiny_model, rng):
    plan = tiny_plan([2, 2])
    fp = FaultPlan.single_kill(stage=1, step=3)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(3, 7))
    res, eng = run_engine(tiny_model, plan, prompts, 5, fault_plan=fp)
    assert eng.retired_busy_s > 0.0  # the torn-down pipeline's work
    assert res.replans == 1


# ---------------------------------------------------------------------------
# degrade_plan unit behaviour
# ---------------------------------------------------------------------------


def make_plan(stage_devices, layer_bits_per_stage, mb=2):
    stages = []
    start = 0
    for devs, lb in zip(stage_devices, layer_bits_per_stage):
        stages.append(StagePlan(tuple(devs), "T4-16G", start, tuple(lb)))
        start += len(lb)
    return ExecutionPlan(
        model_name="tiny", stages=tuple(stages),
        prefill_microbatch=mb, decode_microbatch=mb,
    )


def test_degrade_plan_drops_dead_stage_and_repartitions():
    plan = make_plan([(0,), (1,), (2,)], [(8, 8), (4, 4), (16, 16)])
    out = degrade_plan(plan, [0, 2])
    assert out.num_stages == 2
    assert out.bits_per_layer == plan.bits_per_layer
    assert [st.device_ids for st in out.stages] == [(0,), (2,)]
    # Contiguity: layer_start chains.
    assert out.stages[0].layer_start == 0
    assert out.stages[1].layer_start == out.stages[0].num_layers


def test_degrade_plan_no_survivors_raises():
    plan = make_plan([(0,), (1,)], [(8, 8), (8, 8)])
    with pytest.raises(InfeasibleError):
        degrade_plan(plan, [])


def test_degrade_plan_infeasible_caps_raise():
    plan = make_plan([(0,), (1,)], [(8, 8), (8, 8)])
    caps = {0: 10, 1: 10}
    with pytest.raises(InfeasibleError):
        degrade_plan(plan, [0, 1], capacity_bytes=caps,
                     layer_cost=lambda i, b: 100)


def test_degrade_plan_contiguous_feasibility_needs_dp():
    """A case where greedy proportional splitting fails but a feasible
    contiguous partition exists: the DP must find it."""
    plan = make_plan([(0,), (1,)], [(8,), (8, 8, 8)])
    costs = [1, 1, 1, 10]
    caps = {0: 3, 1: 10}  # group 0 must take exactly the 3 cheap layers
    out = degrade_plan(plan, [0, 1], capacity_bytes=caps,
                       layer_cost=lambda i, b: costs[i])
    assert [st.num_layers for st in out.stages] == [3, 1]


def test_degrade_plan_keeps_surviving_group_order():
    plan = make_plan([(0, 1), (2,), (3,)], [(8, 8), (8,), (8,)])
    out = degrade_plan(plan, [0, 1, 3])
    assert [st.device_ids for st in out.stages] == [(0, 1), (3,)]
    assert out.num_layers == 4


# ---------------------------------------------------------------------------
# Planned-vs-executed cross-validation (runtime vs discrete-event mirror)
# ---------------------------------------------------------------------------


def test_runtime_and_simulator_agree_on_plan_sequence(tiny_model, rng):
    """The threaded engine and the discrete-event mirror, driven by the
    same fault plan and the same replan function, must walk the identical
    plan sequence."""
    from repro.hardware import make_cluster
    from repro.models import get_model
    from repro.pipeline import simulate_degraded
    from repro.workloads import BatchWorkload

    # --- executed: TinyLM engine under a kill at decode step 3 ---
    plan = tiny_plan([2, 2])
    fp = FaultPlan.single_kill(stage=1, step=3)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(3, 7))
    shared_replan = lambda cur, surviving: degrade_plan(cur, surviving)  # noqa: E731
    res, eng = run_engine(tiny_model, plan, prompts, 6, fault_plan=fp,
                          replan=shared_replan)
    ref = reference_generate(tiny_model.quantized([8] * 4), prompts, 6)
    assert np.array_equal(res.tokens, ref)

    # --- planned: discrete-event mirror of the same campaign ---
    spec = get_model("opt-125m")  # any spec; timing only
    cluster = make_cluster("xval", [("T4-16G", 2)])
    sim_plan = make_plan(
        [(0,), (1,)],
        [(8,) * (spec.num_layers // 2), (8,) * (spec.num_layers // 2)],
    )
    wl = BatchWorkload(batch=4, prompt_len=64, output_len=6)
    deg = simulate_degraded(
        cluster=cluster, spec=spec, workload=wl, plan=sim_plan,
        fault_plan=fp, check_memory=False, replan=shared_replan,
    )
    # Same recovery structure: one replan, and both degraded plans are the
    # shared replan function applied to the respective initial plans.
    assert deg.replans == res.replans == 1
    assert len(deg.plans) == len(eng.plan_history) == 2
    assert eng.plan_history[1] == shared_replan(plan, (0,))
    assert deg.plans[1] == shared_replan(sim_plan, (0,))
    assert [ev.action for ev in deg.fault_events] == [
        rec.action for rec in res.fault_events
    ]
