"""Tests for the end-to-end SplitQuant planner."""

import dataclasses

import numpy as np
import pytest

from repro.core import PlannerConfig, SplitQuantPlanner
from repro.pipeline import simulate_plan

FAST = PlannerConfig(
    group_size=5,
    max_orderings=2,
    microbatch_candidates=(4, 8),
    time_limit_s=10.0,
    verify_top_k=1,
)


@pytest.fixture(scope="module")
def planner(opt13b, small_cluster, cost_model_13b):
    return SplitQuantPlanner(opt13b, small_cluster, FAST,
                             cost_model=cost_model_13b)


@pytest.fixture(scope="module")
def result(planner, small_workload):
    return planner.plan(small_workload)


def test_plan_produced(result, opt13b):
    assert result is not None
    assert result.plan.num_layers == opt13b.num_layers
    assert result.plan.num_stages == 2
    assert result.throughput_tokens_s > 0
    assert result.candidates_tried > 0
    assert result.solve_time_s > 0


def test_plan_simulates_without_oom(result, small_cluster, opt13b,
                                    small_workload):
    sim = simulate_plan(result.plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_prediction_close_to_simulation(result, small_cluster, opt13b,
                                        small_workload):
    """The analytic objective must track the DES within a modest factor."""
    sim = simulate_plan(result.plan, small_cluster, opt13b, small_workload)
    assert abs(result.predicted_latency_s - sim.makespan_s) / sim.makespan_s < 0.35


def test_microbatches_from_candidates(result):
    assert result.plan.prefill_microbatch in (4, 8)
    assert result.plan.decode_microbatch in (4, 8)


def test_stats_recorded(result):
    assert len(result.stats) == result.candidates_tried
    ok = [s for s in result.stats if s.status != "infeasible"]
    assert ok
    assert all(s.solve_time_s >= 0 for s in result.stats)


def test_quality_budget_respected(opt13b, small_cluster, cost_model_13b,
                                  small_workload):
    base = SplitQuantPlanner(opt13b, small_cluster, FAST,
                             cost_model=cost_model_13b)
    budget = base.uniform_quality(8)
    cfg = dataclasses.replace(FAST, quality_budget=budget)
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    assert res is not None
    assert res.predicted_quality <= budget + 1e-9


def test_uniform_quality_monotone(planner):
    assert planner.uniform_quality(16) == 0.0
    assert (
        planner.uniform_quality(3)
        > planner.uniform_quality(4)
        > planner.uniform_quality(8)
        > 0.0
    )


def test_heuristic_mode_produces_plan(opt13b, small_cluster, cost_model_13b,
                                      small_workload):
    cfg = dataclasses.replace(FAST, use_heuristic=True)
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    assert res is not None
    sim = simulate_plan(res.plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_infeasible_cluster_returns_none(opt30b, small_workload):
    from repro.hardware import make_cluster

    cluster = make_cluster("way-too-small", [("P100-12G", 1)])
    planner = SplitQuantPlanner(opt30b, cluster, FAST)
    assert planner.plan(small_workload) is None


def test_custom_omega_validated(opt13b, small_cluster, cost_model_13b):
    with pytest.raises(ValueError, match="omega_layers"):
        SplitQuantPlanner(
            opt13b, small_cluster, FAST, cost_model=cost_model_13b,
            omega_layers=np.zeros((3, 3)),
        )


def test_verify_top_k_does_not_break(opt13b, small_cluster, cost_model_13b,
                                     small_workload):
    cfg = dataclasses.replace(FAST, verify_top_k=3)
    planner = SplitQuantPlanner(opt13b, small_cluster, cfg,
                                cost_model=cost_model_13b)
    res = planner.plan(small_workload)
    assert res is not None
    sim = simulate_plan(res.plan, small_cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_heterogeneous_partition_not_even(result, opt13b):
    """On T4+V100 the planner should load the V100 with more layers."""
    layers = result.plan.layers_per_stage()
    gpu_names = [st.gpu_name for st in result.plan.stages]
    v100_idx = gpu_names.index("V100-32G")
    t4_idx = gpu_names.index("T4-16G")
    assert layers[v100_idx] > layers[t4_idx]
