"""Request length distributions for the paper's workloads.

Three sources are modeled after the statistics the paper reports:

* **ShareGPT** conversations (Sec. II-A): the bucketed prompt-length
  histogram — <128: 14.20%, 129–512: 20.52%, 513–1024: 14.24%,
  1025–2048: 14.53%, >2048: 36.51%.
* **CNN/DailyMail summarization** (Fig. 7a): article-length inputs around
  800 tokens, ~299-token summaries.
* **LooGLE long-context understanding** (Fig. 7b): very long inputs
  (average ~97k tokens) and short ~63-token outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

SHAREGPT_BUCKETS: Tuple[Tuple[int, int, float], ...] = (
    (1, 128, 0.1420),
    (129, 512, 0.2052),
    (513, 1024, 0.1424),
    (1025, 2048, 0.1453),
    (2049, 8192, 0.3651),
)


@dataclass(frozen=True)
class LengthSample:
    """Sampled per-request prompt and output lengths."""

    prompt_lens: np.ndarray
    output_lens: np.ndarray

    def __post_init__(self):
        if self.prompt_lens.shape != self.output_lens.shape:
            raise ValueError("prompt and output arrays must align")

    @property
    def n(self) -> int:
        return int(self.prompt_lens.size)

    def mean_prompt(self) -> float:
        """Mean prompt length; 0.0 for an empty sample (not NaN)."""
        if self.n == 0:
            return 0.0
        return float(self.prompt_lens.mean())

    def mean_output(self) -> float:
        """Mean output length; 0.0 for an empty sample (not NaN)."""
        if self.n == 0:
            return 0.0
        return float(self.output_lens.mean())


def _lognormal_lengths(
    rng: np.random.Generator, n: int, mean: float, sigma: float, lo: int, hi: int
) -> np.ndarray:
    """Lognormal lengths with the requested arithmetic mean, clipped."""
    mu = np.log(mean) - 0.5 * sigma * sigma
    vals = rng.lognormal(mu, sigma, size=n)
    return np.clip(np.rint(vals), lo, hi).astype(np.int64)


def sharegpt_lengths(n: int, seed: int = 0) -> LengthSample:
    """Prompt/output lengths matching the ShareGPT bucket histogram."""
    rng = np.random.default_rng(seed)
    probs = np.array([b[2] for b in SHAREGPT_BUCKETS])
    probs = probs / probs.sum()
    bucket_idx = rng.choice(len(SHAREGPT_BUCKETS), size=n, p=probs)
    prompts = np.empty(n, dtype=np.int64)
    for k, (lo, hi, _) in enumerate(SHAREGPT_BUCKETS):
        mask = bucket_idx == k
        prompts[mask] = rng.integers(lo, hi + 1, size=int(mask.sum()))
    outputs = _lognormal_lengths(rng, n, mean=250.0, sigma=0.8, lo=1, hi=2048)
    return LengthSample(prompt_lens=prompts, output_lens=outputs)


def cnn_dailymail_lengths(n: int, seed: int = 0) -> LengthSample:
    """CNN/DailyMail-style summarization lengths (Fig. 7a)."""
    rng = np.random.default_rng(seed)
    prompts = _lognormal_lengths(rng, n, mean=800.0, sigma=0.45, lo=128, hi=2048)
    outputs = _lognormal_lengths(rng, n, mean=299.0, sigma=0.35, lo=32, hi=1024)
    return LengthSample(prompt_lens=prompts, output_lens=outputs)


def loogle_lengths(n: int, seed: int = 0) -> LengthSample:
    """LooGLE-style long-context lengths (Fig. 7b)."""
    rng = np.random.default_rng(seed)
    prompts = _lognormal_lengths(
        rng, n, mean=97_000.0, sigma=0.6, lo=8_192, hi=400_000
    )
    outputs = _lognormal_lengths(rng, n, mean=63.0, sigma=0.5, lo=8, hi=512)
    return LengthSample(prompt_lens=prompts, output_lens=outputs)


DATASET_SAMPLERS = {
    "sharegpt": sharegpt_lengths,
    "cnn_dailymail": cnn_dailymail_lengths,
    "loogle": loogle_lengths,
}


def sample_dataset(name: str, n: int, seed: int = 0) -> LengthSample:
    """Sample request lengths from a named dataset distribution."""
    try:
        sampler = DATASET_SAMPLERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(DATASET_SAMPLERS)}"
        ) from None
    return sampler(n, seed)


def length_histogram(
    lengths: np.ndarray, edges: Tuple[int, ...] = (128, 512, 1024, 2048)
) -> Dict[str, float]:
    """Bucketed length shares (the Sec. II-A style summary)."""
    lengths = np.asarray(lengths)
    out: Dict[str, float] = {}
    lo = 0
    for hi in edges:
        out[f"{lo + 1}-{hi}"] = float(((lengths > lo) & (lengths <= hi)).mean())
        lo = hi
    out[f">{edges[-1]}"] = float((lengths > edges[-1]).mean())
    return out
