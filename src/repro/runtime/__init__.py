"""Threaded master/worker runtime executing plans on TinyLM."""

from .comm import Channel, ChannelClosed
from .engine import GenerationResult, PipelineEngine, reference_generate
from .worker import RegroupMessage, StageMessage, StageWorker

__all__ = [
    "Channel",
    "ChannelClosed",
    "GenerationResult",
    "PipelineEngine",
    "reference_generate",
    "RegroupMessage",
    "StageMessage",
    "StageWorker",
]
