"""Golden normalized span trace of ``examples/online_serving_demo.py``.

The online demo is deterministic end to end (seeded Poisson arrivals,
ShareGPT-sampled lengths, pure-arithmetic simulator timing), so its
*normalized* trace — ancestor paths, names, statuses and attributes,
with every timestamp, duration, thread name and span id stripped — is
byte-stable across runs and platforms.  The fixture pins the observable
span taxonomy of the whole online path: planning, the degenerate
offline-equivalence check, steady serving, and SLO load shedding.  A
silent change to what gets traced (or to group formation / admission
control flow) fails this test.

Regenerate after an intentional change with
``PYTHONPATH=src python scripts/regen_golden_traces.py`` and review the
fixture diff like any other code change.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import normalize_trace

REPO = Path(__file__).resolve().parent.parent
DEMO = REPO / "examples" / "online_serving_demo.py"
FIXTURE = REPO / "tests" / "data" / "online_demo_trace.norm.jsonl"

REGEN_HINT = (
    "normalized online-demo trace changed; if intentional run "
    "`PYTHONPATH=src python scripts/regen_golden_traces.py` and review "
    "the fixture diff"
)


def run_demo_trace(tmp_path: Path) -> str:
    """Run the demo traced in a subprocess; return the normalized trace."""
    trace_path = tmp_path / "online_demo.jsonl"
    env = dict(os.environ)
    env["SPLITQUANT_TRACE"] = str(trace_path)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(DEMO)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # The demo's own differential contract check must have passed.
    assert "bit-identical" in proc.stdout
    assert "SLO attainment" in proc.stdout
    return normalize_trace(trace_path)


@pytest.fixture(scope="module")
def demo_trace(tmp_path_factory) -> str:
    return run_demo_trace(tmp_path_factory.mktemp("online_demo"))


def test_online_demo_trace_matches_golden(demo_trace):
    assert FIXTURE.exists(), f"missing fixture {FIXTURE}; run the regen script"
    assert demo_trace == FIXTURE.read_text(), REGEN_HINT


def test_fixture_is_normalized_canonical():
    """The committed fixture is already in normalized canonical form."""
    text = FIXTURE.read_text()
    records = [json.loads(line) for line in text.splitlines()]
    assert records, "fixture is empty"
    # renumbered, sorted, and stripped of timing/scheduling fields
    assert [r["i"] for r in records] == list(range(len(records)))
    for r in records:
        assert set(r) == {"path", "name", "status", "attrs", "i"}
    keys = [
        (r["path"], json.dumps(r["attrs"], sort_keys=True), r["status"])
        for r in records
    ]
    assert keys == sorted(keys)


def test_trace_covers_the_online_serving_story(demo_trace):
    """The span taxonomy includes plan→serve→group-formation spans."""
    names = {json.loads(line)["name"] for line in demo_trace.splitlines()}
    for expected in (
        "planner.plan",
        "sim.online",
        "sim.online.group",
        "sim.run",
    ):
        assert expected in names, f"span {expected!r} missing from demo trace"
