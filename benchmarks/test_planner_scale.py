"""Bench: the scalable planning tier at fleet scale.

Three headlines, emitted to ``benchmarks/BENCH_planner_scale.json``:

* ``dp_large_cluster`` — the DP tier plans a single 1000-GPU
  heterogeneous cluster in well under a minute, with a certified
  optimality gap bound.  The exact tier cannot touch this instance:
  its ordering enumeration would have to permute 1000 stage groups
  (~10^2568 permutations), so the section also records that
  impossibility evidence.
* ``fleet_schedule`` — end-to-end plan+schedule of a job queue onto a
  1000-GPU schedulable inventory drawn from a 10k-GPU fleet sample.
  The smoke variant (default, CI) schedules 10 jobs; the full variant
  (``PLANNER_SCALE_FULL=1``, nightly) schedules 100.
* ``incremental_vs_cold`` — ``replan(prev, ClusterDelta(...))`` vs a
  cold re-plan on the reduced cluster after losing one GPU.  The
  incremental path repairs the previous plan and re-scores it with one
  fastsim sweep; empirically >1000x faster.  The hard floor here is a
  conservative 3x so noisy CI boxes never flake, and the repaired
  plan must keep at least half the cold plan's throughput.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core import ClusterDelta, PlannerConfig, SplitQuantPlanner
from repro.core.enumeration import scalable_orderings
from repro.fleet import FleetScheduler, make_job_queue
from repro.hardware import make_cluster
from repro.hardware.fleet import sample_fleet, schedulable_inventory
from repro.models import get_model
from repro.workloads import BatchWorkload

OUT = Path(__file__).resolve().parent / "BENCH_planner_scale.json"

#: Hard floors — structural contracts, not machine-relative baselines.
MIN_INCREMENTAL_SPEEDUP = 3.0
MIN_INCREMENTAL_TPUT_RATIO = 0.5
MAX_GAP_BOUND = 25.0
MAX_DP_PLAN_WALL_S = 60.0
ROUNDS = 3

FULL = os.environ.get("PLANNER_SCALE_FULL", "") == "1"

#: 1000 heterogeneous GPUs in one cluster — the DP-tier headline.
BIG_COUNTS = [["A100-40G", 400], ["V100-32G", 300], ["T4-16G", 300]]

#: Fleet-style planner config: heuristic adabits, coarse groups.
BIG_CFG = PlannerConfig(
    use_heuristic=True,
    group_size=8,
    max_orderings=3,
    microbatch_candidates=(8,),
    verify_top_k=1,
)


def _dp_large_cluster() -> dict:
    spec = get_model("opt-30b")
    cluster = make_cluster("bench-1000", BIG_COUNTS)
    t0 = time.perf_counter()
    planner = SplitQuantPlanner(spec, cluster, BIG_CFG)
    fit_wall_s = time.perf_counter() - t0
    wl = BatchWorkload(batch=64, prompt_len=512, output_len=64)
    t0 = time.perf_counter()
    result = planner.plan(wl)  # tier="auto" -> dp at 1000 devices
    plan_wall_s = time.perf_counter() - t0
    assert result is not None, "DP tier failed on the 1000-GPU cluster"
    assert result.tier == "dp", f"auto routed to {result.tier!r}"
    assert plan_wall_s < MAX_DP_PLAN_WALL_S, (
        f"DP plan took {plan_wall_s:.1f}s on 1000 GPUs "
        f"(budget {MAX_DP_PLAN_WALL_S:.0f}s)"
    )
    gap = result.gap_bound
    assert gap is not None and 1.0 <= gap < MAX_GAP_BOUND, (
        f"gap bound {gap} outside [1, {MAX_GAP_BOUND})"
    )
    # Exact-tier impossibility evidence: its ordering enumeration is
    # factorial in the number of stage groups.
    groups = max(
        len(o) for o in scalable_orderings(cluster, max_orderings=3)
    )
    perm_log10 = math.lgamma(groups + 1) / math.log(10.0)
    return {
        "gpus": len(cluster.devices),
        "model": spec.name,
        "fit_wall_s": round(fit_wall_s, 3),
        "plan_wall_s": round(plan_wall_s, 3),
        "tier": result.tier,
        "gap_bound": round(gap, 3),
        "stages": len(result.plan.stages),
        "throughput_tokens_s": round(result.throughput_tokens_s, 1),
        "exact_stage_groups": groups,
        "exact_orderings_log10": round(perm_log10, 0),
    }


@contextmanager
def _cold_persistent_cache():
    """Point the persistent plan cache at an empty temp dir.

    The fleet headline measures planning throughput, not how warm this
    machine's ``~/.cache/splitquant`` happens to be.
    """
    prev = os.environ.get("SPLITQUANT_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        os.environ["SPLITQUANT_CACHE_DIR"] = tmp
        try:
            yield
        finally:
            if prev is None:
                os.environ.pop("SPLITQUANT_CACHE_DIR", None)
            else:
                os.environ["SPLITQUANT_CACHE_DIR"] = prev


def _fleet_schedule() -> dict:
    n_jobs = 100 if FULL else 10
    stats = sample_fleet(n_gpus=10_000, seed=0)
    inventory = schedulable_inventory(stats, pool_gpus=1000)
    jobs = make_job_queue(n_jobs=n_jobs, seed=0)
    scheduler = FleetScheduler(inventory, allocator="greedy")
    with _cold_persistent_cache():
        t0 = time.perf_counter()
        schedule = scheduler.schedule(jobs)
        wall_s = time.perf_counter() - t0
    assert len(schedule.jobs) > 0, "fleet schedule placed no jobs"
    pool = schedule.pool_stats
    return {
        "variant": "full" if FULL else "smoke",
        "inventory": dict(inventory),
        "pool_gpus": sum(inventory.values()),
        "jobs": n_jobs,
        "scheduled": len(schedule.jobs),
        "unscheduled": len(schedule.unscheduled),
        "wall_s": round(wall_s, 2),
        "jobs_per_s": round(len(schedule.jobs) / wall_s, 3),
        "makespan_s": round(schedule.makespan_s, 1),
        "planner_evaluations": pool.get("evaluations", 0),
        "planner_cache_hits": pool.get("cache_hits", 0),
    }


def _incremental_vs_cold() -> dict:
    spec = get_model("opt-13b")
    cluster = make_cluster(
        "bench-inc",
        [["A100-40G", 2], ["V100-32G", 2], ["T4-16G", 2]],
    )
    cfg = PlannerConfig(
        use_heuristic=True,
        microbatch_candidates=(4,),
        verify_top_k=1,
        enable_tp=False,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg)
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=32)
    prev = planner.plan(wl)
    assert prev is not None
    dead = cluster.devices[-1].device_id
    survivors = [
        d.device_id for d in cluster.devices if d.device_id != dead
    ]
    cold_s, cold = float("inf"), None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        cold = planner.replan_cold(wl, survivors)
        cold_s = min(cold_s, time.perf_counter() - t0)
    inc_s, inc = float("inf"), None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        inc = planner.replan(prev, ClusterDelta(removed_device_ids=(dead,)))
        inc_s = min(inc_s, time.perf_counter() - t0)
    speedup = cold_s / inc_s
    tput_ratio = inc.throughput_tokens_s / cold.throughput_tokens_s
    assert speedup >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental re-solve only {speedup:.1f}x faster than cold "
        f"(need >= {MIN_INCREMENTAL_SPEEDUP}x): cold "
        f"{cold_s * 1e3:.1f}ms vs incremental {inc_s * 1e3:.1f}ms"
    )
    assert tput_ratio >= MIN_INCREMENTAL_TPUT_RATIO, (
        f"incremental plan keeps only {tput_ratio:.2f} of cold "
        f"throughput (need >= {MIN_INCREMENTAL_TPUT_RATIO})"
    )
    return {
        "gpus": len(cluster.devices),
        "cold_wall_s": round(cold_s, 4),
        "incremental_wall_s": round(inc_s, 5),
        "speedup": round(speedup, 1),
        "incremental_tier": inc.tier,
        "throughput_ratio_vs_cold": round(tput_ratio, 3),
    }


def test_planner_scale():
    record = {
        "bench": "planner_scale",
        "min_incremental_speedup": MIN_INCREMENTAL_SPEEDUP,
        "max_gap_bound": MAX_GAP_BOUND,
        "dp_large_cluster": _dp_large_cluster(),
        "fleet_schedule": _fleet_schedule(),
        "incremental_vs_cold": _incremental_vs_cold(),
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
