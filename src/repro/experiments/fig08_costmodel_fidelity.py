"""Fig. 8: fidelity of the memory and latency cost models.

Memory: BLOOM-560m/1b7 and OPT-13b/30b/66b with random precision settings,
prompt lengths 128-512, batch sizes {2,4,8} and 100-200 generated tokens;
predicted weights+KV versus the page-rounded "measured" allocation.

Latency: per device, 50 unseen workloads (batch {3,5,7}, past {384,768})
never in the calibration grid; relative error of the fitted regressions.
The paper reports near-zero memory error and <6% mean latency error.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..costmodel.latency import LatencyCostModel, relative_errors
from ..costmodel.memory import MemoryCostModel
from ..hardware.gpus import get_gpu
from ..models.architectures import get_model
from ..simgpu.profiler import Profiler
from .harness import ExperimentResult

MEMORY_MODELS = ("bloom-560m", "bloom-1b7", "opt-13b", "opt-30b", "opt-66b")
LATENCY_DEVICES = ("T4-16G", "P100-12G", "V100-32G", "A100-40G")
BITS = (3, 4, 8, 16)


def _memory_errors(model_name: str, n_cases: int, seed: int) -> np.ndarray:
    spec = get_model(model_name)
    rng = np.random.default_rng(seed)
    prof = Profiler(seed=seed)
    errs = []
    for _ in range(n_cases):
        prompt = int(rng.integers(128, 513))
        batch = int(rng.choice([2, 4, 8]))
        gen = int(rng.integers(100, 201))
        bits = rng.choice(BITS, size=spec.num_layers)
        mm = MemoryCostModel(spec=spec, batch=batch, context=prompt + gen)
        predicted = sum(mm.layer_bytes(int(b)) for b in bits)
        measured = prof.measure_memory(spec, [int(b) for b in bits], batch,
                                       prompt + gen)
        errs.append(abs(predicted - measured) / measured)
    return np.array(errs)


def run(
    n_memory_cases: int = 20,
    n_latency_workloads: int = 50,
    latency_model: str = "opt-13b",
    seed: int = 0,
) -> ExperimentResult:
    rows = []
    mem_errs_all = []
    for name in MEMORY_MODELS:
        errs = _memory_errors(name, n_memory_cases, seed)
        mem_errs_all.append(errs)
        rows.append(["memory", name, "-", 100 * errs.mean(), 100 * errs.max()])

    spec = get_model(latency_model)
    cm = LatencyCostModel(spec).fit(
        [get_gpu(d) for d in LATENCY_DEVICES], BITS, Profiler(seed=seed + 1)
    )
    rng = np.random.default_rng(seed + 2)
    workloads: Sequence[Tuple[int, int]] = [
        (int(rng.choice([3, 5, 7])), int(rng.choice([384, 768])))
        for _ in range(n_latency_workloads)
    ]
    prof = Profiler(seed=seed + 3)
    lat_errs_all = []
    for device in LATENCY_DEVICES:
        gpu = get_gpu(device)
        for phase in ("prefill", "decode"):
            errs = relative_errors(cm, gpu, 16, phase, workloads, prof)
            lat_errs_all.append(errs)
            rows.append(
                ["latency", device, phase, 100 * errs.mean(), 100 * errs.max()]
            )
    mem_mean = float(np.concatenate(mem_errs_all).mean())
    lat_mean = float(np.concatenate(lat_errs_all).mean())
    return ExperimentResult(
        name="fig08",
        title="Cost model fidelity: predicted vs measured",
        headers=["cost_model", "target", "phase", "mean_err_%", "max_err_%"],
        rows=rows,
        summary={
            "memory_mean_err": mem_mean,
            "latency_mean_err": lat_mean,
        },
        notes="Paper: memory error almost negligible; latency mean error < 6%.",
    )
