"""Profiling API: noisy "measurements" from the simulated testbed.

The assigner fits its cost models from a small set of GPU calibration
payloads (Sec. III).  This module plays the role of those payloads: it
returns roofline latencies perturbed by seeded multiplicative measurement
noise, plus memory readings with allocator page granularity, so that fitting
and validation (Fig. 8) exercise a realistic estimation problem rather than
reading the ground truth back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

from ..hardware.gpus import GPUSpec
from ..models.architectures import ModelSpec
from ..models import layers as L
from .memory import PAGE_BYTES
from .roofline import layer_time

#: Relative std-dev of simulated latency measurements.
LATENCY_NOISE_SIGMA = 0.03


@dataclass(frozen=True)
class LatencySample:
    """One profiled layer execution."""

    phase: str
    bits: int
    batch: int
    seq: int
    time_s: float


@dataclass
class Profiler:
    """Measurement front-end over the roofline simulator."""

    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def measure_layer(
        self,
        gpu: GPUSpec,
        spec: ModelSpec,
        bits: int,
        phase: str,
        batch: int,
        seq: int,
        bit_kv: int = 16,
        repeats: int = 3,
    ) -> float:
        """Median of ``repeats`` noisy timings of one layer execution."""
        truth = layer_time(gpu, spec, bits, phase, batch, seq, bit_kv)
        noise = self._rng.lognormal(
            mean=0.0, sigma=LATENCY_NOISE_SIGMA, size=repeats
        )
        return float(truth * np.median(noise))

    def measure_memory(
        self,
        spec: ModelSpec,
        bits_per_layer: Sequence[int],
        batch: int,
        context: int,
        bit_kv: int = 16,
    ) -> int:
        """Observed bytes for a stage holding the given quantized layers.

        Weights and the KV reservation are pooled into one arena each (as
        caching allocators do) and page-rounded — the two components the
        Fig. 8 memory-fidelity experiment compares.
        """
        weights = sum(L.weight_storage_bytes(spec, bits) for bits in bits_per_layer)
        kv = len(list(bits_per_layer)) * L.kv_cache_bytes(
            spec, batch, context, bit_kv
        )
        rounded_w = -(-weights // PAGE_BYTES) * PAGE_BYTES
        rounded_kv = -(-kv // PAGE_BYTES) * PAGE_BYTES
        return rounded_w + rounded_kv

    def profile_grid(
        self,
        gpu: GPUSpec,
        spec: ModelSpec,
        bits: int,
        phase: str,
        batches: Iterable[int] = (1, 2, 4, 8, 16),
        seqs: Iterable[int] = (64, 128, 256, 512, 1024),
        bit_kv: int = 16,
    ) -> List[LatencySample]:
        """Calibration payload: measure a (batch x seq) grid for one config.

        For decode, ``seqs`` are past context lengths.
        """
        samples: List[LatencySample] = []
        for v in batches:
            for s in seqs:
                t = self.measure_layer(gpu, spec, bits, phase, v, s, bit_kv)
                samples.append(LatencySample(phase, bits, v, s, t))
        return samples
