"""Differential tests: the closed-form fast simulator vs the event loop.

The fast path claims *bit-exact* equality with the discrete-event oracle
(not approximate agreement), so every assertion here is ``==`` on raw
floats.  ``PipelineSimResult.sim_backend`` is excluded from dataclass
equality precisely so whole results can be compared directly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware import make_cluster, table_iii_cluster
from repro.models import get_model
from repro.pipeline import (
    SIM_BACKENDS,
    fast_eligible_variable,
    simulate_plan,
    simulate_plan_variable,
    trace_plan,
)
from repro.plan import uniform_plan
from repro.simgpu import OutOfMemoryError
from repro.workloads import BatchWorkload
from repro.workloads.spec import VariableBatchWorkload


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


def _assert_identical(ev, fa):
    """Field-by-field exact equality (plus the dataclass comparison)."""
    assert fa.sim_backend == "fast" and ev.sim_backend == "event"
    assert ev.makespan_s == fa.makespan_s
    assert ev.prefill_span_s == fa.prefill_span_s
    assert ev.decode_span_s == fa.decode_span_s
    assert ev.total_tokens == fa.total_tokens
    assert ev.stage_busy_s == fa.stage_busy_s
    assert ev.stage_memory_bytes == fa.stage_memory_bytes
    assert ev.events_processed == fa.events_processed
    # Derived metrics follow, but assert them anyway: these are what the
    # experiments actually report.
    assert ev.throughput_tokens_s == fa.throughput_tokens_s
    assert ev.stage_utilization == fa.stage_utilization
    assert ev.bubble_fraction == fa.bubble_fraction
    assert ev == fa


# -- seeded grid ---------------------------------------------------------

GRID = [
    # (cluster index, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec)
    (5, "opt-13b", 8, 8, 256, 32, 2048, 4, 4),
    (5, "opt-13b", 4, 32, 512, 64, 256, 8, 16),
    (2, "opt-13b", 8, 16, 1024, 16, 512, 2, 8),
    (7, "opt-30b", 4, 64, 512, 128, 1024, 16, 32),
    (9, "opt-13b", 16, 24, 384, 48, 384, 6, 12),  # remainder microbatches
    (10, "opt-30b", 16, 8, 2048, 8, 512, 8, 8),  # kappa = 4
]


@pytest.mark.parametrize(
    "idx,model,bits,batch,prompt,out,chunk,mb_pre,mb_dec", GRID
)
def test_fast_equals_event_grid(
    idx, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec
):
    cluster = table_iii_cluster(idx)
    spec = get_model(model)
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), bits, mb_pre, mb_dec
    )
    wl = BatchWorkload(
        batch=batch, prompt_len=prompt, output_len=out, chunk_tokens=chunk
    )
    ev = simulate_plan(plan, cluster, spec, wl, sim_backend="event")
    fa = simulate_plan(plan, cluster, spec, wl, sim_backend="fast")
    _assert_identical(ev, fa)


def test_single_stage_cluster(opt13b):
    cluster = table_iii_cluster(1)  # one V100: no links, no feedback
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster), 4, 4, 4
    )
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=32)
    ev = simulate_plan(plan, cluster, opt13b, wl, sim_backend="event")
    fa = simulate_plan(plan, cluster, opt13b, wl, sim_backend="fast")
    _assert_identical(ev, fa)


def test_single_token_output(small_cluster, opt13b):
    """No decode phase at all (output_len == 1)."""
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=1)
    ev = simulate_plan(plan, cluster := small_cluster, opt13b, wl,
                       sim_backend="event")
    fa = simulate_plan(plan, cluster, opt13b, wl, sim_backend="fast")
    assert fa.decode_span_s == 0.0
    _assert_identical(ev, fa)


def test_oom_parity(small_cluster, opt30b, small_workload):
    """Both backends reject a memory-infeasible plan identically."""
    plan = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    for backend in ("event", "fast"):
        with pytest.raises(OutOfMemoryError):
            simulate_plan(
                plan, small_cluster, opt30b, small_workload,
                sim_backend=backend,
            )


def test_auto_dispatch(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    auto = simulate_plan(plan, small_cluster, opt13b, small_workload)
    assert auto.sim_backend == "fast"
    ev = simulate_plan(
        plan, small_cluster, opt13b, small_workload, sim_backend="event"
    )
    assert auto == ev


def test_unknown_backend_rejected(small_cluster, opt13b, small_workload):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    assert SIM_BACKENDS == ("event", "fast", "auto")
    with pytest.raises(ValueError, match="sim_backend"):
        simulate_plan(
            plan, small_cluster, opt13b, small_workload, sim_backend="vroom"
        )


def test_trace_plan_still_records_jobs(small_cluster, opt13b, small_workload):
    """Per-job timelines need real servers: trace_plan pins the event
    engine even though auto-dispatch would pick the fast path."""
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    tl = trace_plan(plan, small_cluster, opt13b, small_workload)
    assert tl.result.sim_backend == "event"
    assert all(len(jobs) > 0 for _, jobs in tl.stages)


# -- variable-output workloads ------------------------------------------

def test_variable_fixed_size_exact(small_cluster, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    wl = VariableBatchWorkload(prompt_len=256, output_lens=(24,) * 8)
    assert fast_eligible_variable(wl)
    ev = simulate_plan_variable(
        plan, small_cluster, opt13b, wl, sim_backend="event"
    )
    fa = simulate_plan_variable(
        plan, small_cluster, opt13b, wl, sim_backend="fast"
    )
    _assert_identical(ev, fa)
    assert fa.total_tokens == wl.total_output_tokens


def test_variable_retiring_uses_event(small_cluster, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 8, 4, 4
    )
    wl = VariableBatchWorkload(
        prompt_len=256, output_lens=(8, 16, 24, 32, 8, 16, 24, 32)
    )
    assert not fast_eligible_variable(wl)
    auto = simulate_plan_variable(plan, small_cluster, opt13b, wl)
    assert auto.sim_backend == "event"
    with pytest.raises(ValueError, match="uniform output lengths"):
        simulate_plan_variable(
            plan, small_cluster, opt13b, wl, sim_backend="fast"
        )


# -- property: random shapes stay exact ---------------------------------

@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    batch=st.integers(min_value=1, max_value=48),
    prompt=st.integers(min_value=32, max_value=768),
    out=st.integers(min_value=1, max_value=40),
    chunk=st.sampled_from([128, 256, 512, 2048]),
    mb_pre=st.sampled_from([1, 2, 3, 4, 8]),
    mb_dec=st.sampled_from([1, 2, 4, 5, 8, 16]),
    bits=st.sampled_from([3, 4, 8, 16]),
)
def test_fast_equals_event_property(
    batch, prompt, out, chunk, mb_pre, mb_dec, bits
):
    cluster = make_cluster("prop", [("T4-16G", 1), ("V100-32G", 1)])
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), bits, mb_pre, mb_dec
    )
    wl = BatchWorkload(
        batch=batch, prompt_len=prompt, output_len=out, chunk_tokens=chunk
    )
    try:
        ev = simulate_plan(plan, cluster, spec, wl, sim_backend="event")
    except OutOfMemoryError:
        with pytest.raises(OutOfMemoryError):
            simulate_plan(plan, cluster, spec, wl, sim_backend="fast")
        return
    fa = simulate_plan(plan, cluster, spec, wl, sim_backend="fast")
    assert ev.makespan_s == fa.makespan_s
    assert ev.throughput_tokens_s == fa.throughput_tokens_s
    assert ev.bubble_fraction == fa.bubble_fraction
    assert ev.stage_utilization == fa.stage_utilization
    assert ev == fa
