"""Pipeline-stage workers: one thread per stage, each owning a layer range.

A worker receives hidden-state messages, runs its (quantized) decoder
layers with per-micro-batch KV caches, and forwards the result to the next
stage (or back to the master after the last stage) — the distributed
execution of Fig. 6, step 3, with threads standing in for worker
processes.

Fault-tolerance additions: workers poll their inbox with a short timeout
and tick a monotonic heartbeat every iteration (so the engine can tell a
hung worker from an idle one), consult a
:class:`~repro.runtime.faults.FaultInjector` before each job (the
deterministic kill/slowdown injection point), and account ``busy_time``
via try/finally so partially-executed jobs — including the one that kills
the worker — are still charged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import metrics, trace
from ..quality.tinylm import LayerWeights, TinyLMConfig, layer_forward
from .comm import Channel, ChannelClosed, StageFailure
from .faults import FaultInjector


@dataclass(frozen=True)
class StageMessage:
    """One unit of pipeline work."""

    phase: str  # "prefill" | "decode"
    mb_id: int
    hidden: np.ndarray  # (B, T, H) activations entering the stage
    #: Decode step (1-based) this job belongs to; 0 during prefill.  Set
    #: by the master so faults keyed on a step fire deterministically at
    #: every stage regardless of thread timing.
    step: int = 0


@dataclass(frozen=True)
class RegroupMessage:
    """Phase-switch control: re-slice KV caches into new micro-batches.

    The paper's master engine "dynamically adapts micro-batch sizes across
    generation phases" (Sec. III): prefill runs at eta, decode at xi.  Each
    entry of ``groups`` describes one new micro-batch as a concatenation of
    slices ``(old_mb_id, local_start, local_end)`` of the old ones.  The
    message flows through the pipeline so every stage regroups exactly
    once, and its arrival at the master signals completion.
    """

    groups: Tuple[Tuple[Tuple[int, int, int], ...], ...]


class StageWorker(threading.Thread):
    """Executes a contiguous range of decoder layers."""

    def __init__(
        self,
        stage_index: int,
        config: TinyLMConfig,
        layers: List[LayerWeights],
        in_ch: Channel,
        out_ch: Channel,
        injector: Optional[FaultInjector] = None,
        poll_s: float = 0.05,
    ) -> None:
        super().__init__(name=f"stage-{stage_index}", daemon=True)
        self.stage_index = stage_index
        self.config = config
        self.layers = layers
        self.in_ch = in_ch
        self.out_ch = out_ch
        self.injector = injector
        self.poll_s = poll_s
        #: Per-micro-batch, per-local-layer KV caches.
        self._caches: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        self.busy_time = 0.0
        self.jobs = 0
        self.error: Optional[BaseException] = None
        #: Monotonic timestamp of the last sign of life (recv poll or job
        #: boundary); the engine's stall detector compares against this.
        self.last_heartbeat = time.monotonic()

    def _beat(self) -> None:
        self.last_heartbeat = time.monotonic()

    def _forward(self, msg: StageMessage) -> np.ndarray:
        x = msg.hidden
        if msg.phase == "prefill":
            caches: List[Tuple[np.ndarray, np.ndarray]] = []
            for lw in self.layers:
                x, kv = layer_forward(self.config, lw, x)
                caches.append(kv)
            self._caches[msg.mb_id] = caches
        elif msg.phase == "decode":
            try:
                caches = self._caches[msg.mb_id]
            except KeyError:
                raise RuntimeError(
                    f"stage {self.stage_index}: decode for unknown "
                    f"micro-batch {msg.mb_id}"
                ) from None
            for i, lw in enumerate(self.layers):
                x, kv = layer_forward(self.config, lw, x, cache=caches[i])
                caches[i] = kv
        else:
            raise ValueError(f"unknown phase {msg.phase!r}")
        return x

    def _process(self, msg: StageMessage) -> None:
        """Run one job: injector gate, forward, busy accounting, send."""
        if self.injector is not None:
            # Deterministic kill/slowdown point: before the job's
            # compute, keyed on (stage, phase, step, mb).
            self.injector.on_job(
                self.stage_index,
                msg.phase,
                msg.step,
                msg.mb_id,
                heartbeat=self._beat,
            )
        t0 = time.perf_counter()
        try:
            out = self._forward(msg)
        finally:
            # Charge partial work even when the job raises, so busy
            # accounting stays correct across retries and injected
            # failures.
            self.busy_time += time.perf_counter() - t0
        self.jobs += 1
        self._beat()
        self.out_ch.send(
            StageMessage(
                phase=msg.phase,
                mb_id=msg.mb_id,
                hidden=out,
                step=msg.step,
            )
        )

    def _regroup(self, msg: RegroupMessage) -> None:
        new_caches: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        for new_id, parts in enumerate(msg.groups):
            merged: List[Tuple[np.ndarray, np.ndarray]] = []
            for layer_idx in range(len(self.layers)):
                ks, vs = [], []
                for old_id, lo, hi in parts:
                    k, v = self._caches[old_id][layer_idx]
                    ks.append(k[lo:hi])
                    vs.append(v[lo:hi])
                merged.append(
                    (np.concatenate(ks, axis=0), np.concatenate(vs, axis=0))
                )
            new_caches[new_id] = merged
        self._caches = new_caches

    def run(self) -> None:
        try:
            while True:
                try:
                    msg = self.in_ch.recv(timeout=self.poll_s)
                except TimeoutError:
                    self._beat()  # idle but alive
                    continue
                except (ChannelClosed, StageFailure):
                    # Upstream shut down (cleanly or by dying): this
                    # worker is still healthy — propagate the close so
                    # the master notices, and exit without an error.
                    self.out_ch.close()
                    return
                self._beat()
                if isinstance(msg, RegroupMessage):
                    self._regroup(msg)
                    self.out_ch.send(msg)
                    continue
                if trace.enabled:
                    # Per-stage/per-micro-batch step span (traced runs
                    # only: the disabled path pays one attribute check).
                    with trace.span(
                        "runtime.step",
                        stage=self.stage_index,
                        phase=msg.phase,
                        step=msg.step,
                        mb=msg.mb_id,
                    ):
                        self._process(msg)
                    metrics.counter("runtime.jobs").inc()
                else:
                    self._process(msg)
        except BaseException as exc:  # surfaced by the engine
            self.error = exc
            self.out_ch.close()

    def reset_caches(self) -> None:
        self._caches.clear()

    def cache_tokens(self, mb_id: int) -> int:
        """Current KV length for a micro-batch (test/inspection hook)."""
        caches = self._caches.get(mb_id)
        if not caches:
            return 0
        return int(caches[0][0].shape[1])
