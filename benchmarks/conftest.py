"""Benchmark harness helpers.

Every benchmark regenerates one paper table/figure via its experiment
module, prints the reproduced rows (run pytest with ``-s`` to see them),
and asserts the paper's qualitative shape.  Experiments are deterministic
and expensive, so each runs exactly once per benchmark.
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, fn, **kwargs):
    """Run ``fn`` once under pytest-benchmark and print its table."""
    result = benchmark.pedantic(
        lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.to_text())
    return result


@pytest.fixture
def experiment(benchmark):
    def _run(fn, **kwargs):
        return run_experiment(benchmark, fn, **kwargs)

    return _run
