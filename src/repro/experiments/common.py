"""Shared helpers for the end-to-end serving experiments."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from ..api import Session
from ..baselines import (
    BaselineResult,
    plan_het_baseline,
    plan_uniform_baseline,
)
from ..costmodel.latency import LatencyCostModel
from ..core import PlannerConfig
from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec, get_model
from ..models import layers as L
from ..plan import ExecutionPlan
from ..quant.sensitivity import normalized_indicator_table
from ..simgpu.memory import OutOfMemoryError
from ..workloads.spec import BatchWorkload

BITS = (3, 4, 8, 16)


@lru_cache(maxsize=64)
def _cost_model_cached(model_name: str, gpu_names: Tuple[str, ...]) -> LatencyCostModel:
    """Fit (or restore from the persistent cache) one cost model.

    Two cache layers: this ``lru_cache`` memoizes within the process; the
    :mod:`repro.cache` store persists the fitted coefficients across
    processes, which is what makes warmed-cache experiment reruns fast —
    the fit dominates experiment setup time.
    """
    import dataclasses as _dc

    from ..cache import MISS, cache_key, code_version_salt, default_cache
    from ..costmodel.latency import DECODE_GRID, PREFILL_GRID
    from ..hardware.gpus import get_gpu

    spec = get_model(model_name)
    gpus = [get_gpu(n) for n in gpu_names]
    cache = default_cache()
    key = None
    if cache is not None:
        key = cache_key(
            {
                "kind": "cost_model_fit",
                "salt": code_version_salt(),
                "model": _dc.asdict(spec),
                "gpus": [_dc.asdict(g) for g in gpus],
                "bits": BITS,
                "prefill_grid": PREFILL_GRID,
                "decode_grid": DECODE_GRID,
                "seed": 0,
            }
        )
        hit = cache.get("cost_model_fit", key)
        if hit is not MISS:
            return LatencyCostModel.from_state_dict(spec, hit)
    cm = LatencyCostModel(spec)
    cm.fit(gpus, BITS)
    if cache is not None:
        cache.put("cost_model_fit", key, cm.state_dict())
    return cm


def cost_model_for(spec: ModelSpec, cluster: ClusterSpec) -> LatencyCostModel:
    """Fitted latency cost model for (model, cluster), cached per session."""
    gpus = tuple(sorted({d.gpu.name for d in cluster.devices}))
    return _cost_model_cached(spec.name, gpus)


def throughput_of(
    plan: Optional[ExecutionPlan],
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
) -> float:
    """Simulated tokens/s of a plan; 0.0 encodes OOM/infeasible (Fig. 10)."""
    if plan is None:
        return 0.0
    try:
        sim = Session(spec, cluster).simulate(plan=plan, workload=workload)
        return sim.throughput_tokens_s
    except OutOfMemoryError:
        return 0.0


def feasible_batch(
    spec: ModelSpec,
    cluster: ClusterSpec,
    prompt_len: int,
    output_len: int,
    max_batch: int = 256,
    kv_fraction: float = 0.4,
) -> int:
    """Largest power-of-two batch whose FP16 KV fits in a memory fraction.

    Long-context workloads (LooGLE) cannot keep 256 requests resident;
    engines admit what the KV budget allows.  Mirrors vLLM's admission
    behavior so experiments stay comparable across policies.
    """
    budget = cluster.usable_memory_bytes() * kv_fraction
    per_req = spec.num_layers * L.kv_cache_bytes(spec, 1, prompt_len + output_len)
    b = 1
    while b * 2 <= max_batch and (b * 2) * per_req <= budget:
        b *= 2
    return b


def microbatch_grid(batch: int) -> Tuple[int, ...]:
    """SplitQuant's pruned micro-batch candidate set: {B/4, B/2, B}."""
    return tuple(sorted({max(batch // 4, 1), max(batch // 2, 1), batch}))


def best_uniform(
    spec: ModelSpec,
    cluster: ClusterSpec,
    workload: BatchWorkload,
    stage_groups=None,
) -> Tuple[Optional[BaselineResult], float]:
    """Uniform baseline at framework-default micro-batching."""
    res = plan_uniform_baseline(
        spec, cluster, workload, BITS, stage_groups=stage_groups
    )
    if res is None:
        return None, 0.0
    return res, throughput_of(res.plan, cluster, spec, workload)


def best_het(
    spec: ModelSpec,
    cluster: ClusterSpec,
    workload: BatchWorkload,
    cost_model: LatencyCostModel,
) -> Tuple[Optional[BaselineResult], float]:
    """Het baseline (best ordering) at framework-default micro-batching."""
    res = plan_het_baseline(spec, cluster, workload, cost_model, BITS)
    if res is None:
        return None, 0.0
    return res, throughput_of(res.plan, cluster, spec, workload)


@dataclass(frozen=True)
class ServingComparison:
    """Throughputs of the three policies on one configuration."""

    uniform_tput: float
    het_tput: float
    splitquant_tput: float
    uniform_bits: Optional[int]
    het_bits: Optional[int]
    plan: Optional[ExecutionPlan]

    @property
    def speedup_vs_uniform(self) -> float:
        if self.uniform_tput <= 0:
            return float("inf") if self.splitquant_tput > 0 else 0.0
        return self.splitquant_tput / self.uniform_tput

    @property
    def speedup_vs_het(self) -> float:
        if self.het_tput <= 0:
            return float("inf") if self.splitquant_tput > 0 else 0.0
        return self.splitquant_tput / self.het_tput


def compare_policies(
    spec: ModelSpec,
    cluster: ClusterSpec,
    workload: BatchWorkload,
    planner_config: Optional[PlannerConfig] = None,
    quality_match_uniform: bool = True,
) -> ServingComparison:
    """Run Uniform / Het / SplitQuant on one configuration (Fig. 9/10).

    With ``quality_match_uniform`` the SplitQuant plan is constrained to at
    least the Uniform baseline's quality (Sec. VI-C); when Uniform OOMs the
    budget falls back to uniform-minimum-bits quality.
    """
    cm = cost_model_for(spec, cluster)
    uni, uni_tput = best_uniform(spec, cluster, workload)
    het, het_tput = best_het(spec, cluster, workload, cm)

    cfg = planner_config or PlannerConfig(
        group_size=max(spec.num_layers // 16, 1),
        max_orderings=6,
        microbatch_candidates=microbatch_grid(workload.batch),
        time_limit_s=20.0,
    )
    # Derive the quality budget *before* building the planner: constructing
    # twice re-derives the indicator table (and would refit any lazily
    # built cost models) for nothing.
    omega = normalized_indicator_table(spec, cfg.bit_choices)
    if quality_match_uniform:
        ref_bits = uni.bits if uni is not None else min(BITS)
        k = list(cfg.bit_choices).index(ref_bits)
        budget = float(omega[:, k].sum())
        cfg = dataclasses.replace(cfg, quality_budget=budget)
    session = Session(
        spec, cluster, cfg, cost_model=cm, omega_layers=omega
    )
    result = session.plan(workload)

    return ServingComparison(
        uniform_tput=uni_tput,
        het_tput=het_tput,
        splitquant_tput=throughput_of(
            result.plan if result else None, cluster, spec, workload
        ),
        uniform_bits=uni.bits if uni else None,
        het_bits=het.bits if het else None,
        plan=result.plan if result else None,
    )
