"""Tests for the threaded master/worker runtime."""

import numpy as np
import pytest

from repro.plan import ExecutionPlan, StagePlan
from repro.runtime import (
    Channel,
    ChannelClosed,
    PipelineEngine,
    reference_generate,
)


def tiny_plan(layers_per_stage, bits=8, mb=2):
    stages = []
    start = 0
    for i, n in enumerate(layers_per_stage):
        stages.append(
            StagePlan((i,), "T4-16G", start, (bits,) * n)
        )
        start += n
    return ExecutionPlan(
        model_name="tiny", stages=tuple(stages),
        prefill_microbatch=mb, decode_microbatch=mb,
    )


def test_channel_send_recv():
    ch = Channel("t")
    ch.send(42)
    assert ch.recv(timeout=1.0) == 42


def test_channel_timeout():
    ch = Channel("t")
    with pytest.raises(TimeoutError):
        ch.recv(timeout=0.05)


def test_channel_close():
    ch = Channel("t")
    ch.close()
    with pytest.raises(ChannelClosed):
        ch.recv(timeout=1.0)


def test_pipeline_matches_reference(tiny_model, rng):
    plan = tiny_plan([2, 2], bits=8)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(5, 10))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=6)
    ref = reference_generate(
        tiny_model.quantized([8, 8, 8, 8]), prompts, 6
    )
    assert np.array_equal(res.tokens, ref)


def test_mixed_precision_pipeline_matches_reference(tiny_model, rng):
    plan = ExecutionPlan(
        model_name="tiny",
        stages=(
            StagePlan((0,), "T4-16G", 0, (4, 16)),
            StagePlan((1,), "V100-32G", 2, (8, 3)),
        ),
        prefill_microbatch=2,
        decode_microbatch=2,
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(4, 8))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=5)
    ref = reference_generate(tiny_model.quantized([4, 16, 8, 3]), prompts, 5)
    assert np.array_equal(res.tokens, ref)


def test_result_telemetry(tiny_model, rng):
    plan = tiny_plan([1, 3])
    prompts = rng.integers(0, tiny_model.config.vocab, size=(4, 8))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=4)
    assert res.tokens.shape == (4, 12)
    assert res.prefill_time_s > 0
    assert res.decode_time_s > 0
    assert len(res.stage_busy_s) == 2
    assert all(b > 0 for b in res.stage_busy_s)
    assert res.microbatch == 2


def test_single_stage_pipeline(tiny_model, rng):
    plan = tiny_plan([4], mb=4)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(3, 6))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=3)
    ref = reference_generate(tiny_model.quantized([8] * 4), prompts, 3)
    assert np.array_equal(res.tokens, ref)


def test_uneven_microbatch_split(tiny_model, rng):
    """B=5 with mb=2 -> micro-batches of 2, 2, 1."""
    plan = tiny_plan([2, 2], mb=2)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(5, 7))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=4, microbatch=2)
    ref = reference_generate(tiny_model.quantized([8] * 4), prompts, 4)
    assert np.array_equal(res.tokens, ref)


def test_engine_reusable_across_generations(tiny_model, rng):
    plan = tiny_plan([2, 2])
    p1 = rng.integers(0, tiny_model.config.vocab, size=(2, 6))
    p2 = rng.integers(0, tiny_model.config.vocab, size=(3, 9))
    with PipelineEngine(tiny_model, plan) as eng:
        r1 = eng.generate(p1, n_tokens=3)
        r2 = eng.generate(p2, n_tokens=4)
    ref2 = reference_generate(tiny_model.quantized([8] * 4), p2, 4)
    assert np.array_equal(r2.tokens, ref2)


def test_plan_layer_mismatch_rejected(tiny_model):
    plan = tiny_plan([2, 3])  # 5 layers vs model's 4
    with pytest.raises(ValueError, match="layers"):
        PipelineEngine(tiny_model, plan)


def test_generate_requires_start(tiny_model, rng):
    plan = tiny_plan([2, 2])
    eng = PipelineEngine(tiny_model, plan)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(2, 6))
    with pytest.raises(RuntimeError, match="not started"):
        eng.generate(prompts, n_tokens=2)


def test_fp16_pipeline_bit_exact_with_base_model(tiny_model, rng):
    plan = tiny_plan([2, 2], bits=16)
    prompts = rng.integers(0, tiny_model.config.vocab, size=(2, 6))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=4)
    ref = reference_generate(tiny_model, prompts, 4)
    assert np.array_equal(res.tokens, ref)


def test_phase_switch_regroups_caches(tiny_model, rng):
    """Prefill at eta=1, decode at xi=4: the master regroups KV caches at
    the phase boundary (Fig. 6's dynamic micro-batch adaptation) and the
    output stays bit-exact."""
    plan = ExecutionPlan(
        model_name="tiny",
        stages=(
            StagePlan((0,), "T4-16G", 0, (8, 8)),
            StagePlan((1,), "T4-16G", 2, (8, 8)),
        ),
        prefill_microbatch=1,
        decode_microbatch=4,
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(6, 9))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=5)
    ref = reference_generate(tiny_model.quantized([8] * 4), prompts, 5)
    assert np.array_equal(res.tokens, ref)
    assert res.microbatch == 4


def test_phase_switch_split_direction(tiny_model, rng):
    """Prefill at eta=4, decode at xi=2: splitting caches also works."""
    plan = ExecutionPlan(
        model_name="tiny",
        stages=(
            StagePlan((0,), "T4-16G", 0, (16, 16)),
            StagePlan((1,), "T4-16G", 2, (16, 16)),
        ),
        prefill_microbatch=4,
        decode_microbatch=2,
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(7, 8))
    with PipelineEngine(tiny_model, plan) as eng:
        res = eng.generate(prompts, n_tokens=4)
    ref = reference_generate(tiny_model, prompts, 4)
    assert np.array_equal(res.tokens, ref)


def test_regroup_cache_lengths(tiny_model, rng):
    """After regrouping, per-worker caches hold the decode micro-batches."""
    plan = ExecutionPlan(
        model_name="tiny",
        stages=(
            StagePlan((0,), "T4-16G", 0, (16, 16)),
            StagePlan((1,), "T4-16G", 2, (16, 16)),
        ),
        prefill_microbatch=2,
        decode_microbatch=3,
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(6, 8))
    with PipelineEngine(tiny_model, plan) as eng:
        eng.generate(prompts, n_tokens=3)
        worker = eng._workers[0]
        # 6 requests at xi=3 -> micro-batches of 3 and 3.
        assert worker.cache_tokens(0) > 0
        sizes = [worker._caches[m][0][0].shape[0] for m in sorted(worker._caches)]
        assert sizes == [3, 3]
