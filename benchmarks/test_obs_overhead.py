"""Bench: the observability layer's disabled-mode cost is negligible.

The contract (DESIGN.md "Observability"): with no tracer installed,
every hook in the hot paths costs one attribute check plus — at span
sites — one no-op context manager.  This bench quantifies that on the
Table-VI planning configuration (OPT-30B on Table III cluster 5, the
same config ``test_planner_scaling.py`` measures):

1. run the planner with tracing *enabled* to count how many hooks the
   workload actually hits (spans opened);
2. microbenchmark the *disabled* per-hook costs (``trace.enabled``
   check; full ``with trace.span(...)`` no-op round-trip);
3. run the planner with tracing disabled and assert the estimated
   total hook cost (hits x per-hook cost, with a 3x safety factor for
   the guarded metric updates that ride along) is **< 2%** of the
   measured planning wall-clock.

The per-hook estimate is used instead of differencing two wall-clock
runs because the planner's run-to-run variance (thread scheduling,
HiGHS) exceeds the effect being measured; the estimate is conservative
(kwargs are built even for no-op spans) and machine-independent.

Emits ``benchmarks/BENCH_obs.json`` with the measured record.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.core import PlannerConfig, SplitQuantPlanner
from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.obs import NOOP_SPAN, Tracer, current_tracer, trace, use_tracer
from repro.workloads import BatchWorkload

OUT = Path(__file__).resolve().parent / "BENCH_obs.json"

#: Disabled hooks must cost less than this fraction of planning wall.
OVERHEAD_BUDGET = 0.02

#: Guarded metric updates (``if trace.enabled: ...``) ride along with
#: span sites; budget three hook-checks per span, conservatively.
HOOKS_PER_SPAN = 3


def _per_op_s(fn, n: int = 200_000) -> float:
    """Mean seconds per call over ``n`` iterations (min of 3 repeats)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def _noop_span_roundtrip() -> None:
    with trace.span("bench.noop", a=1, b=2):
        pass


def _enabled_check() -> None:
    if trace.enabled:  # pragma: no cover - never true in this bench
        raise AssertionError


def test_disabled_observability_overhead_under_2pct():
    assert current_tracer() is None, "bench requires tracing disabled"

    spec = get_model("opt-30b")
    cluster = table_iii_cluster(5)
    workload = BatchWorkload(batch=64, prompt_len=512, output_len=128)
    base = PlannerConfig(
        group_size=3,
        max_orderings=6,
        microbatch_candidates=(8, 16, 32),
        verify_top_k=1,
        time_limit_s=30.0,
    )
    seed_planner = SplitQuantPlanner(spec, cluster, base)
    cfg = dataclasses.replace(
        base, quality_budget=seed_planner.uniform_quality(4)
    )

    def make_planner() -> SplitQuantPlanner:
        return SplitQuantPlanner(
            spec, cluster, cfg,
            cost_model=seed_planner.cost_model,
            omega_layers=seed_planner.omega_layers,
        )

    # 1. Hook hit count: how many spans does this workload open?
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        enabled_planner = make_planner()
        t0 = time.perf_counter()
        enabled_result = enabled_planner.plan(workload)
        enabled_wall_s = time.perf_counter() - t0
    spans = tracer.spans_started
    assert enabled_result is not None
    assert spans > 0, "Table-VI planning opened no spans — hooks missing?"

    # 2. Disabled per-hook microbench.
    assert trace.span("bench.check") is NOOP_SPAN
    span_cost_s = _per_op_s(_noop_span_roundtrip)
    check_cost_s = _per_op_s(_enabled_check)

    # 3. Disabled-mode planning wall.
    disabled_planner = make_planner()
    t0 = time.perf_counter()
    disabled_result = disabled_planner.plan(workload)
    disabled_wall_s = time.perf_counter() - t0
    assert disabled_result is not None
    assert disabled_result.plan == enabled_result.plan, (
        "tracing must not change the chosen plan"
    )

    estimated_overhead_s = spans * (
        span_cost_s + HOOKS_PER_SPAN * check_cost_s
    )
    overhead_fraction = estimated_overhead_s / disabled_wall_s

    record = {
        "bench": "obs_disabled_overhead",
        "model": spec.name,
        "cluster": cluster.name,
        "workload": {
            "batch": workload.batch,
            "prompt_len": workload.prompt_len,
            "output_len": workload.output_len,
        },
        "spans_opened": spans,
        "noop_span_cost_ns": round(span_cost_s * 1e9, 1),
        "enabled_check_cost_ns": round(check_cost_s * 1e9, 1),
        "hooks_per_span_budgeted": HOOKS_PER_SPAN,
        "enabled_wall_s": round(enabled_wall_s, 4),
        "disabled_wall_s": round(disabled_wall_s, 4),
        "estimated_overhead_s": round(estimated_overhead_s, 6),
        "overhead_fraction": round(overhead_fraction, 6),
        "budget_fraction": OVERHEAD_BUDGET,
        "plan_identical": disabled_result.plan == enabled_result.plan,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")

    assert overhead_fraction < OVERHEAD_BUDGET, (
        f"disabled observability hooks cost an estimated "
        f"{overhead_fraction:.2%} of planning wall-clock "
        f"(budget {OVERHEAD_BUDGET:.0%}): {record}"
    )
