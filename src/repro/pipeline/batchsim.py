"""Batched plan-frontier evaluation: the max-plus fastsim across plans.

The planner's candidate search and the fleet beam allocator both score
*frontiers* of structurally similar plans — thousands of calls into the
closed-form fast path of :mod:`repro.pipeline.fastsim`, each paying the
Python interpreter once per (stage, job) cell.  This module stacks many
plans' duration tables into one ``(steps x stages x plans)`` tensor and
runs the same recurrence

    F[j][k] = max(F[j][k-1], A[j][k]) + dur[j][k]

across the whole frontier in a single vectorized sweep: the sequential
``k`` (and decode ``(round, micro-batch)``) loops remain Python, but each
iteration now advances *every* plan with one ``np.maximum`` + add over
the lane axis, so the interpreter cost is paid once per batch instead of
once per plan.

**Bit-exactness.**  ``np.maximum`` and elementwise float64 adds perform
the identical IEEE operations per lane that the scalar loop performs per
plan, in the identical order, so each lane's result is bit-equal to
``_fast_core`` on that plan alone — and therefore to the discrete-event
oracle.  Ragged frontiers (different stage counts, micro-batch counts,
decode horizons) are padded with *identity elements* chosen so padded
cells are exact no-ops:

- padded **stages** (``j >= n_stages``) get zero durations and zero
  arrival delay.  Finish times are nondecreasing in FIFO job order, so
  ``max(F[k-1], F_prev[k]) + 0 == F_prev[k]`` — the stage is an exact
  pass-through.
- padded **jobs / micro-batches** (``k >= n_pre``, ``m >= n_dec``) and
  **rounds** (``t >= decode_steps``) get ``-inf`` arrival contributions
  (the identity of ``max``) and zero durations: the server state is
  untouched and the cell replicates the last real finish, keeping the
  final-row / final-round reads exact.  ``x + 0.0`` and ``max(x, -inf)``
  are bit-exact identities, and ``-inf`` only ever enters arrival terms,
  never durations or finish times, so no NaNs can form.

Eligibility is delegated to :func:`repro.pipeline.fastsim.fast_eligibility`
/ :func:`fast_eligibility_variable` — the same predicate ``auto``
dispatch uses.  A frontier member that declines (variable batches with
retiring requests) falls back to the event engine; the fallback is
counted (``batchsim.fallback``) and the reason recorded on
``PipelineSimResult.backend_reason``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..obs import metrics, trace
from ..plan import ExecutionPlan
from ..workloads.spec import BatchWorkload, VariableBatchWorkload
from .fastsim import (
    PlanTables,
    build_plan_tables,
    fast_eligibility,
    fast_eligibility_variable,
    shared_default_timing,
)
from .stage import TimingSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import PipelineSimResult

__all__ = ["PlanCase", "evaluate_plans"]

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class PlanCase:
    """One frontier member: a plan plus everything needed to score it."""

    plan: ExecutionPlan
    cluster: ClusterSpec
    spec: ModelSpec
    workload: Union[BatchWorkload, VariableBatchWorkload]
    #: Timing source; ``None`` uses the shared memoized roofline default
    #: (bit-identical to the per-plan default).
    timing: Optional[TimingSource] = None


def evaluate_plans(
    cases: Sequence[PlanCase],
    check_memory: bool = False,
) -> List["PipelineSimResult"]:
    """Score a frontier of plans in one vectorized sweep.

    Returns one :class:`PipelineSimResult` per case, in input order,
    bit-identical to calling ``simulate_plan`` (fast backend) on each
    case individually.  Ineligible members (variable workloads with
    retiring requests) fall back to the event engine with the decline
    reason recorded on ``backend_reason``.

    ``check_memory=True`` replays the per-plan memory check in input
    order, so an infeasible member raises the same
    :class:`~repro.simgpu.memory.OutOfMemoryError` the per-plan call
    would.  The default skips it — frontier scoring is typically applied
    to already-validated candidates.
    """
    from ..costmodel.energy import plan_cost, plan_energy
    from .simulator import (
        PipelineSimResult,
        check_plan_memory,
        simulate_plan,
        simulate_plan_variable,
    )

    n = len(cases)
    if n == 0:
        return []
    with trace.span("batchsim.evaluate", plans=n) as sp:
        results: List[Optional[PipelineSimResult]] = [None] * n
        lanes: List[
            Tuple[int, PlanTables, int, Tuple[int, ...], PlanCase, BatchWorkload]
        ] = []
        fallbacks = 0
        for i, case in enumerate(cases):
            plan, wl = case.plan, case.workload
            if isinstance(wl, VariableBatchWorkload):
                reason = fast_eligibility_variable(wl)
                if reason is not None:
                    res = simulate_plan_variable(
                        plan, case.cluster, case.spec, wl,
                        timing=case.timing, check_memory=check_memory,
                        sim_backend="event",
                    )
                    results[i] = replace(res, backend_reason=reason)
                    fallbacks += 1
                    continue
                uniform = BatchWorkload(
                    batch=wl.batch,
                    prompt_len=wl.prompt_len,
                    output_len=wl.max_output,
                    chunk_tokens=wl.chunk_tokens,
                )
                total_tokens = wl.total_output_tokens
            else:
                reason = fast_eligibility(plan, wl)
                if reason is not None:  # pragma: no cover - always eligible
                    res = simulate_plan(
                        plan, case.cluster, case.spec, wl,
                        timing=case.timing, check_memory=check_memory,
                        sim_backend="event",
                    )
                    results[i] = replace(res, backend_reason=reason)
                    fallbacks += 1
                    continue
                uniform = wl
                total_tokens = wl.batch * wl.output_len
            if plan.num_layers != case.spec.num_layers:
                raise ValueError(
                    f"plan covers {plan.num_layers} layers, model has "
                    f"{case.spec.num_layers}"
                )
            stage_mem = (
                check_plan_memory(plan, case.cluster, case.spec, uniform)
                if check_memory
                else tuple(0 for _ in plan.stages)
            )
            timing = case.timing or shared_default_timing(
                case.spec, plan.bit_kv
            )
            tables = build_plan_tables(
                plan, case.cluster, case.spec, uniform, timing,
                share_components=True,
            )
            lanes.append((i, tables, total_tokens, stage_mem, case, uniform))

        if lanes:
            prefill_span, decode_span, busy = _batched_core(
                [t for _, t, _, _, _, _ in lanes]
            )
            for li, (i, tables, total_tokens, stage_mem, case, uniform) in (
                enumerate(lanes)
            ):
                pre = float(prefill_span[li])
                dec = float(decode_span[li])
                stage_busy = tuple(
                    float(busy[j, li]) for j in range(tables.n_stages)
                )
                # Same pure post-pass the per-plan wrappers apply
                # (attach_energy), over the same bit-identical fields ->
                # lane energy matches the event and fast backends
                # exactly; folded into construction to keep the batched
                # path's per-lane overhead minimal.
                energy = plan_energy(
                    case.plan, case.cluster, case.spec, uniform,
                    pre + dec, pre, dec, stage_busy,
                )
                results[i] = PipelineSimResult(
                    makespan_s=pre + dec,
                    prefill_span_s=pre,
                    decode_span_s=dec,
                    total_tokens=total_tokens,
                    stage_busy_s=stage_busy,
                    stage_memory_bytes=stage_mem,
                    events_processed=tables.events,
                    sim_backend="fast",
                    energy_j=energy,
                    cost_usd=plan_cost(
                        case.plan, case.cluster, pre + dec, energy
                    ),
                )
        sp.set(batched=len(lanes), fallbacks=fallbacks)
        if trace.enabled:
            metrics.counter("batchsim.batches").inc()
            metrics.counter("batchsim.plans").inc(n)
            if fallbacks:
                metrics.counter("batchsim.fallback").inc(fallbacks)
    return results  # type: ignore[return-value]


def _batched_core(
    tables: Sequence[PlanTables],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the max-plus recurrence over all lanes at once.

    Returns ``(prefill_span, decode_span, busy)`` with shapes ``(N,)``,
    ``(N,)`` and ``(s_max, N)``; lane ``n``'s entries are bit-equal to
    ``_fast_core(tables[n])``.

    The hot decode loop advances a stacked ``[finish; busy]`` state per
    stage in exactly two ufunc calls per (round, stage, micro-batch)
    cell: the busy row rides along with a ``-inf`` arrival (the identity
    of ``max``) and the same duration added, so it accumulates the
    identical IEEE addition chain the scalar path performs.
    """
    n = len(tables)
    s_max = max(t.n_stages for t in tables)
    p_max = max(t.n_pre for t in tables)

    # -- prefill ---------------------------------------------------------
    # D[j, k, n]: duration of job k at stage j on lane n (0 when padded).
    # C[j-1, k, n]: arrival delay into stage j.  Real links carry the
    # link time for real jobs and -inf for padded jobs (so replicated
    # finishes never advance arrivals); padded pass-through stages carry
    # 0 so arrivals equal the upstream finish exactly.
    dur = np.zeros((s_max, p_max, n), dtype=np.float64)
    comm = np.zeros((max(s_max - 1, 0), p_max, n), dtype=np.float64)
    for li, t in enumerate(tables):
        for j in range(t.n_stages):
            dur[j, : t.n_pre, li] = t.pre_dur[j]
        for j in range(1, t.n_stages):
            comm[j - 1, : t.n_pre, li] = t.pre_comm[j - 1]
            comm[j - 1, t.n_pre:, li] = _NEG_INF

    # Stage 0: zero arrivals, finishes are a running sum per lane
    # (np.cumsum accumulates sequentially along the axis — the same
    # addition chain the scalar path performs).  Padded jobs add 0, so
    # the final row replicates each lane's real final finish.  Busy
    # times are per-stage sequential sums of the same durations, again
    # via cumsum so the addition order matches the scalar loop.
    prev = np.cumsum(dur[0], axis=0)
    busy = np.ascontiguousarray(np.cumsum(dur, axis=1)[:, -1, :])
    free = np.zeros((s_max, n), dtype=np.float64)
    free[0] = prev[-1]
    out = np.empty((p_max, n), dtype=np.float64)
    zero = np.zeros(n, dtype=np.float64)
    for j in range(1, s_max):
        arrivals = prev + comm[j - 1]
        dj = dur[j]
        f = zero
        for k in range(p_max):
            np.maximum(f, arrivals[k], out=out[k])
            out[k] += dj[k]
            f = out[k]
        free[j] = f
        prev, out = out, prev
    prefill_span = prev[-1].copy()

    # -- decode ----------------------------------------------------------
    t_max = max(t.decode_steps for t in tables)
    decode_span = np.zeros(n, dtype=np.float64)
    if t_max > 0:
        m_max = max((t.n_dec for t in tables if t.decode_steps > 0),
                    default=0)
        # dd[t, j, m, n]: decode duration (0 when padded in any axis).
        dd = np.zeros((t_max, s_max, m_max, n), dtype=np.float64)
        # cd[j-1, m, n]: forward link delay into stage j (0 at
        # pass-through stages; padded micro-batch rows are neutralized
        # by the replicated-finish argument, see module docstring).
        cd = np.zeros((max(s_max - 1, 0), m_max, n), dtype=np.float64)
        # fb[m, n]: feedback delay (-inf for padded micro-batches).
        fb = np.full((m_max, n), _NEG_INF, dtype=np.float64)
        # pad[t, n]: 0 while the lane still decodes, -inf afterwards —
        # folded into the per-round link/feedback terms so retired lanes
        # freeze exactly (``x + 0.0`` leaves active-lane delays
        # bit-unchanged before they are added to finishes).
        pad = np.full((t_max, n), _NEG_INF, dtype=np.float64)
        # arr0[m, n]: round-0 arrivals at stage 0 (the prefill span).
        arr0 = np.full((m_max, n), _NEG_INF, dtype=np.float64)
        for li, t in enumerate(tables):
            if t.decode_steps <= 0:
                continue
            steps, m_n = t.decode_steps, t.n_dec
            pad[:steps, li] = 0.0
            arr0[:m_n, li] = prefill_span[li]
            fb[:m_n, li] = t.fb_m
            dd[:steps, : t.n_stages, :m_n, li] = (
                t.decode_array().transpose(2, 0, 1)
            )
            for j in range(1, t.n_stages):
                cd[j - 1, :m_n, li] = t.comm_jm[j - 1]

        # Stacked per-stage state: row 0 is the server's free time, row
        # 1 its busy total; arrivals for the busy row are -inf.
        st = np.empty((s_max, 2, n), dtype=np.float64)
        st[:, 0, :] = free
        st[:, 1, :] = busy
        arr = np.empty((m_max, 2, n), dtype=np.float64)
        arr[:, 1, :] = _NEG_INF
        buf_a = np.empty((m_max, 2, n), dtype=np.float64)
        buf_b = np.empty((m_max, 2, n), dtype=np.float64)
        arr0_view = arr[:, 0, :]
        np.copyto(arr0_view, arr0)
        finishes0 = arr0  # row-0 finishes of the last processed stage
        for tt in range(t_max):
            pad_t = pad[tt]
            cdp = cd + pad_t
            dt = dd[tt]
            for j in range(s_max):
                if j > 0:
                    np.add(finishes0, cdp[j - 1], out=arr0_view)
                dview = np.broadcast_to(
                    dt[j][:, None, :], (m_max, 2, n)
                )
                s2 = st[j]
                nxt = buf_a
                for m in range(m_max):
                    np.maximum(s2, arr[m], out=nxt[m])
                    nxt[m] += dview[m]
                    s2 = nxt[m]
                st[j] = s2
                finishes0 = nxt[:, 0, :]
                buf_a, buf_b = buf_b, buf_a
            if tt + 1 < t_max:
                np.add(finishes0, fb + pad[tt + 1], out=arr0_view)
        # Rows beyond a lane's real micro-batches replicate its last
        # real finish, and rounds beyond its horizon freeze state, so
        # the column max is exactly the scalar path's max(finishes);
        # zero-decode lanes carried the prefill span through and land on
        # an exact 0.0 span.
        decode_span = finishes0.max(axis=0) - prefill_span
        busy = np.ascontiguousarray(st[:, 1, :])

    return prefill_span, decode_span, busy
