"""Ablations of SplitQuant's design choices (beyond the paper's Fig. 12).

DESIGN.md calls out five ablation-worthy decisions; Fig. 12 covers the
joint-vs-decoupled one.  This experiment covers the rest:

* **phase-aware vs phase-blind partitioning** — plan with decode costs
  replaced by rescaled prefill costs (what encoder-oriented heterogeneous
  partitioners assume), on the cluster where the paper's Fig. 3 ratios
  diverge most (P100s: 14.5x prefill vs 7.2x decode).
* **independent vs tied micro-batch sizes** — force eta == xi.
* **candidate dry-run verification** — disable the top-k DES re-scoring.
* **KV-cache bitwidth planning** — allow bit_kv in {8, 16} (an extension:
  the paper's memory model carries bit_kv but never optimizes it).
* **output-length estimator** — plan for the mean vs the max generation
  length, evaluated on a *variable*-output workload.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from ..core import PlannerConfig, SplitQuantPlanner
from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..pipeline import simulate_plan_variable
from ..simgpu.memory import OutOfMemoryError
from ..workloads.spec import BatchWorkload, VariableBatchWorkload
from .common import cost_model_for, throughput_of
from .harness import ExperimentResult

_BASE = PlannerConfig(
    group_size=2,
    max_orderings=4,
    microbatch_candidates=(8, 16, 32),
    time_limit_s=15.0,
)


def _plan_tput(spec, cluster, wl, cfg) -> float:
    planner = SplitQuantPlanner(
        spec, cluster, cfg, cost_model=cost_model_for(spec, cluster)
    )
    res = planner.plan(wl)
    return throughput_of(res.plan if res else None, cluster, spec, wl)


def _variable_tput(spec, cluster, vwl, estimate: str) -> float:
    planner = SplitQuantPlanner(
        spec, cluster, _BASE, cost_model=cost_model_for(spec, cluster)
    )
    res = planner.plan(vwl.planning_view(estimate))
    if res is None:
        return 0.0
    try:
        return simulate_plan_variable(
            res.plan, cluster, spec, vwl
        ).throughput_tokens_s
    except OutOfMemoryError:
        return 0.0


def run(seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    summary: Dict[str, float] = {}

    wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)

    # 1. Phase awareness (cluster 6: P100s, the largest phase divergence).
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(6)
    aware = _plan_tput(spec, cluster, wl, _BASE)
    blind = _plan_tput(
        spec, cluster, wl, dataclasses.replace(_BASE, phase_blind=True)
    )
    rows.append(["phase-awareness", "phase-aware", aware, 1.0])
    rows.append(["phase-awareness", "phase-blind", blind,
                 blind / aware if aware else 0.0])
    summary["phase_aware_gain"] = aware / blind if blind else float("inf")

    # 2. Micro-batch coupling (cluster 5).
    cluster = table_iii_cluster(5)
    free = _plan_tput(spec, cluster, wl, _BASE)
    tied = _plan_tput(
        spec, cluster, wl, dataclasses.replace(_BASE, tie_microbatches=True)
    )
    rows.append(["microbatch-sizing", "independent eta/xi", free, 1.0])
    rows.append(["microbatch-sizing", "tied eta == xi", tied,
                 tied / free if free else 0.0])
    summary["free_microbatch_gain"] = free / tied if tied else float("inf")

    # 3. Candidate dry-run verification (long-context, where the analytic
    #    formula is least exact).
    wl_long = BatchWorkload(batch=8, prompt_len=8192, output_len=64)
    verified = _plan_tput(
        get_model("qwen2.5-14b"), cluster, wl_long,
        dataclasses.replace(_BASE, verify_top_k=5),
    )
    unverified = _plan_tput(
        get_model("qwen2.5-14b"), cluster, wl_long,
        dataclasses.replace(_BASE, verify_top_k=1),
    )
    rows.append(["candidate-verify", "top-5 DES re-score", verified, 1.0])
    rows.append(["candidate-verify", "analytic only", unverified,
                 unverified / verified if verified else 0.0])
    summary["verify_gain"] = verified / max(unverified, 1e-9)

    # 4. KV-cache bitwidth planning (cluster 6, memory-tight).
    cluster6 = table_iii_cluster(6)
    kv16 = _plan_tput(spec, cluster6, wl, _BASE)
    kv_planned = _plan_tput(
        spec, cluster6, wl, dataclasses.replace(_BASE, kv_bit_choices=(8, 16))
    )
    rows.append(["kv-bitwidth", "fixed KV-16", kv16, 1.0])
    rows.append(["kv-bitwidth", "planned KV {8,16}", kv_planned,
                 kv_planned / kv16 if kv16 else 0.0])
    summary["kv_planning_gain"] = kv_planned / kv16 if kv16 else float("inf")

    # 5. Output-length estimator on a variable workload (cluster 5).
    rng = np.random.default_rng(seed)
    outs = tuple(
        int(v) for v in np.clip(rng.lognormal(np.log(80), 0.6, 32), 5, 300)
    )
    vwl = VariableBatchWorkload(prompt_len=512, output_lens=outs)
    mean_est = _variable_tput(spec, table_iii_cluster(5), vwl, "mean")
    max_est = _variable_tput(spec, table_iii_cluster(5), vwl, "max")
    rows.append(["output-estimator", "plan for mean n", mean_est, 1.0])
    rows.append(["output-estimator", "plan for max n", max_est,
                 max_est / mean_est if mean_est else 0.0])
    # Either estimator should serve the variable workload competitively;
    # which wins depends on the output-length tail.
    summary["mean_estimator_ok"] = float(mean_est >= max_est * 0.85)

    return ExperimentResult(
        name="ablations",
        title="Design-choice ablations (throughput on true simulator)",
        headers=["ablation", "variant", "tokens_per_s", "relative"],
        rows=rows,
        summary=summary,
        notes=(
            "Expected: phase-aware >= blind (largest on P100 clusters); "
            "free micro-batches >= tied; verification helps long-context; "
            "KV planning helps memory-tight clusters."
        ),
    )
