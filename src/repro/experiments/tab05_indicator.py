"""Table V: effectiveness of the variance indicator vs Random / Hessian.

Each indicator drives the same memory-constrained bitwidth assignment
(the quality-only *adabits* solve on the cluster's default topology); the
resulting assignments are scored by the *hidden* ground-truth quality
model, which none of the indicators sees:

* **Random**: uniform draws (bit-monotone within a layer) — uncorrelated
  with the truth, so it sacrifices the wrong layers.
* **Hessian** (HAWQ-style): a well-correlated but expensive estimate —
  modeled as truth observed through small noise, and costed at its real
  arithmetic (power-iteration Hessian-vector products over the
  calibration set).
* **Variance indicator** (SplitQuant): the closed-form Proposition-1
  statistic — similarly correlated, at roughly the cost of one
  calibration forward pass.

The paper's result: SplitQuant matches Hessian's perplexity at a ~58-73x
lower overhead, and beats Random.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.costs import StageGroup, build_problem
from ..core.ilp import solve_adabits
from ..hardware.cluster import ClusterSpec, table_iii_cluster
from ..hardware.gpus import GPUSpec
from ..models.architectures import ModelSpec, get_model
from ..quality.quality_model import AnalyticQualityModel
from ..quant.indicator import random_indicator_table
from ..quant.sensitivity import normalized_indicator_table
from ..workloads.spec import BatchWorkload
from .common import BITS, cost_model_for
from .harness import ExperimentResult

#: Calibration volume: 128 segments x 2048 tokens (Sec. VI-A).
CALIB_TOKENS = 128 * 2048
#: Power iterations x (forward+backward) factor for Hessian-vector products.
_HESSIAN_WORK_FACTOR = 20 * 3
#: Achieved fraction of peak FLOPs during calibration passes.
_CALIB_EFFICIENCY = 0.5


def indicator_overhead_s(spec: ModelSpec, gpu: GPUSpec, method: str) -> float:
    """Wall-clock cost of computing the indicator on the reference GPU."""
    fwd_flops = 2.0 * spec.total_params * CALIB_TOKENS
    fwd_s = fwd_flops / (gpu.fp16_tflops * 1e12 * _CALIB_EFFICIENCY)
    if method == "random":
        return 0.0
    if method == "variance":
        # One calibration pass + elementwise moment collection.
        return fwd_s * 1.25
    if method == "hessian":
        return fwd_s * _HESSIAN_WORK_FACTOR
    raise ValueError(f"unknown method {method!r}")


def _hessian_table(
    qm: AnalyticQualityModel, noise: float = 0.15, seed: int = 1
) -> np.ndarray:
    """The Hessian route's estimate: truth seen through measurement noise."""
    rng = np.random.default_rng(seed)
    jitter = rng.lognormal(0.0, noise, size=qm.true_sens.shape[0])
    return qm.true_sens * jitter[:, None]


def _assignment_for(
    spec: ModelSpec,
    cluster: ClusterSpec,
    wl: BatchWorkload,
    omega: np.ndarray,
) -> Tuple[int, ...]:
    cm = cost_model_for(spec, cluster)
    ordering = tuple(
        StageGroup(device_ids=(d.device_id,), gpu=d.gpu) for d in cluster.devices
    )
    problem = build_problem(
        spec, cluster, ordering, wl, cm, omega,
        eta=8, xi=8, bit_choices=BITS, group_size=2,
    )
    sol = solve_adabits(problem, time_limit_s=30.0)
    if sol is None:
        raise RuntimeError("adabits infeasible in Table V setting")
    bits = []
    for g, size in enumerate(problem.group_sizes):
        bits.extend([sol.assign_bits[g]] * size)
    return tuple(bits)


CASES = ((("opt-66b"), 7), (("opt-30b"), 8))


def run(seed: int = 0) -> ExperimentResult:
    rows = []
    summary: Dict[str, float] = {}
    for model_name, cluster_idx in CASES:
        spec = get_model(model_name)
        cluster = table_iii_cluster(cluster_idx)
        ref_gpu = max((d.gpu for d in cluster.devices),
                      key=lambda g: g.fp16_tflops)
        wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
        qm = AnalyticQualityModel.for_model(spec, bit_choices=BITS)

        tables = {
            "random": random_indicator_table(
                spec.num_layers, BITS, seed=seed,
                scale=float(qm.true_sens.max()),
            ),
            "hessian": _hessian_table(qm, seed=seed + 1),
            "variance": normalized_indicator_table(spec, BITS),
        }
        ppls = {}
        for method in ("random", "hessian", "variance"):
            bits = _assignment_for(spec, cluster, wl, tables[method])
            ppl = qm.avg_ppl(bits)
            overhead = indicator_overhead_s(spec, ref_gpu, method)
            ppls[method] = ppl
            label = "SplitQuant" if method == "variance" else method.capitalize()
            rows.append([model_name, f"cluster-{cluster_idx}", label, ppl,
                         overhead])
        summary[f"{model_name}_vs_random_dppl"] = ppls["variance"] - ppls["random"]
        summary[f"{model_name}_vs_hessian_dppl"] = (
            ppls["variance"] - ppls["hessian"]
        )
        summary[f"{model_name}_speedup_vs_hessian"] = (
            indicator_overhead_s(spec, ref_gpu, "hessian")
            / indicator_overhead_s(spec, ref_gpu, "variance")
        )
    return ExperimentResult(
        name="tab05",
        title="Variance indicator vs Random / Hessian (PPL + overhead)",
        headers=["model", "cluster", "method", "avg_ppl", "overhead_s"],
        rows=rows,
        summary=summary,
        notes=(
            "Paper: SplitQuant <= Hessian PPL, < Random PPL, at ~58-73x "
            "lower overhead than Hessian."
        ),
    )
