"""Pareto: the throughput-energy-cost frontier of objective planning.

Plans the same (model, cluster, workload) case under each objective —
throughput (the paper's default), energy (J/token) and cost ($/Mtoken) —
then traces the trade-off curve by re-planning for maximum throughput
under a ladder of energy budgets interpolated between the
throughput-optimal and energy-optimal plans.  Every chosen plan is
simulated once (the simulator stamps joules and dollars via the
energy post-pass), so the reported points are the same numbers the
cross-backend differential tests pin bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core import PlannerConfig, SplitQuantPlanner
from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..pipeline.simulator import simulate_plan
from ..plan import InfeasibleError
from ..workloads.spec import BatchWorkload
from .common import cost_model_for
from .harness import ExperimentResult

CASES: Tuple[Tuple[str, int], ...] = (("opt-30b", 5), ("opt-13b", 4))
#: Interior points of the energy-budget ladder (fractions of the
#: [energy-optimal, throughput-optimal] J/token span).
BUDGET_STEPS: Tuple[float, ...] = (0.25, 0.5, 0.75)


def _point(planner, cluster, spec, wl, objective, budget=None):
    """Plan under one objective and measure the chosen plan's frontier
    coordinates ``(tokens/s, J/token, $/Mtoken)``."""
    res = planner.plan(wl, objective=objective, budget=budget)
    if res is None:
        return None
    sim = simulate_plan(
        res.plan, cluster, spec, wl, check_memory=False
    )
    return res, sim.throughput_tokens_s, sim.joules_per_token, sim.usd_per_mtoken


def run(
    cases: Sequence[Tuple[str, int]] = CASES,
    budget_steps: Sequence[float] = BUDGET_STEPS,
    max_orderings: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    rows: List[list] = []
    summary: Dict[str, float] = {}
    for model_name, cluster_idx in cases:
        spec = get_model(model_name)
        cluster = table_iii_cluster(cluster_idx)
        wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
        cfg = PlannerConfig(
            group_size=2,
            max_orderings=max_orderings,
            microbatch_candidates=(8, 16),
            time_limit_s=30.0,
        )
        planner = SplitQuantPlanner(
            spec, cluster, cfg, cost_model=cost_model_for(spec, cluster)
        )
        anchors = {}
        for objective in ("throughput", "energy", "cost"):
            point = _point(planner, cluster, spec, wl, objective)
            if point is None:
                continue
            _, tput, jpt, upm = point
            anchors[objective] = (tput, jpt, upm)
            rows.append(
                [model_name, f"cluster-{cluster_idx}", objective, "",
                 tput, jpt, upm]
            )
        # Budget ladder between the two energy extremes: each rung asks
        # for the fastest plan no hungrier than its J/token ceiling.
        if "throughput" in anchors and "energy" in anchors:
            lo = anchors["energy"][1]
            hi = anchors["throughput"][1]
            for frac in budget_steps:
                budget = lo + (hi - lo) * frac
                try:
                    point = _point(
                        planner, cluster, spec, wl, "energy", budget=budget
                    )
                except InfeasibleError:
                    continue
                if point is None:
                    continue
                _, tput, jpt, upm = point
                rows.append(
                    [model_name, f"cluster-{cluster_idx}", "energy",
                     f"{budget:.3f}", tput, jpt, upm]
                )
            # Frontier sanity: the energy objective can only improve
            # J/token vs the throughput default, and budgeted points
            # respect their ceilings (<= by construction).
            summary[f"{model_name}_energy_improves"] = float(
                anchors["energy"][1] <= anchors["throughput"][1] + 1e-9
            )
        if "throughput" in anchors and "cost" in anchors:
            summary[f"{model_name}_cost_improves"] = float(
                anchors["cost"][2] <= anchors["throughput"][2] + 1e-9
            )
        if "throughput" in anchors:
            summary[f"{model_name}_tput_tokens_s"] = anchors["throughput"][0]
            summary[f"{model_name}_tput_j_per_token"] = anchors["throughput"][1]
            summary[f"{model_name}_tput_usd_per_mtoken"] = (
                anchors["throughput"][2]
            )
    return ExperimentResult(
        name="pareto",
        title="Throughput-energy-cost Pareto frontier of objective planning",
        headers=["model", "cluster", "objective", "budget",
                 "tokens_per_s", "j_per_token", "usd_per_mtoken"],
        rows=rows,
        summary=summary,
        notes=(
            "Energy/cost objectives re-rank the planner's candidate "
            "frontier; budget rungs maximize throughput under a J/token "
            "ceiling interpolated between the energy extremes."
        ),
    )
