"""Roofline-based kernel latency model — the simulated testbed.

Every latency the rest of the system observes comes from here.  A kernel's
time is the max of its compute time and its memory time (roofline), plus
launch overheads, with three effects the paper builds on:

* **Phase asymmetry** — prefill moves ``v*s`` tokens through each matmul and
  is compute-bound; decode moves one token per request but streams the full
  weight matrix and KV cache, so it is memory-bound (Sec. IV-A).
* **Dequantization overhead** — 3/4-bit weight-only kernels unpack weights
  to FP16 inside the kernel; the unpack cost scales with weight elements
  and is worse on devices without fast integer paths, which is why FP16 can
  beat 3/4-bit in prefill (Fig. 5).
* **Precision support matrix** — INT8 runs on tensor cores on T4/A100
  (fast), but on V100/P100 it falls back to a dequantize+FP16 path whose
  extra activation-conversion cost grows with the token count, making its
  benefit shape-dependent (Sec. II-E).

Decode kernels are GEMV-shaped and do not reach peak memory bandwidth;
each device has a calibrated decode-phase effective bandwidth
(``mem_bw_decode_gbps``).  Other small transfers (embedding gathers) use a
saturating effective-bandwidth curve between the decode and peak rates.
"""

from __future__ import annotations

from functools import lru_cache

from ..hardware.gpus import GPUSpec
from ..models.architectures import ModelSpec
from ..models import layers as L

#: Kernel launches per decoder layer (projections, attention, MLP, norms).
KERNELS_PER_LAYER = 10
#: Bytes at which a device reaches its "small kernel" bandwidth.
_BW_KNEE_BYTES = 8 * 1024 * 1024
#: Dequantization work per weight element (CUDA-core ops: unpack+scale+add).
_DEQUANT_OPS_PER_ELEMENT = {3: 8.0, 4: 4.0, 8: 2.0}


@lru_cache(maxsize=4096)
def effective_bandwidth(gpu: GPUSpec, nbytes: float) -> float:
    """Achievable bandwidth (bytes/s) for a generic kernel moving ``nbytes``.

    Saturating model: ``peak / (1 + knee/nbytes)`` with the knee placed so
    the device hits its calibrated decode bandwidth at 8 MiB.  Used for
    embedding gathers and other non-GEMM transfers.

    Memoized: ``GPUSpec`` is a frozen dataclass (hashable) and callers probe
    a small set of transfer sizes over and over in the planner's inner loop.
    """
    peak = gpu.mem_bw_gbps * 1e9
    small = gpu.mem_bw_decode_gbps * 1e9
    if nbytes <= 0:
        return small
    knee = _BW_KNEE_BYTES * max(peak / small - 1.0, 1e-9)
    return peak / (1.0 + knee / nbytes)


@lru_cache(maxsize=1024)
def _dequant_time(gpu: GPUSpec, spec: ModelSpec, bits: int) -> float:
    """In-kernel weight dequantization time for weight-only precisions.

    Memoized: both specs are frozen dataclasses and the value depends only
    on the (gpu, model, bits) triple, which ``layer_time`` re-queries for
    every profiled shape.
    """
    if bits >= 16:
        return 0.0
    if bits == 8 and gpu.int8_tensor_cores:
        return 0.0  # native INT8 tensor-core path, no unpack
    ops = spec.decoder_linear_elements * _DEQUANT_OPS_PER_ELEMENT[bits]
    rate = gpu.fp32_tflops * 1e12
    return ops * gpu.dequant_penalty / rate


def _act_quant_time(gpu: GPUSpec, spec: ModelSpec, bits: int, tokens: int) -> float:
    """Activation quantize/dequantize cost of W8A8 on slow-INT8 devices.

    Grows with the token count — the shape dependence of V100 INT8.
    """
    if bits != 8 or gpu.int8_tensor_cores:
        return 0.0
    ops = 6.0 * tokens * (2 * spec.hidden + spec.ffn)
    return ops / (gpu.fp32_tflops * 1e12)


def layer_time(
    gpu: GPUSpec,
    spec: ModelSpec,
    bits: int,
    phase: str,
    batch: int,
    seq: int,
    bit_kv: int = 16,
) -> float:
    """Execution time (s) of one decoder layer on ``gpu``.

    For ``phase == "prefill"``, ``seq`` is the prompt-chunk length; for
    ``phase == "decode"``, ``seq`` is the past context length and one token
    per request is produced.
    """
    if batch <= 0 or seq < 0:
        raise ValueError("batch must be positive and seq non-negative")
    if phase == "prefill":
        flops = L.prefill_flops(spec, batch, seq)
        nbytes = L.prefill_bytes(spec, batch, seq, bits, bit_kv)
        tokens = batch * seq
    elif phase == "decode":
        flops = L.decode_flops(spec, batch, seq)
        nbytes = L.decode_bytes(spec, batch, seq, bits, bit_kv)
        tokens = batch
    else:
        raise ValueError(f"unknown phase {phase!r}")

    compute = flops / (gpu.compute_tflops(bits) * 1e12)
    compute += _dequant_time(gpu, spec, bits)
    compute += _act_quant_time(gpu, spec, bits, tokens)
    if phase == "decode":
        # GEMV-shaped kernels: device-specific achieved bandwidth.
        memory = nbytes / (gpu.mem_bw_decode_gbps * 1e9)
    else:
        memory = nbytes / (gpu.mem_bw_gbps * 1e9)
    overhead = KERNELS_PER_LAYER * gpu.kernel_overhead_s
    return max(compute, memory) + overhead


@lru_cache(maxsize=4096)
def layer_occupancy(
    gpu: GPUSpec,
    spec: ModelSpec,
    bits: int,
    phase: str,
    batch: int,
    seq: int,
    bit_kv: int = 16,
) -> float:
    """Power-relevant utilization fraction of one decoder layer in [0, 1].

    Mirrors :func:`layer_time`'s roofline decomposition: the dominant
    resource (compute or memory) is busy for the whole roofline window
    while the other overlaps underneath it at half weight — a standard
    linear power proxy.  Kernel-launch overhead counts as idle, which is
    what makes tiny decode kernels on old parts draw near-idle power.

    Pure function of frozen specs and workload shape, so every simulation
    backend computes bit-identical occupancies from the same plan.
    """
    if batch <= 0 or seq < 0:
        raise ValueError("batch must be positive and seq non-negative")
    if phase == "prefill":
        flops = L.prefill_flops(spec, batch, seq)
        nbytes = L.prefill_bytes(spec, batch, seq, bits, bit_kv)
        tokens = batch * seq
    elif phase == "decode":
        flops = L.decode_flops(spec, batch, seq)
        nbytes = L.decode_bytes(spec, batch, seq, bits, bit_kv)
        tokens = batch
    else:
        raise ValueError(f"unknown phase {phase!r}")
    compute = flops / (gpu.compute_tflops(bits) * 1e12)
    compute += _dequant_time(gpu, spec, bits)
    compute += _act_quant_time(gpu, spec, bits, tokens)
    if phase == "decode":
        memory = nbytes / (gpu.mem_bw_decode_gbps * 1e9)
    else:
        memory = nbytes / (gpu.mem_bw_gbps * 1e9)
    total = max(compute, memory) + KERNELS_PER_LAYER * gpu.kernel_overhead_s
    if total <= 0.0:
        return 0.0
    occ = (max(compute, memory) + 0.5 * min(compute, memory)) / total
    return min(occ, 1.0)


def embedding_time(gpu: GPUSpec, spec: ModelSpec, tokens: int) -> float:
    """Token/position embedding lookup time (bandwidth-bound gather)."""
    nbytes = 2.0 * tokens * spec.embed_dim * L.FP16_BYTES
    return nbytes / effective_bandwidth(gpu, nbytes) + gpu.kernel_overhead_s


def lm_head_time(gpu: GPUSpec, spec: ModelSpec, tokens: int) -> float:
    """Logit projection time for ``tokens`` output positions (FP16 GEMM)."""
    flops = L.lm_head_flops(spec, tokens)
    nbytes = float(spec.vocab_size * spec.embed_dim * L.FP16_BYTES)
    compute = flops / (gpu.fp16_tflops * 1e12)
    memory = nbytes / effective_bandwidth(gpu, nbytes)
    return max(compute, memory) + gpu.kernel_overhead_s


def tp_layer_time(
    gpu: GPUSpec,
    spec: ModelSpec,
    bits: int,
    phase: str,
    batch: int,
    seq: int,
    tp_degree: int,
    tp_link_bandwidth: float,
    bit_kv: int = 16,
) -> float:
    """Layer time under intra-node tensor parallelism of ``tp_degree``.

    Compute and weight traffic shard ``tp_degree``-ways; two all-reduces of
    the hidden state per layer (attention out, MLP out) add communication
    on the intra-node link (ring all-reduce, ``2*(p-1)/p`` volume factor).
    """
    if tp_degree <= 0:
        raise ValueError("tp_degree must be positive")
    if tp_degree == 1:
        return layer_time(gpu, spec, bits, phase, batch, seq, bit_kv)
    # Shard the layer: same math with weights/kv split p-ways.  We model it
    # by scaling the single-GPU time components.
    base = layer_time(gpu, spec, bits, phase, batch, seq, bit_kv)
    overhead = KERNELS_PER_LAYER * gpu.kernel_overhead_s
    sharded = (base - overhead) / tp_degree + overhead
    tokens = batch * (seq if phase == "prefill" else 1)
    msg = tokens * spec.hidden * L.FP16_BYTES
    allreduce = 2.0 * (2.0 * (tp_degree - 1) / tp_degree) * msg / tp_link_bandwidth
    return sharded + allreduce
