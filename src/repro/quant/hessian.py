"""Hessian-based sensitivity baseline (HAWQ-style, Sec. IV-B).

The prior-art indicator the paper compares against: a layer's sensitivity
to quantization at bitwidth ``b`` is ``lambda_max(H) * ||Q(W) - W||_2^2``
with ``H`` the Hessian of the layerwise loss w.r.t. the weights —
``H = 2 X X^T`` for the MSE objective of Eq. (1).  Computing it requires
forming (or repeatedly multiplying by) a ``D_X x D_X`` matrix per operator,
which is the O(D_W * D_X^2) cost the variance indicator avoids.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .schemes import QuantConfig, quantize_dequantize


def top_eigenvalue(h: np.ndarray, iters: int = 50, seed: int = 0) -> float:
    """Largest eigenvalue of a symmetric PSD matrix by power iteration."""
    h = np.asarray(h, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ValueError("h must be square")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(h.shape[0])
    v /= np.linalg.norm(v)
    lam = 0.0
    for _ in range(iters):
        hv = h @ v
        norm = np.linalg.norm(hv)
        if norm == 0.0:
            return 0.0
        v = hv / norm
        lam = float(v @ (h @ v))
    return lam


def hessian_sensitivity(
    w: np.ndarray, x: np.ndarray, bits: int, seed: int = 0
) -> float:
    """HAWQ sensitivity ``lambda_max(H) * ||Q(W) - W||^2`` of one operator."""
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    h = 2.0 * (x @ x.T)
    lam = top_eigenvalue(h, seed=seed)
    cfg = QuantConfig(bits=bits, symmetric=True, granularity="tensor")
    err = w - quantize_dequantize(w, cfg)
    return lam * float(np.sum(err**2))


def hessian_indicator_table(
    weights: Sequence[np.ndarray],
    inputs: Sequence[np.ndarray],
    bit_choices: Sequence[int],
    seed: int = 0,
) -> np.ndarray:
    """Per-layer Hessian sensitivity for every candidate bitwidth.

    ``weights[i]``/``inputs[i]`` describe the (single, representative)
    linear operator of layer ``i``.  FP16 entries are zero.
    """
    table = np.zeros((len(weights), len(bit_choices)))
    for i, (w, x) in enumerate(zip(weights, inputs)):
        for k, b in enumerate(bit_choices):
            if b >= 16:
                continue
            table[i, k] = hessian_sensitivity(w, x, b, seed=seed)
    return table


def hessian_flops(d_w: int, d_x: int, n_samples: int) -> float:
    """Arithmetic cost of the Hessian route for one operator.

    Forming ``X X^T`` costs ``2 * d_x^2 * n`` and the quantization error
    another ``~3 * d_w``; dominated by the quadratic term — the paper's
    O(D_W * D_X^2) complexity class.
    """
    return 2.0 * d_x * d_x * n_samples + 3.0 * d_w


def variance_indicator_flops(d_w: int, n_samples_tokens: float) -> float:
    """Arithmetic cost of the variance indicator for one operator.

    Elementwise mean/variance over calibration activations plus a max over
    weights: O(D_W + tokens) — the paper's O(D_W * D_X) class collapses to
    a linear scan because moments are computed once per operator.
    """
    return 2.0 * n_samples_tokens + d_w
