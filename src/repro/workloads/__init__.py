"""Workload substrate: length distributions, batch synthesis, specs."""

from .arrivals import (
    ArrivalTrace,
    Request,
    bursty_trace,
    closed_batch_trace,
    diurnal_trace,
    poisson_trace,
    rate_for_daily,
)
from .distributions import (
    DATASET_SAMPLERS,
    SHAREGPT_BUCKETS,
    LengthSample,
    cnn_dailymail_lengths,
    length_histogram,
    loogle_lengths,
    sample_dataset,
    sharegpt_lengths,
)
from .generator import (
    WorkloadConfig,
    filter_by_context,
    representative_workload,
    synthesize_batches,
)
from .spec import BatchWorkload, VariableBatchWorkload

__all__ = [
    "ArrivalTrace",
    "Request",
    "bursty_trace",
    "closed_batch_trace",
    "diurnal_trace",
    "poisson_trace",
    "rate_for_daily",
    "DATASET_SAMPLERS",
    "SHAREGPT_BUCKETS",
    "LengthSample",
    "cnn_dailymail_lengths",
    "length_histogram",
    "loogle_lengths",
    "sample_dataset",
    "sharegpt_lengths",
    "WorkloadConfig",
    "filter_by_context",
    "representative_workload",
    "synthesize_batches",
    "BatchWorkload",
    "VariableBatchWorkload",
]
