"""Table IV: homogeneous clusters, including TP/PP topology selection.

Cluster 1 (1x V100) with the 7B model, clusters 9 (4x V100) and 10
(4x A100) with the 70B model.  Uniform is evaluated under the explicit
PP4 / TP2+PP2 / TP4 configurations; SplitQuant's enumeration picks the
topology itself.  The paper's finding: the best topology differs per
cluster (TP4 on cluster 9, TP2+PP2 on cluster 10), and SplitQuant's gains
are modest but real (1.04-1.16x).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..baselines.uniform import default_stage_groups
from ..core import PlannerConfig, SplitQuantPlanner
from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..workloads.spec import BatchWorkload
from .common import (
    BITS,
    best_het,
    best_uniform,
    cost_model_for,
    feasible_batch,
    microbatch_grid,
    throughput_of,
)
from .harness import ExperimentResult

#: (cluster, model, TP configs to evaluate for Uniform).
CASES: Tuple[Tuple[int, str, Tuple[int, ...]], ...] = (
    (1, "qwen2.5-7b", (1,)),
    (9, "llama-3.3-70b", (1, 2, 4)),
    (10, "llama-3.3-70b", (1, 2, 4)),
)


def _config_name(cluster_size: int, tp: int) -> str:
    pp = cluster_size // tp
    if cluster_size == 1:
        return "-"
    if pp == 1:
        return f"TP{tp}"
    if tp == 1:
        return f"PP{pp}"
    return f"TP{tp}+PP{pp}"


def run(seed: int = 0, prompt: int = 800, output: int = 299) -> ExperimentResult:
    rows: List[List] = []
    summary: Dict[str, float] = {}
    for idx, model_name, tps in CASES:
        cluster = table_iii_cluster(idx)
        spec = get_model(model_name)
        batch = feasible_batch(spec, cluster, prompt, output, max_batch=256)
        wl = BatchWorkload(batch=batch, prompt_len=prompt, output_len=output)
        cm = cost_model_for(spec, cluster)

        tputs: Dict[str, float] = {}
        for tp in tps:
            if cluster.num_devices % tp:
                continue
            name = _config_name(cluster.num_devices, tp)
            groups = default_stage_groups(cluster, tp_degree=tp)
            if spec.num_layers < len(groups):
                continue
            uni, tput = best_uniform(spec, cluster, wl, stage_groups=groups)
            tputs[name] = tput
            rows.append(
                [f"cluster-{idx}", model_name, "Uniform", name, tput,
                 uni.bits if uni else "OOM"]
            )
        het, het_tput = best_het(spec, cluster, wl, cm)
        rows.append(
            [f"cluster-{idx}", model_name, "Het", "best", het_tput,
             het.bits if het else "OOM"]
        )

        cfg = PlannerConfig(
            group_size=max(spec.num_layers // 16, 1),
            max_orderings=6,
            microbatch_candidates=microbatch_grid(batch),
            time_limit_s=20.0,
        )
        planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
        uni_best, _ = best_uniform(spec, cluster, wl)
        best_uni_bits = uni_best.bits if uni_best is not None else None
        budget = planner.uniform_quality(best_uni_bits or min(BITS))
        import dataclasses

        planner = SplitQuantPlanner(
            spec, cluster, dataclasses.replace(cfg, quality_budget=budget),
            cost_model=cm,
        )
        res = planner.plan(wl)
        sq_tput = throughput_of(res.plan if res else None, cluster, spec, wl)
        rows.append(
            [f"cluster-{idx}", model_name, "SplitQuant", "optimal", sq_tput, "-"]
        )
        base = max(list(tputs.values()) + [het_tput] + [1e-9])
        summary[f"cluster{idx}_speedup"] = sq_tput / base if base > 0 else 0.0
    return ExperimentResult(
        name="tab04",
        title="Homogeneous clusters: topology selection and throughput",
        headers=["cluster", "model", "scheme", "config", "tokens_per_s", "bits"],
        rows=rows,
        summary=summary,
        notes=(
            "Paper: best Uniform topology differs per cluster; SplitQuant "
            "matches-or-beats the best baseline (1.04-1.16x)."
        ),
    )
