"""Property-based invariants over randomly generated plans and schedules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import make_cluster
from repro.models import get_model
from repro.pipeline import simulate_plan
from repro.plan import ExecutionPlan, StagePlan
from repro.serialization import loads_plan, dumps_plan
from repro.workloads import BatchWorkload

GPUS = ("T4-16G", "V100-32G", "A100-40G", "P100-12G")
BITS = (3, 4, 8, 16)


@st.composite
def plans(draw, max_stages=4, max_layers=12):
    """Random valid execution plans."""
    n_stages = draw(st.integers(1, max_stages))
    counts = [
        draw(st.integers(1, max(max_layers // n_stages, 1)))
        for _ in range(n_stages)
    ]
    stages = []
    start = 0
    dev = 0
    for j in range(n_stages):
        tp = draw(st.sampled_from([1, 1, 1, 2]))
        gpu = draw(st.sampled_from(GPUS))
        bits = tuple(
            draw(st.sampled_from(BITS)) for _ in range(counts[j])
        )
        stages.append(
            StagePlan(
                device_ids=tuple(range(dev, dev + tp)),
                gpu_name=gpu,
                layer_start=start,
                layer_bits=bits,
            )
        )
        dev += tp
        start += counts[j]
    return ExecutionPlan(
        model_name="random",
        stages=tuple(stages),
        prefill_microbatch=draw(st.sampled_from([1, 2, 4, 8])),
        decode_microbatch=draw(st.sampled_from([1, 2, 4, 8])),
        bit_kv=draw(st.sampled_from([8, 16])),
    )


@given(plan=plans())
@settings(max_examples=60, deadline=None)
def test_plan_serialization_roundtrip(plan):
    assert loads_plan(dumps_plan(plan)) == plan


@given(plan=plans())
@settings(max_examples=60, deadline=None)
def test_plan_invariants(plan):
    bits = plan.bits_per_layer
    assert len(bits) == plan.num_layers
    assert sum(plan.bits_histogram().values()) == plan.num_layers
    assert sum(plan.layers_per_stage()) == plan.num_layers
    for i in range(plan.num_layers):
        j = plan.stage_of_layer(i)
        st_ = plan.stages[j]
        assert st_.layer_start <= i < st_.layer_end
        assert bits[i] == st_.layer_bits[i - st_.layer_start]


@given(
    seed=st.integers(0, 100),
    eta=st.sampled_from([1, 2, 4]),
    xi=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=10, deadline=None)
def test_simulation_invariants_random_plans(seed, eta, xi):
    """DES invariants: spans positive, busy <= makespan, tokens conserved."""
    rng = np.random.default_rng(seed)
    spec = get_model("opt-125m")
    cluster = make_cluster("inv", [("T4-16G", 1), ("V100-32G", 1)])
    split = int(rng.integers(1, spec.num_layers))
    plan = ExecutionPlan(
        model_name=spec.name,
        stages=(
            StagePlan((0,), "T4-16G", 0,
                      tuple(int(b) for b in rng.choice(BITS, split))),
            StagePlan((1,), "V100-32G", split,
                      tuple(int(b) for b in
                            rng.choice(BITS, spec.num_layers - split))),
        ),
        prefill_microbatch=eta,
        decode_microbatch=xi,
    )
    wl = BatchWorkload(batch=4, prompt_len=64, output_len=8)
    res = simulate_plan(plan, cluster, spec, wl, check_memory=False)
    assert res.makespan_s > 0
    assert res.total_tokens == 32
    assert res.prefill_span_s > 0
    for busy in res.stage_busy_s:
        assert 0 < busy <= res.makespan_s * (1 + 1e-9)
    assert 0.0 <= res.bubble_fraction < 1.0


@given(
    seed=st.integers(0, 50),
    bits=st.sampled_from(BITS),
)
@settings(max_examples=15, deadline=None)
def test_more_microbatches_never_slow_prefill(seed, bits):
    """Prefill span is non-increasing as micro-batches shrink (2 stages,
    equal chunk work: the wavefront recurrence guarantees it)."""
    spec = get_model("opt-125m")
    cluster = make_cluster("mb", [("V100-32G", 1), ("V100-32G", 1)])
    wl = BatchWorkload(batch=8, prompt_len=128, output_len=4)

    def span(mb):
        plan = ExecutionPlan(
            model_name=spec.name,
            stages=(
                StagePlan((0,), "V100-32G", 0, (bits,) * 6),
                StagePlan((1,), "V100-32G", 6, (bits,) * 6),
            ),
            prefill_microbatch=mb,
            decode_microbatch=4,
        )
        return simulate_plan(
            plan, cluster, spec, wl, check_memory=False
        ).prefill_span_s

    assert span(4) <= span(8) * 1.001
