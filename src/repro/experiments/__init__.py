"""Per-table/figure experiment modules (see DESIGN.md's experiment index)."""

from . import (
    ablations,
    fig01_fleet,
    fig03_phase_decomposition,
    fig04_quant_quality,
    fig05_kernel_latency,
    fig07_workload_dists,
    fig08_costmodel_fidelity,
    fig09_hetero_vllm,
    fig10_hetero_custom,
    fig11_theta_sensitivity,
    fig12_adabits_ablation,
    pareto_frontier,
    tab01_layer_sensitivity,
    tab04_homogeneous,
    tab05_indicator,
    tab06_grouping_heuristic,
)
from .common import (
    ServingComparison,
    compare_policies,
    cost_model_for,
    feasible_batch,
    throughput_of,
)
from .harness import ExperimentResult

ALL_EXPERIMENTS = {
    "ablations": ablations,
    "fig01": fig01_fleet,
    "fig03": fig03_phase_decomposition,
    "fig04": fig04_quant_quality,
    "fig05": fig05_kernel_latency,
    "fig07": fig07_workload_dists,
    "fig08": fig08_costmodel_fidelity,
    "fig09": fig09_hetero_vllm,
    "fig10": fig10_hetero_custom,
    "fig11": fig11_theta_sensitivity,
    "fig12": fig12_adabits_ablation,
    "pareto": pareto_frontier,
    "tab01": tab01_layer_sensitivity,
    "tab04": tab04_homogeneous,
    "tab05": tab05_indicator,
    "tab06": tab06_grouping_heuristic,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ServingComparison",
    "compare_policies",
    "cost_model_for",
    "feasible_batch",
    "throughput_of",
]
