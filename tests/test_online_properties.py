"""Property-based tests of the online serving driver.

Four invariants, checked over randomized arrival traces and admission
configs (Hypothesis; run derandomized in CI via ``HYPOTHESIS_PROFILE=ci``):

* **Work conservation** — every arrival is accounted for exactly once:
  ``arrived == completed + rejected + unserved``.
* **Little's law** — the independently-accumulated time-integral of the
  in-system request count equals the sum of per-request residency times
  when everything completes, so ``L == λ·W`` to float tolerance.  The two
  sides come from different accounting paths in the simulator.
* **TTFT monotonicity** — tightening the admission queue serves a prefix
  subset, and in a FIFO no-preemption system removing later work never
  delays earlier work: per-request TTFT can only improve.
* **Determinism** — the same trace and config give a bit-identical
  ``OnlineSimResult`` (``to_dict()`` equality).
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware import make_cluster
from repro.models import get_model
from repro.pipeline import OnlineConfig, simulate_online
from repro.plan import uniform_plan
from repro.workloads import ArrivalTrace, Request, poisson_trace

_CLUSTER = make_cluster("prop-2dev", [("T4-16G", 1), ("V100-32G", 1)])
_SPEC = get_model("opt-13b")
_PLAN = uniform_plan(
    _SPEC.name,
    _SPEC.num_layers,
    [((d.device_id,), d.gpu.name) for d in _CLUSTER.devices],
    4, 4, 4,
)


@st.composite
def traces(draw, max_requests=10, at_t0=False):
    n = draw(st.integers(min_value=1, max_value=max_requests))
    reqs = []
    for i in range(n):
        if at_t0:
            t = 0.0
        else:
            t = draw(st.floats(min_value=0.0, max_value=5.0,
                               allow_nan=False, allow_infinity=False))
        reqs.append(
            Request(
                req_id=i,
                arrival_s=t,
                prompt_len=draw(st.integers(min_value=16, max_value=512)),
                output_len=draw(st.integers(min_value=1, max_value=24)),
            )
        )
    reqs.sort(key=lambda r: r.arrival_s)
    reqs = tuple(
        Request(req_id=i, arrival_s=r.arrival_s,
                prompt_len=r.prompt_len, output_len=r.output_len)
        for i, r in enumerate(reqs)
    )
    return ArrivalTrace(requests=reqs, source="hypothesis")


_configs = st.builds(
    OnlineConfig,
    chunk_tokens=st.sampled_from([256, 512, 2048]),
    admission=st.just("kv"),
    max_group_size=st.one_of(st.none(), st.integers(1, 4)),
    max_queue=st.one_of(st.none(), st.integers(1, 6)),
    ttft_slo_s=st.one_of(st.none(), st.floats(0.01, 10.0)),
    horizon_s=st.one_of(st.none(), st.floats(0.0, 4.0)),
)


@given(trace=traces(), config=_configs)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_work_conservation(trace, config):
    res = simulate_online(_PLAN, _CLUSTER, _SPEC, trace, config=config)
    assert res.arrived == trace.n_requests
    assert res.arrived == (
        res.completed + res.rejected_queue + res.rejected_slo
        + res.rejected_oom + res.unserved
    )
    assert res.admitted == res.completed
    assert len(res.ttft_s) == len(res.tpot_s) == len(res.latency_s)
    assert len(res.ttft_s) == res.completed


@given(trace=traces())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_littles_law_consistency(trace):
    """With no admission limits, everything completes and the running
    area integral must equal the summed residencies: L == λ·W."""
    res = simulate_online(
        _PLAN, _CLUSTER, _SPEC, trace,
        config=OnlineConfig(chunk_tokens=512, admission="kv"),
    )
    assert res.completed == trace.n_requests
    total_residency = sum(res.latency_s)
    assert math.isclose(res.area_request_s, total_residency,
                        rel_tol=1e-9, abs_tol=1e-12)
    if res.makespan_s > 0:
        lam = res.completed / res.makespan_s
        w = total_residency / res.completed
        assert math.isclose(res.mean_concurrency, lam * w,
                            rel_tol=1e-9, abs_tol=1e-12)


@given(trace=traces(at_t0=True, max_requests=8),
       tight=st.integers(1, 4), extra=st.integers(1, 6))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ttft_monotone_under_tightened_admission(trace, tight, extra):
    """Admitting fewer requests never worsens TTFT for the survivors."""
    loose_cfg = OnlineConfig(chunk_tokens=512, admission="kv",
                             max_queue=tight + extra)
    tight_cfg = OnlineConfig(chunk_tokens=512, admission="kv",
                             max_queue=tight)
    loose = simulate_online(_PLAN, _CLUSTER, _SPEC, trace, config=loose_cfg)
    tighter = simulate_online(_PLAN, _CLUSTER, _SPEC, trace,
                              config=tight_cfg)
    # With all arrivals at t=0 a queue cap admits a FIFO prefix, so the
    # tight run's completions are a subset of the loose run's.
    assert tighter.completed <= loose.completed
    for i in range(tighter.completed):
        assert tighter.ttft_s[i] <= loose.ttft_s[i] + 1e-9


@given(seed=st.integers(0, 2**16), rate=st.floats(0.5, 8.0))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_seed_determinism(seed, rate):
    trace = poisson_trace(rate_per_s=rate, duration_s=4.0, seed=seed,
                          max_prompt_len=512, max_output_len=16)
    cfg = OnlineConfig(chunk_tokens=512, admission="kv", ttft_slo_s=30.0)
    a = simulate_online(_PLAN, _CLUSTER, _SPEC, trace, config=cfg)
    b = simulate_online(_PLAN, _CLUSTER, _SPEC, trace, config=cfg)
    assert a == b
    assert a.to_dict() == b.to_dict()
    # And the trace generator itself is seed-deterministic.
    again = poisson_trace(rate_per_s=rate, duration_s=4.0, seed=seed,
                          max_prompt_len=512, max_output_len=16)
    assert again == trace
