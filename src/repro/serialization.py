"""Plan, fault-plan and trace (de)serialization.

The assigner runs offline, once per (model, cluster); production runtimes
load the resulting plan at startup.  Plans therefore need a stable
on-disk format: plain JSON, schema-versioned, round-trip exact.

Fault plans and simulator traces get the same treatment so fault
campaigns are replayable from disk and golden-trace regression fixtures
(`tests/data/`) can be compared exactly.  Trace floats are rounded to 12
significant digits at serialization time: enough to be bit-stable across
platforms for the pure-arithmetic roofline timing, while still exact on
re-parse (``float(repr12(x)) == round12(x)``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Union

from .plan import ExecutionPlan, StagePlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core.planner import PlannerResult
    from .core.search import CandidateStat, SearchStats
    from .fleet.simulator import FleetSimResult
    from .pipeline.online import OnlineSimResult
    from .pipeline.simulator import DegradedSimResult, PipelineSimResult
    from .runtime.engine import GenerationResult
    from .runtime.faults import FaultPlan, FaultRecord, FaultSpec
    from .workloads.spec import BatchWorkload

SCHEMA_VERSION = 1
FAULT_SCHEMA_VERSION = 1
TRACE_SCHEMA_VERSION = 1
RESULT_SCHEMA_VERSION = 1
FLEET_SCHEMA_VERSION = 1
ONLINE_SCHEMA_VERSION = 1


def plan_to_dict(plan: ExecutionPlan) -> Dict[str, Any]:
    """A JSON-safe dict representation of a plan."""
    return {
        "schema_version": SCHEMA_VERSION,
        "model_name": plan.model_name,
        "prefill_microbatch": plan.prefill_microbatch,
        "decode_microbatch": plan.decode_microbatch,
        "bit_kv": plan.bit_kv,
        "stages": [
            {
                "device_ids": list(st.device_ids),
                "gpu_name": st.gpu_name,
                "layer_start": st.layer_start,
                "layer_bits": list(st.layer_bits),
            }
            for st in plan.stages
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> ExecutionPlan:
    """Reconstruct a plan; validates the schema version."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported plan schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    stages = tuple(
        StagePlan(
            device_ids=tuple(int(d) for d in st["device_ids"]),
            gpu_name=str(st["gpu_name"]),
            layer_start=int(st["layer_start"]),
            layer_bits=tuple(int(b) for b in st["layer_bits"]),
        )
        for st in data["stages"]
    )
    return ExecutionPlan(
        model_name=str(data["model_name"]),
        stages=stages,
        prefill_microbatch=int(data["prefill_microbatch"]),
        decode_microbatch=int(data["decode_microbatch"]),
        bit_kv=int(data.get("bit_kv", 16)),
    )


def dumps_plan(plan: ExecutionPlan, indent: int = 2) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent, sort_keys=True)


def loads_plan(text: str) -> ExecutionPlan:
    """Parse a plan from a JSON string."""
    return plan_from_dict(json.loads(text))


def save_plan(plan: ExecutionPlan, path: Union[str, Path]) -> None:
    """Write a plan to ``path`` as JSON."""
    Path(path).write_text(dumps_plan(plan) + "\n")


def load_plan(path: Union[str, Path]) -> ExecutionPlan:
    """Read a plan written by :func:`save_plan`."""
    return loads_plan(Path(path).read_text())


# ---------------------------------------------------------------------------
# Fault plans and records
# ---------------------------------------------------------------------------


def fault_spec_to_dict(spec: "FaultSpec") -> Dict[str, Any]:
    """A JSON-safe dict of one scheduled fault."""
    return {
        "kind": spec.kind,
        "stage": spec.stage,
        "phase": spec.phase,
        "step": spec.step,
        "mb_id": spec.mb_id,
        "delay_s": spec.delay_s,
    }


def fault_spec_from_dict(data: Dict[str, Any]) -> "FaultSpec":
    from .runtime.faults import FaultSpec

    mb_id = data.get("mb_id")
    return FaultSpec(
        kind=str(data["kind"]),
        stage=int(data["stage"]),
        phase=str(data.get("phase", "decode")),
        step=int(data.get("step", 1)),
        mb_id=None if mb_id is None else int(mb_id),
        delay_s=float(data.get("delay_s", 0.0)),
    )


def fault_plan_to_dict(plan: "FaultPlan") -> Dict[str, Any]:
    """A JSON-safe dict of a fault campaign (round-trip exact)."""
    return {
        "schema_version": FAULT_SCHEMA_VERSION,
        "seed": plan.seed,
        "specs": [fault_spec_to_dict(s) for s in plan.specs],
    }


def fault_plan_from_dict(data: Dict[str, Any]) -> "FaultPlan":
    from .runtime.faults import FaultPlan

    version = data.get("schema_version")
    if version != FAULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported fault-plan schema version {version!r} "
            f"(expected {FAULT_SCHEMA_VERSION})"
        )
    return FaultPlan(
        specs=tuple(fault_spec_from_dict(s) for s in data["specs"]),
        seed=int(data.get("seed", 0)),
    )


def dumps_fault_plan(plan: "FaultPlan", indent: int = 2) -> str:
    return json.dumps(fault_plan_to_dict(plan), indent=indent, sort_keys=True)


def loads_fault_plan(text: str) -> "FaultPlan":
    return fault_plan_from_dict(json.loads(text))


def fault_record_to_dict(rec: "FaultRecord") -> Dict[str, Any]:
    """Runtime recovery telemetry as a JSON-safe dict (round-trip)."""
    return {
        "kind": rec.kind,
        "dead_stages": list(rec.dead_stages),
        "dead_devices": list(rec.dead_devices),
        "committed_tokens": rec.committed_tokens,
        "action": rec.action,
        "detail": rec.detail,
    }


def fault_record_from_dict(data: Dict[str, Any]) -> "FaultRecord":
    """Reconstruct a :class:`FaultRecord` written by
    :func:`fault_record_to_dict`."""
    from .runtime.faults import FaultRecord

    return FaultRecord(
        kind=str(data["kind"]),
        dead_stages=tuple(int(s) for s in data["dead_stages"]),
        dead_devices=tuple(int(d) for d in data["dead_devices"]),
        committed_tokens=int(data["committed_tokens"]),
        action=str(data["action"]),
        detail=str(data.get("detail", "")),
    )


# ---------------------------------------------------------------------------
# Simulator traces (golden-fixture format)
# ---------------------------------------------------------------------------


def round_trace_float(x: float) -> float:
    """Round to 12 significant digits — the golden-fixture float grain."""
    return float(f"{float(x):.12g}")


def sim_result_to_dict(res: "PipelineSimResult") -> Dict[str, Any]:
    """A JSON-safe dict of one simulated batch (floats rounded)."""
    out = {
        "kind": "pipeline_sim",
        "makespan_s": round_trace_float(res.makespan_s),
        "prefill_span_s": round_trace_float(res.prefill_span_s),
        "decode_span_s": round_trace_float(res.decode_span_s),
        "total_tokens": res.total_tokens,
        "stage_busy_s": [round_trace_float(b) for b in res.stage_busy_s],
        "stage_memory_bytes": list(res.stage_memory_bytes),
        "events_processed": res.events_processed,
        "sim_backend": res.sim_backend,
    }
    # Only serialized when set: keeps pre-existing golden fixtures
    # byte-stable while round-tripping fallback provenance.
    if res.backend_reason is not None:
        out["backend_reason"] = res.backend_reason
    if res.energy_j is not None:
        out["energy_j"] = round_trace_float(res.energy_j)
    if res.cost_usd is not None:
        out["cost_usd"] = round_trace_float(res.cost_usd)
    return out


def degraded_result_to_dict(res: "DegradedSimResult") -> Dict[str, Any]:
    """A JSON-safe dict of one degraded (faulty) simulation.

    This is the golden-trace payload: makespan, per-segment results,
    recovery events and the per-attempt plans, floats rounded so the
    fixture compares exactly across runs and platforms.
    """
    return {
        "kind": "degraded_sim",
        "schema_version": TRACE_SCHEMA_VERSION,
        "makespan_s": round_trace_float(res.makespan_s),
        "total_tokens": res.total_tokens,
        "replans": res.replans,
        "plans": [plan_to_dict(p) for p in res.plans],
        "segments": [sim_result_to_dict(s) for s in res.segments],
        "fault_events": [
            {
                "time_s": round_trace_float(ev.time_s),
                "kind": ev.kind,
                "stage": ev.stage,
                "phase": ev.phase,
                "step": ev.step,
                "action": ev.action,
                "detail": ev.detail,
            }
            for ev in res.fault_events
        ],
    }


def dumps_degraded_result(res: "DegradedSimResult", indent: int = 2) -> str:
    """Canonical golden-fixture text: sorted keys, trailing newline."""
    return (
        json.dumps(degraded_result_to_dict(res), indent=indent, sort_keys=True)
        + "\n"
    )


def sim_result_from_dict(data: Dict[str, Any]) -> "PipelineSimResult":
    """Reconstruct a :class:`PipelineSimResult` from its dict form."""
    from .pipeline.simulator import PipelineSimResult

    return PipelineSimResult(
        makespan_s=float(data["makespan_s"]),
        prefill_span_s=float(data["prefill_span_s"]),
        decode_span_s=float(data["decode_span_s"]),
        total_tokens=int(data["total_tokens"]),
        stage_busy_s=tuple(float(b) for b in data["stage_busy_s"]),
        stage_memory_bytes=tuple(
            int(m) for m in data["stage_memory_bytes"]
        ),
        events_processed=int(data["events_processed"]),
        sim_backend=str(data.get("sim_backend", "event")),
        backend_reason=data.get("backend_reason"),
        energy_j=_opt_float(data.get("energy_j")),
        cost_usd=_opt_float(data.get("cost_usd")),
    )


def _opt_float(value: Any) -> Any:
    """``None`` passes through; everything else becomes ``float``."""
    return None if value is None else float(value)


def degraded_result_from_dict(data: Dict[str, Any]) -> "DegradedSimResult":
    """Reconstruct a :class:`DegradedSimResult` (golden-trace payload)."""
    from .pipeline.events import FaultEvent
    from .pipeline.simulator import DegradedSimResult

    version = data.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    return DegradedSimResult(
        makespan_s=float(data["makespan_s"]),
        total_tokens=int(data["total_tokens"]),
        replans=int(data["replans"]),
        plans=tuple(plan_from_dict(p) for p in data["plans"]),
        segments=tuple(sim_result_from_dict(s) for s in data["segments"]),
        fault_events=tuple(
            FaultEvent(
                time_s=float(ev["time_s"]),
                kind=str(ev["kind"]),
                stage=int(ev["stage"]),
                phase=str(ev["phase"]),
                step=int(ev["step"]),
                action=str(ev.get("action", "")),
                detail=str(ev.get("detail", "")),
            )
            for ev in data["fault_events"]
        ),
    )


# ---------------------------------------------------------------------------
# Result summaries (the ``repro.api.Summary`` dict forms)
# ---------------------------------------------------------------------------


def candidate_stat_to_dict(stat: "CandidateStat") -> Dict[str, Any]:
    """One planner candidate's solve record as a JSON-safe dict."""
    return {
        "ordering_key": [[name, int(n)] for name, n in stat.ordering_key],
        "eta": stat.eta,
        "xi": stat.xi,
        "status": stat.status,
        "latency_s": round_trace_float(stat.latency_s),
        "quality": round_trace_float(stat.quality),
        "solve_time_s": round_trace_float(stat.solve_time_s),
        "bound_s": round_trace_float(stat.bound_s),
    }


def candidate_stat_from_dict(data: Dict[str, Any]) -> "CandidateStat":
    from .core.search import CandidateStat

    return CandidateStat(
        ordering_key=tuple(
            (str(name), int(n)) for name, n in data["ordering_key"]
        ),
        eta=int(data["eta"]),
        xi=int(data["xi"]),
        status=str(data["status"]),
        latency_s=float(data["latency_s"]),
        quality=float(data["quality"]),
        solve_time_s=float(data["solve_time_s"]),
        bound_s=float(data.get("bound_s", 0.0)),
    )


def search_stats_from_dict(data: Dict[str, Any]) -> "SearchStats":
    """Reconstruct :class:`SearchStats` from ``SearchStats.to_dict()``."""
    from .core.search import SearchStats

    return SearchStats(**data)


def workload_to_dict(wl: "BatchWorkload") -> Dict[str, Any]:
    """A JSON-safe dict of a :class:`BatchWorkload` (round-trip)."""
    return {
        "batch": wl.batch,
        "prompt_len": wl.prompt_len,
        "output_len": wl.output_len,
        "chunk_tokens": wl.chunk_tokens,
        "reserve_output_len": wl.reserve_output_len,
    }


def workload_from_dict(data: Dict[str, Any]) -> "BatchWorkload":
    from .workloads.spec import BatchWorkload

    reserve = data.get("reserve_output_len")
    return BatchWorkload(
        batch=int(data["batch"]),
        prompt_len=int(data["prompt_len"]),
        output_len=int(data["output_len"]),
        chunk_tokens=int(data.get("chunk_tokens", 2048)),
        reserve_output_len=None if reserve is None else int(reserve),
    )


def planner_result_to_dict(res: "PlannerResult") -> Dict[str, Any]:
    """A JSON-safe dict of a :class:`PlannerResult` (round-trip)."""
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "kind": "planner",
        "plan": plan_to_dict(res.plan),
        "predicted_latency_s": round_trace_float(res.predicted_latency_s),
        "predicted_quality": round_trace_float(res.predicted_quality),
        "throughput_tokens_s": round_trace_float(res.throughput_tokens_s),
        "solve_time_s": round_trace_float(res.solve_time_s),
        "candidates_tried": res.candidates_tried,
        "stats": [candidate_stat_to_dict(s) for s in res.stats],
        "search": None if res.search is None else res.search.to_dict(),
        "tier": res.tier,
        "tier_reason": res.tier_reason,
        "gap_bound": (
            None if res.gap_bound is None
            else round_trace_float(res.gap_bound)
        ),
        "workload": (
            None if res.workload is None else workload_to_dict(res.workload)
        ),
        "objective": res.objective,
        "budget": (
            None if res.budget is None else round_trace_float(res.budget)
        ),
        "predicted_energy_j": (
            None if res.predicted_energy_j is None
            else round_trace_float(res.predicted_energy_j)
        ),
        "predicted_cost_usd": (
            None if res.predicted_cost_usd is None
            else round_trace_float(res.predicted_cost_usd)
        ),
    }


def planner_result_from_dict(data: Dict[str, Any]) -> "PlannerResult":
    """Reconstruct a :class:`PlannerResult` written by
    :func:`planner_result_to_dict`."""
    from .core.planner import PlannerResult

    version = data.get("schema_version")
    if version != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(expected {RESULT_SCHEMA_VERSION})"
        )
    search = data.get("search")
    gap = data.get("gap_bound")
    wl = data.get("workload")
    return PlannerResult(
        plan=plan_from_dict(data["plan"]),
        predicted_latency_s=float(data["predicted_latency_s"]),
        predicted_quality=float(data["predicted_quality"]),
        throughput_tokens_s=float(data["throughput_tokens_s"]),
        solve_time_s=float(data["solve_time_s"]),
        candidates_tried=int(data["candidates_tried"]),
        stats=tuple(candidate_stat_from_dict(s) for s in data["stats"]),
        search=None if search is None else search_stats_from_dict(search),
        tier=str(data.get("tier", "exact")),
        tier_reason=str(data.get("tier_reason", "")),
        gap_bound=None if gap is None else float(gap),
        workload=None if wl is None else workload_from_dict(wl),
        objective=str(data.get("objective", "throughput")),
        budget=_opt_float(data.get("budget")),
        predicted_energy_j=_opt_float(data.get("predicted_energy_j")),
        predicted_cost_usd=_opt_float(data.get("predicted_cost_usd")),
    )


def generation_result_to_dict(res: "GenerationResult") -> Dict[str, Any]:
    """A JSON-safe dict of a runtime :class:`GenerationResult`."""
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "kind": "generation",
        "tokens": [[int(t) for t in row] for row in res.tokens],
        "prompt_tokens": res.prompt_tokens,
        "prefill_time_s": round_trace_float(res.prefill_time_s),
        "decode_time_s": round_trace_float(res.decode_time_s),
        "stage_busy_s": [round_trace_float(b) for b in res.stage_busy_s],
        "microbatch": res.microbatch,
        "replans": res.replans,
        "fault_events": [
            fault_record_to_dict(r) for r in res.fault_events
        ],
        "plan": None if res.plan is None else plan_to_dict(res.plan),
    }


def generation_result_from_dict(data: Dict[str, Any]) -> "GenerationResult":
    """Reconstruct a :class:`GenerationResult` written by
    :func:`generation_result_to_dict`."""
    import numpy as np

    from .runtime.engine import GenerationResult

    version = data.get("schema_version")
    if version != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(expected {RESULT_SCHEMA_VERSION})"
        )
    plan = data.get("plan")
    return GenerationResult(
        tokens=np.asarray(data["tokens"], dtype=np.int64),
        prefill_time_s=float(data["prefill_time_s"]),
        decode_time_s=float(data["decode_time_s"]),
        stage_busy_s=tuple(float(b) for b in data["stage_busy_s"]),
        microbatch=int(data["microbatch"]),
        replans=int(data.get("replans", 0)),
        fault_events=tuple(
            fault_record_from_dict(r)
            for r in data.get("fault_events", ())
        ),
        plan=None if plan is None else plan_from_dict(plan),
        prompt_tokens=int(data.get("prompt_tokens", 0)),
    )


def fleet_result_to_dict(res: "FleetSimResult") -> Dict[str, Any]:
    """A JSON-safe dict of a fleet simulation (round-trip exact)."""
    out = {
        "schema_version": FLEET_SCHEMA_VERSION,
        "kind": "fleet_sim",
        "inventory": {g: int(n) for g, n in sorted(res.inventory.items())},
        "allocator": res.allocator,
        "makespan_s": round_trace_float(res.makespan_s),
        "total_tokens": res.total_tokens,
        "jobs": [
            {
                "job_id": rec.job_id,
                "model": rec.model,
                "group_counts": [
                    [g, int(n)] for g, n in rec.group_counts
                ],
                "num_batches": rec.num_batches,
                "start_s": round_trace_float(rec.start_s),
                "end_s": round_trace_float(rec.end_s),
                "total_tokens": rec.total_tokens,
                "batch_sim": sim_result_to_dict(rec.batch_sim),
            }
            for rec in res.jobs
        ],
    }
    if res.energy_j is not None:
        out["energy_j"] = round_trace_float(res.energy_j)
    if res.cost_usd is not None:
        out["cost_usd"] = round_trace_float(res.cost_usd)
    return out


def fleet_result_from_dict(data: Dict[str, Any]) -> "FleetSimResult":
    """Reconstruct a :class:`FleetSimResult` written by
    :func:`fleet_result_to_dict`."""
    from .fleet.simulator import FleetSimResult, JobSimRecord

    version = data.get("schema_version")
    if version != FLEET_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported fleet schema version {version!r} "
            f"(expected {FLEET_SCHEMA_VERSION})"
        )
    jobs = tuple(
        JobSimRecord(
            job_id=str(rec["job_id"]),
            model=str(rec["model"]),
            group_counts=tuple(
                (str(g), int(n)) for g, n in rec["group_counts"]
            ),
            num_batches=int(rec["num_batches"]),
            start_s=float(rec["start_s"]),
            end_s=float(rec["end_s"]),
            total_tokens=int(rec["total_tokens"]),
            batch_sim=sim_result_from_dict(rec["batch_sim"]),
        )
        for rec in data["jobs"]
    )
    return FleetSimResult(
        inventory={
            str(g): int(n) for g, n in data["inventory"].items()
        },
        jobs=jobs,
        makespan_s=float(data["makespan_s"]),
        total_tokens=int(data["total_tokens"]),
        allocator=str(data["allocator"]),
        energy_j=_opt_float(data.get("energy_j")),
        cost_usd=_opt_float(data.get("cost_usd")),
    )


def online_result_to_dict(res: "OnlineSimResult") -> Dict[str, Any]:
    """A JSON-safe dict of one online-serving simulation (round-trip)."""
    out = {
        "schema_version": ONLINE_SCHEMA_VERSION,
        "kind": "online_sim",
        "makespan_s": round_trace_float(res.makespan_s),
        "prefill_span_s": round_trace_float(res.prefill_span_s),
        "decode_span_s": round_trace_float(res.decode_span_s),
        "total_tokens": res.total_tokens,
        "stage_busy_s": [round_trace_float(b) for b in res.stage_busy_s],
        "stage_memory_bytes": list(res.stage_memory_bytes),
        "events_processed": res.events_processed,
        "arrived": res.arrived,
        "admitted": res.admitted,
        "completed": res.completed,
        "rejected_queue": res.rejected_queue,
        "rejected_slo": res.rejected_slo,
        "rejected_oom": res.rejected_oom,
        "unserved": res.unserved,
        "groups_formed": res.groups_formed,
        "ttft_s": [round_trace_float(t) for t in res.ttft_s],
        "tpot_s": [round_trace_float(t) for t in res.tpot_s],
        "latency_s": [round_trace_float(t) for t in res.latency_s],
        "area_request_s": round_trace_float(res.area_request_s),
        "ttft_slo_s": (
            None if res.ttft_slo_s is None
            else round_trace_float(res.ttft_slo_s)
        ),
        "sim_backend": res.sim_backend,
    }
    # Same convention as sim_result_to_dict: only serialized when set.
    if res.backend_reason is not None:
        out["backend_reason"] = res.backend_reason
    if res.energy_j is not None:
        out["energy_j"] = round_trace_float(res.energy_j)
    if res.cost_usd is not None:
        out["cost_usd"] = round_trace_float(res.cost_usd)
    return out


def online_result_from_dict(data: Dict[str, Any]) -> "OnlineSimResult":
    """Reconstruct an :class:`OnlineSimResult` written by
    :func:`online_result_to_dict`."""
    from .pipeline.online import OnlineSimResult

    version = data.get("schema_version")
    if version != ONLINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported online schema version {version!r} "
            f"(expected {ONLINE_SCHEMA_VERSION})"
        )
    ttft_slo = data.get("ttft_slo_s")
    return OnlineSimResult(
        makespan_s=float(data["makespan_s"]),
        prefill_span_s=float(data["prefill_span_s"]),
        decode_span_s=float(data["decode_span_s"]),
        total_tokens=int(data["total_tokens"]),
        stage_busy_s=tuple(float(b) for b in data["stage_busy_s"]),
        stage_memory_bytes=tuple(
            int(m) for m in data["stage_memory_bytes"]
        ),
        events_processed=int(data["events_processed"]),
        arrived=int(data["arrived"]),
        admitted=int(data["admitted"]),
        completed=int(data["completed"]),
        rejected_queue=int(data["rejected_queue"]),
        rejected_slo=int(data["rejected_slo"]),
        rejected_oom=int(data["rejected_oom"]),
        unserved=int(data["unserved"]),
        groups_formed=int(data["groups_formed"]),
        ttft_s=tuple(float(t) for t in data["ttft_s"]),
        tpot_s=tuple(float(t) for t in data["tpot_s"]),
        latency_s=tuple(float(t) for t in data["latency_s"]),
        area_request_s=float(data["area_request_s"]),
        ttft_slo_s=None if ttft_slo is None else float(ttft_slo),
        sim_backend=str(data.get("sim_backend", "event")),
        backend_reason=data.get("backend_reason"),
        energy_j=_opt_float(data.get("energy_j")),
        cost_usd=_opt_float(data.get("cost_usd")),
    )


def summary_to_dict(summary: Any) -> Dict[str, Any]:
    """Serialize any :class:`repro.api.Summary` implementor.

    Dispatches on :meth:`to_dict` — the uniform protocol entry point —
    so callers can persist heterogeneous result objects with one call.
    """
    to_dict = getattr(summary, "to_dict", None)
    if to_dict is None:
        raise TypeError(
            f"{type(summary).__name__} does not implement the Summary "
            "protocol (missing to_dict())"
        )
    return to_dict()
