"""Property-based tests for sub-byte bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    pack_bits,
    pack_tensor,
    packed_nbytes,
    unpack_bits,
    unpack_tensor,
)


@given(
    bits=st.integers(min_value=1, max_value=16),
    n=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_unsigned(bits, n, seed):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 1 << bits, size=n).astype(np.int32)
    words = pack_bits(codes, bits)
    rec = unpack_bits(words, bits, n)
    assert np.array_equal(rec, codes)


@given(
    bits=st.sampled_from([3, 4, 8]),
    n=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_signed_with_qmin(bits, n, seed):
    rng = np.random.default_rng(seed)
    qmin = -(1 << (bits - 1))
    qmax = (1 << (bits - 1)) - 1
    codes = rng.integers(qmin, qmax + 1, size=n).astype(np.int32)
    words = pack_bits(codes, bits, qmin=qmin)
    rec = unpack_bits(words, bits, n, qmin=qmin)
    assert np.array_equal(rec, codes)


def test_packed_size_is_dense():
    n = 1000
    assert packed_nbytes(n, 3) == 4 * ((3 * n + 31) // 32)
    # 3-bit packing uses ~3/16 the bytes of int16 storage.
    assert packed_nbytes(n, 3) < n * 2 * 0.2


def test_out_of_range_codes_rejected():
    with pytest.raises(ValueError):
        pack_bits(np.array([8]), 3)  # 8 needs 4 bits
    with pytest.raises(ValueError):
        pack_bits(np.array([-1]), 3)


def test_bad_bitwidths_rejected():
    with pytest.raises(ValueError):
        pack_bits(np.array([0]), 0)
    with pytest.raises(ValueError):
        unpack_bits(np.array([0], dtype=np.uint32), 17, 1)


def test_tensor_roundtrip_preserves_shape():
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 8, size=(7, 13)).astype(np.int32)
    words, shape = pack_tensor(codes, 3)
    rec = unpack_tensor(words, 3, shape)
    assert rec.shape == (7, 13)
    assert np.array_equal(rec, codes)


def test_boundary_straddling_values():
    """Codes crossing 32-bit word boundaries survive exactly."""
    codes = np.array([5] * 11 + [2], dtype=np.int32)  # 12 x 3 = 36 bits
    words = pack_bits(codes, 3)
    assert len(words) == 2
    assert np.array_equal(unpack_bits(words, 3, 12), codes)


def test_empty_input():
    words = pack_bits(np.array([], dtype=np.int32), 4)
    assert words.size == 0
    assert unpack_bits(words, 4, 0).size == 0
