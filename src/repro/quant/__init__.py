"""Quantization substrate: schemes, packing, GPTQ, AWQ, SmoothQuant, indicators."""

from .awq import AWQResult, awq_quantize
from .gptq import GPTQResult, gptq_quantize, hessian_from_inputs
from .hessian import (
    hessian_flops,
    hessian_indicator_table,
    hessian_sensitivity,
    top_eigenvalue,
    variance_indicator_flops,
)
from .indicator import (
    OperatorStats,
    empirical_quant_variance,
    g_statistic,
    g_statistic_from_moments,
    indicator_table,
    layer_indicator,
    operator_stats_from_arrays,
    random_indicator_table,
    scaling_factor,
    theorem1_variance_bound,
)
from .packing import (
    pack_bits,
    pack_tensor,
    packed_nbytes,
    unpack_bits,
    unpack_tensor,
)
from .schemes import (
    QuantConfig,
    QuantizedTensor,
    compute_scale_zero,
    quantization_mse,
    quantize,
    quantize_dequantize,
)
from .sensitivity import (
    model_indicator_table,
    normalized_indicator_table,
    synthesize_layer_stats,
)
from .smoothquant import (
    SmoothedLinear,
    smooth_linear,
    smoothing_scales,
    w8a8_matmul_error,
)

__all__ = [
    "AWQResult",
    "awq_quantize",
    "GPTQResult",
    "gptq_quantize",
    "hessian_from_inputs",
    "hessian_flops",
    "hessian_indicator_table",
    "hessian_sensitivity",
    "top_eigenvalue",
    "variance_indicator_flops",
    "OperatorStats",
    "empirical_quant_variance",
    "g_statistic",
    "g_statistic_from_moments",
    "indicator_table",
    "layer_indicator",
    "operator_stats_from_arrays",
    "random_indicator_table",
    "scaling_factor",
    "theorem1_variance_bound",
    "pack_bits",
    "pack_tensor",
    "packed_nbytes",
    "unpack_bits",
    "unpack_tensor",
    "QuantConfig",
    "QuantizedTensor",
    "compute_scale_zero",
    "quantization_mse",
    "quantize",
    "quantize_dequantize",
    "model_indicator_table",
    "normalized_indicator_table",
    "synthesize_layer_stats",
    "SmoothedLinear",
    "smooth_linear",
    "smoothing_scales",
    "w8a8_matmul_error",
]
