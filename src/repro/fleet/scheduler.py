"""The fleet-level multi-job scheduler (the layer above the per-job planner).

The paper's Fig. 1 motivation — a fleet whose A100s run hot while the
T4/V100/P100 long tail idles — becomes actionable here: a queue of
offline serving jobs (:class:`~repro.fleet.jobs.FleetJob`) is placed onto
a schedulable inventory of idle GPUs.  An allocator carves the inventory
into per-job heterogeneous groups (each planned by the per-job
:class:`~repro.core.planner.SplitQuantPlanner` through the shared
:class:`~repro.fleet.allocator.PlannerPool`), and a deterministic
backfilling list scheduler lays the jobs out in time, minimizing fleet
makespan / maximizing aggregate tokens per second.

Degrade-aware rescheduling (:meth:`FleetScheduler.reschedule_after_failure`)
hooks into the PR-2 fault model: when a GPU is reclaimed by its owner
mid-job (the fleet is *borrowed* idle capacity), the job replans on its
reduced group via :func:`~repro.core.planner.reduced_cluster`; if nothing
fits there, the job's surviving GPUs return to the pool and the job is
re-allocated from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..core import PlannerConfig, SplitQuantPlanner
from ..costmodel.energy import PriceBook, default_price_book
from ..hardware.fleet import FleetStats, schedulable_inventory
from ..models import get_model
from ..obs import metrics, trace
from ..plan import InfeasibleError
from .allocator import (
    Assignment,
    BeamAllocator,
    GreedyAllocator,
    GroupSpec,
    PlannerPool,
    list_schedule,
)
from .jobs import FleetJob

__all__ = [
    "FleetSchedule",
    "FleetScheduler",
    "ScheduledJob",
    "compare_allocators",
    "default_fleet_config",
]

#: Allocator registry for the string shorthand.
_ALLOCATORS = {"greedy": GreedyAllocator, "beam": BeamAllocator}


def default_fleet_config() -> PlannerConfig:
    """A planner configuration tuned for fleet-scale probing.

    Allocators evaluate dozens of (job, group) candidates per scheduling
    run, so each per-group plan uses the fast bitwidth-transfer heuristic
    with a small enumeration budget; the per-job plan quality SLO is
    still enforced through each job's hard quality budget.
    """
    return PlannerConfig(
        use_heuristic=True,
        group_size=8,
        max_orderings=3,
        microbatch_candidates=(8,),
        verify_top_k=1,
    )


@dataclass(frozen=True)
class ScheduledJob:
    """One placed job: its assignment plus its slot on the timeline."""

    assignment: Assignment
    start_s: float
    end_s: float

    @property
    def job(self) -> FleetJob:
        return self.assignment.job

    @property
    def group(self) -> GroupSpec:
        return self.assignment.group

    def describe(self) -> str:
        return (
            f"[{self.start_s:8.1f}s - {self.end_s:8.1f}s] "
            + self.assignment.describe()
        )


@dataclass(frozen=True)
class FleetSchedule:
    """The scheduler's output: placed jobs on a shared inventory."""

    inventory: Dict[str, int]
    jobs: Tuple[ScheduledJob, ...]
    #: Jobs no allocator could place (infeasible on every group).
    unscheduled: Tuple[FleetJob, ...]
    makespan_s: float
    allocator: str
    #: Planner-pool observability (evaluations / cache hits / infeasible).
    pool_stats: Dict[str, int]

    @property
    def total_output_tokens(self) -> int:
        return sum(sj.job.total_output_tokens for sj in self.jobs)

    @property
    def aggregate_tokens_s(self) -> float:
        """Fleet-level output throughput over the whole makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan_s

    def gpu_hours_used(self) -> Dict[str, float]:
        """Busy GPU-hours per type over the schedule."""
        out: Dict[str, float] = {g: 0.0 for g in self.inventory}
        for sj in self.jobs:
            hours = (sj.end_s - sj.start_s) / 3600.0
            for g, n in sj.group.counts:
                out[g] = out.get(g, 0.0) + n * hours
        return out

    def deadline_violations(self) -> Tuple[str, ...]:
        """Job ids finishing after their deadline class allows."""
        return tuple(
            sj.job.job_id for sj in self.jobs if sj.end_s > sj.job.deadline_s
        )

    def describe(self) -> str:
        lines = [
            f"fleet schedule ({self.allocator}): "
            f"{len(self.jobs)} jobs on "
            + " + ".join(
                f"{n}x{g}" for g, n in sorted(self.inventory.items())
            ),
        ]
        for sj in sorted(self.jobs, key=lambda s: (s.start_s, s.job.job_id)):
            lines.append("  " + sj.describe())
        lines.append(
            f"  makespan {self.makespan_s:.1f}s, "
            f"aggregate {self.aggregate_tokens_s:.0f} tok/s"
        )
        if self.unscheduled:
            lines.append(
                "  unscheduled: "
                + ", ".join(j.job_id for j in self.unscheduled)
            )
        return "\n".join(lines)


class FleetScheduler:
    """Schedule a queue of offline jobs onto an idle-GPU inventory."""

    def __init__(
        self,
        inventory: Union[Dict[str, int], FleetStats],
        config: Optional[PlannerConfig] = None,
        allocator: Union[str, Any] = "beam",
        cross_node_link: str = "eth-800g",
        parallelism: int = 1,
        pool_gpus: int = 32,
        objective: str = "throughput",
        spot_types: Sequence[str] = (),
        price_book: Optional[PriceBook] = None,
    ) -> None:
        if isinstance(inventory, FleetStats):
            inventory = schedulable_inventory(inventory, pool_gpus=pool_gpus)
        if config is None:
            config = default_fleet_config()
        self.inventory = dict(inventory)
        self.config = config
        # Spot-priced GPU types bill at the book's spot rate and are the
        # preemptible ones (:meth:`preempt_spot`).
        if price_book is None:
            price_book = default_price_book(spot_types=tuple(spot_types))
        elif spot_types:
            raise ValueError(
                "pass spot_types inside the price_book, not alongside it"
            )
        self.price_book = price_book
        if isinstance(allocator, str):
            try:
                allocator = _ALLOCATORS[allocator](
                    objective=objective, price_book=price_book
                )
            except KeyError:
                raise ValueError(
                    f"unknown allocator {allocator!r} "
                    f"(expected one of {sorted(_ALLOCATORS)})"
                ) from None
        self.allocator = allocator
        self.pool = PlannerPool(
            self.inventory,
            config=config,
            cross_node_link=cross_node_link,
            parallelism=parallelism,
        )

    # -- scheduling ----------------------------------------------------

    def schedule(self, jobs: Sequence[FleetJob]) -> FleetSchedule:
        """Allocate groups, plan each job, and lay jobs out in time."""
        if not jobs:
            raise ValueError("job queue is empty")
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in queue")
        with trace.span(
            "fleet.schedule",
            jobs=len(jobs),
            gpus=sum(self.inventory.values()),
            allocator=getattr(self.allocator, "name", "custom"),
        ) as sp:
            assignments = self.allocator.allocate(jobs, self.pool)
            schedule = self._timeline(jobs, assignments)
            sp.set(
                scheduled=len(schedule.jobs),
                makespan_s=round(schedule.makespan_s, 3),
            )
            if trace.enabled:
                metrics.counter("fleet.schedules").inc()
                metrics.counter("fleet.jobs_scheduled").inc(
                    len(schedule.jobs)
                )
                metrics.counter("fleet.jobs_unscheduled").inc(
                    len(schedule.unscheduled)
                )
                metrics.gauge("fleet.makespan_s").set(schedule.makespan_s)
            return schedule

    def _timeline(
        self,
        jobs: Sequence[FleetJob],
        assignments: Sequence[Assignment],
        inventory: Optional[Dict[str, int]] = None,
    ) -> FleetSchedule:
        inv = dict(self.inventory if inventory is None else inventory)
        start, end, makespan = list_schedule(assignments, inv)
        placed = {a.job.job_id for a in assignments}
        scheduled = tuple(
            ScheduledJob(assignment=a, start_s=s, end_s=e)
            for a, s, e in zip(assignments, start, end)
        )
        return FleetSchedule(
            inventory=inv,
            jobs=scheduled,
            unscheduled=tuple(
                j for j in jobs if j.job_id not in placed
            ),
            makespan_s=makespan,
            allocator=getattr(self.allocator, "name", "custom"),
            pool_stats=self.pool.stats(),
        )

    # -- degrade-aware rescheduling ------------------------------------

    def reschedule_after_failure(
        self,
        schedule: FleetSchedule,
        job_id: str,
        dead_gpu: Optional[str] = None,
    ) -> FleetSchedule:
        """One GPU of a running job is reclaimed; repair the schedule.

        The reclaimed GPU leaves the schedulable inventory (its owner
        took it back — PR-2's permanent ``kill``).  The victim job first
        replans on its reduced group via
        :meth:`SplitQuantPlanner.replan` /
        :func:`~repro.core.planner.reduced_cluster`; when nothing fits
        there, the job's surviving GPUs return to the pool and the job is
        re-allocated from the remaining inventory.  All other jobs keep
        their groups and plans; only the timeline is recomputed.
        """
        victim = next(
            (sj for sj in schedule.jobs if sj.job.job_id == job_id), None
        )
        if victim is None:
            raise KeyError(f"job {job_id!r} is not in the schedule")
        group = victim.group
        if dead_gpu is None:
            dead_gpu = group.counts[0][0]
        if dead_gpu not in group.as_dict():
            raise ValueError(
                f"job {job_id!r} holds no {dead_gpu!r} "
                f"(group {group.describe()})"
            )
        with trace.span(
            "fleet.reschedule", job=job_id, dead_gpu=dead_gpu
        ) as sp:
            new_inventory = dict(schedule.inventory)
            new_inventory[dead_gpu] -= 1
            if new_inventory[dead_gpu] <= 0:
                del new_inventory[dead_gpu]
            # Cascade: other jobs keep their groups unless the shrunken
            # inventory can no longer ever host them concurrently with
            # itself (e.g. a 4xV100 group with 3 V100s left) — those are
            # reallocated from the reduced pool.
            others = []
            for sj in schedule.jobs:
                if sj.job.job_id == job_id:
                    continue
                if sj.assignment.group.fits(new_inventory):
                    others.append(sj.assignment)
                else:
                    realloc = self._reallocate(sj.job, new_inventory)
                    if realloc is not None:
                        others.append(realloc)
                    if trace.enabled:
                        metrics.counter("fleet.reschedule_cascade").inc()
            repaired = self._replan_reduced(victim.assignment, dead_gpu)
            action = "degrade"
            if repaired is None:
                repaired = self._reallocate(
                    victim.job, new_inventory
                )
                action = "reallocate" if repaired is not None else "drop"
            sp.set(action=action)
            if trace.enabled:
                metrics.counter("fleet.reschedules").inc()
                metrics.counter(f"fleet.reschedule_{action}").inc()
            assignments = others + ([repaired] if repaired else [])
            jobs = [sj.job for sj in schedule.jobs] + list(
                schedule.unscheduled
            )
            return self._timeline(jobs, assignments, inventory=new_inventory)

    def preempt_spot(
        self,
        schedule: FleetSchedule,
        job_id: str,
        gpu: Optional[str] = None,
    ) -> FleetSchedule:
        """A spot instance of a running job is reclaimed by the provider.

        Spot GPUs trade the discounted rate in the price book for
        preemptibility; losing one is operationally identical to an owner
        reclaiming an idle GPU, so this validates that the reclaimed type
        is actually spot-priced and then routes through
        :meth:`reschedule_after_failure` — the victim job repairs its
        plan via the incremental
        :class:`~repro.core.replan.ClusterDelta` replan path.
        """
        victim = next(
            (sj for sj in schedule.jobs if sj.job.job_id == job_id), None
        )
        if victim is None:
            raise KeyError(f"job {job_id!r} is not in the schedule")
        if gpu is None:
            spot_held = [
                g
                for g, _ in victim.group.counts
                if g in self.price_book.spot_types
            ]
            if not spot_held:
                raise ValueError(
                    f"job {job_id!r} holds no spot-priced GPUs "
                    f"(group {victim.group.describe()}, spot types "
                    f"{sorted(self.price_book.spot_types)})"
                )
            gpu = spot_held[0]
        elif gpu not in self.price_book.spot_types:
            raise ValueError(
                f"{gpu!r} is not a spot-priced type "
                f"(spot types {sorted(self.price_book.spot_types)})"
            )
        if trace.enabled:
            metrics.counter("fleet.spot_preemptions").inc()
        return self.reschedule_after_failure(schedule, job_id, dead_gpu=gpu)

    def _replan_reduced(
        self, assignment: Assignment, dead_gpu: str
    ) -> Optional[Assignment]:
        """Replan the job on its group minus one ``dead_gpu`` device."""
        reduced_counts = tuple(
            (g, n - 1 if g == dead_gpu else n)
            for g, n in assignment.group.counts
            if not (g == dead_gpu and n == 1)
        )
        if not reduced_counts:
            return None
        job = assignment.job
        cluster = assignment.materialize_cluster(self.pool.cross_node_link)
        # The reclaimed device is the *last* device of the dead type
        # (deterministic choice; device ids are group-local).
        dead_id = max(
            d.device_id for d in cluster.devices if d.gpu.name == dead_gpu
        )
        survivors = [
            d.device_id for d in cluster.devices if d.device_id != dead_id
        ]
        planner = SplitQuantPlanner(
            get_model(job.model),
            cluster,
            self.pool._job_config(job, self.pool._omega(job.model)),
            cost_model=self.pool._cost_model(job.model),
            omega_layers=self.pool._omega(job.model),
        )
        from ..core.planner import _reduced_cluster
        from ..core.replan import ClusterDelta

        try:
            # Incremental: repair the previous plan (bits kept, layers
            # re-partitioned) and only re-solve when the repair fails.
            result = planner.replan(
                assignment.result,
                ClusterDelta(removed_device_ids=(dead_id,)),
                workload=job.workload,
            )
        except InfeasibleError:
            return None
        return Assignment(
            job=job,
            group=GroupSpec(counts=reduced_counts),
            result=result,
            cluster=_reduced_cluster(cluster, survivors),
        )

    def _reallocate(
        self, job: FleetJob, inventory: Dict[str, int]
    ) -> Optional[Assignment]:
        """Fresh allocation of one job from the remaining inventory."""
        pool = PlannerPool(
            inventory,
            config=self.config,
            cross_node_link=self.pool.cross_node_link,
            parallelism=self.pool.parallelism,
        )
        # Reuse the shared memos so the fresh pool stays warm.
        pool._cost_models = self.pool._cost_models
        pool._omegas = self.pool._omegas
        allocated = GreedyAllocator().allocate([job], pool)
        return allocated[0] if allocated else None


def compare_allocators(
    jobs: Sequence[FleetJob],
    inventory: Dict[str, int],
    config: Optional[PlannerConfig] = None,
    parallelism: int = 1,
) -> Dict[str, FleetSchedule]:
    """Schedule the same queue with every registered allocator."""
    out: Dict[str, FleetSchedule] = {}
    for name in sorted(_ALLOCATORS):
        sched = FleetScheduler(
            inventory,
            config=config,
            allocator=name,
            parallelism=parallelism,
        )
        out[name] = sched.schedule(jobs)
    return out
