"""Differential tests: the online serving driver vs the offline oracle.

The contract (DESIGN.md, "Online serving"): with every request arriving
at t=0, admission disabled and a single closed batch, ``simulate_online``
must be *bit-identical* to the offline ``simulate_plan`` event backend —
same makespan, same spans, same per-stage busy time, same memory
accounting, and the same number of processed events.  Every assertion
here is therefore ``==`` on raw floats, mirroring ``test_fastsim``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.pipeline import (
    ADMISSION_POLICIES,
    OnlineConfig,
    OnlineSimResult,
    simulate_online,
    simulate_plan,
)
from repro.plan import uniform_plan
from repro.serialization import (
    online_result_from_dict,
    online_result_to_dict,
)
from repro.simgpu import OutOfMemoryError
from repro.workloads import (
    ArrivalTrace,
    BatchWorkload,
    Request,
    closed_batch_trace,
    poisson_trace,
)


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


def _assert_identical(offline, online):
    """Field-by-field exact equality of the shared result surface."""
    assert offline.sim_backend == "event"
    assert online.sim_backend == "event"
    assert online.backend_reason is None
    assert offline.makespan_s == online.makespan_s
    assert offline.prefill_span_s == online.prefill_span_s
    assert offline.decode_span_s == online.decode_span_s
    assert offline.total_tokens == online.total_tokens
    assert offline.stage_busy_s == online.stage_busy_s
    assert offline.stage_memory_bytes == online.stage_memory_bytes
    assert offline.events_processed == online.events_processed
    assert offline.throughput_tokens_s == online.throughput_tokens_s
    assert offline.stage_utilization == online.stage_utilization
    assert offline.bubble_fraction == online.bubble_fraction


# -- seeded grid: identical to the fastsim differential grid -------------

GRID = [
    # (cluster index, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec)
    (5, "opt-13b", 8, 8, 256, 32, 2048, 4, 4),
    (5, "opt-13b", 4, 32, 512, 64, 256, 8, 16),
    (2, "opt-13b", 8, 16, 1024, 16, 512, 2, 8),
    (7, "opt-30b", 4, 64, 512, 128, 1024, 16, 32),
    (9, "opt-13b", 16, 24, 384, 48, 384, 6, 12),  # remainder microbatches
    (10, "opt-30b", 16, 8, 2048, 8, 512, 8, 8),  # kappa = 4
]


def _setup(idx, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec):
    cluster = table_iii_cluster(idx)
    spec = get_model(model)
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(cluster), bits, mb_pre, mb_dec
    )
    wl = BatchWorkload(
        batch=batch, prompt_len=prompt, output_len=out, chunk_tokens=chunk
    )
    return cluster, spec, plan, wl


@pytest.mark.parametrize(
    "idx,model,bits,batch,prompt,out,chunk,mb_pre,mb_dec", GRID
)
def test_online_equals_offline_grid(
    idx, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec
):
    cluster, spec, plan, wl = _setup(
        idx, model, bits, batch, prompt, out, chunk, mb_pre, mb_dec
    )
    offline = simulate_plan(plan, cluster, spec, wl, sim_backend="event")
    online = simulate_online(
        plan, cluster, spec, closed_batch_trace(wl),
        config=OnlineConfig(chunk_tokens=chunk, admission="none"),
        sim_backend="event",
    )
    _assert_identical(offline, online)
    # The degenerate trace is exactly one closed batch, fully served.
    assert online.arrived == online.admitted == online.completed == batch
    assert online.rejected == 0
    assert online.unserved == 0
    assert online.groups_formed == 1
    assert len(online.ttft_s) == batch


def test_degenerate_event_count_matches_offline(cluster5, opt13b):
    """t=0 arrivals are injected synchronously: zero extra events."""
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 4, 4
    )
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=16,
                       chunk_tokens=512)
    offline = simulate_plan(plan, cluster5, opt13b, wl, sim_backend="event")
    online = simulate_online(
        plan, cluster5, opt13b, closed_batch_trace(wl),
        config=OnlineConfig(chunk_tokens=512, admission="none"),
        sim_backend="event",
    )
    assert online.events_processed == offline.events_processed


def test_late_arrivals_add_one_event_per_distinct_time(cluster5, opt13b):
    """Each *distinct* future arrival time costs exactly one loop event."""
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 4, 4
    )

    def trace_with_offsets(offsets):
        reqs = tuple(
            Request(req_id=i, arrival_s=t, prompt_len=256, output_len=16)
            for i, t in enumerate(offsets)
        )
        return ArrivalTrace(requests=reqs, source="test")

    cfg = OnlineConfig(chunk_tokens=512, admission="none")
    base = simulate_online(
        plan, cluster5, opt13b, trace_with_offsets([0.0] * 4), config=cfg
    )
    # Two extra requests at the same far-future instant: one timer event,
    # plus the second group's own prefill/decode events.  Compare against
    # the same workload with the late pair at two *distinct* instants.
    one_timer = simulate_online(
        plan, cluster5, opt13b,
        trace_with_offsets([0.0] * 4 + [1e6, 1e6]), config=cfg,
    )
    two_timers = simulate_online(
        plan, cluster5, opt13b,
        trace_with_offsets([0.0] * 4 + [1e6, 1e6 + 1.0]), config=cfg,
    )
    assert base.groups_formed == 1
    assert one_timer.groups_formed == 2
    # Splitting the pair across two instants forms one more group and
    # costs exactly one more timer event than the group-size delta alone.
    assert two_timers.groups_formed == 3
    assert two_timers.arrived == one_timer.arrived == 6


def test_provenance_excluded_from_equality(cluster5, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 4, 4
    )
    wl = BatchWorkload(batch=4, prompt_len=256, output_len=8,
                       chunk_tokens=512)
    res = simulate_online(
        plan, cluster5, opt13b, closed_batch_trace(wl),
        config=OnlineConfig(chunk_tokens=512, admission="none"),
        sim_backend="event",
    )
    assert res.sim_backend == "event"
    assert res.backend_reason is None
    relabeled = dataclasses.replace(
        res, sim_backend="other", backend_reason="why-not"
    )
    assert relabeled == res  # provenance fields carry compare=False
    # The default dispatch routes every eligible run to the fast path.
    auto = simulate_online(
        plan, cluster5, opt13b, closed_batch_trace(wl),
        config=OnlineConfig(chunk_tokens=512, admission="none"),
    )
    assert auto.sim_backend == "fast"
    assert auto.backend_reason is None
    assert auto == res


def test_oom_parity_with_offline(small_cluster, opt30b, small_workload):
    """Admission 'none' pre-checks worst-case memory like offline."""
    plan = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    with pytest.raises(OutOfMemoryError):
        simulate_plan(plan, small_cluster, opt30b, small_workload,
                      sim_backend="event")
    with pytest.raises(OutOfMemoryError):
        simulate_online(
            plan, small_cluster, opt30b, closed_batch_trace(small_workload),
            config=OnlineConfig(admission="none"),
        )


def test_kv_admission_rejects_instead_of_raising(small_cluster, opt30b):
    """Under 'kv', an infeasible *request* is rejected, not fatal —
    only infeasible static weights raise."""
    spec = get_model("opt-13b")
    plan = uniform_plan(
        spec.name, spec.num_layers, groups_of(small_cluster), 4, 4, 4
    )
    # A request whose KV alone exceeds every stage budget can never fit.
    reqs = (
        Request(req_id=0, arrival_s=0.0, prompt_len=256, output_len=8),
        Request(req_id=1, arrival_s=0.0, prompt_len=2_000_000,
                output_len=8),
    )
    res = simulate_online(
        plan, small_cluster, spec,
        ArrivalTrace(requests=reqs, source="test"),
        config=OnlineConfig(chunk_tokens=512, admission="kv"),
    )
    assert res.completed == 1
    assert res.rejected_oom == 1
    # Infeasible static weights still raise, matching offline semantics.
    fat = uniform_plan(
        opt30b.name, opt30b.num_layers, groups_of(small_cluster), 16, 4, 4
    )
    with pytest.raises(OutOfMemoryError):
        simulate_online(
            fat, small_cluster, opt30b,
            ArrivalTrace(requests=reqs[:1], source="test"),
            config=OnlineConfig(chunk_tokens=512, admission="kv"),
        )


def _kv_pressure_trace(n=12, prompt_len=8192, output_len=64):
    """A burst whose aggregate KV exceeds the 2-device budget: each
    request fits alone, but head-of-line KV blocking forces queueing."""
    reqs = tuple(
        Request(req_id=i, arrival_s=0.0, prompt_len=prompt_len,
                output_len=output_len)
        for i in range(n)
    )
    return ArrivalTrace(requests=reqs, source="test")


def test_max_queue_admission_under_kv_pressure(small_cluster, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 4, 4, 4
    )
    trace = _kv_pressure_trace()
    cfg = OnlineConfig(chunk_tokens=2048, admission="kv")
    unbounded = simulate_online(plan, small_cluster, opt13b, trace,
                                config=cfg)
    # Without a queue cap the burst drains across several groups.
    assert unbounded.completed == trace.n_requests
    assert unbounded.groups_formed > 1
    capped = simulate_online(
        plan, small_cluster, opt13b, trace,
        config=OnlineConfig(chunk_tokens=2048, admission="kv", max_queue=2),
    )
    assert capped.rejected_queue == trace.n_requests - 2
    assert capped.completed == 2
    for res in (unbounded, capped):
        assert res.arrived == trace.n_requests
        assert res.arrived == (res.completed + res.rejected + res.unserved)


def test_ttft_slo_admission_under_kv_pressure(small_cluster, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(small_cluster), 4, 4, 4
    )
    trace = _kv_pressure_trace()
    tight = simulate_online(
        plan, small_cluster, opt13b, trace,
        config=OnlineConfig(chunk_tokens=2048, admission="kv",
                            ttft_slo_s=5.0),
    )
    loose = simulate_online(
        plan, small_cluster, opt13b, trace,
        config=OnlineConfig(chunk_tokens=2048, admission="kv",
                            ttft_slo_s=60.0),
    )
    # Queued requests whose wait blows the SLO are shed at the next
    # scheduling point; with a generous SLO everything is served.
    assert tight.rejected_slo > 0
    assert loose.rejected_slo == 0
    assert loose.completed == trace.n_requests
    assert loose.ttft_slo_attainment == 1.0
    assert 0.0 <= tight.ttft_slo_attainment <= 1.0
    for res in (tight, loose):
        assert res.arrived == (res.completed + res.rejected + res.unserved)


def test_admission_policy_validation():
    assert set(ADMISSION_POLICIES) == {"kv", "none"}
    with pytest.raises(ValueError):
        OnlineConfig(admission="bogus")
    with pytest.raises(ValueError):
        OnlineConfig(chunk_tokens=0)
    with pytest.raises(ValueError):
        OnlineConfig(max_queue=0)
    with pytest.raises(ValueError):
        OnlineConfig(ttft_slo_s=0.0)
    with pytest.raises(ValueError):
        OnlineConfig(horizon_s=-1.0)


def test_online_result_serialization_round_trip(cluster5, opt13b):
    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 4, 4
    )
    trace = poisson_trace(rate_per_s=3.0, duration_s=10.0, seed=5,
                          max_prompt_len=256, max_output_len=8)
    res = simulate_online(
        plan, cluster5, opt13b, trace,
        config=OnlineConfig(chunk_tokens=512, ttft_slo_s=1.0),
    )
    d = res.to_dict()
    assert d == online_result_to_dict(res)
    assert d["kind"] == "online_sim"
    assert "backend_reason" not in d  # omitted while unset
    text = json.dumps(d, sort_keys=True)
    back = online_result_from_dict(json.loads(text))
    assert isinstance(back, OnlineSimResult)
    assert online_result_to_dict(back) == d
    with pytest.raises(ValueError):
        online_result_from_dict({**d, "schema_version": 999})


def test_session_serve_online_facade(small_cluster):
    from repro.api import Session, Summary

    sess = Session("opt-13b", small_cluster)
    wl = BatchWorkload(batch=4, prompt_len=256, output_len=8,
                       chunk_tokens=512)
    sess.plan(wl)
    res = sess.serve_online(
        closed_batch_trace(wl),
        config=OnlineConfig(chunk_tokens=512, admission="none"),
        sim_backend="event",
    )
    assert isinstance(res, Summary)
    sim = sess.simulate(sim_backend="event")
    _assert_identical(sim, res)
    # The default (auto) backend dispatches to the fast driver and must
    # agree with the event run on every compared field.
    fast = sess.serve_online(
        closed_batch_trace(wl),
        config=OnlineConfig(chunk_tokens=512, admission="none"),
    )
    assert fast.sim_backend == "fast"
    assert fast == res
