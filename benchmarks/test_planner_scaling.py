"""Bench: search-engine scaling vs the naive serial planner (Table VI).

Runs the Table-VI-style planning configuration (OPT-30B on Table III
cluster 5, 6 orderings x 3x3 micro-batch grid, hard quality budget) through
both search paths, asserts the engine returns a bit-identical plan at >= 3x
less wall-clock, and emits ``benchmarks/BENCH_planner.json`` with the
measured record.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.core import PlannerConfig, SplitQuantPlanner
from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.workloads import BatchWorkload

OUT = Path(__file__).resolve().parent / "BENCH_planner.json"


def test_planner_scaling():
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(5)
    workload = BatchWorkload(batch=64, prompt_len=512, output_len=128)
    base = PlannerConfig(
        group_size=3,
        max_orderings=6,
        microbatch_candidates=(8, 16, 32),
        verify_top_k=1,
        time_limit_s=30.0,
    )
    seed_planner = SplitQuantPlanner(spec, cluster, base)
    cfg = dataclasses.replace(
        base, quality_budget=seed_planner.uniform_quality(4)
    )
    planner = SplitQuantPlanner(
        spec, cluster, cfg, cost_model=seed_planner.cost_model,
        omega_layers=seed_planner.omega_layers,
    )

    t0 = time.perf_counter()
    fast = planner.plan(workload)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    naive = planner.plan_reference(workload)
    t_naive = time.perf_counter() - t0

    assert fast is not None and naive is not None
    # Hard parity requirement: the engine may only *skip* provably
    # dominated candidates, never change the chosen plan.
    assert fast.plan == naive.plan
    speedup = t_naive / t_fast
    s = fast.search
    record = {
        "bench": "planner_scaling",
        "model": spec.name,
        "cluster": cluster.name,
        "workload": {
            "batch": workload.batch,
            "prompt_len": workload.prompt_len,
            "output_len": workload.output_len,
        },
        "config": {
            "group_size": cfg.group_size,
            "max_orderings": cfg.max_orderings,
            "microbatch_candidates": list(cfg.microbatch_candidates),
            "quality_budget": cfg.quality_budget,
            "verify_top_k": cfg.verify_top_k,
        },
        "naive_wall_s": round(t_naive, 4),
        "engine_wall_s": round(t_fast, 4),
        "speedup": round(speedup, 3),
        "plan_identical": fast.plan == naive.plan,
        "search": {
            "enumerated": s.enumerated,
            "solved": s.solved,
            "pruned": s.pruned,
            "infeasible": s.infeasible,
            "lp_bounds": s.lp_bounds,
            "cache_hits": s.cache_hits,
            "cache_misses": s.cache_misses,
            "mean_bound_tightness": round(s.mean_bound_tightness, 4),
            "bound_time_s": round(s.bound_time_s, 4),
            "cum_solve_time_s": round(s.cum_solve_time_s, 4),
            "wall_time_s": round(s.wall_time_s, 4),
            "parallelism": s.parallelism,
        },
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
    assert s.pruned > 0
    assert s.cache_hits > 0
    assert speedup >= 3.0, f"search engine only {speedup:.2f}x vs naive"
