"""A small discrete-event simulation engine.

The pipeline simulator is built on two primitives: a time-ordered event
loop and FIFO servers (one per pipeline stage) that process jobs serially.
Kept generic so tests can exercise the engine independently of LLM
semantics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

# Hot-loop bindings: the event loop pushes/pops one heap entry per
# simulated job-step, so module-level lookups beat attribute traversal.
_heappush = heapq.heappush
_heappop = heapq.heappop


class EventLoop:
    """Time-ordered callback execution."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._processed = 0

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        _heappush(self._heap, (time, next(self._counter), fn))

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self.now + delay, fn)

    def run(self, until: Optional[float] = None) -> int:
        """Process events in order; returns the number processed.

        Stops when the queue drains or the next event is past ``until``.
        """
        heap = self._heap
        pop = _heappop
        n = self._processed
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                time, _, fn = pop(heap)
                self.now = time
                fn()
                n += 1
        finally:
            self._processed = n
        return n

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed


@dataclass(frozen=True)
class FaultEvent:
    """A failure (or recovery trigger) observed at a point in sim time.

    The discrete-event mirror of the runtime's
    :class:`repro.runtime.faults.FaultRecord`: ``kind`` is the injected
    fault class (``kill``/``slow``/``drop``), ``stage`` the pipeline stage
    it hit, ``phase``/``step`` when it fired, and ``action`` what the
    simulated engine did about it (``replan``/``rebuild``/``absorb``).
    """

    time_s: float
    kind: str
    stage: int
    phase: str
    step: int
    action: str = ""
    detail: str = ""


@dataclass
class Server:
    """A serial FIFO resource (one pipeline stage's compute).

    Jobs start in submission order as the server frees up; each job's
    completion callback fires on the loop at its finish time.  With
    ``record_jobs`` set, every job's (start, finish, label) is kept for
    timeline rendering.
    """

    loop: EventLoop
    name: str
    free_at: float = 0.0
    busy_time: float = 0.0
    jobs_done: int = 0
    record_jobs: bool = False
    jobs: List[Tuple[float, float, str]] = field(default_factory=list)

    def submit(
        self,
        duration: float,
        on_done: Optional[Callable[[float], None]] = None,
        not_before: float = 0.0,
        label: str = "",
    ) -> float:
        """Enqueue a job of ``duration``; returns its finish time.

        ``not_before`` lower-bounds the start (e.g. input arrival after a
        communication delay).  The completion callback receives the finish
        time.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.loop.now, self.free_at, not_before)
        finish = start + duration
        self.free_at = finish
        self.busy_time += duration
        self.jobs_done += 1
        if self.record_jobs:
            self.jobs.append((start, finish, label))
        if on_done is not None:
            self.loop.at(finish, lambda: on_done(finish))
        return finish

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` this server spent busy."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_time / horizon, 1.0)
