"""The shared pipeline topology: LLM semantics over the generic event core.

:mod:`repro.pipeline.events` stays deliberately generic (a heap-ordered
loop plus FIFO servers); this module holds everything both the offline
driver (:mod:`repro.pipeline.simulator`) and the online driver
(:mod:`repro.pipeline.online`) need on top of it — the per-stage
execution models, the inter-stage links, the decode feedback link, and
the pure duration functions (prefill chunk times, decode step series,
transfer times).  All of it is a pure function of ``(plan, cluster,
spec, timing)``: the two drivers compute bit-identical durations because
they call the *same* code with the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hardware.cluster import ClusterSpec, Device
from ..models.architectures import ModelSpec
from ..models import layers as L
from ..plan import ExecutionPlan
from .events import EventLoop, Server
from .stage import RooflineTiming, StageExecutionModel, TimingSource

__all__ = [
    "FEEDBACK_BYTES_PER_REQ",
    "PipelineTopology",
    "microbatch_sizes",
]

#: Bytes of sampled token ids fed back from LM head to the first stage.
FEEDBACK_BYTES_PER_REQ = 4


def microbatch_sizes(total: int, micro: int) -> List[int]:
    """Split ``total`` requests into micro-batches of at most ``micro``.

    A burst smaller than one micro-batch yields a single short
    micro-batch; zero requests yield no micro-batches at all (the online
    driver schedules empty admission rounds); a non-positive ``micro``
    is a caller bug and raises rather than dividing by zero.
    """
    if micro <= 0:
        raise ValueError(f"micro-batch size must be positive, got {micro}")
    if total < 0:
        raise ValueError(f"total requests must be non-negative, got {total}")
    sizes = [micro] * (total // micro)
    if total % micro:
        sizes.append(total % micro)
    return sizes


@dataclass
class PipelineTopology:
    """Stage models and links of one plan on one cluster.

    Built once per simulation run; drivers hoist the returned durations
    into local tables themselves (the hoisting strategy differs between
    offline — all sizes known upfront — and online — sizes discovered as
    groups form).
    """

    plan: ExecutionPlan
    cluster: ClusterSpec
    spec: ModelSpec
    timing: TimingSource
    stage_models: List[StageExecutionModel]
    fwd_links: list
    feedback_link: Optional[object]

    @classmethod
    def build(
        cls,
        plan: ExecutionPlan,
        cluster: ClusterSpec,
        spec: ModelSpec,
        timing: Optional[TimingSource] = None,
    ) -> "PipelineTopology":
        if plan.num_layers != spec.num_layers:
            raise ValueError(
                f"plan covers {plan.num_layers} layers, "
                f"model has {spec.num_layers}"
            )
        timing = timing or RooflineTiming(spec=spec, bit_kv=plan.bit_kv)
        by_id: Dict[int, Device] = {d.device_id: d for d in cluster.devices}
        n_stages = plan.num_stages
        stage_models = [
            StageExecutionModel(
                stage=st,
                gpu=by_id[st.device_ids[0]].gpu,
                spec=spec,
                timing=timing,
                is_first=(j == 0),
                is_last=(j == n_stages - 1),
            )
            for j, st in enumerate(plan.stages)
        ]
        fwd_links = [
            cluster.link_between(
                by_id[plan.stages[j].device_ids[0]],
                by_id[plan.stages[j + 1].device_ids[0]],
            )
            for j in range(n_stages - 1)
        ]
        feedback_link = (
            cluster.link_between(
                by_id[plan.stages[-1].device_ids[0]],
                by_id[plan.stages[0].device_ids[0]],
            )
            if n_stages > 1
            else None
        )
        return cls(
            plan=plan,
            cluster=cluster,
            spec=spec,
            timing=timing,
            stage_models=stage_models,
            fwd_links=fwd_links,
            feedback_link=feedback_link,
        )

    @property
    def num_stages(self) -> int:
        return self.plan.num_stages

    def make_servers(self, loop: EventLoop) -> List[Server]:
        """One FIFO server per pipeline stage, bound to ``loop``."""
        return [Server(loop, f"stage{j}") for j in range(self.num_stages)]

    # -- pure duration functions ---------------------------------------
    # Each is exactly the expression the pre-split offline simulator
    # inlined; drivers memoize the returned floats per (stage, size).

    def prefill_time(self, j: int, size: int, chunk_len: int) -> float:
        """One prefill chunk of ``size`` requests on stage ``j``."""
        return self.stage_models[j].prefill_chunk_time(size, chunk_len)

    def prefill_comm(self, j: int, size: int, chunk_len: int) -> float:
        """Hidden-state transfer of one prefill chunk over link ``j``."""
        return self.fwd_links[j].transfer_time(
            L.hidden_state_bytes(self.spec, size, chunk_len)
        )

    def decode_series(
        self, j: int, size: int, prompt_len: int, n_tokens: int
    ) -> List[float]:
        """Decode-step times t=1..n_tokens-1 on stage ``j`` (plain floats)."""
        return self.stage_models[j].decode_time_series(
            size, prompt_len, n_tokens
        ).tolist()

    def decode_comm(self, j: int, size: int) -> float:
        """Single-token hidden-state transfer over link ``j``."""
        return self.fwd_links[j].transfer_time(
            L.hidden_state_bytes(self.spec, size, 1)
        )

    def feedback_delay(self, size: int) -> float:
        """Sampled-token feedback from the LM head to stage 0."""
        if self.feedback_link is None:
            return 0.0
        return self.feedback_link.transfer_time(size * FEEDBACK_BYTES_PER_REQ)

    def stage_capacities(self) -> Tuple[int, ...]:
        """Usable bytes per stage (TP groups pool their devices)."""
        by_id: Dict[int, Device] = {
            d.device_id: d for d in self.cluster.devices
        }
        return tuple(
            sum(by_id[d].gpu.usable_mem_bytes for d in st.device_ids)
            for st in self.plan.stages
        )
